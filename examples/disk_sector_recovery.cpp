// Disk + sector failure recovery at realistic scale — the single-machine
// storage scenario that motivates SD/PMDS codes (paper §I): a whole disk
// dies and, while rebuilding, latent sector errors surface on the
// survivors. Compares the traditional decoder against PPM on the same
// failure, printing the timing breakdown and the parallel schedule.
//
//   ./disk_sector_recovery [n r m s stripe_mib]     (defaults: 8 16 2 2 8)
#include <cstdio>
#include <cstdlib>

#include "ppm.h"

using namespace ppm;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t r = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::size_t m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const std::size_t s = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const std::size_t mib = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 8;

  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, m, s, w);
  std::size_t block = mib * 1024 * 1024 / code.total_blocks();
  block -= block % code.field().symbol_bytes();
  std::printf("array: %zu disks x %zu sectors, %s, block = %zu KiB\n", n, r,
              code.name().c_str(), block / 1024);

  Stripe stripe(code, block);
  Rng rng(42);
  stripe.fill_data(rng);
  const TraditionalDecoder traditional(code);
  if (!traditional.encode(stripe.block_ptrs(), block)) return 1;
  const auto golden = stripe.snapshot();

  // m whole disks fail; s latent sector errors surface in one row.
  ScenarioGenerator gen(7);
  const auto g = gen.sd_worst_case(code, m, s, 1);
  std::printf("failure: %zu blocks lost (%zu whole disks + %zu sectors)\n",
              g.scenario.count(), m, s);

  // Warm-up (untimed) so both timed decodes run on hot pages.
  stripe.erase(g.scenario);
  if (!traditional.decode(g.scenario, stripe.block_ptrs(), block)) return 1;

  stripe.erase(g.scenario);
  const auto trad = traditional.decode(g.scenario, stripe.block_ptrs(), block,
                                       SequencePolicy::kNormal);
  if (!trad || !stripe.equals(golden)) return 1;
  std::printf("\ntraditional: %8.3f ms  (%zu mult_XORs, plan %.3f ms)\n",
              trad->seconds * 1e3, trad->stats.mult_xors,
              trad->plan_seconds * 1e3);

  stripe.erase(g.scenario);
  const PpmDecoder ppm_decoder(code);
  const auto ppm_res =
      ppm_decoder.decode(g.scenario, stripe.block_ptrs(), block);
  if (!ppm_res || !stripe.equals(golden)) return 1;
  std::printf("PPM:         %8.3f ms  (%zu mult_XORs, plan %.3f ms, "
              "p=%zu groups on T=%u threads, rest %.3f ms)\n",
              ppm_res->seconds * 1e3, ppm_res->stats.mult_xors,
              ppm_res->plan_seconds * 1e3, ppm_res->p,
              ppm_res->threads_used, ppm_res->rest_seconds * 1e3);

  std::printf("\nper-group times (ms):");
  for (const double t : ppm_res->task_seconds) std::printf(" %.3f", t * 1e3);
  std::printf("\nmodeled wall time on 4 concurrent cores: %.3f ms "
              "(improvement %.2f%% over traditional)\n",
              ppm_res->modeled_seconds(4) * 1e3,
              100 * (trad->seconds / ppm_res->modeled_seconds(4) - 1));
  std::printf("cost reduction alone: %.2f%% fewer region ops\n",
              100.0 * (trad->stats.mult_xors - ppm_res->stats.mult_xors) /
                  trad->stats.mult_xors);
  return 0;
}
