// Scrub and repair: the silent-corruption workflow (paper §I cites data
// corruption among the failure classes SD-style codes must face).
//
//   1. scrub the stripe with the parity-check syndromes;
//   2. localize which block a single corruption can live in;
//   3. repair it with the cheapest degraded-read equation;
//   4. verify the stripe is consistent again.
//
//   ./scrub_and_repair [n r m s block_kib]     (defaults: 8 8 2 2 64)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "ppm.h"

using namespace ppm;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  const std::size_t r = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::size_t m = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const std::size_t s = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const std::size_t kib = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 64;

  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, m, s, w);
  const std::size_t block = kib * 1024;
  Stripe stripe(code, block);
  Rng rng(2026);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) return 1;
  const auto golden = stripe.snapshot();
  std::printf("array %zux%zu (%s), %zu KiB blocks — encoded and clean: %s\n",
              n, r, code.name().c_str(), kib,
              stripe_consistent(code, stripe.block_ptrs(), block) ? "yes"
                                                                  : "no");

  // A cosmic ray flips some bits in one block.
  const std::size_t victim = code.block_id(3, 2);
  stripe.block(victim)[17] ^= 0x80;
  stripe.block(victim)[4096 % block] ^= 0x01;
  std::printf("\n[corruption injected into block %zu]\n", victim);

  // 1-2: scrub + localize.
  const auto violated = violated_checks(code, stripe.block_ptrs(), block);
  std::printf("scrub: %zu parity checks violated ->", violated.size());
  const auto candidates =
      locate_single_corruption(code, stripe.block_ptrs(), block);
  std::printf(" %zu candidate blocks:", candidates.size());
  for (const std::size_t c : candidates) std::printf(" %zu", c);
  std::printf("\n");
  if (std::find(candidates.begin(), candidates.end(), victim) ==
      candidates.end()) {
    std::fprintf(stderr, "localization missed the victim!\n");
    return 1;
  }

  // 3: narrow down by repairing each candidate into scratch and checking
  // the syndrome; repair the one that fixes the stripe. (With SD codes the
  // whole stripe row shares a signature, so recompute is the tie-breaker.)
  const DegradedReader reader(code);
  for (const std::size_t cand : candidates) {
    std::vector<std::uint8_t> backup(stripe.block(cand),
                                     stripe.block(cand) + block);
    const FailureScenario sc({cand});
    if (!reader.read(cand, sc, stripe.block_ptrs(), block)) continue;
    if (stripe_consistent(code, stripe.block_ptrs(), block)) {
      std::printf("repaired block %zu via its cheapest equation "
                  "(degraded read)\n",
                  cand);
      break;
    }
    std::memcpy(stripe.block(cand), backup.data(), block);  // not it
  }

  // 4: verify.
  const bool ok = stripe.equals(golden);
  std::printf("stripe restored byte-for-byte: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
