// Datacenter failure simulation: replay an identical multi-year failure
// stream (exponential disk lifetimes + Poisson latent sector errors, the
// §I/§II failure classes) against the traditional and PPM repair paths and
// compare the accumulated repair computation.
//
//   ./datacenter_sim [years n r m s]     (defaults: 3 12 16 2 2)
#include <cstdio>
#include <cstdlib>

#include "ppm.h"

using namespace ppm;

int main(int argc, char** argv) {
  const double years = argc > 1 ? std::strtod(argv[1], nullptr) : 3;
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  const std::size_t r = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16;
  const std::size_t m = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const std::size_t s = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 2;

  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, m, s, w);

  SimParams params;
  params.hours = years * 24 * 365;
  params.disk_mtbf_hours = 10000;  // pessimistic fleet-tail disks
  params.sector_errors_per_disk_hour = 5e-4;
  params.scrub_interval_hours = 168;
  params.repair_hours = 8;
  params.stripes = 512;
  params.block_bytes = 8 * 1024;
  params.seed = 20260705;

  const ArraySimulator sim(code, params);
  std::printf("simulating %.1f years over %s, %zu stripes/group, weekly "
              "scrub, MTBF=%.0fh\n\n",
              years, code.name().c_str(), params.stripes,
              params.disk_mtbf_hours);

  const SimResult trad = sim.run(RepairPolicy::kTraditional);
  const SimResult ppm = sim.run(RepairPolicy::kPpm);

  std::printf("failure stream (identical for both policies):\n");
  std::printf("  disk failures:        %zu (max concurrent %zu)\n",
              trad.disk_failures, trad.max_concurrent_disks);
  std::printf("  latent sector errors: %zu\n", trad.sector_errors);
  std::printf("  repair rounds:        %zu\n", trad.repair_events);
  std::printf("  data-loss events:     %zu\n\n", trad.data_loss_events);

  std::printf("%-24s %16s %16s %10s\n", "repair compute", "traditional",
              "PPM", "saving");
  std::printf("%-24s %16zu %16zu %9.2f%%\n", "mult_XOR ops",
              trad.compute.mult_xors, ppm.compute.mult_xors,
              100.0 *
                  (static_cast<double>(trad.compute.mult_xors) -
                   static_cast<double>(ppm.compute.mult_xors)) /
                  static_cast<double>(trad.compute.mult_xors));
  std::printf("%-24s %15.1fGB %15.1fGB %9.2f%%\n", "bytes moved",
              trad.compute.bytes_touched / 1e9, ppm.compute.bytes_touched / 1e9,
              100.0 *
                  (static_cast<double>(trad.compute.bytes_touched) -
                   static_cast<double>(ppm.compute.bytes_touched)) /
                  static_cast<double>(trad.compute.bytes_touched));
  std::printf("%-24s %15.1fs %15.1fs %9.2f%%\n", "decode time",
              trad.decode_seconds, ppm.decode_seconds,
              100.0 * (trad.decode_seconds - ppm.decode_seconds) /
                  trad.decode_seconds);
  std::printf("\n(PPM time is modeled on %u lanes; traditional is measured "
              "single-core — see EXPERIMENTS.md)\n",
              params.threads);
  return 0;
}
