// Degraded reads under LRC — the cloud scenario that motivates local
// parities (paper §I): transient unavailability makes reads hit repair.
// With one unavailable strip per local group, PPM recovers every affected
// group concurrently from local parities only, while the traditional
// decoder drags all survivors through one big matrix solve.
//
//   ./degraded_read_lrc [k l g strip_kib]     (defaults: 12 3 2 1024)
#include <cstdio>
#include <cstdlib>

#include "ppm.h"

using namespace ppm;

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  const std::size_t l = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  const std::size_t g = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 2;
  const std::size_t kib =
      argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1024;

  const LRCCode code(k, l, g, 8);
  const std::size_t block = kib * 1024;
  std::printf("%s — storage cost %.2fx, strip = %zu KiB\n",
              code.name().c_str(), code.storage_cost(), kib);

  Stripe stripe(code, block);
  Rng rng(11);
  stripe.fill_data(rng);
  const TraditionalDecoder traditional(code);
  if (!traditional.encode(stripe.block_ptrs(), block)) return 1;
  const auto golden = stripe.snapshot();

  // One transiently-unavailable strip in every local group.
  ScenarioGenerator gen(13);
  const auto scenario = gen.lrc_failures(code, l, 0).scenario;
  std::printf("degraded read: strips {");
  for (std::size_t i = 0; i < scenario.count(); ++i) {
    std::printf("%s%zu", i ? "," : "", scenario.faulty()[i]);
  }
  std::printf("} unavailable (one per local group)\n\n");

  // Warm-up (untimed) so both timed decodes run on hot pages.
  stripe.erase(scenario);
  if (!traditional.decode(scenario, stripe.block_ptrs(), block)) return 1;

  stripe.erase(scenario);
  const auto trad = traditional.decode(scenario, stripe.block_ptrs(), block,
                                       SequencePolicy::kNormal);
  if (!trad || !stripe.equals(golden)) return 1;
  std::printf("traditional: %7.3f ms, %zu region ops, reads %zu survivor "
              "strips\n",
              trad->seconds * 1e3, trad->stats.mult_xors,
              code.total_blocks() - scenario.count());

  stripe.erase(scenario);
  const PpmDecoder ppm_decoder(code);
  const auto res = ppm_decoder.decode(scenario, stripe.block_ptrs(), block);
  if (!res || !stripe.equals(golden)) return 1;
  std::printf("PPM:         %7.3f ms, %zu region ops, p=%zu local repairs "
              "in parallel, H_rest empty: %s\n",
              res->seconds * 1e3, res->stats.mult_xors, res->p,
              res->rest_empty() ? "yes" : "no");

  std::printf("\neach repair reads only its local group (%zu strips), and "
              "the %zu repairs run concurrently —\nI/O per repair drops from "
              "%zu to %zu strips, computation from %zu to %zu region ops.\n",
              (k + l - 1) / l, res->p, code.total_blocks() - scenario.count(),
              (k + l - 1) / l, trad->stats.mult_xors, res->stats.mult_xors);
  return 0;
}
