// Quickstart: encode a stripe with an SD code, lose a disk plus a sector,
// and recover everything with the PPM decoder.
//
//   ./quickstart
//
// This walks the paper's Fig. 2/3 example end to end: the exact
// SD^{1,1}_{4,4}(8|1,2) code, the exact failure pattern {b2, b6, b10, b13,
// b14}, and prints the log table, the partition and the cost comparison the
// figures illustrate.
#include <cstdio>

#include "ppm.h"

using namespace ppm;

int main() {
  // 1. Construct the code: 4 disks x 4 sectors, one parity disk (m=1) and
  //    one additional coding sector (s=1), over GF(2^8) with the paper's
  //    coefficients a = (1, 2).
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  std::printf("code: %s — %zu blocks (%zu data + %zu parity)\n",
              code.name().c_str(), code.total_blocks(),
              code.data_block_count(), code.parity_blocks().size());

  // 2. Build a stripe (64 KiB per block), fill the data blocks, encode.
  Stripe stripe(code, 64 * 1024);
  Rng rng(2015);
  stripe.fill_data(rng);
  const TraditionalDecoder traditional(code);
  if (!traditional.encode(stripe.block_ptrs(), stripe.block_bytes())) {
    std::fprintf(stderr, "encode failed\n");
    return 1;
  }
  const auto golden = stripe.snapshot();

  // 3. The paper's failure scenario: disk 2 dies (b2, b6, b10, b14 — but
  //    b14 is a coding sector here, so Fig. 2 uses b13+b14 from the sector
  //    row) — precisely: faulty sectors b2, b6, b10, b13, b14.
  const FailureScenario scenario({2, 6, 10, 13, 14});
  stripe.erase(scenario);

  // 4. Inspect what PPM will do: the log table and the partition.
  const LogTable table =
      LogTable::build(code.parity_check(), scenario.faulty());
  std::printf("\nlog table (i, t_i, l_i):\n");
  for (const LogRow& row : table.rows) {
    std::printf("  (%zu, %zu, (", row.row, row.t());
    for (std::size_t i = 0; i < row.faulty_cols.size(); ++i) {
      std::printf("%s%zu", i ? "," : "", row.faulty_cols[i]);
    }
    std::printf("))\n");
  }
  const Partition part = make_partition(code.parity_check(), table);
  std::printf("partition: p = %zu independent sub-matrices + %zu-row rest "
              "recovering %zu dependent blocks\n",
              part.p(), part.rest_rows.size(), part.rest_faulty.size());

  // 5. Compare the calculation-sequence costs (Fig. 2/3: C1=35 .. C4=29).
  const auto costs = analyze_costs(code, scenario);
  std::printf("costs: C1=%zu C2=%zu C3=%zu C4=%zu -> PPM runs %zu mult_XORs "
              "(%.2f%% less than the traditional method)\n",
              costs->c1, costs->c2, costs->c3, costs->c4, costs->ppm_best(),
              100.0 * (costs->c1 - costs->ppm_best()) / costs->c1);

  // 6. Decode with PPM and verify every byte.
  const PpmDecoder ppm_decoder(code);
  const auto result =
      ppm_decoder.decode(scenario, stripe.block_ptrs(), stripe.block_bytes());
  if (!result) {
    std::fprintf(stderr, "decode failed\n");
    return 1;
  }
  std::printf("\ndecoded with T=%u threads in %.3f ms (%zu region ops)\n",
              result->threads_used, result->seconds * 1e3,
              result->stats.mult_xors);
  std::printf("stripe restored byte-for-byte: %s\n",
              stripe.equals(golden) ? "yes" : "NO — BUG");
  return stripe.equals(golden) ? 0 : 1;
}
