// Cost explorer: print the paper's C1..C4 (empirical and closed-form) plus
// the partition shape for any SD configuration and failure concentration —
// handy for picking code parameters before deploying.
//
//   ./cost_explorer n r m s [z]        e.g.  ./cost_explorer 16 16 2 2 1
#include <cstdio>
#include <cstdlib>

#include "ppm.h"

using namespace ppm;

int main(int argc, char** argv) {
  if (argc < 5) {
    std::fprintf(stderr, "usage: %s n r m s [z]\n", argv[0]);
    return 2;
  }
  const std::size_t n = std::strtoull(argv[1], nullptr, 10);
  const std::size_t r = std::strtoull(argv[2], nullptr, 10);
  const std::size_t m = std::strtoull(argv[3], nullptr, 10);
  const std::size_t s = std::strtoull(argv[4], nullptr, 10);
  const std::size_t z = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, m, s, w);
  std::printf("%s  (H: %zu x %zu, GF(2^%u))\n", code.name().c_str(),
              code.check_rows(), code.total_blocks(), w);
  std::printf("coefficients:");
  for (const gf::Element a : code.coefficients()) std::printf(" %u", a);
  std::printf("\n\n");

  ScenarioGenerator gen(1);
  const auto g = gen.sd_worst_case(code, m, s, z);
  const auto emp = analyze_costs(code, g.scenario);
  if (!emp) {
    std::fprintf(stderr, "scenario undecodable (should not happen)\n");
    return 1;
  }
  const ClosedFormCosts cf = sd_closed_form(n, r, m, s, z);

  std::printf("worst case: %zu disks + %zu sectors in %zu rows "
              "(%zu blocks lost)\n\n",
              m, s, z, g.scenario.count());
  std::printf("%-28s %10s %10s\n", "sequence", "empirical", "closed-form");
  std::printf("%-28s %10zu %10lld\n", "C1  traditional, normal", emp->c1,
              cf.c1);
  std::printf("%-28s %10zu %10lld\n", "C2  traditional, matrix-first",
              emp->c2, cf.c2);
  std::printf("%-28s %10zu %10lld\n", "C3  PPM, matrix-first rest", emp->c3,
              cf.c3);
  std::printf("%-28s %10zu %10lld\n", "C4  PPM, normal rest", emp->c4, cf.c4);
  std::printf("\nPPM: p = %zu independent sub-matrices, realizes %zu ops "
              "(%.2f%% below traditional)\n",
              emp->p, emp->ppm_best(),
              100.0 * (emp->c1 - emp->ppm_best()) / emp->c1);
  return 0;
}
