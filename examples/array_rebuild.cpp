// Array rebuild: the Codec's batch path. A disk failure touches the same
// block positions of every stripe in the placement group; the codec plans
// the PPM decode once and streams it across all stripes.
//
//   ./array_rebuild [stripes n r m s block_kib]   (defaults: 32 8 16 2 2 64)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "ppm.h"

using namespace ppm;

int main(int argc, char** argv) {
  const std::size_t stripes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  const std::size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 8;
  const std::size_t r = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 16;
  const std::size_t m = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2;
  const std::size_t s = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 2;
  const std::size_t kib =
      argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 64;

  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, m, s, w);
  const std::size_t block = kib * 1024;
  std::printf("rebuilding %zu stripes of %s (%zu KiB blocks, %.1f MiB "
              "total)\n",
              stripes, code.name().c_str(), kib,
              stripes * block * code.total_blocks() / 1048576.0);

  // Build and encode the placement group.
  Codec codec(code);
  std::vector<std::unique_ptr<Stripe>> group;
  std::vector<std::vector<std::uint8_t>> snaps;
  std::vector<std::uint8_t* const*> ptrs;
  for (std::size_t i = 0; i < stripes; ++i) {
    group.push_back(std::make_unique<Stripe>(code, block));
    Rng rng(1000 + i);
    group.back()->fill_data(rng);
    if (!codec.encode(group.back()->block_ptrs(), block)) return 1;
    snaps.push_back(group.back()->snapshot());
    ptrs.push_back(group.back()->block_ptrs());
  }

  // One failure pattern across the whole group.
  ScenarioGenerator gen(17);
  const auto g = gen.sd_worst_case(code, m, s, 1);
  for (auto& stripe : group) stripe->erase(g.scenario);
  std::printf("failure: %zu blocks per stripe (%zu disks + %zu sectors)\n",
              g.scenario.count(), m, s);

  const auto result = codec.decode_batch(g.scenario, ptrs, block);
  if (!result) {
    std::fprintf(stderr, "batch decode failed\n");
    return 1;
  }

  std::size_t restored = 0;
  for (std::size_t i = 0; i < stripes; ++i) {
    restored += group[i]->equals(snaps[i]);
  }
  std::printf("\nrebuilt %zu/%zu stripes in %.2f ms (planning %.3f ms, paid "
              "once)\n",
              restored, stripes, result->seconds * 1e3,
              result->plan_seconds * 1e3);
  std::printf("region ops: %zu total (%zu per stripe), %.1f MB touched, "
              "%.0f MB/s rebuild throughput\n",
              result->stats.mult_xors, result->stats.mult_xors / stripes,
              result->stats.bytes_touched / 1e6,
              result->stats.bytes_touched / 1e6 / result->seconds);
  std::printf("plan cache: %zu misses, %zu hits\n", codec.cache_misses(),
              codec.cache_hits());
  return restored == stripes ? 0 : 1;
}
