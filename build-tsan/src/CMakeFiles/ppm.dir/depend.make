# Empty dependencies file for ppm.
# This may be replaced when dependencies are built.
