
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/closed_form.cpp" "src/CMakeFiles/ppm.dir/analysis/closed_form.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/analysis/closed_form.cpp.o.d"
  "/root/repo/src/codec/codec.cpp" "src/CMakeFiles/ppm.dir/codec/codec.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codec/codec.cpp.o.d"
  "/root/repo/src/codec/update.cpp" "src/CMakeFiles/ppm.dir/codec/update.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codec/update.cpp.o.d"
  "/root/repo/src/codes/coeff_search.cpp" "src/CMakeFiles/ppm.dir/codes/coeff_search.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/coeff_search.cpp.o.d"
  "/root/repo/src/codes/crs_code.cpp" "src/CMakeFiles/ppm.dir/codes/crs_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/crs_code.cpp.o.d"
  "/root/repo/src/codes/erasure_code.cpp" "src/CMakeFiles/ppm.dir/codes/erasure_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/erasure_code.cpp.o.d"
  "/root/repo/src/codes/evenodd_code.cpp" "src/CMakeFiles/ppm.dir/codes/evenodd_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/evenodd_code.cpp.o.d"
  "/root/repo/src/codes/lrc_code.cpp" "src/CMakeFiles/ppm.dir/codes/lrc_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/lrc_code.cpp.o.d"
  "/root/repo/src/codes/pmds_code.cpp" "src/CMakeFiles/ppm.dir/codes/pmds_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/pmds_code.cpp.o.d"
  "/root/repo/src/codes/rdp_code.cpp" "src/CMakeFiles/ppm.dir/codes/rdp_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/rdp_code.cpp.o.d"
  "/root/repo/src/codes/rs_code.cpp" "src/CMakeFiles/ppm.dir/codes/rs_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/rs_code.cpp.o.d"
  "/root/repo/src/codes/sd_code.cpp" "src/CMakeFiles/ppm.dir/codes/sd_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/sd_code.cpp.o.d"
  "/root/repo/src/codes/star_code.cpp" "src/CMakeFiles/ppm.dir/codes/star_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/star_code.cpp.o.d"
  "/root/repo/src/codes/xorbas_lrc_code.cpp" "src/CMakeFiles/ppm.dir/codes/xorbas_lrc_code.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/codes/xorbas_lrc_code.cpp.o.d"
  "/root/repo/src/common/aligned_buffer.cpp" "src/CMakeFiles/ppm.dir/common/aligned_buffer.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/common/aligned_buffer.cpp.o.d"
  "/root/repo/src/common/cpu.cpp" "src/CMakeFiles/ppm.dir/common/cpu.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/common/cpu.cpp.o.d"
  "/root/repo/src/common/metrics.cpp" "src/CMakeFiles/ppm.dir/common/metrics.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/common/metrics.cpp.o.d"
  "/root/repo/src/decode/block_parallel_decoder.cpp" "src/CMakeFiles/ppm.dir/decode/block_parallel_decoder.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/block_parallel_decoder.cpp.o.d"
  "/root/repo/src/decode/cost_model.cpp" "src/CMakeFiles/ppm.dir/decode/cost_model.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/cost_model.cpp.o.d"
  "/root/repo/src/decode/degraded_read.cpp" "src/CMakeFiles/ppm.dir/decode/degraded_read.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/degraded_read.cpp.o.d"
  "/root/repo/src/decode/log_table.cpp" "src/CMakeFiles/ppm.dir/decode/log_table.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/log_table.cpp.o.d"
  "/root/repo/src/decode/partition.cpp" "src/CMakeFiles/ppm.dir/decode/partition.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/partition.cpp.o.d"
  "/root/repo/src/decode/plan.cpp" "src/CMakeFiles/ppm.dir/decode/plan.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/plan.cpp.o.d"
  "/root/repo/src/decode/ppm_decoder.cpp" "src/CMakeFiles/ppm.dir/decode/ppm_decoder.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/ppm_decoder.cpp.o.d"
  "/root/repo/src/decode/scenario.cpp" "src/CMakeFiles/ppm.dir/decode/scenario.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/scenario.cpp.o.d"
  "/root/repo/src/decode/traditional_decoder.cpp" "src/CMakeFiles/ppm.dir/decode/traditional_decoder.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/traditional_decoder.cpp.o.d"
  "/root/repo/src/decode/xor_schedule.cpp" "src/CMakeFiles/ppm.dir/decode/xor_schedule.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/decode/xor_schedule.cpp.o.d"
  "/root/repo/src/gf/gf16.cpp" "src/CMakeFiles/ppm.dir/gf/gf16.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/gf16.cpp.o.d"
  "/root/repo/src/gf/gf32.cpp" "src/CMakeFiles/ppm.dir/gf/gf32.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/gf32.cpp.o.d"
  "/root/repo/src/gf/gf32_clmul.cpp" "src/CMakeFiles/ppm.dir/gf/gf32_clmul.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/gf32_clmul.cpp.o.d"
  "/root/repo/src/gf/gf8.cpp" "src/CMakeFiles/ppm.dir/gf/gf8.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/gf8.cpp.o.d"
  "/root/repo/src/gf/gf_core.cpp" "src/CMakeFiles/ppm.dir/gf/gf_core.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/gf_core.cpp.o.d"
  "/root/repo/src/gf/region_avx2.cpp" "src/CMakeFiles/ppm.dir/gf/region_avx2.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/region_avx2.cpp.o.d"
  "/root/repo/src/gf/region_avx512.cpp" "src/CMakeFiles/ppm.dir/gf/region_avx512.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/region_avx512.cpp.o.d"
  "/root/repo/src/gf/region_dispatch.cpp" "src/CMakeFiles/ppm.dir/gf/region_dispatch.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/region_dispatch.cpp.o.d"
  "/root/repo/src/gf/region_scalar.cpp" "src/CMakeFiles/ppm.dir/gf/region_scalar.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/region_scalar.cpp.o.d"
  "/root/repo/src/gf/region_ssse3.cpp" "src/CMakeFiles/ppm.dir/gf/region_ssse3.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/gf/region_ssse3.cpp.o.d"
  "/root/repo/src/matrix/matrix.cpp" "src/CMakeFiles/ppm.dir/matrix/matrix.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/matrix/matrix.cpp.o.d"
  "/root/repo/src/matrix/solve.cpp" "src/CMakeFiles/ppm.dir/matrix/solve.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/matrix/solve.cpp.o.d"
  "/root/repo/src/parallel/task_group.cpp" "src/CMakeFiles/ppm.dir/parallel/task_group.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/parallel/task_group.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/ppm.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/sim/array_sim.cpp" "src/CMakeFiles/ppm.dir/sim/array_sim.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/sim/array_sim.cpp.o.d"
  "/root/repo/src/workload/scenario_gen.cpp" "src/CMakeFiles/ppm.dir/workload/scenario_gen.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/workload/scenario_gen.cpp.o.d"
  "/root/repo/src/workload/stripe.cpp" "src/CMakeFiles/ppm.dir/workload/stripe.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/workload/stripe.cpp.o.d"
  "/root/repo/src/workload/verify.cpp" "src/CMakeFiles/ppm.dir/workload/verify.cpp.o" "gcc" "src/CMakeFiles/ppm.dir/workload/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
