file(REMOVE_RECURSE
  "libppm.a"
)
