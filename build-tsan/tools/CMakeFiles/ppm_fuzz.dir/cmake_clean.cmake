file(REMOVE_RECURSE
  "CMakeFiles/ppm_fuzz.dir/ppm_fuzz.cpp.o"
  "CMakeFiles/ppm_fuzz.dir/ppm_fuzz.cpp.o.d"
  "ppm_fuzz"
  "ppm_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
