# Empty dependencies file for ppm_fuzz.
# This may be replaced when dependencies are built.
