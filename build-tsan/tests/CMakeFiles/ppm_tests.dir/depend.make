# Empty dependencies file for ppm_tests.
# This may be replaced when dependencies are built.
