
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_array_sim.cpp" "tests/CMakeFiles/ppm_tests.dir/test_array_sim.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_array_sim.cpp.o.d"
  "/root/repo/tests/test_block_parallel.cpp" "tests/CMakeFiles/ppm_tests.dir/test_block_parallel.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_block_parallel.cpp.o.d"
  "/root/repo/tests/test_closed_form.cpp" "tests/CMakeFiles/ppm_tests.dir/test_closed_form.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_closed_form.cpp.o.d"
  "/root/repo/tests/test_codec.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codec.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codec.cpp.o.d"
  "/root/repo/tests/test_codec_concurrency.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codec_concurrency.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codec_concurrency.cpp.o.d"
  "/root/repo/tests/test_codes_array.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_array.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_array.cpp.o.d"
  "/root/repo/tests/test_codes_crs.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_crs.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_crs.cpp.o.d"
  "/root/repo/tests/test_codes_lrc.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_lrc.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_lrc.cpp.o.d"
  "/root/repo/tests/test_codes_pmds.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_pmds.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_pmds.cpp.o.d"
  "/root/repo/tests/test_codes_rs.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_rs.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_rs.cpp.o.d"
  "/root/repo/tests/test_codes_sd.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_sd.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_sd.cpp.o.d"
  "/root/repo/tests/test_codes_star.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_star.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_star.cpp.o.d"
  "/root/repo/tests/test_codes_xorbas.cpp" "tests/CMakeFiles/ppm_tests.dir/test_codes_xorbas.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_codes_xorbas.cpp.o.d"
  "/root/repo/tests/test_coeff_search.cpp" "tests/CMakeFiles/ppm_tests.dir/test_coeff_search.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_coeff_search.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/ppm_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_cost_model.cpp" "tests/CMakeFiles/ppm_tests.dir/test_cost_model.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_cost_model.cpp.o.d"
  "/root/repo/tests/test_degraded_read.cpp" "tests/CMakeFiles/ppm_tests.dir/test_degraded_read.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_degraded_read.cpp.o.d"
  "/root/repo/tests/test_fuzz_random_codes.cpp" "tests/CMakeFiles/ppm_tests.dir/test_fuzz_random_codes.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_fuzz_random_codes.cpp.o.d"
  "/root/repo/tests/test_gf_field.cpp" "tests/CMakeFiles/ppm_tests.dir/test_gf_field.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_gf_field.cpp.o.d"
  "/root/repo/tests/test_gf_region.cpp" "tests/CMakeFiles/ppm_tests.dir/test_gf_region.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_gf_region.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/ppm_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_log_table.cpp" "tests/CMakeFiles/ppm_tests.dir/test_log_table.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_log_table.cpp.o.d"
  "/root/repo/tests/test_matrix.cpp" "tests/CMakeFiles/ppm_tests.dir/test_matrix.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_matrix.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/ppm_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_partition.cpp" "tests/CMakeFiles/ppm_tests.dir/test_partition.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_partition.cpp.o.d"
  "/root/repo/tests/test_plan.cpp" "tests/CMakeFiles/ppm_tests.dir/test_plan.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_plan.cpp.o.d"
  "/root/repo/tests/test_plan_cache.cpp" "tests/CMakeFiles/ppm_tests.dir/test_plan_cache.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_plan_cache.cpp.o.d"
  "/root/repo/tests/test_ppm_decoder.cpp" "tests/CMakeFiles/ppm_tests.dir/test_ppm_decoder.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_ppm_decoder.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/ppm_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_solve.cpp" "tests/CMakeFiles/ppm_tests.dir/test_solve.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_solve.cpp.o.d"
  "/root/repo/tests/test_thread_pool.cpp" "tests/CMakeFiles/ppm_tests.dir/test_thread_pool.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_thread_pool.cpp.o.d"
  "/root/repo/tests/test_traditional_decoder.cpp" "tests/CMakeFiles/ppm_tests.dir/test_traditional_decoder.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_traditional_decoder.cpp.o.d"
  "/root/repo/tests/test_update.cpp" "tests/CMakeFiles/ppm_tests.dir/test_update.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_update.cpp.o.d"
  "/root/repo/tests/test_verify.cpp" "tests/CMakeFiles/ppm_tests.dir/test_verify.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_verify.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/ppm_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_workload.cpp.o.d"
  "/root/repo/tests/test_xor_schedule.cpp" "tests/CMakeFiles/ppm_tests.dir/test_xor_schedule.cpp.o" "gcc" "tests/CMakeFiles/ppm_tests.dir/test_xor_schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/ppm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
