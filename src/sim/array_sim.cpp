#include "sim/array_sim.h"

#include <algorithm>
#include <cstring>
#include <queue>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "decode/ppm_decoder.h"
#include "decode/traditional_decoder.h"
#include "workload/stripe.h"

namespace ppm {

namespace {

enum class EventKind { kDiskFail, kDiskRepaired, kScrub, kEnd };

struct Event {
  double time = 0;
  EventKind kind = EventKind::kEnd;
  std::size_t disk = 0;

  bool operator>(const Event& other) const { return time > other.time; }
};

}  // namespace

ArraySimulator::ArraySimulator(const ErasureCode& code, SimParams params)
    : code_(&code), params_(params) {
  if (params_.hours <= 0 || params_.disk_mtbf_hours <= 0 ||
      params_.repair_hours <= 0 || params_.stripes == 0) {
    throw std::invalid_argument("ArraySimulator: invalid parameters");
  }
}

SimResult ArraySimulator::run(RepairPolicy policy) const {
  const std::size_t n = code_->disks();
  const std::size_t r = code_->rows();
  Rng rng(params_.seed);
  SimResult result;

  // One real stripe stands in for the group.
  Stripe stripe(*code_, params_.block_bytes);
  {
    Rng fill(params_.seed ^ 0xF111);
    stripe.fill_data(fill);
    const TraditionalDecoder enc(*code_);
    if (!enc.encode(stripe.block_ptrs(), params_.block_bytes)) {
      throw std::runtime_error("ArraySimulator: encode failed");
    }
  }
  const auto golden = stripe.snapshot();
  const TraditionalDecoder trad(*code_);
  PpmOptions popts;
  popts.threads = params_.threads;
  const PpmDecoder ppm_dec(*code_, popts);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue;
  // Seed each disk's first failure.
  for (std::size_t d = 0; d < n; ++d) {
    queue.push({rng.exponential(1.0 / params_.disk_mtbf_hours),
                EventKind::kDiskFail, d});
  }
  for (double t = params_.scrub_interval_hours; t < params_.hours;
       t += params_.scrub_interval_hours) {
    queue.push({t, EventKind::kScrub, 0});
  }
  queue.push({params_.hours, EventKind::kEnd, 0});

  std::set<std::size_t> failed_disks;          // currently failed
  std::set<std::size_t> latent_sectors;        // block ids, undiscovered
  double last_sector_scan = 0;                 // sector-error generation

  // Draw the latent sector errors that accumulated on live disks over
  // (from, to] and attach them to random live blocks.
  const auto accrue_sectors = [&](double from, double to) {
    const double live =
        static_cast<double>(n - failed_disks.size()) * (to - from);
    const double expected = live * params_.sector_errors_per_disk_hour;
    // Poisson draw via exponential gaps.
    double acc = rng.exponential(1.0);
    while (acc < expected) {
      // Uniform live cell.
      for (int tries = 0; tries < 64; ++tries) {
        const std::size_t d = rng.bounded(n);
        if (failed_disks.contains(d)) continue;
        latent_sectors.insert(code_->block_id(rng.bounded(r), d));
        ++result.sector_errors;
        break;
      }
      acc += rng.exponential(1.0);
    }
  };

  // Execute one repair round for the current failure set.
  const auto repair = [&](double now) {
    accrue_sectors(last_sector_scan, now);
    last_sector_scan = now;
    std::vector<std::size_t> faulty;
    for (const std::size_t d : failed_disks) {
      for (std::size_t i = 0; i < r; ++i) {
        faulty.push_back(code_->block_id(i, d));
      }
    }
    for (const std::size_t b : latent_sectors) {
      // A latent sector on a failed disk is subsumed by the disk failure.
      if (!failed_disks.contains(b % n)) faulty.push_back(b);
    }
    latent_sectors.clear();
    if (faulty.empty()) return;
    const FailureScenario sc(faulty);
    stripe.erase(sc);
    ++result.repair_events;

    if (policy == RepairPolicy::kTraditional) {
      const auto res = trad.decode(sc, stripe.block_ptrs(),
                                   params_.block_bytes,
                                   SequencePolicy::kNormal);
      if (!res.has_value()) {
        ++result.data_loss_events;
        std::memcpy(stripe.block(0), golden.data(), golden.size());
        return;
      }
      result.compute.mult_xors += res->stats.mult_xors * params_.stripes;
      result.compute.bytes_touched +=
          res->stats.bytes_touched * params_.stripes;
      result.compute.blocks_read += res->stats.blocks_read * params_.stripes;
      result.decode_seconds +=
          res->seconds * static_cast<double>(params_.stripes);
    } else {
      const auto res =
          ppm_dec.decode(sc, stripe.block_ptrs(), params_.block_bytes);
      if (!res.has_value()) {
        ++result.data_loss_events;
        std::memcpy(stripe.block(0), golden.data(), golden.size());
        return;
      }
      result.compute.mult_xors += res->stats.mult_xors * params_.stripes;
      result.compute.bytes_touched +=
          res->stats.bytes_touched * params_.stripes;
      result.compute.blocks_read += res->stats.blocks_read * params_.stripes;
      result.decode_seconds += res->modeled_seconds(params_.threads) *
                               static_cast<double>(params_.stripes);
    }
  };

  while (!queue.empty()) {
    const Event ev = queue.top();
    queue.pop();
    if (ev.time > params_.hours || ev.kind == EventKind::kEnd) break;
    switch (ev.kind) {
      case EventKind::kDiskFail: {
        if (failed_disks.contains(ev.disk)) break;  // already down
        accrue_sectors(last_sector_scan, ev.time);
        last_sector_scan = ev.time;
        failed_disks.insert(ev.disk);
        ++result.disk_failures;
        result.max_concurrent_disks =
            std::max(result.max_concurrent_disks, failed_disks.size());
        queue.push({ev.time + params_.repair_hours, EventKind::kDiskRepaired,
                    ev.disk});
        break;
      }
      case EventKind::kDiskRepaired: {
        // The rebuild decodes everything currently broken.
        repair(ev.time);
        failed_disks.erase(ev.disk);
        // The disk rejoins; schedule its next failure.
        queue.push({ev.time + rng.exponential(1.0 / params_.disk_mtbf_hours),
                    EventKind::kDiskFail, ev.disk});
        break;
      }
      case EventKind::kScrub:
        repair(ev.time);
        break;
      case EventKind::kEnd:
        break;
    }
  }
  return result;
}

}  // namespace ppm
