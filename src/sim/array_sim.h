// Event-driven disk-array failure/repair simulator.
//
// The paper motivates asymmetric parity codes with how storage systems
// actually fail (§I-§II: whole-disk failures, latent sector errors found
// during rebuild, transient unavailability dominating failure events).
// This simulator generates that failure process over a simulated horizon
// and drives *real* decodes through either the traditional or the PPM
// decoder, so the accumulated computation, I/O and modeled repair time of
// the two policies can be compared on identical failure streams.
//
// Model (documented simplifications):
//  * disk lifetimes are exponential (rate = 1/MTBF per disk); a failed
//    disk rebuilds in `repair_hours` and then rejoins;
//  * latent sector errors arrive Poisson per live disk and are discovered
//    — and repaired — at the next repair or scrub event (matching the
//    paper's "disk failure + additional sector errors" class);
//  * one stripe of real buffers stands in for the placement group; per
//    repair, the decode runs once and its stats are scaled by `stripes`
//    (every stripe of a group shares the failure geometry);
//  * a failure set the code cannot decode is a data-loss event; the array
//    resets and the simulation continues (loss events are counted).
//
// Determinism: the event stream depends only on (params, seed), never on
// the policy, so traditional-vs-PPM comparisons see identical histories.
#pragma once

#include <cstdint>

#include "codes/erasure_code.h"
#include "decode/plan.h"

namespace ppm {

struct SimParams {
  double hours = 24 * 365;          ///< simulated horizon
  double disk_mtbf_hours = 50000;   ///< exponential per-disk lifetime
  double sector_errors_per_disk_hour = 2e-4;  ///< latent-error rate
  double scrub_interval_hours = 168;          ///< weekly scrub
  double repair_hours = 8;          ///< disk rebuild duration
  std::size_t stripes = 1024;       ///< stripes per placement group
  std::size_t block_bytes = 16 * 1024;
  unsigned threads = 4;             ///< PPM thread budget (modeled lanes)
  std::uint64_t seed = 1;
};

enum class RepairPolicy {
  kTraditional,  ///< whole-matrix, normal sequence (the paper's baseline)
  kPpm,          ///< partitioned + parallel (modeled lanes for time)
};

struct SimResult {
  std::size_t disk_failures = 0;
  std::size_t sector_errors = 0;
  std::size_t repair_events = 0;      ///< decode rounds executed
  std::size_t data_loss_events = 0;   ///< failure sets beyond tolerance
  DecodeStats compute;                ///< scaled to the whole group
  double decode_seconds = 0;          ///< scaled (PPM: modeled lanes)
  std::size_t max_concurrent_disks = 0;
};

class ArraySimulator {
 public:
  ArraySimulator(const ErasureCode& code, SimParams params);

  /// Run the full horizon under one policy. Reentrant: each call replays
  /// the identical failure stream from the seed.
  SimResult run(RepairPolicy policy) const;

 private:
  const ErasureCode* code_;
  SimParams params_;
};

}  // namespace ppm
