#include "codes/evenodd_code.h"

#include <algorithm>
#include <stdexcept>

namespace ppm {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

}  // namespace

EvenOddCode::EvenOddCode(std::size_t p, unsigned w)
    : ErasureCode(gf::field(w), p + 2, p - 1, 2 * (p - 1),
                  "EVENODD(p=" + std::to_string(p) + ")(w=" +
                      std::to_string(w) + ")"),
      p_(p) {
  if (!is_prime(p) || p < 3) {
    throw std::invalid_argument("EVENODD requires prime p >= 3");
  }

  // Row-parity rows.
  for (std::size_t i = 0; i < p - 1; ++i) {
    for (std::size_t j = 0; j < p; ++j) h_(i, block_id(i, j)) = 1;
    h_(i, block_id(i, row_parity_disk())) = 1;
  }
  // Diagonal rows with the EVENODD adjuster: the S diagonal (i + j ≡ p-1)
  // XORs into every diagonal equation. A data cell on both the target and
  // the S diagonal would cancel, but i+j ≡ l and ≡ p-1 cannot both hold
  // for l < p-1, so the coefficient is simply 1 for membership in either.
  for (std::size_t l = 0; l < p - 1; ++l) {
    const std::size_t row = (p - 1) + l;
    for (std::size_t i = 0; i < p - 1; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const std::size_t diag = (i + j) % p;
        if (diag == l || diag == p - 1) {
          h_(row, block_id(i, j)) ^= 1;
        }
      }
    }
    h_(row, block_id(l, diag_parity_disk())) = 1;
  }

  parity_.reserve(2 * (p - 1));
  for (std::size_t i = 0; i < p - 1; ++i) {
    parity_.push_back(block_id(i, row_parity_disk()));
    parity_.push_back(block_id(i, diag_parity_disk()));
  }
  std::sort(parity_.begin(), parity_.end());
}

}  // namespace ppm
