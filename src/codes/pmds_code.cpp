#include "codes/pmds_code.h"

#include <stdexcept>

#include "codes/coeff_search.h"
#include "codes/sd_code.h"

namespace ppm {

PMDSCode::PMDSCode(std::size_t n, std::size_t r, std::size_t m, std::size_t s,
                   unsigned w, std::vector<gf::Element> coeffs)
    : ErasureCode(gf::field(w), n, r, m * r + s,
                  "PMDS(" + std::to_string(m) + "," + std::to_string(s) +
                      ")_{" + std::to_string(n) + "," + std::to_string(r) +
                      "}(w=" + std::to_string(w) + ")"),
      m_(m),
      s_(s),
      coeffs_(std::move(coeffs)) {
  if (n < m + 1 || m == 0) {
    throw std::invalid_argument("PMDS code requires 0 < m < n");
  }
  if (s > (n - m) * r - 1) {
    throw std::invalid_argument("PMDS code: too many coding sectors");
  }
  if (n * r > field().max_element()) {
    throw std::invalid_argument("PMDS code: field too small for n*r blocks");
  }
  if (coeffs_.empty()) {
    coeffs_ = sd_coefficients(n, r, m, s, w);
  }
  if (coeffs_.size() != m + s) {
    throw std::invalid_argument("PMDS code: expected m+s coefficients");
  }
  h_ = SDCode::build_parity_check(field(), n, r, m, s, coeffs_);
  parity_ = SDCode::parity_block_ids(n, r, m, s);
}

}  // namespace ppm
