// STAR code (Huang & Xu, FAST'05): EVENODD extended with a third,
// anti-diagonal parity column — tolerates any three disk failures. The
// paper cites it ([9]) among the symmetric parity codes deployed for
// multi-failure tolerance.
//
// Construction (prime p): the stripe is (p-1) rows × (p+3) disks — p data
// disks, row parity, diagonal parity (slope +1, with the EVENODD adjuster)
// and anti-diagonal parity (slope −1, with the mirrored adjuster). Check
// rows over GF(2):
//   * row i: Σ_j a_{i,j} ⊕ P_i = 0;
//   * diagonal l: Σ_{(i+j) ≡ l} a_{i,j} ⊕ Σ_{(i+j) ≡ p-1} a_{i,j} ⊕ Q_l = 0;
//   * anti-diagonal l: Σ_{(i−j) mod p ≡ l} a_{i,j}
//                      ⊕ Σ_{(i−j) mod p ≡ p-1} a_{i,j} ⊕ R_l = 0,
// data cells only (j < p, i < p-1), l in [0, p-1).
//
// Three-erasure tolerance is verified exhaustively in the tests (every
// C(p+3, 3) whole-disk pattern for p = 5 and 7).
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class StarCode : public ErasureCode {
 public:
  explicit StarCode(std::size_t p, unsigned w = 8);

  std::size_t p() const { return p_; }
  std::size_t row_parity_disk() const { return p_; }
  std::size_t diag_parity_disk() const { return p_ + 1; }
  std::size_t anti_parity_disk() const { return p_ + 2; }

 private:
  std::size_t p_;
};

}  // namespace ppm
