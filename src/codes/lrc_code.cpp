#include "codes/lrc_code.h"

#include <stdexcept>

namespace ppm {

LRCCode::LRCCode(std::size_t k, std::size_t l, std::size_t g, unsigned w)
    : ErasureCode(gf::field(w), k + l + g, 1, l + g,
                  "LRC(" + std::to_string(k) + "," + std::to_string(l) + "," +
                      std::to_string(g) + ")(w=" + std::to_string(w) + ")"),
      k_(k),
      l_(l),
      g_(g),
      group_size_(l == 0 ? 1 : (k + l - 1) / l) {  // guard: validated below
  if (k == 0 || l == 0 || g == 0 || l > k) {
    throw std::invalid_argument("LRC requires 0 < l <= k and g > 0");
  }
  const gf::Field& f = field();
  if ((g + 1) * (k - 1) >= f.max_element()) {
    throw std::invalid_argument("LRC: field too small for k, g");
  }

  // Local parity rows: XOR over the group plus the parity strip itself.
  for (std::size_t grp = 0; grp < l_; ++grp) {
    for (const std::size_t d : group_members(grp)) h_(grp, d) = 1;
    h_(grp, local_parity_block(grp)) = 1;
  }
  // Global parity rows: Vandermonde coefficients alpha^{(j+1)d} over the
  // data strips (exponent offset j+1 keeps row j independent of the XOR of
  // the local rows) plus the parity strip itself.
  for (std::size_t j = 0; j < g_; ++j) {
    for (std::size_t d = 0; d < k_; ++d) {
      h_(l_ + j, d) = f.exp2((j + 1) * d);
    }
    h_(l_ + j, global_parity_block(j)) = 1;
  }

  parity_.reserve(l_ + g_);
  for (std::size_t b = k_; b < k_ + l_ + g_; ++b) parity_.push_back(b);
}

std::vector<std::size_t> LRCCode::group_members(std::size_t grp) const {
  std::vector<std::size_t> out;
  const std::size_t begin = grp * group_size_;
  const std::size_t end = std::min(k_, begin + group_size_);
  for (std::size_t d = begin; d < end; ++d) out.push_back(d);
  return out;
}

}  // namespace ppm
