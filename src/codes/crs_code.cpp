#include "codes/crs_code.h"

#include <algorithm>
#include <stdexcept>

namespace ppm {

Matrix CRSCode::bit_matrix(gf::Element c, unsigned sub_w) {
  const gf::Field& f = gf::field(sub_w);
  Matrix m(gf::field(8), sub_w, sub_w);  // binary entries in any field
  for (unsigned j = 0; j < sub_w; ++j) {
    const gf::Element col = f.mul(c, gf::Element{1} << j);
    for (unsigned i = 0; i < sub_w; ++i) {
      m(i, j) = (col >> i) & 1u;
    }
  }
  return m;
}

std::vector<std::size_t> CRSCode::strip_blocks(std::size_t strip) const {
  std::vector<std::size_t> out;
  out.reserve(rows());
  for (std::size_t i = 0; i < rows(); ++i) out.push_back(block_id(i, strip));
  return out;
}

CRSCode::CRSCode(std::size_t k, std::size_t m, unsigned sub_w)
    : ErasureCode(gf::field(8), k + m, sub_w, m * sub_w,
                  "CRS(" + std::to_string(k) + "," + std::to_string(m) +
                      ")(bitmatrix w=" + std::to_string(sub_w) + ")"),
      k_(k),
      m_(m),
      sub_w_(sub_w) {
  if (k == 0 || m == 0) {
    throw std::invalid_argument("CRS requires k > 0 and m > 0");
  }
  const gf::Field& sub = gf::field(sub_w);  // validates sub_w too
  if (k + m > static_cast<std::uint64_t>(sub.max_element()) + 1) {
    throw std::invalid_argument("CRS: k + m exceeds 2^sub_w");
  }

  // Cauchy coefficients C[q][d] = 1 / (x_q + y_d), x_q = q, y_d = m + d —
  // the same MDS-by-construction choice as RSCode, expanded bitwise.
  for (std::size_t q = 0; q < m_; ++q) {
    for (std::size_t d = 0; d < k_; ++d) {
      const gf::Element c =
          sub.inv(static_cast<gf::Element>(q) ^
                  static_cast<gf::Element>(m_ + d));
      const Matrix bits = bit_matrix(c, sub_w_);
      for (unsigned i = 0; i < sub_w_; ++i) {
        for (unsigned j = 0; j < sub_w_; ++j) {
          if (bits(i, j) != 0) {
            h_(q * sub_w_ + i, packet_block(j, d)) = 1;
          }
        }
      }
    }
    // Identity for the parity strip's own packets.
    for (unsigned i = 0; i < sub_w_; ++i) {
      h_(q * sub_w_ + i, packet_block(i, k_ + q)) = 1;
    }
  }

  parity_.reserve(m_ * sub_w_);
  for (std::size_t q = 0; q < m_; ++q) {
    for (unsigned i = 0; i < sub_w_; ++i) {
      parity_.push_back(packet_block(i, k_ + q));
    }
  }
  std::sort(parity_.begin(), parity_.end());
}

}  // namespace ppm
