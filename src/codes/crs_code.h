// Cauchy Reed–Solomon with bit-matrix coding (Blaum et al., ICSI TR-95-048
// — the paper's citation [8]).
//
// CRS converts GF(2^w) arithmetic into pure XOR: every strip splits into w
// *packets*, every Cauchy coefficient c expands into the w×w binary matrix
// M(c) whose column j holds the bits of c·x^j, and the parity equations
// become XOR equations over packets. In this library that is simply
// another parity-check code: the stripe has r = w rows (one per packet
// index), n = k+m disks (strips), H is binary (m·w rows × n·w columns) and
// every region operation hits the c == 1 XOR fast path.
//
// This makes CRS the natural substrate for the equation-oriented
// parallelism the paper contrasts with in related work ([41], Sobe 2010):
// PPM's log table and partition operate on the packet-granular binary H
// without modification.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class CRSCode : public ErasureCode {
 public:
  /// CRS(k, m) over GF(2^sub_w) bit matrices; requires k + m <= 2^sub_w.
  /// Block (i, j) of the stripe is packet i of strip j; strips k..k+m-1
  /// are parity. The element field of the code itself is GF(2^8) but
  /// every coefficient is 0 or 1.
  CRSCode(std::size_t k, std::size_t m, unsigned sub_w = 8);

  std::size_t k() const { return k_; }
  std::size_t m() const { return m_; }
  unsigned sub_w() const { return sub_w_; }

  /// Packet block id of packet `packet` of strip `strip`.
  std::size_t packet_block(std::size_t packet, std::size_t strip) const {
    return block_id(packet, strip);
  }

  /// All packet block ids of one strip (a whole-strip failure unit).
  std::vector<std::size_t> strip_blocks(std::size_t strip) const;

  /// The w×w bit matrix of multiplication by `c` over GF(2^sub_w):
  /// bit (i, j) is set iff bit i of c·x^j is set. Exposed for tests.
  static Matrix bit_matrix(gf::Element c, unsigned sub_w);

 private:
  std::size_t k_;
  std::size_t m_;
  unsigned sub_w_;
};

}  // namespace ppm
