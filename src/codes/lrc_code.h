// Locally Repairable Codes (Azure-style LRC, Huang et al. ATC'12).
//
// An LRC(k, l, g) stripe has k data strips, l local parities over disjoint
// groups of ~k/l data strips, and g global parities over all data strips.
// The local parities serve degraded reads cheaply; the globals provide the
// stripe-wide fault tolerance. Parity arity is asymmetric (k/l vs k), which
// is exactly what PPM exploits: strips failing in distinct local groups are
// independent faulty blocks recoverable in parallel from their local
// equations alone.
//
// Coding here is strip-granular (rows() == 1, one block per strip), matching
// the paper's fixed-strip-size LRC experiments (Fig. 11). Storage cost is
// (k + l + g) / k.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class LRCCode : public ErasureCode {
 public:
  /// Construct LRC(k, l, g) over GF(2^w). Block layout: data strips
  /// [0, k), local parities [k, k+l), global parities [k+l, k+l+g).
  LRCCode(std::size_t k, std::size_t l, std::size_t g, unsigned w);

  std::size_t k() const { return k_; }
  std::size_t l() const { return l_; }
  std::size_t g() const { return g_; }

  /// Storage overhead factor (k+l+g)/k, the x-axis of the paper's Fig. 11.
  double storage_cost() const {
    return static_cast<double>(total_blocks()) / static_cast<double>(k_);
  }

  /// Local group index of data strip d (groups are contiguous runs of
  /// ceil(k/l) strips).
  std::size_t group_of(std::size_t d) const { return d / group_size_; }

  /// Data strips belonging to local group `grp`.
  std::vector<std::size_t> group_members(std::size_t grp) const;

  /// Block id of the local parity of group `grp`.
  std::size_t local_parity_block(std::size_t grp) const { return k_ + grp; }

  /// Block id of global parity j.
  std::size_t global_parity_block(std::size_t j) const { return k_ + l_ + j; }

 private:
  std::size_t k_;
  std::size_t l_;
  std::size_t g_;
  std::size_t group_size_;
};

}  // namespace ppm
