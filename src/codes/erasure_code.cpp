#include "codes/erasure_code.h"

#include <algorithm>
#include <utility>

namespace ppm {

ErasureCode::ErasureCode(const gf::Field& f, std::size_t disks,
                         std::size_t rows, std::size_t check_rows,
                         std::string name)
    : h_(f, check_rows, disks * rows),
      field_(&f),
      disks_(disks),
      rows_(rows),
      name_(std::move(name)) {}

bool ErasureCode::is_parity(std::size_t b) const {
  return std::binary_search(parity_.begin(), parity_.end(), b);
}

std::vector<std::size_t> ErasureCode::data_blocks() const {
  std::vector<std::size_t> out;
  out.reserve(data_block_count());
  for (std::size_t b = 0; b < total_blocks(); ++b) {
    if (!is_parity(b)) out.push_back(b);
  }
  return out;
}

}  // namespace ppm
