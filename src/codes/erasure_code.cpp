#include "codes/erasure_code.h"

#include <algorithm>
#include <utility>

namespace ppm {

ErasureCode::ErasureCode(const gf::Field& f, std::size_t disks,
                         std::size_t rows, std::size_t check_rows,
                         std::string name)
    : h_(f, check_rows, disks * rows),
      field_(&f),
      disks_(disks),
      rows_(rows),
      name_(std::move(name)) {}

bool ErasureCode::is_parity(std::size_t b) const {
  return std::binary_search(parity_.begin(), parity_.end(), b);
}

namespace {

void fnv_word(std::uint64_t& h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= word & 0xFFu;
    h *= 1099511628211ull;
    word >>= 8;
  }
}

}  // namespace

const CodeSignature& ErasureCode::code_signature() const {
  std::call_once(signature_once_, [this] {
    CodeSignature sig;
    sig.text = name_;
    sig.text += "/d" + std::to_string(disks_) + "x" + std::to_string(rows_);
    sig.text += "/h" + std::to_string(h_.rows()) + "x" +
                std::to_string(h_.cols());
    sig.text += "/w" + std::to_string(field_->w());

    std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
    for (const char c : sig.text) fnv_word(h, static_cast<unsigned char>(c));
    for (const std::size_t p : parity_) fnv_word(h, p);
    for (const gf::Element e : h_.data()) fnv_word(h, e);
    sig.digest = h;
    signature_ = std::move(sig);
  });
  return signature_;
}

std::vector<std::size_t> ErasureCode::data_blocks() const {
  std::vector<std::size_t> out;
  out.reserve(data_block_count());
  for (std::size_t b = 0; b < total_blocks(); ++b) {
    if (!is_parity(b)) out.push_back(b);
  }
  return out;
}

}  // namespace ppm
