// Certified coefficient search for SD-family codes.
//
// The published SD codes use coding coefficients found by computer
// search (the paper's example: SD^{2,2}_{6,4}(8|1, 42, 26, 61)). Until
// PR 8 this module reproduced that search with a *sampled* acceptance
// test — 12 random worst-case scenarios per sector concentration —
// which can (and for some geometries does) accept tuples with
// undecodable corner cases. It now fronts the exhaustive verifier-
// guided oracle in search_coeff/: every tuple served by
// sd_coefficients() carries a machine-checkable Certificate proving
// full column rank for every canonical worst-case scenario class
// (symmetry-reduced, exhaustive up to the recorded class limit) plus
// static plan proofs (planverify + hazard) on a recorded subset.
//
// Results are cached per (n, r, m, s, w) for the process lifetime, and
// — when a certificate store is attached (search_coeff/cert_store.h,
// PPM_CERT_DIR) — persisted across processes under the store's
// zero-trust re-proof-on-load contract.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/galois_field.h"

namespace ppm {

/// Certified (and cached) coefficients for SD^{m,s}_{n,r} over GF(2^w).
/// Throws std::invalid_argument for degenerate geometries (m == 0,
/// m >= n, too many sectors, field too small) and std::runtime_error if
/// no tuple certifies within the candidate budget (does not happen for
/// the parameter ranges of the paper, n,r <= 24, m,s <= 3).
std::vector<gf::Element> sd_coefficients(std::size_t n, std::size_t r,
                                         std::size_t m, std::size_t s,
                                         unsigned w);

/// Exhaustive validation of a coefficient tuple: true iff the encoding
/// scenario and every enumerated canonical worst-case scenario class
/// yield full-rank decoding systems (rank-only certification; plan
/// proofs are the construction path's job). False on a tuple of the
/// wrong arity. Throws std::invalid_argument for degenerate geometries
/// instead of looping or sampling them.
bool validate_sd_coefficients(std::size_t n, std::size_t r, std::size_t m,
                              std::size_t s, unsigned w,
                              std::span<const gf::Element> coeffs);

/// Number of geometries with an in-process cached tuple.
std::size_t sd_coefficient_cache_entries();

/// Drops the in-process tuple cache (certificate-store records are
/// untouched). Test hook.
void clear_sd_coefficient_cache();

}  // namespace ppm
