// Coefficient search and validation for SD-family codes.
//
// The published SD codes use coding coefficients found by computer search
// (the paper's example: SD^{2,2}_{6,4}(8|1, 42, 26, 61)). We reproduce that
// search: candidate coefficient tuples (a_0 = 1 always) are validated
// against the encoding scenario and a deterministic sample of worst-case
// failure scenarios (m whole disks + s sectors); the first tuple whose
// decoding matrices are all invertible wins. Results are cached per
// (n, r, m, s, w) for the duration of the process so parameter sweeps pay
// the search once.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "gf/galois_field.h"

namespace ppm {

/// Searched (and cached) coefficients for SD^{m,s}_{n,r} over GF(2^w).
/// Throws std::runtime_error if no valid tuple is found within the
/// candidate budget (does not happen for the parameter ranges of the paper,
/// n,r <= 24, m,s <= 3).
std::vector<gf::Element> sd_coefficients(std::size_t n, std::size_t r,
                                         std::size_t m, std::size_t s,
                                         unsigned w);

/// Validate a coefficient tuple: true iff the encoding scenario and
/// `samples` sampled worst-case decoding scenarios (per z in [1, min(s,r)])
/// all yield full-rank decoding systems.
bool validate_sd_coefficients(std::size_t n, std::size_t r, std::size_t m,
                              std::size_t s, unsigned w,
                              std::span<const gf::Element> coeffs,
                              unsigned samples = 12);

}  // namespace ppm
