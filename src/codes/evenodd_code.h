// EVENODD (Blaum, Brady, Bruck, Menon — IEEE ToC 1995): the classic
// XOR-only RAID-6 array code, cited by the paper as the archetypal
// *symmetric* parity erasure code [5]. It serves here as a negative
// control: every parity-check row of H is binary, the two failed disks of
// the worst case couple every row and diagonal, and PPM's partition
// degenerates (p = 0) — exactly the paper's argument for why PPM targets
// asymmetric codes. Single-disk rebuilds, by contrast, partition into p =
// p-1 per-row repairs.
//
// Construction (prime p): the stripe is (p-1) rows × (p+2) disks — p data
// disks, the row-parity disk P (column p) and the diagonal-parity disk Q
// (column p+1); an imaginary all-zero row p-1 completes the diagonals.
// Check rows over GF(2) coefficients (embedded in GF(2^w)):
//   * row i (i < p-1):  Σ_j a_{i,j} ⊕ P_i = 0;
//   * diagonal l (l < p-1):  Σ_{(i,j): i+j ≡ l (mod p)} a_{i,j}
//       ⊕ Σ_{(i,j): i+j ≡ p-1 (mod p)} a_{i,j}   (the EVENODD adjuster S)
//       ⊕ Q_l = 0,
// with data cells only (j < p, i < p-1) inside the sums.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class EvenOddCode : public ErasureCode {
 public:
  /// Construct EVENODD over prime p >= 3; symbols live in GF(2^w) but all
  /// coefficients are 0/1 (XOR arithmetic).
  explicit EvenOddCode(std::size_t p, unsigned w = 8);

  std::size_t p() const { return p_; }
  std::size_t row_parity_disk() const { return p_; }
  std::size_t diag_parity_disk() const { return p_ + 1; }

 private:
  std::size_t p_;
};

}  // namespace ppm
