#include "codes/star_code.h"

#include <algorithm>
#include <stdexcept>

namespace ppm {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

}  // namespace

StarCode::StarCode(std::size_t p, unsigned w)
    : ErasureCode(gf::field(w), p + 3, p - 1, 3 * (p - 1),
                  "STAR(p=" + std::to_string(p) + ")(w=" + std::to_string(w) +
                      ")"),
      p_(p) {
  if (!is_prime(p) || p < 3) {
    throw std::invalid_argument("STAR requires prime p >= 3");
  }

  // Row-parity rows.
  for (std::size_t i = 0; i < p - 1; ++i) {
    for (std::size_t j = 0; j < p; ++j) h_(i, block_id(i, j)) = 1;
    h_(i, block_id(i, row_parity_disk())) = 1;
  }
  // Diagonal rows (slope +1) with the EVENODD adjuster diagonal p-1.
  for (std::size_t l = 0; l < p - 1; ++l) {
    const std::size_t row = (p - 1) + l;
    for (std::size_t i = 0; i < p - 1; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const std::size_t diag = (i + j) % p;
        if (diag == l || diag == p - 1) h_(row, block_id(i, j)) ^= 1;
      }
    }
    h_(row, block_id(l, diag_parity_disk())) = 1;
  }
  // Anti-diagonal rows (slope -1) with the mirrored adjuster p-1.
  for (std::size_t l = 0; l < p - 1; ++l) {
    const std::size_t row = 2 * (p - 1) + l;
    for (std::size_t i = 0; i < p - 1; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const std::size_t anti = (i + p - j) % p;
        if (anti == l || anti == p - 1) h_(row, block_id(i, j)) ^= 1;
      }
    }
    h_(row, block_id(l, anti_parity_disk())) = 1;
  }

  parity_.reserve(3 * (p - 1));
  for (std::size_t i = 0; i < p - 1; ++i) {
    parity_.push_back(block_id(i, row_parity_disk()));
    parity_.push_back(block_id(i, diag_parity_disk()));
    parity_.push_back(block_id(i, anti_parity_disk()));
  }
  std::sort(parity_.begin(), parity_.end());
}

}  // namespace ppm
