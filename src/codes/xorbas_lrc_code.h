// Facebook/HDFS-RAID-style LRC ("XORing Elephants", Sathiamoorthy et al.,
// VLDB'13) — the second LRC family the paper's introduction cites [18].
//
// Layout for XorbasLRC(k, l, g): k data strips in l local groups with one
// XOR local parity each; g Reed–Solomon-style global parities; and one
// additional local parity covering the global parities, so a single lost
// global parity also repairs locally. (The published construction chooses
// coefficients to make that last parity *implied* — computable as a
// combination of the data locals, saving a strip; we store it explicitly,
// which keeps the family parameterizable for arbitrary (k, l, g) instead of
// only the aligned 10-6-5 instance. The repair and decode paths exercised
// are the same.)
//
// PPM profile: up to l + 1 independent single-block repairs per stripe —
// one per data group plus the global-parity group.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class XorbasLRCCode : public ErasureCode {
 public:
  /// Block layout: data [0, k), data-local parities [k, k+l), global
  /// parities [k+l, k+l+g), global-local parity k+l+g.
  XorbasLRCCode(std::size_t k, std::size_t l, std::size_t g, unsigned w);

  std::size_t k() const { return k_; }
  std::size_t l() const { return l_; }
  std::size_t g() const { return g_; }

  double storage_cost() const {
    return static_cast<double>(total_blocks()) / static_cast<double>(k_);
  }

  std::size_t group_of(std::size_t d) const { return d / group_size_; }
  std::vector<std::size_t> group_members(std::size_t grp) const;
  std::size_t local_parity_block(std::size_t grp) const { return k_ + grp; }
  std::size_t global_parity_block(std::size_t j) const { return k_ + l_ + j; }
  /// The local parity protecting the global parities.
  std::size_t global_local_parity_block() const { return k_ + l_ + g_; }

 private:
  std::size_t k_;
  std::size_t l_;
  std::size_t g_;
  std::size_t group_size_;
};

}  // namespace ppm
