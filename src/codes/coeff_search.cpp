#include "codes/coeff_search.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "common/metrics.h"
#include "search_coeff/cert_store.h"
#include "search_coeff/search.h"

namespace ppm {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       unsigned>;

std::mutex g_cache_mutex;
// Serializes the miss path so concurrent constructions of the same
// geometry run one certification, not eight.
std::mutex g_search_mutex;

std::map<Key, std::vector<gf::Element>>& cache() {
  static std::map<Key, std::vector<gf::Element>> c;
  return c;
}

/// Proof strength applied at code construction. The exact/stratified
/// limits are lower than the CLI defaults (CertifyOptions) so that
/// constructing a code stays interactive even for the largest paper
/// geometries; the `search` CI job re-certifies every shipped geometry
/// at full strength. A persisted record must be at least this strong to
/// be served (CertStore::load's minimum-strength gate).
coeffsearch::CertifyOptions construction_options() {
  coeffsearch::CertifyOptions opts;
  opts.exact_class_limit = 200'000;
  opts.stratified_classes = 20'000;
  opts.plan_budget = 32;
  opts.optimize_xor = true;
  return opts;
}

}  // namespace

bool validate_sd_coefficients(std::size_t n, std::size_t r, std::size_t m,
                              std::size_t s, unsigned w,
                              std::span<const gf::Element> coeffs) {
  const coeffsearch::Geometry g{n, r, m, s, w};
  coeffsearch::validate_geometry(g);  // throws on degenerate geometries
  if (coeffs.size() != m + s) return false;
  // Rank-only certification: exhaustive (up to the construction-path
  // class limits) but without plan proofs — callers validating foreign
  // tuples want the decodability verdict, not a plan profile.
  coeffsearch::CertifyOptions opts = construction_options();
  opts.plan_budget = 0;
  opts.optimize_xor = false;
  return coeffsearch::certify_tuple(g, coeffs, opts).certified;
}

std::vector<gf::Element> sd_coefficients(std::size_t n, std::size_t r,
                                         std::size_t m, std::size_t s,
                                         unsigned w) {
  const coeffsearch::Geometry g{n, r, m, s, w};
  coeffsearch::validate_geometry(g);
  SearchMetrics& metrics = search_metrics();
  const Key key{n, r, m, s, w};
  {
    const std::scoped_lock lock(g_cache_mutex);
    auto it = cache().find(key);
    if (it != cache().end()) {
      metrics.cache_hits.add();
      return it->second;
    }
  }

  const std::scoped_lock search_lock(g_search_mutex);
  {
    // Double-check: another thread may have finished this geometry
    // while we waited on the search lock.
    const std::scoped_lock lock(g_cache_mutex);
    auto it = cache().find(key);
    if (it != cache().end()) {
      metrics.cache_hits.add();
      return it->second;
    }
  }
  metrics.searches.add();

  const coeffsearch::CertifyOptions require = construction_options();
  const std::shared_ptr<coeffsearch::CertStore> store =
      coeffsearch::default_cert_store();
  coeffsearch::Certificate cert;
  bool have_cert = false;

  // Zero-trust store hit: the record is re-proven in full before a
  // single byte of it is served (see cert_store.h).
  if (store != nullptr &&
      store->load(g, require, &cert) ==
          coeffsearch::CertStore::LoadResult::kLoaded) {
    have_cert = true;
  }

  if (!have_cert) {
    // Phase 1: look for a *perfect* tuple — one that certifies with
    // zero deficient classes.
    coeffsearch::SearchOptions opts;
    opts.candidate_budget = 96;
    opts.certify = require;
    coeffsearch::CertifyResult found = coeffsearch::certify_first(g, opts);
    if (!found.certified) {
      // Phase 2: no perfect tuple within budget. Several shipped
      // geometries (e.g. SD^{2,2}_{8,8} over GF(2^8)) provably have
      // none — matching the gaps in Plank's published tables. Serve
      // the historical consecutive-powers tuple, but attach its full
      // exhaustive characterization so the deficiency is on the
      // record instead of silently sampled away.
      const gf::Field& f = gf::field(w);
      std::vector<gf::Element> fallback(m + s);
      for (std::size_t q = 0; q < fallback.size(); ++q) {
        fallback[q] = f.exp2(q);
      }
      coeffsearch::CertifyOptions characterize = require;
      characterize.allow_deficient = true;
      found = coeffsearch::certify_tuple(g, fallback, characterize);
      if (!found.certified) {
        throw std::runtime_error("sd_coefficients: " + found.reason);
      }
    }
    cert = std::move(found.cert);
    have_cert = true;
    if (store != nullptr) store->put(cert);
  }

  {
    const std::scoped_lock lock(g_cache_mutex);
    cache().emplace(key, cert.tuple);
  }
  return cert.tuple;
}

std::size_t sd_coefficient_cache_entries() {
  const std::scoped_lock lock(g_cache_mutex);
  return cache().size();
}

void clear_sd_coefficient_cache() {
  const std::scoped_lock lock(g_cache_mutex);
  cache().clear();
}

}  // namespace ppm
