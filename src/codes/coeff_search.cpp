#include "codes/coeff_search.h"

#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "codes/sd_code.h"
#include "common/rng.h"
#include "matrix/matrix.h"

namespace ppm {

namespace {

using Key = std::tuple<std::size_t, std::size_t, std::size_t, std::size_t,
                       unsigned>;

std::mutex g_cache_mutex;
std::map<Key, std::vector<gf::Element>>& cache() {
  static std::map<Key, std::vector<gf::Element>> c;
  return c;
}

// One worst-case scenario: m random whole disks plus s sectors confined to
// z rows on the surviving disks.
std::vector<std::size_t> sample_scenario(std::size_t n, std::size_t r,
                                         std::size_t m, std::size_t s,
                                         std::size_t z, Rng& rng) {
  std::vector<std::size_t> disks;
  while (disks.size() < m) {
    const std::size_t d = rng.bounded(n);
    bool dup = false;
    for (const std::size_t e : disks) dup |= (e == d);
    if (!dup) disks.push_back(d);
  }
  std::vector<std::size_t> rows;
  while (rows.size() < z) {
    const std::size_t row = rng.bounded(r);
    bool dup = false;
    for (const std::size_t e : rows) dup |= (e == row);
    if (!dup) rows.push_back(row);
  }
  std::vector<std::size_t> blocks;
  for (const std::size_t d : disks) {
    for (std::size_t i = 0; i < r; ++i) blocks.push_back(i * n + d);
  }
  // One sector per chosen row first, the remainder anywhere in those rows.
  auto in_failed_disk = [&](std::size_t d) {
    for (const std::size_t e : disks) {
      if (e == d) return true;
    }
    return false;
  };
  std::size_t placed = 0;
  auto try_place = [&](std::size_t row) {
    const std::size_t d = rng.bounded(n);
    if (in_failed_disk(d)) return false;
    const std::size_t b = row * n + d;
    for (const std::size_t e : blocks) {
      if (e == b) return false;
    }
    blocks.push_back(b);
    ++placed;
    return true;
  };
  for (const std::size_t row : rows) {
    while (!try_place(row)) {
    }
  }
  while (placed < s) {
    try_place(rows[rng.bounded(z)]);
  }
  return blocks;
}

bool scenario_decodable(const Matrix& h, std::span<const std::size_t> faulty) {
  const Matrix f = h.select_columns(faulty);
  return f.rank() == f.cols();
}

}  // namespace

bool validate_sd_coefficients(std::size_t n, std::size_t r, std::size_t m,
                              std::size_t s, unsigned w,
                              std::span<const gf::Element> coeffs,
                              unsigned samples) {
  const gf::Field& f = gf::field(w);
  const Matrix h = SDCode::build_parity_check(f, n, r, m, s, coeffs);

  // The encoding scenario (all parity blocks unknown) must be solvable.
  const auto parity = SDCode::parity_block_ids(n, r, m, s);
  if (!scenario_decodable(h, parity)) return false;

  // Sampled worst-case decodes for every sector-row concentration z.
  Rng rng(0x5D00D5 + n * 1315423911u + r * 2654435761u + m * 97 + s * 31 + w);
  const std::size_t z_max = std::min(s, r);
  for (std::size_t z = 1; z <= z_max; ++z) {
    if (s > z * (n - m)) continue;  // s sectors cannot fit in z rows
    for (unsigned i = 0; i < samples; ++i) {
      const auto faulty = sample_scenario(n, r, m, s, z, rng);
      if (!scenario_decodable(h, faulty)) return false;
    }
  }
  return true;
}

std::vector<gf::Element> sd_coefficients(std::size_t n, std::size_t r,
                                         std::size_t m, std::size_t s,
                                         unsigned w) {
  const Key key{n, r, m, s, w};
  {
    const std::scoped_lock lock(g_cache_mutex);
    auto it = cache().find(key);
    if (it != cache().end()) return it->second;
  }

  const gf::Field& f = gf::field(w);
  const std::size_t count = m + s;

  // Candidate 0: consecutive powers of alpha — a = (1, 2, 4, 8, ...), the
  // natural generalization of the paper's SD^{1,1}(8|1,2) example. Further
  // candidates draw random exponents, mirroring the published search.
  Rng rng(0xC0EF5EED ^ (n << 16) ^ (r << 8) ^ (m << 4) ^ s ^ w);
  constexpr unsigned kBudget = 400;
  for (unsigned attempt = 0; attempt < kBudget; ++attempt) {
    std::vector<gf::Element> coeffs(count);
    coeffs[0] = 1;
    if (attempt == 0) {
      for (std::size_t q = 1; q < count; ++q) coeffs[q] = f.exp2(q);
    } else {
      for (std::size_t q = 1; q < count; ++q) {
        coeffs[q] = f.exp2(1 + rng.bounded(f.max_element() - 1));
      }
    }
    if (validate_sd_coefficients(n, r, m, s, w, coeffs)) {
      const std::scoped_lock lock(g_cache_mutex);
      cache().emplace(key, coeffs);
      return coeffs;
    }
  }
  throw std::runtime_error("sd_coefficients: search budget exhausted");
}

}  // namespace ppm
