// PMDS codes (Blaum, Hafner, Hetzler — IBM RJ10498).
//
// A PMDS(m, s) code protects an n × r stripe against m erasures per row
// plus s additional erasures anywhere. The paper treats PMDS as a subset of
// the SD family ("Since PMDS code is a subset of SD code, the experimental
// results of SD code also reflect that of PMDS code", §IV); accordingly
// this class instantiates the same parity-check structure — m per-row
// equations plus s stripe-global equations — with an independently searched
// coefficient tuple, so PMDS exercises exactly the code path the paper's
// statement relies on while remaining a distinct, testable type.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class PMDSCode : public ErasureCode {
 public:
  PMDSCode(std::size_t n, std::size_t r, std::size_t m, std::size_t s,
           unsigned w, std::vector<gf::Element> coeffs = {});

  std::size_t m() const { return m_; }
  std::size_t s() const { return s_; }
  const std::vector<gf::Element>& coefficients() const { return coeffs_; }

 private:
  std::size_t m_;
  std::size_t s_;
  std::vector<gf::Element> coeffs_;
};

}  // namespace ppm
