#include "codes/rs_code.h"

#include <stdexcept>

namespace ppm {

RSCode::RSCode(std::size_t k, std::size_t m, unsigned w)
    : ErasureCode(gf::field(w), k + m, 1, m,
                  "RS(" + std::to_string(k) + "," + std::to_string(m) +
                      ")(w=" + std::to_string(w) + ")"),
      k_(k),
      m_(m) {
  if (k == 0 || m == 0) {
    throw std::invalid_argument("RS requires k > 0 and m > 0");
  }
  const gf::Field& f = field();
  // Field has 2^w = max_element + 1 elements; the Cauchy x/y sets need k+m
  // distinct ones. (Compare in 64 bits: max_element + 1 overflows at w=32.)
  if (k + m > static_cast<std::uint64_t>(f.max_element()) + 1) {
    throw std::invalid_argument("RS: k + m exceeds field size");
  }

  // Parity row j: Cauchy coefficients 1/(x_j + y_d) over the data strips
  // (x_j = j, y_d = m + d are disjoint, so x_j + y_d != 0) plus an identity
  // entry for parity strip j itself.
  for (std::size_t j = 0; j < m_; ++j) {
    for (std::size_t d = 0; d < k_; ++d) {
      h_(j, d) = f.inv(static_cast<gf::Element>(j) ^
                       static_cast<gf::Element>(m_ + d));
    }
    h_(j, k_ + j) = 1;
  }

  parity_.reserve(m_);
  for (std::size_t b = k_; b < k_ + m_; ++b) parity_.push_back(b);
}

}  // namespace ppm
