// Reed–Solomon baseline (symmetric parity erasure code).
//
// RS(k, m) generates m parity strips, each from all k data strips — the
// symmetric-parity reference the paper compares opt-SD against (Fig. 8,
// "RS with m+1"). The parity equations use a Cauchy matrix, which makes the
// code MDS by construction (every square submatrix of a Cauchy matrix is
// invertible), so any m failures are decodable.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class RSCode : public ErasureCode {
 public:
  /// Construct RS(k, m) over GF(2^w); requires k + m <= 2^w.
  RSCode(std::size_t k, std::size_t m, unsigned w);

  std::size_t k() const { return k_; }
  std::size_t m() const { return m_; }

 private:
  std::size_t k_;
  std::size_t m_;
};

}  // namespace ppm
