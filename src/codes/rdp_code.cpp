#include "codes/rdp_code.h"

#include <algorithm>
#include <stdexcept>

namespace ppm {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

}  // namespace

RDPCode::RDPCode(std::size_t p, unsigned w)
    : ErasureCode(gf::field(w), p + 1, p - 1, 2 * (p - 1),
                  "RDP(p=" + std::to_string(p) + ")(w=" + std::to_string(w) +
                      ")"),
      p_(p) {
  if (!is_prime(p) || p < 3) {
    throw std::invalid_argument("RDP requires prime p >= 3");
  }

  // Row-parity rows: data columns plus the row-parity column.
  for (std::size_t i = 0; i < p - 1; ++i) {
    for (std::size_t j = 0; j < p; ++j) h_(i, block_id(i, j)) = 1;
  }
  // Diagonal rows: diagonal d over data + row-parity columns, plus the
  // diagonal-parity cell D_d stored at row d of the last disk.
  for (std::size_t d = 0; d < p - 1; ++d) {
    const std::size_t row = (p - 1) + d;
    for (std::size_t i = 0; i < p - 1; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        if ((i + j) % p == d) h_(row, block_id(i, j)) = 1;
      }
    }
    h_(row, block_id(d, diag_parity_disk())) = 1;
  }

  parity_.reserve(2 * (p - 1));
  for (std::size_t i = 0; i < p - 1; ++i) {
    parity_.push_back(block_id(i, row_parity_disk()));
    parity_.push_back(block_id(i, diag_parity_disk()));
  }
  std::sort(parity_.begin(), parity_.end());
}

}  // namespace ppm
