// Row-Diagonal Parity (Corbett et al., FAST'04): NetApp's RAID-6 code,
// the paper's second canonical *symmetric* parity citation [6]. Like
// EVENODD it is XOR-only; unlike EVENODD, the diagonal parity covers the
// row-parity column too (no adjuster term).
//
// Construction (prime p): the stripe is (p-1) rows × (p+1) disks — p-1
// data disks, the row-parity disk (column p-1) and the diagonal-parity
// disk (column p). Check rows over GF(2):
//   * row i:  Σ_{j<p-1} a_{i,j} ⊕ P_i = 0;
//   * diagonal d (d < p-1):  Σ_{(i,j): i+j ≡ d (mod p), j <= p-1}
//       c_{i,j} ⊕ D_d = 0 — the sum runs over data *and* row-parity
//       columns; diagonal p-1 is the "missing" diagonal and is never
//       stored.
#pragma once

#include "codes/erasure_code.h"

namespace ppm {

class RDPCode : public ErasureCode {
 public:
  /// Construct RDP over prime p >= 3; coefficients are 0/1 within GF(2^w).
  explicit RDPCode(std::size_t p, unsigned w = 8);

  std::size_t p() const { return p_; }
  std::size_t row_parity_disk() const { return p_ - 1; }
  std::size_t diag_parity_disk() const { return p_; }

 private:
  std::size_t p_;
};

}  // namespace ppm
