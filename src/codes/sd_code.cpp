#include "codes/sd_code.h"

#include <algorithm>
#include <stdexcept>

#include "codes/coeff_search.h"

namespace ppm {

namespace {

std::string sd_name(std::size_t n, std::size_t r, std::size_t m,
                    std::size_t s, unsigned w) {
  return "SD^{" + std::to_string(m) + "," + std::to_string(s) + "}_{" +
         std::to_string(n) + "," + std::to_string(r) + "}(w=" +
         std::to_string(w) + ")";
}

}  // namespace

unsigned SDCode::recommended_width(std::size_t n, std::size_t r) {
  const std::size_t blocks = n * r;
  if (blocks <= 255) return 8;      // need n*r distinct powers of alpha
  if (blocks <= 65535) return 16;
  return 32;
}

Matrix SDCode::build_parity_check(const gf::Field& f, std::size_t n,
                                  std::size_t r, std::size_t m, std::size_t s,
                                  std::span<const gf::Element> coeffs) {
  Matrix h(f, m * r + s, n * r);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t q = 0; q < m; ++q) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::size_t l = i * n + j;
        h(i * m + q, l) = f.pow(coeffs[q], l);
      }
    }
  }
  for (std::size_t q = m; q < m + s; ++q) {
    for (std::size_t l = 0; l < n * r; ++l) {
      h(m * r + q - m, l) = f.pow(coeffs[q], l);
    }
  }
  return h;
}

std::vector<std::size_t> SDCode::parity_block_ids(std::size_t n,
                                                  std::size_t r,
                                                  std::size_t m,
                                                  std::size_t s) {
  std::vector<std::size_t> ids;
  ids.reserve(m * r + s);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = n - m; j < n; ++j) ids.push_back(i * n + j);
  }
  // The s coding sectors occupy the tail cells of the data area: last row
  // first, rightmost data disk first.
  std::size_t remaining = s;
  for (std::size_t i = r; i-- > 0 && remaining > 0;) {
    for (std::size_t j = n - m; j-- > 0 && remaining > 0;) {
      ids.push_back(i * n + j);
      --remaining;
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

SDCode::SDCode(std::size_t n, std::size_t r, std::size_t m, std::size_t s,
               unsigned w, std::vector<gf::Element> coeffs)
    : ErasureCode(gf::field(w), n, r, m * r + s, sd_name(n, r, m, s, w)),
      m_(m),
      s_(s),
      coeffs_(std::move(coeffs)) {
  if (n < m + 1 || m == 0) {
    throw std::invalid_argument("SD code requires 0 < m < n");
  }
  if (s > (n - m) * r - 1) {
    throw std::invalid_argument("SD code: too many coding sectors");
  }
  // Coefficient powers a^l must be distinct for l < n*r, so the
  // multiplicative group (order 2^w - 1) must be at least that large.
  if (n * r > field().max_element()) {
    throw std::invalid_argument(
        "SD code: field too small for n*r blocks (see recommended_width)");
  }
  if (coeffs_.empty()) {
    coeffs_ = sd_coefficients(n, r, m, s, w);
  }
  if (coeffs_.size() != m + s) {
    throw std::invalid_argument("SD code: expected m+s coefficients");
  }
  h_ = build_parity_check(field(), n, r, m, s, coeffs_);
  parity_ = parity_block_ids(n, r, m, s);
}

}  // namespace ppm
