// SD codes (Plank et al., FAST'13): the paper's primary asymmetric-parity
// evaluation target.
//
// SD^{m,s}_{n,r}(w | a_0..a_{m+s-1}): a stripe of n disks × r sectors
// dedicates the last m disks to disk parity and s additional sectors to
// sector parity. The parity-check matrix H has m·r + s rows over GF(2^w):
//
//   * disk-parity rows — for stripe row i and equation q < m:
//       H[i·m+q, i·n+j] = a_q^(i·n+j)   for j < n, zero elsewhere;
//   * sector-parity rows — for equation q in [m, m+s):
//       H[m·r + q - m, l] = a_q^l        for every block l < n·r.
//
// With a_0 = 1 the per-row equations are plain XOR parity and the example of
// the paper's Fig. 2, SD^{1,1}_{4,4}(8|1,2), is reproduced exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "codes/erasure_code.h"

namespace ppm {

class SDCode : public ErasureCode {
 public:
  /// Construct SD^{m,s}_{n,r} over GF(2^w). When `coeffs` is empty the
  /// coefficients come from the cached coefficient search (coeff_search.h);
  /// otherwise exactly m+s values must be supplied (a_0 first).
  SDCode(std::size_t n, std::size_t r, std::size_t m, std::size_t s,
         unsigned w, std::vector<gf::Element> coeffs = {});

  std::size_t m() const { return m_; }
  std::size_t s() const { return s_; }
  const std::vector<gf::Element>& coefficients() const { return coeffs_; }

  /// Smallest supported symbol width whose field accommodates n·r distinct
  /// coefficient powers — the reason the paper's curves switch between
  /// GF(2^8), GF(2^16) and GF(2^32) as n·r grows (its "jagged lines").
  static unsigned recommended_width(std::size_t n, std::size_t r);

  /// Build the SD parity-check matrix without constructing a code object
  /// (shared with the coefficient search).
  static Matrix build_parity_check(const gf::Field& f, std::size_t n,
                                   std::size_t r, std::size_t m,
                                   std::size_t s,
                                   std::span<const gf::Element> coeffs);

  /// The parity block ids of an SD stripe: every block on the last m disks
  /// plus the s tail sectors of the remaining disks (last row, rightmost
  /// surviving columns first, spilling into earlier rows when s > n-m).
  static std::vector<std::size_t> parity_block_ids(std::size_t n,
                                                   std::size_t r,
                                                   std::size_t m,
                                                   std::size_t s);

 private:
  std::size_t m_;
  std::size_t s_;
  std::vector<gf::Element> coeffs_;
};

}  // namespace ppm
