// Base interface for erasure codes defined by a parity-check matrix.
//
// A code instance describes one stripe: `total_blocks()` blocks (columns of
// H), of which `parity_blocks()` are redundancy. The defining property is
// H · B = 0 over GF(2^w) for every consistent stripe B; encoding and
// decoding are both instances of solving that system for a chosen set of
// unknown blocks (paper §II-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "gf/galois_field.h"
#include "matrix/matrix.h"

namespace ppm {

/// Canonical identity of one code instance. Everything that keys cached
/// or persisted decode plans derives from this — the codec's in-memory
/// plan-cache key and the plan store's record names both use `digest`, so
/// the two can never disagree about which code a plan belongs to. The
/// digest covers the family name, the stripe geometry, the field width,
/// the parity layout and every coefficient of H: two instances share a
/// digest iff their plans are interchangeable.
struct CodeSignature {
  std::string text;      ///< canonical human-readable form
  std::uint64_t digest;  ///< FNV-1a over text, parity ids and H entries

  bool operator==(const CodeSignature&) const = default;
};

class ErasureCode {
 public:
  virtual ~ErasureCode() = default;

  ErasureCode(const ErasureCode&) = delete;
  ErasureCode& operator=(const ErasureCode&) = delete;

  const gf::Field& field() const { return *field_; }

  /// Number of blocks in a stripe (columns of H, the paper's CH).
  std::size_t total_blocks() const { return h_.cols(); }

  /// Number of parity-check rows (the paper's RH).
  std::size_t check_rows() const { return h_.rows(); }

  /// The parity-check matrix H (check_rows × total_blocks).
  const Matrix& parity_check() const { return h_; }

  /// Sorted ids of the redundancy blocks within the stripe.
  std::span<const std::size_t> parity_blocks() const { return parity_; }

  std::size_t data_block_count() const {
    return total_blocks() - parity_.size();
  }

  /// True iff block `b` is a redundancy block.
  bool is_parity(std::size_t b) const;

  /// Sorted ids of the data blocks.
  std::vector<std::size_t> data_blocks() const;

  /// Stripe geometry: number of disks/strips (the paper's n) and sectors
  /// per strip (the paper's r). Codes that operate strip-granular (LRC, RS
  /// in this library) have rows() == 1.
  std::size_t disks() const { return disks_; }
  std::size_t rows() const { return rows_; }

  /// Block id of sector `row` on disk `disk` (row-major stripe layout, as
  /// in the paper: b_{i*n+j}).
  std::size_t block_id(std::size_t row, std::size_t disk) const {
    return row * disks_ + disk;
  }

  const std::string& name() const { return name_; }

  /// The canonical signature of this instance (see CodeSignature).
  /// Deterministic across processes and platforms — safe to persist.
  /// Digesting H is O(check_rows · total_blocks), so the result is
  /// computed once and cached (H is immutable after construction); the
  /// plan store hits this on every record load and store.
  const CodeSignature& code_signature() const;

 protected:
  ErasureCode(const gf::Field& f, std::size_t disks, std::size_t rows,
              std::size_t check_rows, std::string name);

  /// Derived constructors fill these.
  Matrix h_;
  std::vector<std::size_t> parity_;

 private:
  const gf::Field* field_;
  std::size_t disks_;
  std::size_t rows_;
  std::string name_;
  mutable std::once_flag signature_once_;
  mutable CodeSignature signature_;
};

}  // namespace ppm
