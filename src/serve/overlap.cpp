#include "serve/overlap.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "analyze_hazard/hazard.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "parallel/thread_pool.h"

namespace ppm::serve {

namespace {

constexpr std::int64_t kNever = std::numeric_limits<std::int64_t>::max();

/// Per-block fetch progress inside one decode's event loop.
struct BlockFetch {
  bool needed = false;
  bool arrived = false;
  std::size_t outstanding = 0;   ///< attempts in flight
  std::size_t failures = 0;      ///< failed/corrupt completions consumed
  std::size_t hedges = 0;        ///< duplicate reads issued
  std::int64_t last_submit_ns = 0;
};

/// One in-flight attempt, keyed by its completion token.
struct Attempt {
  std::size_t block = 0;
  std::size_t scratch = 0;  ///< index into the scratch-buffer pool
  std::int64_t submit_ns = 0;
  bool hedge = false;
};

}  // namespace

OverlapResult decode_overlapped(Codec& codec, const FailureScenario& scenario,
                                io::BlockSource& source,
                                std::uint8_t* const* blocks,
                                std::size_t block_bytes,
                                const OverlapOptions& options,
                                std::span<const std::uint32_t> expected_crc,
                                AsyncBlockSource* async) {
  const Timer clock;
  OverlapResult out;
  ServeMetrics& metrics = serve_metrics();

  const auto remaining_deadline = [&]() -> std::chrono::nanoseconds {
    if (options.resilience.deadline.count() <= 0) {
      return std::chrono::nanoseconds{0};  // no deadline
    }
    const std::int64_t left =
        options.resilience.deadline.count() - clock.nanos();
    // A spent budget must stay a deadline (0 would mean "none"), so the
    // fallback sees a 1 ns budget and fails fast instead of retrying.
    return std::chrono::nanoseconds{left > 0 ? left : 1};
  };

  const auto fall_back = [&]() -> OverlapResult& {
    out.fallback = true;
    metrics.fallbacks.add();
    ResilienceOptions ropts = options.resilience;
    ropts.deadline = remaining_deadline();
    out.resilient = codec.decode_resilient(scenario, source, blocks,
                                           block_bytes, ropts, expected_crc);
    out.complete = out.resilient.complete;
    out.total_ns = clock.nanos();
    return out;
  };

  const std::shared_ptr<const CachedPlan> plan = codec.plan_for(scenario);
  if (plan == nullptr) return fall_back();
  const hazard::PlanReadiness ready = hazard::plan_readiness(*plan);

  std::unique_ptr<ThreadedAsyncSource> owned_async;
  if (async == nullptr) {
    owned_async = std::make_unique<ThreadedAsyncSource>(
        source, options.reactor_threads);
    async = owned_async.get();
  }

  const std::size_t block_count = source.block_count();
  const bool has_digests = !expected_crc.empty();
  std::vector<BlockFetch> fetch(block_count);
  std::unordered_map<std::uint64_t, Attempt> attempts;
  std::vector<std::vector<std::uint8_t>> scratch;
  std::vector<std::size_t> free_scratch;

  const auto issue = [&](std::size_t block, bool hedge) {
    std::size_t idx;
    if (free_scratch.empty()) {
      idx = scratch.size();
      scratch.emplace_back(block_bytes);
    } else {
      idx = free_scratch.back();
      free_scratch.pop_back();
    }
    const std::int64_t now = clock.nanos();
    const std::uint64_t token =
        async->submit(block, scratch[idx].data(), block_bytes);
    attempts.emplace(token, Attempt{block, idx, now, hedge});
    BlockFetch& f = fetch[block];
    ++f.outstanding;
    f.last_submit_ns = now;
    ++out.reads_issued;
    if (hedge) {
      ++f.hedges;
      ++out.hedges_launched;
      metrics.hedges_launched.add();
    }
  };

  // Completions can outlive this frame only if we leave attempts in
  // flight, so every exit path drains the reactor before the scratch
  // buffers (and `async` itself, when owned) are destroyed.
  const auto drain_async = [&]() {
    std::vector<ReadCompletion> sink;
    while (async->in_flight() > 0) {
      sink.clear();
      async->poll(sink, std::chrono::milliseconds{5});
    }
  };

  // Group dispatch state. Solves run on `pool` when the plan's hazard
  // proof allows concurrency, else inline in this thread; either way the
  // latch below orders every group before the rest solve and before
  // return (pool tasks capture this frame).
  const std::span<const SubPlan> groups = plan->groups();
  const std::size_t group_count = groups.size();
  out.groups.resize(group_count);
  std::vector<std::size_t> group_remaining(group_count, 0);
  std::vector<std::vector<std::size_t>> groups_of_block(block_count);
  for (std::size_t g = 0; g < group_count && g < ready.group_inputs.size();
       ++g) {
    const std::vector<std::size_t>& inputs = ready.group_inputs[g];
    group_remaining[g] = inputs.size();
    for (const std::size_t b : inputs) {
      if (b < block_count) groups_of_block[b].push_back(g);
    }
  }

  const bool parallel_solves =
      plan->profile().hazard_free && group_count > 1;
  ThreadPool* pool = options.pool;
  if (parallel_solves && pool == nullptr) pool = &ThreadPool::shared();

  std::mutex latch_mutex;
  std::condition_variable latch_cv;
  std::size_t groups_done = 0;
  std::size_t groups_dispatched = 0;

  const auto run_group = [&](std::size_t g) {
    const std::int64_t start = clock.nanos();
    DecodeStats stats{};
    groups[g].execute(blocks, block_bytes, &stats);
    const std::int64_t end = clock.nanos();
    {
      const std::lock_guard<std::mutex> lock(latch_mutex);
      out.groups[g].solve_start_ns = start;
      out.groups[g].solve_end_ns = end;
      out.stats.mult_xors += stats.mult_xors;
      out.stats.bytes_touched += stats.bytes_touched;
      out.stats.blocks_read += stats.blocks_read;
      ++groups_done;
      // Notify under the lock: the moment wait_groups() can observe the
      // final count it may return and this frame (latch_cv included) may
      // be torn down, so the signal must be fully delivered before the
      // mutex is released.
      latch_cv.notify_one();
    }
  };

  const auto dispatch_group = [&](std::size_t g) {
    out.groups[g].inputs_ready_ns = clock.nanos();
    ++groups_dispatched;
    if (parallel_solves && pool->try_submit([&run_group, g] { run_group(g); })) {
      return;
    }
    run_group(g);
  };

  const auto wait_groups = [&]() {
    std::unique_lock<std::mutex> lock(latch_mutex);
    latch_cv.wait(lock,
                  [&] { return groups_done == groups_dispatched; });
  };

  // Submit every survivor read up front; groups with no pending inputs
  // (possible only in degenerate plans) dispatch immediately.
  std::size_t needed = 0;
  for (const std::size_t b : ready.all_inputs) {
    if (b >= block_count) {  // malformed plan — let the ladder classify it
      drain_async();
      wait_groups();
      return fall_back();
    }
    fetch[b].needed = true;
    ++needed;
  }
  for (std::size_t g = 0; g < group_count; ++g) {
    if (group_remaining[g] == 0) dispatch_group(g);
  }
  for (const std::size_t b : ready.all_inputs) issue(b, false);

  // Hedge threshold from the latencies this decode has observed (the
  // process-global histogram would leak cross-request state into the
  // policy, so the estimator is local).
  LatencyHistogram observed;
  const auto hedge_threshold_ns = [&]() -> std::int64_t {
    std::int64_t by_quantile = kNever;
    if (observed.count() >= options.hedge.min_samples) {
      by_quantile = static_cast<std::int64_t>(
          observed.quantile_seconds(options.hedge.latency_quantile) * 1e9);
    }
    std::int64_t by_deadline = kNever;
    if (options.resilience.deadline.count() > 0) {
      by_deadline = static_cast<std::int64_t>(
          options.hedge.deadline_fraction *
          static_cast<double>(options.resilience.deadline.count()));
    }
    const std::int64_t threshold = std::min(by_quantile, by_deadline);
    if (threshold == kNever) return kNever;
    return std::max(threshold, options.hedge.min_hedge_delay.count());
  };

  const auto deadline_passed = [&]() {
    return options.resilience.deadline.count() > 0 &&
           clock.nanos() >= options.resilience.deadline.count();
  };

  // Event loop: drain completions, copy each block's first clean arrival
  // into the caller's buffer, dispatch group solves as readiness sets
  // fill, resubmit failures, hedge stragglers.
  std::size_t arrived = 0;
  bool fetch_failed = false;
  std::vector<ReadCompletion> completions;
  while (arrived < needed && !fetch_failed && !deadline_passed()) {
    completions.clear();
    async->poll(completions, options.poll_interval);
    for (const ReadCompletion& c : completions) {
      const auto it = attempts.find(c.token);
      if (it == attempts.end()) continue;  // not ours (cannot happen)
      const Attempt attempt = it->second;
      attempts.erase(it);
      BlockFetch& f = fetch[attempt.block];
      --f.outstanding;
      const std::int64_t now = clock.nanos();
      observed.record_nanos(
          static_cast<std::uint64_t>(now - attempt.submit_ns));
      if (f.arrived) {
        // A duplicate of a block that already landed — hedging's waste.
        ++out.hedges_wasted;
        metrics.hedges_wasted.add();
        free_scratch.push_back(attempt.scratch);
        continue;
      }
      bool ok = c.status == io::ReadStatus::kOk;
      if (ok && has_digests && attempt.block < expected_crc.size() &&
          crc32(scratch[attempt.scratch].data(), block_bytes) !=
              expected_crc[attempt.block]) {
        ok = false;  // a read that lied counts as a failed read
      }
      if (ok) {
        std::memcpy(blocks[attempt.block], scratch[attempt.scratch].data(),
                    block_bytes);
        f.arrived = true;
        ++arrived;
        out.last_read_complete_ns = now;
        if (attempt.hedge) {
          ++out.hedges_won;
          metrics.hedges_won.add();
        }
        for (const std::size_t g : groups_of_block[attempt.block]) {
          if (--group_remaining[g] == 0) dispatch_group(g);
        }
      } else {
        ++out.read_failures;
        ++f.failures;
        if (f.failures <= options.resilience.max_read_retries) {
          issue(attempt.block, false);  // immediate resubmit — no sleeps
        } else if (f.outstanding == 0) {
          fetch_failed = true;  // budget gone and nothing left in flight
        }
      }
      free_scratch.push_back(attempt.scratch);
    }
    if (options.hedge.enabled && arrived < needed && !fetch_failed) {
      const std::int64_t threshold = hedge_threshold_ns();
      if (threshold != kNever) {
        const std::int64_t now = clock.nanos();
        for (const std::size_t b : ready.all_inputs) {
          BlockFetch& f = fetch[b];
          if (f.arrived || f.outstanding == 0) continue;
          if (f.hedges >= options.hedge.max_hedges_per_read) continue;
          if (now - f.last_submit_ns > threshold) issue(b, true);
        }
      }
    }
  }

  if (arrived < needed) {  // fetch failure or deadline — degrade
    drain_async();
    wait_groups();
    return fall_back();
  }

  wait_groups();
  if (plan->rest().has_value()) {
    out.rest_solve_start_ns = clock.nanos();
    plan->rest()->execute(blocks, block_bytes, &out.stats);
  }
  drain_async();  // late hedge losers may still be in flight

  // VERIFY rung: recovered blocks must match their digests; a mismatch
  // is handed to the ladder, which re-reads and classifies corruption.
  if (has_digests) {
    for (const std::size_t b : scenario.faulty()) {
      if (b < expected_crc.size() &&
          crc32(blocks[b], block_bytes) != expected_crc[b]) {
        return fall_back();
      }
    }
  }

  for (const GroupTiming& g : out.groups) {
    if (g.solve_start_ns < 0) continue;
    if (out.first_solve_start_ns < 0 ||
        g.solve_start_ns < out.first_solve_start_ns) {
      out.first_solve_start_ns = g.solve_start_ns;
    }
    if (g.solve_start_ns < out.last_read_complete_ns) {
      out.overlapped = true;
      metrics.group_solves_early.add();
    }
  }
  if (out.last_read_complete_ns >= 0) {
    metrics.fetch_seconds.record_nanos(
        static_cast<std::uint64_t>(out.last_read_complete_ns));
  }
  if (out.first_solve_start_ns >= 0) {
    std::int64_t solve_end = out.first_solve_start_ns;
    for (const GroupTiming& g : out.groups) {
      solve_end = std::max(solve_end, g.solve_end_ns);
    }
    metrics.solve_seconds.record_nanos(static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, solve_end - out.first_solve_start_ns)));
  }
  out.complete = true;
  out.total_ns = clock.nanos();
  metrics.overlapped_decodes.add();
  return out;
}

}  // namespace ppm::serve
