#include "serve/uring_source.h"

#if defined(PPM_HAVE_LIBURING)

#include <fcntl.h>
#include <liburing.h>
#include <unistd.h>

#include <mutex>
#include <unordered_map>

namespace ppm::serve {

namespace {

/// One ring over one flat block file. Single-logical-consumer like every
/// AsyncBlockSource; the mutex makes submit/poll individually safe.
class UringFileSource final : public AsyncBlockSource {
 public:
  UringFileSource(int fd, std::size_t block_count, std::size_t block_bytes)
      : fd_(fd), block_count_(block_count), block_bytes_(block_bytes) {}

  bool init(unsigned queue_depth) {
    return io_uring_queue_init(queue_depth == 0 ? 1 : queue_depth, &ring_,
                               0) == 0;
  }

  ~UringFileSource() override {
    io_uring_queue_exit(&ring_);
    ::close(fd_);
  }

  std::size_t block_count() const override { return block_count_; }
  std::size_t block_bytes() const override { return block_bytes_; }

  std::uint64_t submit(std::size_t block, std::uint8_t* dst,
                       std::size_t bytes) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    struct io_uring_sqe* sqe = io_uring_get_sqe(&ring_);
    while (sqe == nullptr) {  // SQ full: push what's queued, then retry
      io_uring_submit(&ring_);
      sqe = io_uring_get_sqe(&ring_);
    }
    const std::uint64_t token = next_token_++;
    io_uring_prep_read(sqe, fd_, dst, static_cast<unsigned>(bytes),
                       static_cast<std::uint64_t>(block) * block_bytes_);
    io_uring_sqe_set_data64(sqe, token);
    tokens_to_blocks_[token] = block;
    expected_bytes_[token] = bytes;
    ++in_flight_;
    io_uring_submit(&ring_);
    return token;
  }

  std::size_t poll(std::vector<ReadCompletion>& out,
                   std::chrono::nanoseconds wait) override {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (in_flight_ == 0) return 0;
    struct io_uring_cqe* cqe = nullptr;
    if (io_uring_peek_cqe(&ring_, &cqe) != 0 && wait.count() > 0) {
      struct __kernel_timespec ts;
      ts.tv_sec = wait.count() / 1'000'000'000;
      ts.tv_nsec = wait.count() % 1'000'000'000;
      io_uring_wait_cqe_timeout(&ring_, &cqe, &ts);
    }
    std::size_t drained = 0;
    while (io_uring_peek_cqe(&ring_, &cqe) == 0) {
      const std::uint64_t token = io_uring_cqe_get_data64(cqe);
      ReadCompletion completion;
      completion.token = token;
      completion.block = tokens_to_blocks_[token];
      const bool full_read =
          cqe->res >= 0 &&
          static_cast<std::size_t>(cqe->res) == expected_bytes_[token];
      completion.status =
          full_read ? io::ReadStatus::kOk : io::ReadStatus::kFailed;
      tokens_to_blocks_.erase(token);
      expected_bytes_.erase(token);
      out.push_back(completion);
      io_uring_cqe_seen(&ring_, cqe);
      --in_flight_;
      ++drained;
    }
    return drained;
  }

  std::size_t in_flight() const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return in_flight_;
  }

 private:
  int fd_;
  std::size_t block_count_;
  std::size_t block_bytes_;
  struct io_uring ring_ {};
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::size_t> tokens_to_blocks_;
  std::unordered_map<std::uint64_t, std::size_t> expected_bytes_;
  std::uint64_t next_token_ = 1;
  std::size_t in_flight_ = 0;
};

}  // namespace

bool uring_available() { return true; }

std::unique_ptr<AsyncBlockSource> make_uring_source(const std::string& path,
                                                    std::size_t block_count,
                                                    std::size_t block_bytes,
                                                    unsigned queue_depth) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return nullptr;
  auto source =
      std::make_unique<UringFileSource>(fd, block_count, block_bytes);
  if (!source->init(queue_depth)) return nullptr;
  return source;
}

}  // namespace ppm::serve

#else  // !PPM_HAVE_LIBURING — stub so callers need no #ifdef

namespace ppm::serve {

bool uring_available() { return false; }

std::unique_ptr<AsyncBlockSource> make_uring_source(const std::string&,
                                                    std::size_t, std::size_t,
                                                    unsigned) {
  return nullptr;
}

}  // namespace ppm::serve

#endif  // PPM_HAVE_LIBURING
