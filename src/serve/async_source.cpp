#include "serve/async_source.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/timer.h"

namespace ppm::serve {

ThreadedAsyncSource::ThreadedAsyncSource(io::BlockSource& inner,
                                         unsigned reactor_threads)
    : inner_(&inner) {
  if (reactor_threads == 0) reactor_threads = 1;
  reactors_.reserve(reactor_threads);
  for (unsigned i = 0; i < reactor_threads; ++i) {
    reactors_.emplace_back([this] { reactor_loop(); });
  }
}

ThreadedAsyncSource::~ThreadedAsyncSource() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  // jthread members join on destruction; pending ops past stop_ are
  // abandoned (the owner is gone, nobody could poll their completions).
}

std::uint64_t ThreadedAsyncSource::submit(std::size_t block,
                                          std::uint8_t* dst,
                                          std::size_t bytes) {
  std::uint64_t token;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    token = next_token_++;
    pending_.push_back(Op{token, block, dst, bytes});
    ++in_flight_;
  }
  work_cv_.notify_one();
  serve_metrics().reads_submitted.add();
  return token;
}

std::size_t ThreadedAsyncSource::poll(std::vector<ReadCompletion>& out,
                                      std::chrono::nanoseconds wait) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (done_.empty() && wait.count() > 0 && in_flight_ > 0) {
    done_cv_.wait_for(lock, wait, [this] { return !done_.empty(); });
  }
  const std::size_t n = done_.size();
  if (n != 0) {
    out.insert(out.end(), done_.begin(), done_.end());
    done_.clear();
    in_flight_ -= n;
  }
  return n;
}

std::size_t ThreadedAsyncSource::in_flight() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

void ThreadedAsyncSource::reactor_loop() {
  for (;;) {
    Op op;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (stop_) return;
      op = pending_.front();
      pending_.pop_front();
    }
    const Timer clock;
    const io::ReadStatus status = inner_->read(op.block, op.dst, op.bytes);
    serve_metrics().read_seconds.record_nanos(
        static_cast<std::uint64_t>(clock.nanos()));
    if (status != io::ReadStatus::kOk) serve_metrics().reads_failed.add();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      done_.push_back(ReadCompletion{op.token, op.block, status});
    }
    done_cv_.notify_one();
  }
}

}  // namespace ppm::serve
