// Decode-serving front end: bounded queue, admission control, plan-shared
// batching (ppm::serve).
//
// DecodeServer is the request-facing layer over decode_overlapped. Its
// contract (docs/SERVING.md):
//
//  * Admission — submit() enqueues when the queue is below
//    ServerOptions::queue_depth and returns a future; at or above the
//    watermark it rejects immediately (std::nullopt) so callers get
//    backpressure instead of unbounded latency. Rejections are counted
//    (serve.rejected) — a load balancer's signal to shed or retry
//    elsewhere.
//  * Batching — a dispatcher popping a request also claims every queued
//    request with the same failure scenario (same plan key). The plan is
//    fetched/verified once through the codec's cache and each member is
//    then one region pass over its own stripe — the decode_batch idea,
//    applied across independent requests.
//  * Completion — every admitted request's future is eventually
//    fulfilled, including on shutdown (the queue drains before the
//    dispatchers exit). Futures carry the full OverlapResult, fallback
//    ladder report included.
//
// Buffers, the block source and the expected-CRC span named in a request
// are caller-owned and must stay valid until its future resolves.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "decode/scenario.h"
#include "serve/overlap.h"

namespace ppm::serve {

struct ServerOptions {
  /// Admission watermark: submit() rejects once this many requests wait.
  std::size_t queue_depth = 64;
  /// Dispatcher threads (each runs one batch at a time, end to end).
  unsigned dispatchers = 2;
  /// Claim same-scenario requests together (one plan fetch, N passes).
  bool batch_by_plan = true;
  /// Per-decode fetch/hedge/solve configuration.
  OverlapOptions overlap;
};

/// One decode request. The scenario is copied; everything referenced by
/// pointer/span must outlive the returned future's completion.
struct ServeRequest {
  FailureScenario scenario;
  io::BlockSource* source = nullptr;
  std::uint8_t* const* blocks = nullptr;
  std::size_t block_bytes = 0;
  std::span<const std::uint32_t> expected_crc;
};

class DecodeServer {
 public:
  DecodeServer(Codec& codec, ServerOptions options = {});
  ~DecodeServer();  ///< shutdown(): drains the queue, joins dispatchers

  DecodeServer(const DecodeServer&) = delete;
  DecodeServer& operator=(const DecodeServer&) = delete;

  /// Admit a request (future resolves with its OverlapResult) or reject
  /// with std::nullopt when the queue is at the watermark or the server
  /// is shutting down.
  std::optional<std::future<OverlapResult>> submit(ServeRequest request);

  /// Stop admitting, drain every queued request, join the dispatchers.
  /// Idempotent.
  void shutdown();

  /// Requests currently queued (excludes the one a dispatcher is on).
  std::size_t depth() const;

 private:
  struct Pending {
    ServeRequest request;
    std::promise<OverlapResult> promise;
    std::int64_t enqueue_ns = 0;
  };

  void dispatcher_loop();

  Codec* codec_;
  ServerOptions options_;
  Timer clock_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  std::vector<std::jthread> dispatchers_;  ///< last member: joins first
};

}  // namespace ppm::serve
