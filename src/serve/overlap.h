// Fetch/compute-overlapped decode with hedged reads (ppm::serve).
//
// PPM's partition proves the p independent O1 groups mutually
// race-free, and hazard::plan_readiness derives exactly which source
// blocks each group needs. decode_overlapped() exploits both: every
// survivor read is submitted concurrently through an AsyncBlockSource,
// and each group's solve is dispatched the moment the last of its inputs
// lands — long before the stripe's slowest read completes. The rest-rows
// solve (which may read group-recovered blocks) stays gated on every
// group finishing and on full survivor arrival, matching the plan's
// hazard-DAG edges.
//
// Straggler mitigation is hedging, not just deadlines: once an
// outstanding read's age exceeds the observed read-latency quantile (or
// a fraction of the decode deadline, whichever is sooner), a duplicate
// read is issued into its own scratch buffer. First clean completion
// wins and is copied into the caller's block exactly once; later
// completions of the same block are discarded (counted as wasted).
// Per-attempt scratch buffers are what make the race benign — no two
// in-flight attempts ever share a destination.
//
// The fast path never sleeps and never retries with backoff; a read that
// fails (or fails its CRC) is resubmitted immediately up to the
// resilience retry budget. Anything the fast path cannot finish —
// unplannable scenario, exhausted retries, deadline, corrupt recovery —
// falls back to the serial Codec::decode_resilient ladder (RETRY →
// ESCALATE → DEGRADE → VERIFY) on the same source with the remaining
// deadline, so the overlap layer adds latency upside without weakening
// PR 5's recovery semantics.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "codec/codec.h"
#include "codec/resilient.h"
#include "serve/async_source.h"

namespace ppm {
class ThreadPool;
}

namespace ppm::serve {

/// When to duplicate an outstanding read. The hedge threshold is
/// max(min_hedge_delay, min(latency-quantile estimate, deadline_fraction
/// × deadline)); with no samples yet and no deadline there is no basis
/// and no hedge fires.
struct HedgePolicy {
  bool enabled = true;
  /// Hedge reads older than this quantile of observed read latency.
  double latency_quantile = 0.95;
  /// Completed reads needed before the quantile estimate is trusted.
  std::size_t min_samples = 4;
  /// Hedge reads older than this fraction of the decode deadline.
  double deadline_fraction = 0.25;
  /// Floor under both signals — never hedge faster than this.
  std::chrono::nanoseconds min_hedge_delay{50'000};
  /// Duplicate-read cap per block per decode.
  std::size_t max_hedges_per_read = 2;
};

struct OverlapOptions {
  HedgePolicy hedge;
  /// Retry budget, deadline and (for the fallback ladder) backoff.
  ResilienceOptions resilience;
  /// Reactor threads when decode_overlapped builds its own
  /// ThreadedAsyncSource (a caller-supplied AsyncBlockSource wins).
  unsigned reactor_threads = 4;
  /// Solver pool for the group fan-out; nullptr = ThreadPool::shared().
  /// Used only when the plan's profile is hazard_free with >= 2 groups —
  /// otherwise group solves run in the event-loop thread (still
  /// overlapping fetch, just not each other).
  ThreadPool* pool = nullptr;
  /// Event-loop poll granularity (also bounds hedge-check latency).
  std::chrono::nanoseconds poll_interval{200'000};
};

/// Stage timestamps of one group's solve, in nanoseconds since the
/// decode started. -1 = never reached.
struct GroupTiming {
  std::int64_t inputs_ready_ns = -1;
  std::int64_t solve_start_ns = -1;
  std::int64_t solve_end_ns = -1;
};

struct OverlapResult {
  bool complete = false;  ///< all faulty blocks recovered (and CRC-clean)
  /// Fast path abandoned; `resilient` holds the ladder's full report.
  bool fallback = false;
  ResilientResult resilient;

  /// True when at least one group solve started before the last needed
  /// survivor read completed — the fetch/compute overlap actually
  /// happened (meaningless on the fallback path).
  bool overlapped = false;

  std::size_t hedges_launched = 0;
  std::size_t hedges_won = 0;     ///< hedge completions that arrived first
  std::size_t hedges_wasted = 0;  ///< duplicate completions discarded
  std::size_t reads_issued = 0;   ///< attempts submitted (primaries+hedges)
  std::size_t read_failures = 0;  ///< attempts failed or CRC-mismatched

  std::int64_t first_solve_start_ns = -1;
  std::int64_t last_read_complete_ns = -1;  ///< last needed input landed
  std::int64_t rest_solve_start_ns = -1;
  /// Wall time of the whole call. Includes the final reactor drain:
  /// abandoned attempts (hedge losers, reads the decode no longer needs)
  /// write into buffers this frame owns, so the thread-backed backend
  /// must let them finish before returning. A hedge win therefore shows
  /// up as an early last_read_complete_ns / rest_solve_start_ns — the
  /// solves and verification overlap the straggler's tail — while
  /// total_ns stays pinned to the slowest issued read. An io_uring
  /// backend with read cancellation could cut that tail too.
  std::int64_t total_ns = 0;
  std::vector<GroupTiming> groups;

  DecodeStats stats;
};

/// Decode one stripe with concurrent, hedged survivor fetch and
/// readiness-overlapped group solves. `source` is the fallback ladder's
/// (and, when `async` is null, the reactor's) read path; `async`, when
/// given, must wrap the same underlying data. `blocks`/`block_bytes` and
/// `expected_crc` follow Codec::decode_resilient's contract.
OverlapResult decode_overlapped(Codec& codec, const FailureScenario& scenario,
                                io::BlockSource& source,
                                std::uint8_t* const* blocks,
                                std::size_t block_bytes,
                                const OverlapOptions& options = {},
                                std::span<const std::uint32_t> expected_crc = {},
                                AsyncBlockSource* async = nullptr);

}  // namespace ppm::serve
