#include "serve/server.h"

#include <utility>

#include "common/metrics.h"

namespace ppm::serve {

DecodeServer::DecodeServer(Codec& codec, ServerOptions options)
    : codec_(&codec), options_(std::move(options)) {
  if (options_.queue_depth == 0) options_.queue_depth = 1;
  if (options_.dispatchers == 0) options_.dispatchers = 1;
  dispatchers_.reserve(options_.dispatchers);
  for (unsigned i = 0; i < options_.dispatchers; ++i) {
    dispatchers_.emplace_back([this] { dispatcher_loop(); });
  }
}

DecodeServer::~DecodeServer() { shutdown(); }

std::optional<std::future<OverlapResult>> DecodeServer::submit(
    ServeRequest request) {
  ServeMetrics& metrics = serve_metrics();
  metrics.requests.add();
  Pending pending;
  pending.request = std::move(request);
  pending.enqueue_ns = clock_.nanos();
  std::future<OverlapResult> future = pending.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= options_.queue_depth) {
      metrics.rejected.add();
      return std::nullopt;
    }
    queue_.push_back(std::move(pending));
  }
  metrics.accepted.add();
  cv_.notify_one();
  return future;
}

void DecodeServer::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : dispatchers_) {
    if (d.joinable()) d.join();
  }
}

std::size_t DecodeServer::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void DecodeServer::dispatcher_loop() {
  ServeMetrics& metrics = serve_metrics();
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (options_.batch_by_plan) {
        // Claim every queued request sharing the leader's plan key. One
        // plan fetch below serves them all; order among the claimed
        // requests is preserved, everyone else keeps their place. Copy
        // the key: push_back below may reallocate `batch` and a
        // reference into it would dangle mid-claim.
        const FailureScenario key = batch.front().request.scenario;
        for (auto it = queue_.begin(); it != queue_.end();) {
          if (it->request.scenario == key) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    metrics.batches.add();
    metrics.batched_requests.add(batch.size());
    // One plan fetch/verify for the whole batch; each member's
    // decode_overlapped then hits the cache.
    codec_->plan_for(batch.front().request.scenario);
    for (Pending& p : batch) {
      metrics.queue_seconds.record_nanos(
          static_cast<std::uint64_t>(clock_.nanos() - p.enqueue_ns));
      const ServeRequest& r = p.request;
      OverlapResult result;
      if (r.source == nullptr || r.blocks == nullptr) {
        result.complete = false;  // malformed request
      } else {
        result = decode_overlapped(*codec_, r.scenario, *r.source, r.blocks,
                                   r.block_bytes, options_.overlap,
                                   r.expected_crc);
      }
      metrics.request_seconds.record_nanos(
          static_cast<std::uint64_t>(clock_.nanos() - p.enqueue_ns));
      p.promise.set_value(std::move(result));
    }
  }
}

}  // namespace ppm::serve
