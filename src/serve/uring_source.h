// io_uring-backed AsyncBlockSource (ppm::serve), gated on liburing.
//
// The thread-backed reactor (async_source.h) works everywhere but pays
// one OS thread per concurrent read. On kernels with io_uring the same
// seam maps directly onto hardware-queued file reads: submit() preps an
// SQE at offset block × block_bytes, poll() drains the CQ. The deepsec
// isal-ec exemplar drives recovery exactly this way over libaio; io_uring
// is its modern successor.
//
// Build gating: the backend compiles only when CMake was configured with
// -DPPM_WITH_IOURING=ON *and* <liburing.h> was found (the ppm library
// then defines PPM_HAVE_LIBURING). Otherwise this header still compiles
// and the factory degrades: uring_available() is false and
// make_uring_source() returns nullptr, so callers can fall back to the
// threaded reactor without an #ifdef of their own.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "serve/async_source.h"

namespace ppm::serve {

/// True when this build carries the io_uring backend.
bool uring_available();

/// Open `path` (a flat file of `block_count` consecutive `block_bytes`
/// regions) and serve the AsyncBlockSource seam over io_uring with the
/// given submission-queue depth. Returns nullptr when the backend is not
/// compiled in or the file cannot be opened / the ring cannot be set up.
std::unique_ptr<AsyncBlockSource> make_uring_source(
    const std::string& path, std::size_t block_count, std::size_t block_bytes,
    unsigned queue_depth = 64);

}  // namespace ppm::serve
