// Completion-driven async block reads for the serving front end
// (ppm::serve).
//
// The resilient pipeline (codec/resilient.h) pulls survivors one blocking
// read at a time, so a single straggler stalls the whole decode for its
// full delay. AsyncBlockSource is the submit/poll seam that breaks that
// serialization: callers queue every survivor read at once and drain
// completions as they land, which is what lets the overlap scheduler
// (overlap.h) start each independent O1 group's solve the moment its
// inputs arrive and lets the hedging policy duplicate reads that are
// taking too long.
//
// Two backends:
//  * ThreadedAsyncSource (here) — a thread-backed reactor multiplexing
//    reads over any concurrency-tolerant io::BlockSource. Works
//    everywhere, no kernel support needed; this is the default.
//  * UringFileSource (uring_source.h) — io_uring-backed file reads,
//    compiled only when <liburing.h> is present (PPM_WITH_IOURING).
//
// Concurrency contract: submit() and poll() are individually thread-safe,
// but completions are delivered to whichever caller polls — a source is
// designed for ONE logical consumer (the overlap event loop) at a time.
// Destination buffers are caller-owned and must stay valid until the
// attempt's completion has been polled; distinct in-flight attempts must
// use distinct buffers (the hedging layer gives every attempt its own
// scratch buffer for exactly this reason).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "io/block_source.h"

namespace ppm::serve {

/// One finished read attempt, identified by the token submit() returned.
struct ReadCompletion {
  std::uint64_t token = 0;
  std::size_t block = 0;
  io::ReadStatus status = io::ReadStatus::kFailed;
};

/// The async read seam: queue reads, drain completions.
class AsyncBlockSource {
 public:
  AsyncBlockSource() = default;
  AsyncBlockSource(const AsyncBlockSource&) = delete;
  AsyncBlockSource& operator=(const AsyncBlockSource&) = delete;
  virtual ~AsyncBlockSource() = default;

  virtual std::size_t block_count() const = 0;
  virtual std::size_t block_bytes() const = 0;

  /// Queue a read of the first `bytes` bytes of `block` into `dst`.
  /// Returns the token its completion will carry. `dst` must remain
  /// valid and untouched by the caller until that completion is polled.
  virtual std::uint64_t submit(std::size_t block, std::uint8_t* dst,
                               std::size_t bytes) = 0;

  /// Append finished reads to `out`; returns how many were appended.
  /// Blocks up to `wait` when nothing is ready yet and reads are in
  /// flight; a zero wait is a pure poll. Returns 0 immediately when
  /// nothing is in flight.
  virtual std::size_t poll(std::vector<ReadCompletion>& out,
                           std::chrono::nanoseconds wait) = 0;

  /// Submitted attempts whose completion has not been polled yet.
  virtual std::size_t in_flight() const = 0;
};

/// Default backend: `reactor_threads` workers multiplex submitted reads
/// over `inner` via plain blocking read() calls. `inner` must tolerate
/// concurrent read() with distinct destination buffers (see
/// io/block_source.h) and must outlive this source. Up to
/// `reactor_threads` reads make wall-clock progress concurrently — a
/// straggler occupies one worker for its delay while the rest keep
/// draining the queue.
class ThreadedAsyncSource : public AsyncBlockSource {
 public:
  explicit ThreadedAsyncSource(io::BlockSource& inner,
                               unsigned reactor_threads = 4);
  ~ThreadedAsyncSource() override;

  std::size_t block_count() const override { return inner_->block_count(); }
  std::size_t block_bytes() const override { return inner_->block_bytes(); }

  std::uint64_t submit(std::size_t block, std::uint8_t* dst,
                       std::size_t bytes) override;
  std::size_t poll(std::vector<ReadCompletion>& out,
                   std::chrono::nanoseconds wait) override;
  std::size_t in_flight() const override;

 private:
  struct Op {
    std::uint64_t token = 0;
    std::size_t block = 0;
    std::uint8_t* dst = nullptr;
    std::size_t bytes = 0;
  };

  void reactor_loop();

  io::BlockSource* inner_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  ///< reactors wait for pending ops
  std::condition_variable done_cv_;  ///< pollers wait for completions
  std::deque<Op> pending_;
  std::vector<ReadCompletion> done_;
  std::uint64_t next_token_ = 1;
  std::size_t in_flight_ = 0;  ///< submitted, completion not yet polled
  bool stop_ = false;
  std::vector<std::jthread> reactors_;  ///< last member: joins first
};

}  // namespace ppm::serve
