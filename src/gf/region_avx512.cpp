// AVX-512BW region kernels: the split-table algorithm at 512 bits.
// _mm512_shuffle_epi8 shuffles within each 128-bit lane, so the 16-entry
// tables broadcast to all four lanes and the SSSE3 index math carries over.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "gf/region_kernels.h"

namespace ppm::gf::internal {

namespace {

inline __m512i byte_table512(const Element* split, unsigned pos,
                             unsigned byte_index) {
  alignas(16) std::uint8_t t[16];
  for (unsigned v = 0; v < 16; ++v) {
    t[v] = static_cast<std::uint8_t>(split[16 * pos + v] >> (8 * byte_index));
  }
  const __m128i lane = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
  return _mm512_broadcast_i32x4(lane);
}

inline __m512i loadu(const std::uint8_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void storeu(std::uint8_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

template <bool Xor>
inline void emit(std::uint8_t* dst, __m512i product) {
  if constexpr (Xor) {
    storeu(dst, _mm512_xor_si512(product, loadu(dst)));
  } else {
    storeu(dst, product);
  }
}

template <bool Xor>
void run_w8(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
            const Element* split) {
  const __m512i tlo = byte_table512(split, 0, 0);
  const __m512i thi = byte_table512(split, 1, 0);
  const __m512i mask = _mm512_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    const __m512i v = loadu(src + i);
    const __m512i lo = _mm512_and_si512(v, mask);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi64(v, 4), mask);
    const __m512i p = _mm512_xor_si512(_mm512_shuffle_epi8(tlo, lo),
                                       _mm512_shuffle_epi8(thi, hi));
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_avx2_w8(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_avx2_w8(dst + i, src + i, bytes - i, split);
    }
  }
}

template <bool Xor>
void run_w16(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  __m512i lo_tab[4];
  __m512i hi_tab[4];
  for (unsigned k = 0; k < 4; ++k) {
    lo_tab[k] = byte_table512(split, k, 0);
    hi_tab[k] = byte_table512(split, k, 1);
  }
  const __m512i nib = _mm512_set1_epi8(0x0F);
  const __m512i even = _mm512_set1_epi16(0x00FF);
  std::size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    const __m512i v = loadu(src + i);
    const __m512i lo = _mm512_and_si512(v, nib);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi64(v, 4), nib);
    const __m512i n0 = _mm512_and_si512(lo, even);
    const __m512i n1 = _mm512_and_si512(hi, even);
    const __m512i n2 = _mm512_srli_epi16(lo, 8);
    const __m512i n3 = _mm512_srli_epi16(hi, 8);
    __m512i pl = _mm512_shuffle_epi8(lo_tab[0], n0);
    pl = _mm512_xor_si512(pl, _mm512_shuffle_epi8(lo_tab[1], n1));
    pl = _mm512_xor_si512(pl, _mm512_shuffle_epi8(lo_tab[2], n2));
    pl = _mm512_xor_si512(pl, _mm512_shuffle_epi8(lo_tab[3], n3));
    __m512i ph = _mm512_shuffle_epi8(hi_tab[0], n0);
    ph = _mm512_xor_si512(ph, _mm512_shuffle_epi8(hi_tab[1], n1));
    ph = _mm512_xor_si512(ph, _mm512_shuffle_epi8(hi_tab[2], n2));
    ph = _mm512_xor_si512(ph, _mm512_shuffle_epi8(hi_tab[3], n3));
    const __m512i p = _mm512_xor_si512(pl, _mm512_slli_epi16(ph, 8));
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_avx2_w16(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_avx2_w16(dst + i, src + i, bytes - i, split);
    }
  }
}

template <bool Xor>
void run_w32(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  __m512i tab[8][4];
  for (unsigned k = 0; k < 8; ++k) {
    for (unsigned b = 0; b < 4; ++b) tab[k][b] = byte_table512(split, k, b);
  }
  const __m512i nib = _mm512_set1_epi8(0x0F);
  const __m512i low32 = _mm512_set1_epi32(0x0F);
  std::size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    const __m512i v = loadu(src + i);
    const __m512i lo = _mm512_and_si512(v, nib);
    const __m512i hi = _mm512_and_si512(_mm512_srli_epi64(v, 4), nib);
    __m512i idx[8];
    for (unsigned k = 0; k < 8; ++k) {
      const __m512i srcv = (k & 1) ? hi : lo;
      idx[k] = _mm512_and_si512(_mm512_srli_epi32(srcv, 8 * (k / 2)), low32);
    }
    __m512i p = _mm512_setzero_si512();
    for (unsigned b = 0; b < 4; ++b) {
      __m512i pb = _mm512_shuffle_epi8(tab[0][b], idx[0]);
      for (unsigned k = 1; k < 8; ++k) {
        pb = _mm512_xor_si512(pb, _mm512_shuffle_epi8(tab[k][b], idx[k]));
      }
      p = _mm512_xor_si512(p, _mm512_slli_epi32(pb, 8 * b));
    }
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_avx2_w32(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_avx2_w32(dst + i, src + i, bytes - i, split);
    }
  }
}

}  // namespace

void mult_xor_avx512_w8(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w8<true>(dst, src, bytes, split);
}
void mult_xor_avx512_w16(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w16<true>(dst, src, bytes, split);
}
void mult_xor_avx512_w32(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w32<true>(dst, src, bytes, split);
}
void mult_over_avx512_w8(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w8<false>(dst, src, bytes, split);
}
void mult_over_avx512_w16(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split) {
  run_w16<false>(dst, src, bytes, split);
}
void mult_over_avx512_w32(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split) {
  run_w32<false>(dst, src, bytes, split);
}

void xor_avx512(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t bytes) {
  std::size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    storeu(dst + i, _mm512_xor_si512(loadu(dst + i), loadu(src + i)));
  }
  if (i < bytes) xor_avx2(dst + i, src + i, bytes - i);
}

}  // namespace ppm::gf::internal

#endif  // x86
