// AVX2 region kernels: the SSSE3 split-table algorithm widened to 256 bits.
// vpshufb shuffles within each 128-bit lane, so the 16-entry tables are
// simply broadcast to both lanes and the SSSE3 index math carries over
// unchanged.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <cstring>

#include "gf/region_kernels.h"

namespace ppm::gf::internal {

namespace {

inline __m256i byte_table256(const Element* split, unsigned pos,
                             unsigned byte_index) {
  alignas(16) std::uint8_t t[16];
  for (unsigned v = 0; v < 16; ++v) {
    t[v] = static_cast<std::uint8_t>(split[16 * pos + v] >> (8 * byte_index));
  }
  const __m128i lane = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
  return _mm256_broadcastsi128_si256(lane);
}

inline __m256i loadu(const std::uint8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void storeu(std::uint8_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

template <bool Xor>
inline void emit(std::uint8_t* dst, __m256i product) {
  if constexpr (Xor) {
    storeu(dst, _mm256_xor_si256(product, loadu(dst)));
  } else {
    storeu(dst, product);
  }
}

template <bool Xor>
void run_w8(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
            const Element* split) {
  const __m256i tlo = byte_table256(split, 0, 0);
  const __m256i thi = byte_table256(split, 1, 0);
  const __m256i mask = _mm256_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i v = loadu(src + i);
    const __m256i lo = _mm256_and_si256(v, mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
    const __m256i p = _mm256_xor_si256(_mm256_shuffle_epi8(tlo, lo),
                                       _mm256_shuffle_epi8(thi, hi));
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_ssse3_w8(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_ssse3_w8(dst + i, src + i, bytes - i, split);
    }
  }
}

template <bool Xor>
void run_w16(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  __m256i lo_tab[4];
  __m256i hi_tab[4];
  for (unsigned k = 0; k < 4; ++k) {
    lo_tab[k] = byte_table256(split, k, 0);
    hi_tab[k] = byte_table256(split, k, 1);
  }
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i even = _mm256_set1_epi16(0x00FF);
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i v = loadu(src + i);
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), nib);
    const __m256i n0 = _mm256_and_si256(lo, even);
    const __m256i n1 = _mm256_and_si256(hi, even);
    const __m256i n2 = _mm256_srli_epi16(lo, 8);
    const __m256i n3 = _mm256_srli_epi16(hi, 8);
    __m256i pl = _mm256_shuffle_epi8(lo_tab[0], n0);
    pl = _mm256_xor_si256(pl, _mm256_shuffle_epi8(lo_tab[1], n1));
    pl = _mm256_xor_si256(pl, _mm256_shuffle_epi8(lo_tab[2], n2));
    pl = _mm256_xor_si256(pl, _mm256_shuffle_epi8(lo_tab[3], n3));
    __m256i ph = _mm256_shuffle_epi8(hi_tab[0], n0);
    ph = _mm256_xor_si256(ph, _mm256_shuffle_epi8(hi_tab[1], n1));
    ph = _mm256_xor_si256(ph, _mm256_shuffle_epi8(hi_tab[2], n2));
    ph = _mm256_xor_si256(ph, _mm256_shuffle_epi8(hi_tab[3], n3));
    const __m256i p = _mm256_xor_si256(pl, _mm256_slli_epi16(ph, 8));
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_ssse3_w16(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_ssse3_w16(dst + i, src + i, bytes - i, split);
    }
  }
}

template <bool Xor>
void run_w32(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  __m256i tab[8][4];
  for (unsigned k = 0; k < 8; ++k) {
    for (unsigned b = 0; b < 4; ++b) tab[k][b] = byte_table256(split, k, b);
  }
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i low32 = _mm256_set1_epi32(0x0F);
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i v = loadu(src + i);
    const __m256i lo = _mm256_and_si256(v, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), nib);
    __m256i idx[8];
    for (unsigned k = 0; k < 8; ++k) {
      const __m256i srcv = (k & 1) ? hi : lo;
      idx[k] = _mm256_and_si256(
          _mm256_srli_epi32(srcv, static_cast<int>(8 * (k / 2))), low32);
    }
    __m256i p = _mm256_setzero_si256();
    for (unsigned b = 0; b < 4; ++b) {
      __m256i pb = _mm256_shuffle_epi8(tab[0][b], idx[0]);
      for (unsigned k = 1; k < 8; ++k) {
        pb = _mm256_xor_si256(pb, _mm256_shuffle_epi8(tab[k][b], idx[k]));
      }
      p = _mm256_xor_si256(p,
                           _mm256_slli_epi32(pb, static_cast<int>(8 * b)));
    }
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_ssse3_w32(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_ssse3_w32(dst + i, src + i, bytes - i, split);
    }
  }
}

}  // namespace

void mult_xor_avx2_w8(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t bytes, const Element* split) {
  run_w8<true>(dst, src, bytes, split);
}
void mult_xor_avx2_w16(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split) {
  run_w16<true>(dst, src, bytes, split);
}
void mult_xor_avx2_w32(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split) {
  run_w32<true>(dst, src, bytes, split);
}
void mult_over_avx2_w8(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split) {
  run_w8<false>(dst, src, bytes, split);
}
void mult_over_avx2_w16(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w16<false>(dst, src, bytes, split);
}
void mult_over_avx2_w32(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w32<false>(dst, src, bytes, split);
}

void xor_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes) {
  std::size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    storeu(dst + i, _mm256_xor_si256(loadu(dst + i), loadu(src + i)));
  }
  if (i < bytes) xor_sse2(dst + i, src + i, bytes - i);
}

}  // namespace ppm::gf::internal

#endif  // x86
