// Portable scalar region kernels: per-symbol nibble split-table lookups.
// These are the reference implementations every SIMD kernel is tested
// against, and the fallback on non-x86 hosts.
#include <cstring>

#include "gf/region_kernels.h"

namespace ppm::gf::internal {

namespace {

// Shared body for the w=8 kernels; Xor selects accumulate vs overwrite.
template <bool Xor>
void run_w8(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
            const Element* split) {
  const Element* lo = split;       // c * v
  const Element* hi = split + 16;  // c * (v << 4)
  for (std::size_t i = 0; i < bytes; ++i) {
    const auto p =
        static_cast<std::uint8_t>(lo[src[i] & 0xF] ^ hi[src[i] >> 4]);
    if constexpr (Xor) {
      dst[i] ^= p;
    } else {
      dst[i] = p;
    }
  }
}

template <bool Xor>
void run_w16(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  for (std::size_t i = 0; i + 2 <= bytes; i += 2) {
    std::uint16_t s;
    std::memcpy(&s, src + i, 2);
    const auto p = static_cast<std::uint16_t>(
        split[s & 0xF] ^ split[16 + ((s >> 4) & 0xF)] ^
        split[32 + ((s >> 8) & 0xF)] ^ split[48 + (s >> 12)]);
    if constexpr (Xor) {
      std::uint16_t d;
      std::memcpy(&d, dst + i, 2);
      d ^= p;
      std::memcpy(dst + i, &d, 2);
    } else {
      std::memcpy(dst + i, &p, 2);
    }
  }
}

template <bool Xor>
void run_w32(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  for (std::size_t i = 0; i + 4 <= bytes; i += 4) {
    std::uint32_t s;
    std::memcpy(&s, src + i, 4);
    std::uint32_t p = 0;
    for (unsigned k = 0; k < 8; ++k) {
      p ^= split[16 * k + ((s >> (4 * k)) & 0xF)];
    }
    if constexpr (Xor) {
      std::uint32_t d;
      std::memcpy(&d, dst + i, 4);
      d ^= p;
      std::memcpy(dst + i, &d, 4);
    } else {
      std::memcpy(dst + i, &p, 4);
    }
  }
}

}  // namespace

void mult_xor_scalar_w8(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w8<true>(dst, src, bytes, split);
}
void mult_xor_scalar_w16(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w16<true>(dst, src, bytes, split);
}
void mult_xor_scalar_w32(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w32<true>(dst, src, bytes, split);
}
void mult_over_scalar_w8(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w8<false>(dst, src, bytes, split);
}
void mult_over_scalar_w16(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split) {
  run_w16<false>(dst, src, bytes, split);
}
void mult_over_scalar_w32(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split) {
  run_w32<false>(dst, src, bytes, split);
}

void xor_scalar(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t bytes) {
  std::size_t i = 0;
  for (; i + 8 <= bytes; i += 8) {
    std::uint64_t d;
    std::uint64_t s;
    std::memcpy(&d, dst + i, 8);
    std::memcpy(&s, src + i, 8);
    d ^= s;
    std::memcpy(dst + i, &d, 8);
  }
  for (; i < bytes; ++i) dst[i] ^= src[i];
}

}  // namespace ppm::gf::internal
