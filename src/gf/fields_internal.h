// Internal wiring between the field singletons and the registry.
#pragma once

#include "gf/galois_field.h"

namespace ppm::gf::internal {

// Standard primitive polynomials (same choices as classic erasure-coding
// libraries): x^8+x^4+x^3+x^2+1, x^16+x^12+x^3+x+1, x^32+x^22+x^2+x+1.
inline constexpr std::uint32_t kPoly8 = 0x11D;
inline constexpr std::uint32_t kPoly16 = 0x1100B;
inline constexpr std::uint64_t kPoly32 = 0x100400007ULL;

const Field& gf8_instance();
const Field& gf16_instance();
const Field& gf32_instance();

#if defined(__x86_64__) || defined(__i386__)
/// PCLMULQDQ multiply over GF(2^32); only call when the CPU supports the
/// instruction (gf32.cpp checks once at startup).
Element gf32_mul_clmul(Element a, Element b);
#endif

}  // namespace ppm::gf::internal
