// GF(2^32) over the primitive polynomial x^32 + x^22 + x^2 + x + 1
// (0x100400007). Log tables are infeasible at this width, so scalar
// multiplication is carry-less: PCLMULQDQ + polynomial folding where the
// CPU supports it (see gf32_clmul.cpp), a 32-step shift-and-add otherwise.
// The inverse uses Fermat (a^(2^32 - 2)). Region throughput does not
// depend on this path — the split-table kernels amortize one table build
// over an entire block region.
#include <cstdint>

#include "gf/fields_internal.h"
#include "gf/galois_field.h"

namespace ppm::gf {
namespace {

constexpr std::uint64_t kGroupOrder = 0xFFFFFFFFULL;  // 2^32 - 1

Element mul_shift_add(Element a, Element b) {
  // Carry-less product (63 significant bits)...
  std::uint64_t r = 0;
  std::uint64_t aa = a;
  std::uint32_t bb = b;
  while (bb != 0) {
    r ^= aa * (bb & 1u);  // branch-free conditional XOR
    aa <<= 1;
    bb >>= 1;
  }
  // ...then reduction mod the field polynomial.
  for (int i = 62; i >= 32; --i) {
    if ((r >> i) & 1) r ^= internal::kPoly32 << (i - 32);
  }
  return static_cast<Element>(r);
}

using MulFn = Element (*)(Element, Element);

MulFn select_mul() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("pclmul")) return internal::gf32_mul_clmul;
#endif
  return mul_shift_add;
}

class Gf32 final : public Field {
 public:
  Gf32() : mul_(select_mul()) {}

  unsigned w() const override { return 32; }

  Element mul(Element a, Element b) const override { return mul_(a, b); }

  Element inv(Element a) const override {
    // a^(2^32 - 2) = a^-1 for a != 0 (Fermat's little theorem).
    return pow(a, kGroupOrder - 1);
  }

  Element exp2(std::uint64_t e) const override {
    return pow(2, e % kGroupOrder);
  }

 private:
  MulFn mul_;
};

}  // namespace

namespace internal {
const Field& gf32_instance() {
  static const Gf32 instance;
  return instance;
}
}  // namespace internal

}  // namespace ppm::gf
