// Field-independent plumbing: the registry, region-op entry points and
// split-table construction shared by all widths.
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "gf/fields_internal.h"
#include "gf/galois_field.h"

namespace ppm::gf {

Element Field::pow(Element a, std::uint64_t e) const {
  Element result = 1;
  Element base = a;
  while (e != 0) {
    if (e & 1) result = mul(result, base);
    base = mul(base, base);
    e >>= 1;
  }
  return result;
}

void Field::build_split_tables(Element c, Element* split) const {
  // Row 0 directly: c * v for v < 16 (cheap multiplications — the operand
  // has at most 4 bits). Each following nibble position is the previous
  // one times x^4: c * (v << 4(k+1)) = (c * (v << 4k)) * 16. This keeps
  // the per-region-call table build OM(w) cheap multiplications instead of
  // w/4 * 15 full-width ones — it matters for GF(2^32), whose scalar
  // multiply is carry-less shift-and-add.
  const unsigned positions = w() / 4;
  split[0] = 0;
  for (unsigned v = 1; v < 16; ++v) {
    split[v] = mul(c, static_cast<Element>(v));
  }
  for (unsigned k = 1; k < positions; ++k) {
    split[16 * k] = 0;
    for (unsigned v = 1; v < 16; ++v) {
      split[16 * k + v] = mul(split[16 * (k - 1) + v], 16);
    }
  }
}

void Field::mult_region_xor(std::uint8_t* dst, const std::uint8_t* src,
                            Element c, std::size_t bytes) const {
  mult_region_xor_isa(dst, src, c, bytes, detect_isa());
}

void Field::mult_region_xor_isa(std::uint8_t* dst, const std::uint8_t* src,
                                Element c, std::size_t bytes,
                                IsaLevel level) const {
  assert(bytes % symbol_bytes() == 0);
  if (c == 0 || bytes == 0) return;
  const RegionKernels& k = kernels_for(w(), level);
  if (c == 1) {
    k.xor_region(dst, src, bytes);
    return;
  }
  Element split[16 * 8];  // sized for the widest field (w=32: 8 positions)
  build_split_tables(c, split);
  k.mult_xor(dst, src, bytes, split);
}

void Field::mult_region(std::uint8_t* dst, const std::uint8_t* src, Element c,
                        std::size_t bytes) const {
  assert(bytes % symbol_bytes() == 0);
  if (bytes == 0) return;
  if (c == 0) {
    std::memset(dst, 0, bytes);
    return;
  }
  if (c == 1) {
    std::memcpy(dst, src, bytes);
    return;
  }
  Element split[16 * 8];
  build_split_tables(c, split);
  kernels_for(w(), detect_isa()).mult_over(dst, src, bytes, split);
}

const Field& field(unsigned w) {
  switch (w) {
    case 8: return internal::gf8_instance();
    case 16: return internal::gf16_instance();
    case 32: return internal::gf32_instance();
    default: throw std::invalid_argument("GF width must be 8, 16 or 32");
  }
}

}  // namespace ppm::gf
