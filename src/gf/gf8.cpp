// GF(2^8) over the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D),
// implemented with log/antilog tables (alpha = 2 is primitive).
#include <array>
#include <cstdint>

#include "gf/fields_internal.h"
#include "gf/galois_field.h"

namespace ppm::gf {
namespace {

constexpr unsigned kOrder = 255;  // multiplicative group order 2^8 - 1

class Gf8 final : public Field {
 public:
  Gf8() {
    Element x = 1;
    for (unsigned i = 0; i < kOrder; ++i) {
      exp_[i] = x;
      log_[x] = static_cast<std::uint8_t>(i);
      x <<= 1;
      if (x & 0x100) x ^= internal::kPoly8;
    }
    // Double the antilog table so mul() can index log(a)+log(b) directly.
    for (unsigned i = kOrder; i < 2 * kOrder; ++i) exp_[i] = exp_[i - kOrder];
    log_[0] = 0;  // never read on valid inputs; keeps the table defined
  }

  unsigned w() const override { return 8; }

  Element mul(Element a, Element b) const override {
    if (a == 0 || b == 0) return 0;
    return exp_[log_[a] + log_[b]];
  }

  Element inv(Element a) const override { return exp_[kOrder - log_[a]]; }

  Element exp2(std::uint64_t e) const override { return exp_[e % kOrder]; }

 private:
  std::array<Element, 2 * kOrder> exp_{};
  std::array<std::uint8_t, 256> log_{};
};

}  // namespace

namespace internal {
const Field& gf8_instance() {
  static const Gf8 instance;
  return instance;
}
}  // namespace internal

}  // namespace ppm::gf
