// Galois-field arithmetic over GF(2^w), w ∈ {8, 16, 32}.
//
// This is the substrate every erasure code in the library sits on. Scalar
// element arithmetic (used by the tiny matrix computations of the decode
// planner) lives behind the virtual interface; the performance-critical
// region primitive mult_XOR — multiply a block region by a constant and
// XOR-accumulate into a destination region, exactly the paper's
// mult_XORs(d0, d1, a) — is dispatched to scalar / SSSE3 / AVX2 split-table
// kernels selected at startup (see common/cpu.h).
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/cpu.h"

namespace ppm::gf {

/// A field element. Only the low w bits are meaningful.
using Element = std::uint32_t;

/// Region-kernel function: dst ^= c * src (XOR variant) or dst = c * src,
/// applied symbol-wise over `bytes` bytes. `split` points at the per-call
/// nibble split tables: (w/4) positions × 16 entries of Element, where
/// split[16*k + v] = c * (v << 4k) in GF(2^w).
using RegionFn = void (*)(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split);

/// XOR-only region function: dst ^= src over `bytes` bytes.
using XorFn = void (*)(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes);

/// Kernel bundle for one (field width, ISA level) pair.
struct RegionKernels {
  RegionFn mult_xor = nullptr;   ///< dst ^= c * src
  RegionFn mult_over = nullptr;  ///< dst  = c * src
  XorFn xor_region = nullptr;    ///< dst ^= src (the c == 1 fast path)
};

/// Return the kernel bundle for width `w` at ISA `level` (always non-null
/// members; lower levels are substituted when the requested one does not
/// exist). Exposed so tests can cross-check every kernel family and so the
/// Fig. 10 CPU-proxy bench can pin one.
const RegionKernels& kernels_for(unsigned w, IsaLevel level);

/// Abstract field. Instances are process-lifetime singletons from field().
class Field {
 public:
  virtual ~Field() = default;

  /// Symbol width in bits (8, 16 or 32).
  virtual unsigned w() const = 0;

  /// Symbol width in bytes.
  unsigned symbol_bytes() const { return w() / 8; }

  /// Largest element value (all-ones mask of width w).
  Element max_element() const {
    return w() == 32 ? ~Element{0} : ((Element{1} << w()) - 1);
  }

  /// Field multiplication.
  virtual Element mul(Element a, Element b) const = 0;

  /// Multiplicative inverse; precondition a != 0.
  virtual Element inv(Element a) const = 0;

  /// alpha^e where alpha = 2 is a primitive element of the chosen
  /// polynomial. Exponents are reduced mod (2^w - 1). Used by the code
  /// constructions (coefficients of the form a_q^l).
  virtual Element exp2(std::uint64_t e) const = 0;

  /// Addition is XOR in characteristic 2.
  static Element add(Element a, Element b) { return a ^ b; }

  /// a / b; precondition b != 0.
  Element div(Element a, Element b) const { return mul(a, inv(b)); }

  /// a^e by square-and-multiply (a may be any element).
  Element pow(Element a, std::uint64_t e) const;

  /// The paper's mult_XORs(d0=src, d1=dst, a=c): dst ^= c * src over a
  /// region of `bytes` bytes (must be a multiple of symbol_bytes()).
  /// Fast paths: c == 0 is a no-op, c == 1 is a pure XOR.
  void mult_region_xor(std::uint8_t* dst, const std::uint8_t* src, Element c,
                       std::size_t bytes) const;

  /// dst = c * src over a region (overwrite variant used when a target
  /// block is first touched, avoiding a pre-zeroing pass).
  void mult_region(std::uint8_t* dst, const std::uint8_t* src, Element c,
                   std::size_t bytes) const;

  /// Run mult_region_xor with an explicitly pinned kernel family (tests and
  /// the Fig. 10 bench); semantics identical to mult_region_xor.
  void mult_region_xor_isa(std::uint8_t* dst, const std::uint8_t* src,
                           Element c, std::size_t bytes, IsaLevel level) const;

 protected:
  /// Fill `split` (16 * w/4 entries) with the nibble split tables for c.
  void build_split_tables(Element c, Element* split) const;
};

/// Singleton field for width w ∈ {8, 16, 32}; throws std::invalid_argument
/// for any other width.
const Field& field(unsigned w);

/// dst ^= src over `bytes` bytes using the best available kernel.
void xor_region(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes);

}  // namespace ppm::gf
