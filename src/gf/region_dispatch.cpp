// Runtime selection of region kernels by field width and ISA level.
#include <stdexcept>

#include "common/cpu.h"
#include "gf/galois_field.h"
#include "gf/region_kernels.h"

namespace ppm::gf {

namespace {

using namespace internal;

constexpr unsigned width_index(unsigned w) {
  return w == 8 ? 0 : w == 16 ? 1 : 2;
}

#if defined(__x86_64__) || defined(__i386__)
constexpr RegionKernels kTable[3][4] = {
    // w = 8
    {{mult_xor_scalar_w8, mult_over_scalar_w8, xor_scalar},
     {mult_xor_ssse3_w8, mult_over_ssse3_w8, xor_sse2},
     {mult_xor_avx2_w8, mult_over_avx2_w8, xor_avx2},
     {mult_xor_avx512_w8, mult_over_avx512_w8, xor_avx512}},
    // w = 16
    {{mult_xor_scalar_w16, mult_over_scalar_w16, xor_scalar},
     {mult_xor_ssse3_w16, mult_over_ssse3_w16, xor_sse2},
     {mult_xor_avx2_w16, mult_over_avx2_w16, xor_avx2},
     {mult_xor_avx512_w16, mult_over_avx512_w16, xor_avx512}},
    // w = 32
    {{mult_xor_scalar_w32, mult_over_scalar_w32, xor_scalar},
     {mult_xor_ssse3_w32, mult_over_ssse3_w32, xor_sse2},
     {mult_xor_avx2_w32, mult_over_avx2_w32, xor_avx2},
     {mult_xor_avx512_w32, mult_over_avx512_w32, xor_avx512}},
};
#else
constexpr RegionKernels kScalarOnly[3] = {
    {mult_xor_scalar_w8, mult_over_scalar_w8, xor_scalar},
    {mult_xor_scalar_w16, mult_over_scalar_w16, xor_scalar},
    {mult_xor_scalar_w32, mult_over_scalar_w32, xor_scalar},
};
#endif

}  // namespace

const RegionKernels& kernels_for(unsigned w, IsaLevel level) {
  if (w != 8 && w != 16 && w != 32) {
    throw std::invalid_argument("unsupported GF width");
  }
#if defined(__x86_64__) || defined(__i386__)
  // Cap the request at what the CPU (and PPM_FORCE_ISA) allows.
  const IsaLevel avail = detect_isa();
  const IsaLevel use = level < avail ? level : avail;
  return kTable[width_index(w)][static_cast<int>(use)];
#else
  (void)level;
  return kScalarOnly[width_index(w)];
#endif
}

void xor_region(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t bytes) {
  kernels_for(8, detect_isa()).xor_region(dst, src, bytes);
}

}  // namespace ppm::gf
