// GF(2^16) over the primitive polynomial x^16 + x^12 + x^3 + x + 1 (0x1100B),
// implemented with log/antilog tables (alpha = 2 is primitive). The tables
// occupy ~384 KB and are built once at first use.
#include <cstdint>
#include <vector>

#include "gf/fields_internal.h"
#include "gf/galois_field.h"

namespace ppm::gf {
namespace {

constexpr unsigned kOrder = 65535;  // multiplicative group order 2^16 - 1

class Gf16 final : public Field {
 public:
  Gf16() : exp_(2 * kOrder), log_(65536) {
    Element x = 1;
    for (unsigned i = 0; i < kOrder; ++i) {
      exp_[i] = x;
      log_[x] = static_cast<std::uint16_t>(i);
      x <<= 1;
      if (x & 0x10000) x ^= internal::kPoly16;
    }
    for (unsigned i = kOrder; i < 2 * kOrder; ++i) exp_[i] = exp_[i - kOrder];
    log_[0] = 0;  // never read on valid inputs
  }

  unsigned w() const override { return 16; }

  Element mul(Element a, Element b) const override {
    if (a == 0 || b == 0) return 0;
    return exp_[static_cast<std::uint32_t>(log_[a]) + log_[b]];
  }

  Element inv(Element a) const override { return exp_[kOrder - log_[a]]; }

  Element exp2(std::uint64_t e) const override { return exp_[e % kOrder]; }

 private:
  std::vector<Element> exp_;
  std::vector<std::uint16_t> log_;
};

}  // namespace

namespace internal {
const Field& gf16_instance() {
  static const Gf16 instance;
  return instance;
}
}  // namespace internal

}  // namespace ppm::gf
