// PCLMULQDQ-accelerated GF(2^32) multiplication.
//
// The generic GF(2^32) multiply is a 32-step shift-and-add; with carry-less
// multiply hardware the product is one instruction and the reduction a
// short fold loop (degree drops by >= 10 bits per fold against the
// polynomial tail x^22 + x^2 + x + 1). This matters for the decode
// planner's matrix algebra at w = 32 — a 50x50 inversion is ~10^5 scalar
// multiplies.
//
// This translation unit is compiled with -mpclmul; gf32.cpp only calls in
// when the CPU reports support.
#if defined(__x86_64__) || defined(__i386__)

#include <wmmintrin.h>

#include <cstdint>

#include "gf/fields_internal.h"

namespace ppm::gf::internal {

Element gf32_mul_clmul(Element a, Element b) {
  const __m128i x = _mm_set_epi64x(0, a);
  const __m128i y = _mm_set_epi64x(0, b);
  std::uint64_t r = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_clmulepi64_si128(x, y, 0)));
  // Fold the high half against Q(x) = x^22 + x^2 + x + 1 (x^32 ≡ Q mod P)
  // until the value fits in 32 bits.
  const __m128i q = _mm_set_epi64x(0, 0x400007);
  while (r >> 32) {
    const __m128i hi = _mm_set_epi64x(0, static_cast<long long>(r >> 32));
    const std::uint64_t folded = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_clmulepi64_si128(hi, q, 0)));
    r = (r & 0xFFFFFFFFu) ^ folded;
  }
  return static_cast<Element>(r);
}

}  // namespace ppm::gf::internal

#endif  // x86
