// SSSE3 region kernels: 128-bit pshufb split-nibble-table multiplication,
// the technique of "Screaming Fast Galois Field Arithmetic Using Intel SIMD
// Instructions" (Plank et al., FAST'13) that the paper's evaluation uses.
//
// Layout notes (little-endian x86):
//  * w=8 : product byte = Tlo[n0] ^ Thi[n1].
//  * w=16: symbol s_i occupies bytes {2i, 2i+1}; nibbles n0,n1 live in the
//          low byte, n2,n3 in the high byte. Low/high product bytes are
//          gathered with per-output-byte tables and merged with a lane shift.
//  * w=32: symbol occupies bytes {4i..4i+3}; 8 nibble positions × 4 output
//          bytes = 32 shuffle tables, one pshufb each.
// Index vectors are masked so that non-symbol byte positions carry index 0,
// and every table maps 0 -> 0 (c * 0 = 0), so stray lanes contribute zero.
#if defined(__x86_64__) || defined(__i386__)

#include <tmmintrin.h>

#include <cstring>

#include "gf/region_kernels.h"

namespace ppm::gf::internal {

namespace {

// Build one 16-entry pshufb table holding byte `byte_index` of
// split[16*pos + v] for v in [0,16).
inline __m128i byte_table(const Element* split, unsigned pos,
                          unsigned byte_index) {
  alignas(16) std::uint8_t t[16];
  for (unsigned v = 0; v < 16; ++v) {
    t[v] = static_cast<std::uint8_t>(split[16 * pos + v] >> (8 * byte_index));
  }
  return _mm_load_si128(reinterpret_cast<const __m128i*>(t));
}

inline __m128i loadu(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline void storeu(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

template <bool Xor>
inline void emit(std::uint8_t* dst, __m128i product) {
  if constexpr (Xor) {
    storeu(dst, _mm_xor_si128(product, loadu(dst)));
  } else {
    storeu(dst, product);
  }
}

template <bool Xor>
void run_w8(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
            const Element* split) {
  const __m128i tlo = byte_table(split, 0, 0);
  const __m128i thi = byte_table(split, 1, 0);
  const __m128i mask = _mm_set1_epi8(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const __m128i v = loadu(src + i);
    const __m128i lo = _mm_and_si128(v, mask);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
    const __m128i p =
        _mm_xor_si128(_mm_shuffle_epi8(tlo, lo), _mm_shuffle_epi8(thi, hi));
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_scalar_w8(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_scalar_w8(dst + i, src + i, bytes - i, split);
    }
  }
}

template <bool Xor>
void run_w16(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  // Per-output-byte tables: L[k] = low bytes of split position k,
  // H[k] = high bytes.
  __m128i lo_tab[4];
  __m128i hi_tab[4];
  for (unsigned k = 0; k < 4; ++k) {
    lo_tab[k] = byte_table(split, k, 0);
    hi_tab[k] = byte_table(split, k, 1);
  }
  const __m128i nib = _mm_set1_epi8(0x0F);
  const __m128i even = _mm_set1_epi16(0x00FF);
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const __m128i v = loadu(src + i);
    const __m128i lo = _mm_and_si128(v, nib);                      // n0 | n2
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), nib);   // n1 | n3
    const __m128i n0 = _mm_and_si128(lo, even);    // n0 at even bytes
    const __m128i n1 = _mm_and_si128(hi, even);    // n1 at even bytes
    const __m128i n2 = _mm_srli_epi16(lo, 8);      // n2 moved to even bytes
    const __m128i n3 = _mm_srli_epi16(hi, 8);      // n3 moved to even bytes
    __m128i pl = _mm_shuffle_epi8(lo_tab[0], n0);
    pl = _mm_xor_si128(pl, _mm_shuffle_epi8(lo_tab[1], n1));
    pl = _mm_xor_si128(pl, _mm_shuffle_epi8(lo_tab[2], n2));
    pl = _mm_xor_si128(pl, _mm_shuffle_epi8(lo_tab[3], n3));
    __m128i ph = _mm_shuffle_epi8(hi_tab[0], n0);
    ph = _mm_xor_si128(ph, _mm_shuffle_epi8(hi_tab[1], n1));
    ph = _mm_xor_si128(ph, _mm_shuffle_epi8(hi_tab[2], n2));
    ph = _mm_xor_si128(ph, _mm_shuffle_epi8(hi_tab[3], n3));
    const __m128i p = _mm_xor_si128(pl, _mm_slli_epi16(ph, 8));
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_scalar_w16(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_scalar_w16(dst + i, src + i, bytes - i, split);
    }
  }
}

template <bool Xor>
void run_w32(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes,
             const Element* split) {
  __m128i tab[8][4];
  for (unsigned k = 0; k < 8; ++k) {
    for (unsigned b = 0; b < 4; ++b) tab[k][b] = byte_table(split, k, b);
  }
  const __m128i nib = _mm_set1_epi8(0x0F);
  const __m128i low32 = _mm_set1_epi32(0x0F);
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    const __m128i v = loadu(src + i);
    const __m128i lo = _mm_and_si128(v, nib);
    const __m128i hi = _mm_and_si128(_mm_srli_epi64(v, 4), nib);
    // Nibble k of each dword, moved to that dword's byte 0.
    __m128i idx[8];
    for (unsigned k = 0; k < 8; ++k) {
      const __m128i srcv = (k & 1) ? hi : lo;
      idx[k] = _mm_and_si128(
          _mm_srli_epi32(srcv, static_cast<int>(8 * (k / 2))), low32);
    }
    __m128i p = _mm_setzero_si128();
    for (unsigned b = 0; b < 4; ++b) {
      __m128i pb = _mm_shuffle_epi8(tab[0][b], idx[0]);
      for (unsigned k = 1; k < 8; ++k) {
        pb = _mm_xor_si128(pb, _mm_shuffle_epi8(tab[k][b], idx[k]));
      }
      p = _mm_xor_si128(p, _mm_slli_epi32(pb, static_cast<int>(8 * b)));
    }
    emit<Xor>(dst + i, p);
  }
  if (i < bytes) {
    if constexpr (Xor) {
      mult_xor_scalar_w32(dst + i, src + i, bytes - i, split);
    } else {
      mult_over_scalar_w32(dst + i, src + i, bytes - i, split);
    }
  }
}

}  // namespace

void mult_xor_ssse3_w8(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split) {
  run_w8<true>(dst, src, bytes, split);
}
void mult_xor_ssse3_w16(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w16<true>(dst, src, bytes, split);
}
void mult_xor_ssse3_w32(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w32<true>(dst, src, bytes, split);
}
void mult_over_ssse3_w8(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split) {
  run_w8<false>(dst, src, bytes, split);
}
void mult_over_ssse3_w16(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w16<false>(dst, src, bytes, split);
}
void mult_over_ssse3_w32(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split) {
  run_w32<false>(dst, src, bytes, split);
}

void xor_sse2(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes) {
  std::size_t i = 0;
  for (; i + 16 <= bytes; i += 16) {
    storeu(dst + i, _mm_xor_si128(loadu(dst + i), loadu(src + i)));
  }
  if (i < bytes) xor_scalar(dst + i, src + i, bytes - i);
}

}  // namespace ppm::gf::internal

#endif  // x86
