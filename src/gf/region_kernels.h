// Internal declarations of the per-ISA region kernels.
//
// Every kernel implements dst (^)= c * src symbol-wise, where the constant
// is pre-expanded into nibble split tables: split[16*k + v] = c * (v << 4k).
// The SSSE3/AVX2 translation units are compiled with the matching -m flags;
// callers must only invoke them when common/cpu.h reports support.
#pragma once

#include "gf/galois_field.h"

namespace ppm::gf::internal {

// ----- scalar (always available) -----
void mult_xor_scalar_w8(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void mult_xor_scalar_w16(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_xor_scalar_w32(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_over_scalar_w8(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_over_scalar_w16(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split);
void mult_over_scalar_w32(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split);
void xor_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes);

#if defined(__x86_64__) || defined(__i386__)
// ----- SSSE3 -----
void mult_xor_ssse3_w8(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split);
void mult_xor_ssse3_w16(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void mult_xor_ssse3_w32(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void mult_over_ssse3_w8(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void mult_over_ssse3_w16(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_over_ssse3_w32(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void xor_sse2(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes);

// ----- AVX2 -----
void mult_xor_avx2_w8(std::uint8_t* dst, const std::uint8_t* src,
                      std::size_t bytes, const Element* split);
void mult_xor_avx2_w16(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split);
void mult_xor_avx2_w32(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split);
void mult_over_avx2_w8(std::uint8_t* dst, const std::uint8_t* src,
                       std::size_t bytes, const Element* split);
void mult_over_avx2_w16(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void mult_over_avx2_w32(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void xor_avx2(std::uint8_t* dst, const std::uint8_t* src, std::size_t bytes);

// ----- AVX-512BW -----
void mult_xor_avx512_w8(std::uint8_t* dst, const std::uint8_t* src,
                        std::size_t bytes, const Element* split);
void mult_xor_avx512_w16(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_xor_avx512_w32(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_over_avx512_w8(std::uint8_t* dst, const std::uint8_t* src,
                         std::size_t bytes, const Element* split);
void mult_over_avx512_w16(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split);
void mult_over_avx512_w32(std::uint8_t* dst, const std::uint8_t* src,
                          std::size_t bytes, const Element* split);
void xor_avx512(std::uint8_t* dst, const std::uint8_t* src,
                std::size_t bytes);
#endif

}  // namespace ppm::gf::internal
