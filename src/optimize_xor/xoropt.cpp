#include "optimize_xor/xoropt.h"

#include <algorithm>
#include <map>
#include <utility>

#include "analyze_hazard/hazard.h"
#include "verify_plan/plan_verify.h"

namespace ppm::xoropt {

namespace {

// Rows and subexpressions live in an *extended* column space: indices
// [0, cols) are the matrix's source columns, [cols, cols + temps) are the
// temporaries CSE materializes. Supports are kept as sorted index
// vectors — decode matrices are small and sparse enough that set algebra
// on sorted vectors beats bitsets on clarity at no measurable cost.
using Support = std::vector<std::size_t>;

std::size_t diff_size(const Support& a, const Support& b) {
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t d = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++d;
      ++i;
    } else {
      ++d;
      ++j;
    }
  }
  return d + (a.size() - i) + (b.size() - j);
}

Support diff_elements(const Support& a, const Support& b) {
  Support out;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

/// Op reading extended column `ext` into register `reg`: a plain source
/// read below `cols`, a from_output read of the temporary's register
/// above it.
XorOp ext_read(std::size_t rows, std::size_t cols, std::size_t ext,
               std::size_t reg, bool overwrite) {
  if (ext < cols) return XorOp{false, ext, reg, overwrite};
  return XorOp{true, rows + (ext - cols), reg, overwrite};
}

/// Emit `support` into register `reg` either directly (overwrite the
/// first element, XOR the rest) or incrementally from a previously
/// computed target register. Zero supports materialize a zero register
/// with the planner's 2-op self-cancel trick.
void emit_unit(std::size_t rows, std::size_t cols, std::size_t reg,
               const Support& support, const Support* base_support,
               std::size_t base_reg, std::vector<XorOp>& out) {
  if (base_support != nullptr) {
    out.push_back(XorOp{true, base_reg, reg, true});
    for (const std::size_t e : diff_elements(support, *base_support)) {
      out.push_back(ext_read(rows, cols, e, reg, false));
    }
    return;
  }
  if (support.empty()) {
    out.push_back(XorOp{false, 0, reg, true});
    out.push_back(XorOp{false, 0, reg, false});
    return;
  }
  bool first = true;
  for (const std::size_t e : support) {
    out.push_back(ext_read(rows, cols, e, reg, first));
    first = false;
  }
}

// --- Pass 1: cross-equation CSE (greedy pair/kernel extraction) --------
//
// Paar-style: repeatedly find the extended-column pair co-occurring in
// the most rows, materialize it as a temporary, and substitute. A pair
// shared by k rows trades 2 definition ops for k replaced reads (net
// k - 2); k == 2 extractions are kept too because they canonicalize
// shared kernels and feed later rounds (chains of pairs become whole
// shared subexpressions). Emission then runs the greedy incremental
// base selection over the REWRITTEN rows, so difference-based sharing
// and CSE compose. The final accept/reject decision belongs to the
// pipeline's proof-and-cost gate, not to this heuristic.
XorSchedule cse_pass(const Matrix& g, std::size_t max_rounds) {
  const std::size_t rows = g.rows();
  const std::size_t cols = g.cols();

  std::vector<Support> row_ext(rows);
  std::size_t naive = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (g(r, c) != 0) {
        row_ext[r].push_back(c);
        ++naive;
      }
    }
  }

  // Each extraction consumes co-occurrences, so u(G) + 8 rounds is an
  // unreachable ceiling — the cap only bounds pathological inputs.
  if (max_rounds == 0) max_rounds = naive + 8;
  std::vector<std::pair<std::size_t, std::size_t>> defs;  // temp inputs
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::map<std::pair<std::size_t, std::size_t>, std::size_t> counts;
    for (const Support& row : row_ext) {
      for (std::size_t i = 0; i < row.size(); ++i) {
        for (std::size_t j = i + 1; j < row.size(); ++j) {
          ++counts[{row[i], row[j]}];
        }
      }
    }
    // Deterministic winner: max count, then lexicographically smallest
    // pair (std::map iterates in key order, so first-seen wins ties).
    std::pair<std::size_t, std::size_t> best{0, 0};
    std::size_t best_count = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best = pair;
      }
    }
    if (best_count < 2) break;

    const std::size_t t_ext = cols + defs.size();
    defs.push_back(best);
    for (Support& row : row_ext) {
      const bool has_a = std::binary_search(row.begin(), row.end(),
                                            best.first);
      const bool has_b = std::binary_search(row.begin(), row.end(),
                                            best.second);
      if (!has_a || !has_b) continue;
      row.erase(std::remove_if(row.begin(), row.end(),
                               [&](std::size_t e) {
                                 return e == best.first || e == best.second;
                               }),
                row.end());
      row.push_back(t_ext);  // t_ext exceeds every existing index: sorted
    }
  }

  XorSchedule out;
  out.naive_ops = naive;
  out.temps = defs.size();

  // Temporaries first, in creation order — a temp's inputs are original
  // columns or earlier temps, so every from_output read is of a register
  // whose unit has already finalized.
  for (std::size_t k = 0; k < defs.size(); ++k) {
    const std::size_t reg = rows + k;
    out.ops.push_back(ext_read(rows, cols, defs[k].first, reg, true));
    out.ops.push_back(ext_read(rows, cols, defs[k].second, reg, false));
  }

  // Targets lightest-first with greedy incremental base selection over
  // the rewritten supports (the planner's difference trick, lifted to the
  // extended column space).
  std::vector<std::size_t> order(rows);
  for (std::size_t r = 0; r < rows; ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row_ext[a].size() != row_ext[b].size()) {
      return row_ext[a].size() < row_ext[b].size();
    }
    return a < b;
  });
  std::vector<std::size_t> computed;
  for (const std::size_t target : order) {
    const Support* base = nullptr;
    std::size_t base_reg = 0;
    std::size_t best = row_ext[target].size();
    for (const std::size_t prior : computed) {
      const std::size_t d = diff_size(row_ext[target], row_ext[prior]);
      if (d + 1 < best) {
        best = d + 1;
        base = &row_ext[prior];
        base_reg = prior;
      }
    }
    emit_unit(rows, cols, target, row_ext[target], base, base_reg, out.ops);
    computed.push_back(target);
  }
  return out;
}

// --- Pass 2: copy propagation + dead-op elimination --------------------
//
// Three rewrites to a fixpoint: (a) a temporary no op ever reads is
// deleted outright; (b) a temporary with exactly one reader is folded
// back into that reader (its definition ops retargeted in place of the
// read — saves the read); (c) ops on a register that a later overwrite of
// the same register shadows are dropped. Unit contiguity is preserved:
// deletions keep order and inlining replaces the read op in place.
XorSchedule copyprop_pass(std::size_t rows, const XorSchedule& in) {
  const std::size_t regs = rows + in.temps;
  std::vector<XorOp> ops = in.ops;

  for (bool changed = true; changed;) {
    changed = false;

    std::vector<std::size_t> reads(regs, 0);
    std::vector<std::size_t> read_op(regs, kNoOp);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].from_output && ops[i].source < regs) {
        ++reads[ops[i].source];
        read_op[ops[i].source] = i;
      }
    }

    for (std::size_t r = rows; r < regs && !changed; ++r) {
      std::vector<std::size_t> def;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].target == r) def.push_back(i);
      }
      if (def.empty()) continue;
      if (reads[r] == 0) {
        // (a) dead temporary.
        for (std::size_t k = def.size(); k-- > 0;) {
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(def[k]));
        }
        changed = true;
      } else if (reads[r] == 1 && read_op[r] > def.back() &&
                 ops[def.front()].overwrite) {
        // (b) single-use temporary: splice the definition into the one
        // reader. Reading the temp XORs (or copies) the linear sum of its
        // definition sources, so the definition ops are replayed against
        // the reader's register — overwrite only carried over to the
        // first op when the read itself overwrote.
        const std::size_t j = read_op[r];
        const XorOp reader = ops[j];
        std::vector<XorOp> repl;
        repl.reserve(def.size());
        for (std::size_t k = 0; k < def.size(); ++k) {
          XorOp op = ops[def[k]];
          op.target = reader.target;
          op.overwrite = reader.overwrite && k == 0;
          repl.push_back(op);
        }
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
        ops.insert(ops.begin() + static_cast<std::ptrdiff_t>(j),
                   repl.begin(), repl.end());
        for (std::size_t k = def.size(); k-- > 0;) {
          ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(def[k]));
        }
        changed = true;
      }
    }
    if (changed) continue;

    // (c) overwrite shadowing: within one register's op subsequence,
    // everything before the last overwrite is dead work.
    for (std::size_t r = 0; r < regs && !changed; ++r) {
      std::size_t last_overwrite = kNoOp;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        if (ops[i].target == r && ops[i].overwrite) last_overwrite = i;
      }
      if (last_overwrite == kNoOp) continue;
      std::vector<std::size_t> dead;
      for (std::size_t i = 0; i < last_overwrite; ++i) {
        if (ops[i].target == r) dead.push_back(i);
      }
      if (dead.empty()) continue;
      for (std::size_t k = dead.size(); k-- > 0;) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(dead[k]));
      }
      changed = true;
    }
  }

  // Renumber the surviving temporaries compactly (ordered by first
  // definition op, so the defs-before-uses stream property survives).
  std::vector<std::size_t> remap(regs, kNoOp);
  std::size_t next = 0;
  for (const XorOp& op : ops) {
    if (op.target >= rows && op.target < regs && remap[op.target] == kNoOp) {
      remap[op.target] = rows + next++;
    }
  }
  XorSchedule out;
  out.naive_ops = in.naive_ops;
  out.temps = next;
  out.ops = std::move(ops);
  for (XorOp& op : out.ops) {
    if (op.target >= rows && op.target < regs) op.target = remap[op.target];
    if (op.from_output && op.source >= rows && op.source < regs &&
        remap[op.source] != kNoOp) {
      op.source = remap[op.source];
    }
  }
  return out;
}

// --- Pass 3: cache-aware unit reordering -------------------------------
//
// Topological emission of whole register units with an affinity
// tie-break: among the ready units, pick the one sharing the most source
// columns with the unit just emitted, so consecutive units re-read
// blocks that are still cache-hot. Whole-unit moves keep every span
// contiguous and producer-before-consumer order intact by construction.
XorSchedule reorder_pass(std::size_t rows, const XorSchedule& in) {
  const std::size_t regs = rows + in.temps;
  std::vector<std::vector<std::size_t>> unit(regs);
  for (std::size_t i = 0; i < in.ops.size(); ++i) {
    if (in.ops[i].target >= regs) return in;  // malformed: leave unchanged
    unit[in.ops[i].target].push_back(i);
  }

  std::vector<Support> unit_sources(regs);
  std::vector<std::vector<std::size_t>> succ(regs);
  std::vector<std::size_t> indegree(regs, 0);
  for (const XorOp& op : in.ops) {
    if (!op.from_output) {
      unit_sources[op.target].push_back(op.source);
      continue;
    }
    if (op.source >= regs || op.source == op.target) return in;
    auto& s = succ[op.source];
    if (std::find(s.begin(), s.end(), op.target) == s.end()) {
      s.push_back(op.target);
      ++indegree[op.target];
    }
  }
  for (Support& s : unit_sources) {
    std::sort(s.begin(), s.end());
    s.erase(std::unique(s.begin(), s.end()), s.end());
  }

  std::vector<std::size_t> ready;
  for (std::size_t r = 0; r < regs; ++r) {
    if (!unit[r].empty() && indegree[r] == 0) ready.push_back(r);
  }
  const Support* prev = nullptr;
  XorSchedule out;
  out.naive_ops = in.naive_ops;
  out.temps = in.temps;
  out.ops.reserve(in.ops.size());
  while (!ready.empty()) {
    std::size_t pick = 0;
    std::size_t best_overlap = 0;
    for (std::size_t k = 0; k < ready.size(); ++k) {
      std::size_t overlap = 0;
      if (prev != nullptr) {
        const Support& s = unit_sources[ready[k]];
        const std::size_t d = diff_size(s, *prev);
        overlap = (s.size() + prev->size() - d) / 2;  // |intersection|
      }
      // Ties keep the original stream order (smaller first op wins), so
      // the pass is deterministic and a no-op on affinity-flat inputs.
      const bool better =
          overlap > best_overlap ||
          (overlap == best_overlap && k != pick &&
           unit[ready[k]].front() < unit[ready[pick]].front());
      if (k == 0 || better) {
        pick = k;
        best_overlap = overlap;
      }
    }
    const std::size_t u = ready[pick];
    ready.erase(ready.begin() + static_cast<std::ptrdiff_t>(pick));
    for (const std::size_t i : unit[u]) out.ops.push_back(in.ops[i]);
    prev = &unit_sources[u];
    for (const std::size_t v : succ[u]) {
      if (--indegree[v] == 0 && !unit[v].empty()) ready.push_back(v);
    }
  }
  if (out.ops.size() != in.ops.size()) return in;  // cycle: leave unchanged
  return out;
}

}  // namespace

std::vector<planverify::Violation> prove(const Matrix& g,
                                         const XorSchedule& schedule) {
  auto verdict = planverify::verify_xor_schedule(g, schedule);
  const auto analysis = hazard::analyze_schedule(schedule, g);
  verdict.violations.insert(verdict.violations.end(),
                            analysis.violations.begin(),
                            analysis.violations.end());
  return std::move(verdict.violations);
}

Result optimize(const Matrix& g, const XorSchedule& base,
                const Options& options) {
  Result result;
  result.schedule = base;
  result.stats.temps = base.temps;

  XorSchedule current = base;
  const auto attempt = [&](XorSchedule candidate) {
    ++result.stats.passes;
    if (options.tamper_for_test) options.tamper_for_test(candidate);
    // The gate: a rewrite survives only with a full proof — symbolic
    // GF(2) replay against the ORIGINAL matrix plus hazard re-analysis —
    // and a cost that does not regress. Anything else is discarded and
    // the previous proven schedule stands; the decode is never at risk.
    if (!prove(g, candidate).empty() ||
        candidate.cost() > current.cost()) {
      ++result.stats.rewrites_rejected;
      return;
    }
    ++result.stats.rewrites_accepted;
    current = std::move(candidate);
  };

  if (options.cse) attempt(cse_pass(g, options.max_cse_rounds));
  if (options.copy_propagation) attempt(copyprop_pass(g.rows(), current));
  if (options.reorder) attempt(reorder_pass(g.rows(), current));

  result.stats.ops_saved = base.cost() - current.cost();
  result.stats.temps = current.temps;
  result.schedule = std::move(current);
  return result;
}

}  // namespace ppm::xoropt
