// Proof-carrying XOR-schedule superoptimizer (ppm::xoropt).
//
// The paper's cost model treats u(M) — the nonzero count of the decoding
// matrix — as the floor on XOR work, and the greedy incremental planner
// (decode/xor_schedule.h) already undercuts it by computing targets as
// differences of other targets. Uezato's observation (PAPERS.md,
// "Accelerating XOR-based Erasure Coding using Program Optimization
// Techniques") is that an XOR schedule is a *program*, so classic
// compiler passes apply:
//
//   1. cross-equation CSE — XOR subexpressions (source-column pairs, and
//      transitively whole kernels) shared by >= 2 target rows are
//      materialized once into temporary registers and the consuming rows
//      rewritten to read the temporary (greedy pair extraction over the
//      binary row space, a la Paar);
//   2. copy propagation + dead-op elimination — temporaries that end up
//      unread are deleted, single-use temporaries are folded back into
//      their one consumer, and ops shadowed by a later overwrite of the
//      same register are dropped;
//   3. cache-aware reordering — whole register units are reordered within
//      the dependency constraints to maximize source-block reuse between
//      adjacent units, keeping every unit's op span contiguous so
//      target_spans()/the hazard DAG stay valid.
//
// EVERY pass is verified, never trusted: the rewritten schedule must
// round-trip through symbolic GF(2) replay (planverify — row-exact
// equality against the original matrix, cost honesty against u(G)) AND
// hazard re-analysis (race-free unit DAG, no unordered_from_output_use,
// no fragmented spans) before it replaces the previous schedule. A failed
// proof rejects the *rewrite* — the caller keeps the last proven schedule
// (worst case: the input), so optimization can never break a decode.
//
// docs/STATIC_ANALYSIS.md §"Schedule superoptimizer" documents the pass
// catalog and the proof obligations in detail.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "decode/xor_schedule.h"
#include "matrix/matrix.h"
#include "verify_plan/violation.h"

namespace ppm::xoropt {

struct Options {
  bool cse = true;               ///< pass 1: cross-equation CSE
  bool copy_propagation = true;  ///< pass 2: copy-prop + dead-op elimination
  bool reorder = true;           ///< pass 3: cache-aware unit reordering

  /// Upper bound on CSE pair-extraction rounds; 0 = auto (u(G) + 8, which
  /// the greedy extraction can never exhaust — each round retires at
  /// least one co-occurring pair).
  std::size_t max_cse_rounds = 0;

  /// TEST-ONLY: invoked on every candidate schedule after the pass built
  /// it and before its proof runs. Lets tests corrupt rewrites and assert
  /// the oracle gate rejects them (the production paths never set this).
  std::function<void(XorSchedule&)> tamper_for_test;
};

struct Stats {
  std::size_t passes = 0;             ///< rewrite candidates attempted
  std::size_t rewrites_accepted = 0;  ///< candidates that proved out
  std::size_t rewrites_rejected = 0;  ///< failed proof or regressed cost
  std::size_t ops_saved = 0;          ///< base cost() - final cost()
  std::size_t temps = 0;              ///< temporaries in the final schedule
};

struct Result {
  /// The best proven schedule: the final accepted rewrite, or `base`
  /// unchanged when every rewrite was rejected. Always carries a passing
  /// proof (prove() returned empty) unless the input itself did not.
  XorSchedule schedule;
  Stats stats;
};

/// The oracle gate both passes and external consumers (plan store reload,
/// fuzz) use: symbolic GF(2) replay (planverify::verify_xor_schedule)
/// plus hazard re-analysis (hazard::analyze_schedule, including the
/// fragmented-span check), concatenated. Empty = proven equivalent to `g`
/// and safe to unit-parallelize.
std::vector<planverify::Violation> prove(const Matrix& g,
                                         const XorSchedule& schedule);

/// Run the pass pipeline over `base` (typically plan_xor_schedule(g)'s
/// output). Each enabled pass emits one rewrite candidate; a candidate is
/// accepted only if prove() returns empty AND its cost() does not exceed
/// the current best. The result's naive_ops is pinned to u(G) so
/// saving() reports against the original matrix, not the input schedule.
Result optimize(const Matrix& g, const XorSchedule& base,
                const Options& options = {});

}  // namespace ppm::xoropt
