// Static concurrency-hazard analysis of parallel decode strategies
// (ppm::hazard).
//
// The plan verifier (verify_plan/) proves a decode plan *serially* sound:
// executed one sub-plan after another, the bytes come out right. This
// pass proves the library's parallel execution strategies sound for
// **every** interleaving, which no sanitizer run can (TSan only observes
// the interleavings that happen to execute). Each strategy is lowered to
// the same intermediate form — a dependency DAG of *execution units*,
// each with a set of read and write intervals over (block, byte range) —
// and the DAG is checked for:
//
//  * disjoint concurrent writes — two units with no ordering path between
//    them must not write overlapping bytes (`concurrent_write_overlap`);
//  * no unsynchronized read/write overlap — an unordered unit pair must
//    not read bytes the other writes (`concurrent_read_write_overlap`);
//  * acyclic dependencies — the ordering edges must admit a schedule at
//    all (`dependency_cycle`);
//  * slice geometry — region-split slices must be symbol-aligned and tile
//    the block range exactly once (`slice_misalignment`);
//  * ordered incremental reads — an XOR op reading another target
//    (`from_output`) must have that target finalized before its own unit
//    starts, or a unit-concurrent executor could observe a partial value
//    (`unordered_from_output_use`).
//
// Three lowerings cover every parallel region the decoders run:
// PpmDecoder's independent-group fan-out (graph_of_subplans), the
// region-split slices of BlockParallelDecoder (graph_of_slices), and the
// per-target units of an XOR schedule (graph_of_schedule).
//
// From the same DAG the analysis derives the observability numbers that
// bound achievable speedup: total work, critical-path length (both in
// mult_XOR units), per-level parallel width, and the implied max-speedup
// bound = work / critical path (Brent's theorem ceiling). `ppm_cli
// analyze` exports them; docs/STATIC_ANALYSIS.md documents the model.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "decode/block_parallel_decoder.h"
#include "decode/plan.h"
#include "decode/xor_schedule.h"
#include "matrix/matrix.h"
#include "verify_plan/violation.h"

namespace ppm {

class CachedPlan;

namespace hazard {

/// End-of-block sentinel: an access interval reaching kRangeEnd covers
/// the block's whole tail regardless of the (plan-time unknown) region
/// size.
inline constexpr std::size_t kRangeEnd = static_cast<std::size_t>(-1);

/// Half-open byte interval [begin, end) of one block's region.
struct Access {
  std::size_t block = 0;
  std::size_t begin = 0;
  std::size_t end = kRangeEnd;

  bool overlaps(const Access& other) const {
    return block == other.block && begin < other.end && other.begin < end;
  }
};

/// One schedulable unit of work: a SubPlan's mult_XOR sequence, one
/// region slice, or one XOR-schedule target's op subsequence.
struct Unit {
  std::string label;
  std::vector<Access> reads;
  std::vector<Access> writes;
  std::size_t work = 0;  ///< mult_XOR weight for the critical path
};

/// Execution units plus happens-before edges (from must complete before
/// to starts). Units with no directed path between them may run
/// concurrently — that is exactly what the hazard checks quantify over.
struct HazardGraph {
  std::vector<Unit> units;
  std::vector<std::pair<std::size_t, std::size_t>> edges;  ///< from -> to
};

/// The analysis verdict: violations (empty = provably race-free for all
/// interleavings) plus the DAG's parallelism profile.
struct Analysis {
  std::vector<planverify::Violation> violations;

  std::size_t total_work = 0;     ///< Σ unit work (mult_XOR units)
  std::size_t critical_path = 0;  ///< heaviest dependency chain (mult_XORs)
  /// Units per DAG level (level = longest edge-path depth from a root);
  /// level_width.size() is the chain length in units.
  std::vector<std::size_t> level_width;
  std::size_t max_width = 0;  ///< peak concurrently-runnable units

  /// Upper bound on parallel speedup: work / critical path. No executor,
  /// on any number of cores, can beat it for this plan.
  double speedup_bound() const {
    return critical_path == 0 ? 1.0
                              : static_cast<double>(total_work) /
                                    static_cast<double>(critical_path);
  }

  bool ok() const { return violations.empty(); }
};

/// Core pass: cycle check, pairwise concurrent-access checks, critical
/// path and width profile of an explicit graph.
Analysis analyze(const HazardGraph& graph);

/// A lane assignment of mutually independent execution units: which lane
/// each unit runs on, each lane's dispatch order and total work, and the
/// resulting makespan (all work in the same mult_XOR units the DAG
/// carries). Produced by the placers below; consumed by PpmDecoder's
/// group fan-out and reported by `ppm_cli analyze`.
struct Placement {
  unsigned lanes = 0;
  std::vector<unsigned> lane_of;  ///< unit index -> lane index
  /// Units per lane in dispatch order (LPT: heaviest first within a lane).
  std::vector<std::vector<std::size_t>> lane_units;
  std::vector<std::size_t> lane_work;  ///< Σ unit work per lane
  std::size_t makespan = 0;            ///< max over lane_work
};

/// LPT (longest-processing-time-first) list scheduling: units sorted by
/// descending work, each placed on the currently least-loaded lane.
/// Deterministic — ties broken by lower unit index, then lower lane
/// index — and within Graham's bound of optimal:
/// makespan <= Σwork/lanes + max(work). `lanes` of 0 is treated as 1 and
/// is never raised above the unit count (no empty lanes are created when
/// units < lanes).
Placement place_lpt(std::span<const std::size_t> work, unsigned lanes);

/// The paper's Algorithm-1 static assignment (unit i -> lane i mod
/// lanes), kept as the baseline the placer is measured against. Same
/// lane-count clamping as place_lpt.
Placement place_round_robin(std::span<const std::size_t> work,
                            unsigned lanes);

/// Lower PPM's two-phase execution to a graph: every group sub-plan is a
/// root unit (mutually unordered — the TaskGroup fan-out), and `rest`,
/// when present, is a unit ordered after every group. Reads/writes are
/// whole-block intervals.
HazardGraph graph_of_subplans(std::span<const SubPlan> groups,
                              const SubPlan* rest);

/// graph_of_subplans applied to a cached codec plan.
HazardGraph graph_of_plan(const CachedPlan& plan);

/// Lower a region-split execution: one unit per slice, all mutually
/// unordered, each reading the plan's survivors and writing its unknowns
/// restricted to the slice's byte range.
HazardGraph graph_of_slices(const SubPlan& plan,
                            std::span<const SliceRange> slices);

/// Lower an XOR schedule over a `rows`×`cols` binary system: one unit per
/// target row (its op subsequence), with a happens-before edge from the
/// producing target to the consumer for every from_output read. Survivor
/// columns and target rows live in disjoint block namespaces (targets are
/// offset by `cols`).
HazardGraph graph_of_schedule(const XorSchedule& schedule, std::size_t rows,
                              std::size_t cols);

/// Analyze a full cached plan (graph_of_plan + analyze).
Analysis analyze_plan(const CachedPlan& plan);

/// Per-unit survivor-input sets of a plan's two-phase execution — the
/// readiness metadata the serving layer (serve/) overlaps fetch and
/// compute with. Derived from the same DAG lowering the hazard checks
/// quantify over: a unit's inputs are the blocks it reads that no unit
/// writes (i.e. true source blocks — blocks another unit recovers are
/// satisfied by compute ordering, not by fetch). Group i may start as
/// soon as group_inputs[i] have all arrived; the rest unit additionally
/// waits for every group (its DAG edges), so rest_inputs lists only the
/// source blocks it reads itself. All lists are sorted and duplicate-free.
struct PlanReadiness {
  std::vector<std::vector<std::size_t>> group_inputs;  ///< per O1 group
  std::vector<std::size_t> rest_inputs;  ///< empty when the plan has no rest
  bool has_rest = false;
  std::vector<std::size_t> all_inputs;   ///< union — every block to fetch
};

/// Extract the readiness sets of a cached plan (graph_of_plan lowering).
PlanReadiness plan_readiness(const CachedPlan& plan);

/// Analyze a slice fan-out: graph_of_slices + analyze, plus the geometric
/// slice checks — every boundary a multiple of `symbol_bytes` and the
/// slices an exact, gapless, in-order tiling of [0, block_bytes) rounded
/// down to the symbol floor (`slice_misalignment`).
Analysis analyze_slices(const SubPlan& plan,
                        std::span<const SliceRange> slices,
                        std::size_t block_bytes, unsigned symbol_bytes);

/// Analyze an XOR schedule as a parallel program over register units
/// (target rows plus the optimizer's temporaries): graph_of_schedule +
/// analyze, plus the finalized-before-start check on
/// every from_output read (`unordered_from_output_use`) — stricter than
/// the serial read-before-final rule of verify_xor_schedule, because a
/// unit-concurrent executor may start a target as soon as its
/// dependencies finish. Ops whose target (or from_output source) falls
/// outside the register file are a malformed schedule and are reported as
/// `xor_index_out_of_bounds` rather than silently dropped from the DAG,
/// and a register whose op span contains foreign ops (an interleaved
/// post-optimizer schedule) is reported as `xor_target_span_fragmented`
/// instead of being certified with a silently wrong span.
Analysis analyze_schedule(const XorSchedule& schedule, const Matrix& g);

}  // namespace hazard
}  // namespace ppm
