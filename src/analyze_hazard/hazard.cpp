#include "analyze_hazard/hazard.h"

#include <algorithm>
#include <utility>

#include "codec/codec.h"

namespace ppm::hazard {

namespace {

using planverify::kNoIndex;
using planverify::Violation;
using planverify::ViolationKind;

std::string size_str(std::size_t v) { return std::to_string(v); }

std::string range_str(const Access& a) {
  std::string out = "block " + size_str(a.block);
  if (a.begin != 0 || a.end != kRangeEnd) {
    out += " bytes [" + size_str(a.begin) + "," +
           (a.end == kRangeEnd ? std::string("end") : size_str(a.end)) + ")";
  }
  return out;
}

void report(std::vector<Violation>& out, ViolationKind kind, std::size_t unit,
            std::size_t op, std::string message) {
  out.push_back(Violation{kind, unit, op, std::move(message)});
}

/// First overlapping pair between two access sets, if any.
const Access* find_overlap(std::span<const Access> a,
                           std::span<const Access> b) {
  for (const Access& x : a) {
    for (const Access& y : b) {
      if (x.overlaps(y)) return &x;
    }
  }
  return nullptr;
}

}  // namespace

Analysis analyze(const HazardGraph& graph) {
  Analysis result;
  const std::size_t n = graph.units.size();
  for (const Unit& u : graph.units) result.total_work += u.work;

  // Adjacency + indegrees; out-of-range edge endpoints would be a caller
  // bug, so they are clamped out rather than crashing the analyzer.
  std::vector<std::vector<std::size_t>> succ(n);
  std::vector<std::size_t> indegree(n, 0);
  for (const auto& [from, to] : graph.edges) {
    if (from >= n || to >= n) continue;
    succ[from].push_back(to);
    ++indegree[to];
  }

  // Kahn topological sort: units never popped are on (or downstream of) a
  // cycle — no schedule exists at all.
  std::vector<std::size_t> topo;
  topo.reserve(n);
  {
    std::vector<std::size_t> ready;
    std::vector<std::size_t> degree = indegree;
    for (std::size_t u = 0; u < n; ++u) {
      if (degree[u] == 0) ready.push_back(u);
    }
    while (!ready.empty()) {
      const std::size_t u = ready.back();
      ready.pop_back();
      topo.push_back(u);
      for (const std::size_t v : succ[u]) {
        if (--degree[v] == 0) ready.push_back(v);
      }
    }
  }
  const bool acyclic = topo.size() == n;
  if (!acyclic) {
    std::string members;
    std::vector<char> sorted(n, 0);
    for (const std::size_t u : topo) sorted[u] = 1;
    for (std::size_t u = 0; u < n; ++u) {
      if (sorted[u] == 0) {
        members += (members.empty() ? "" : ", ") + graph.units[u].label;
      }
    }
    report(result.violations, ViolationKind::kDependencyCycle, kNoIndex,
           kNoIndex,
           "dependency edges admit no schedule; units on or behind the "
           "cycle: " + members);
  }

  // Reachability closure over units (bitset per unit, in reverse topo
  // order), so ordered(u, v) = "a directed path exists". On a cyclic graph
  // the closure is computed for the sorted prefix only; units stuck on the
  // cycle conservatively reach nothing, which can only add findings.
  const std::size_t words = (n + 63) / 64;
  std::vector<std::vector<std::uint64_t>> reach(
      n, std::vector<std::uint64_t>(words, 0));
  for (std::size_t i = topo.size(); i-- > 0;) {
    const std::size_t u = topo[i];
    for (const std::size_t v : succ[u]) {
      reach[u][v / 64] |= std::uint64_t{1} << (v % 64);
      for (std::size_t w = 0; w < words; ++w) reach[u][w] |= reach[v][w];
    }
  }
  const auto ordered = [&](std::size_t u, std::size_t v) {
    return ((reach[u][v / 64] >> (v % 64)) & 1) != 0 ||
           ((reach[v][u / 64] >> (u % 64)) & 1) != 0;
  };

  // Pairwise hazard checks over every unordered (= potentially concurrent)
  // pair: writes must be disjoint and neither side may read what the
  // other writes.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (ordered(u, v)) continue;
      const Unit& a = graph.units[u];
      const Unit& b = graph.units[v];
      if (const Access* w = find_overlap(a.writes, b.writes)) {
        report(result.violations, ViolationKind::kConcurrentWriteOverlap, u,
               kNoIndex,
               a.label + " and " + b.label + " concurrently write " +
                   range_str(*w));
      }
      if (const Access* r = find_overlap(a.reads, b.writes)) {
        report(result.violations,
               ViolationKind::kConcurrentReadWriteOverlap, u, kNoIndex,
               a.label + " reads " + range_str(*r) + " which " + b.label +
                   " writes concurrently");
      }
      if (const Access* r = find_overlap(b.reads, a.writes)) {
        report(result.violations,
               ViolationKind::kConcurrentReadWriteOverlap, v, kNoIndex,
               b.label + " reads " + range_str(*r) + " which " + a.label +
                   " writes concurrently");
      }
    }
  }

  // Parallelism profile. On a cyclic graph there is no critical path; the
  // serial total is the only sound bound.
  if (!acyclic) {
    result.critical_path = result.total_work;
    return result;
  }
  std::vector<std::size_t> dist(n, 0);   // heaviest chain ending at u
  std::vector<std::size_t> level(n, 0);  // longest edge-path depth
  for (const std::size_t u : topo) {
    dist[u] += graph.units[u].work;
    result.critical_path = std::max(result.critical_path, dist[u]);
    if (level[u] >= result.level_width.size()) {
      result.level_width.resize(level[u] + 1, 0);
    }
    ++result.level_width[level[u]];
    for (const std::size_t v : succ[u]) {
      dist[v] = std::max(dist[v], dist[u]);
      level[v] = std::max(level[v], level[u] + 1);
    }
  }
  for (const std::size_t w : result.level_width) {
    result.max_width = std::max(result.max_width, w);
  }
  return result;
}

namespace {

Placement empty_placement(std::size_t units, unsigned lanes) {
  Placement placed;
  placed.lanes = std::max(1u, lanes);
  if (units != 0) {
    placed.lanes = static_cast<unsigned>(
        std::min<std::size_t>(placed.lanes, units));
  }
  placed.lane_of.assign(units, 0);
  placed.lane_units.resize(placed.lanes);
  placed.lane_work.assign(placed.lanes, 0);
  return placed;
}

}  // namespace

Placement place_lpt(std::span<const std::size_t> work, unsigned lanes) {
  Placement placed = empty_placement(work.size(), lanes);
  // Descending work, index ascending on ties — fully deterministic.
  std::vector<std::size_t> order(work.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (work[a] != work[b]) return work[a] > work[b];
    return a < b;
  });
  for (const std::size_t u : order) {
    std::size_t lane = 0;
    for (std::size_t l = 1; l < placed.lane_work.size(); ++l) {
      if (placed.lane_work[l] < placed.lane_work[lane]) lane = l;
    }
    placed.lane_of[u] = static_cast<unsigned>(lane);
    placed.lane_units[lane].push_back(u);
    placed.lane_work[lane] += work[u];
  }
  for (const std::size_t w : placed.lane_work) {
    placed.makespan = std::max(placed.makespan, w);
  }
  return placed;
}

Placement place_round_robin(std::span<const std::size_t> work,
                            unsigned lanes) {
  Placement placed = empty_placement(work.size(), lanes);
  for (std::size_t u = 0; u < work.size(); ++u) {
    const std::size_t lane = u % placed.lanes;
    placed.lane_of[u] = static_cast<unsigned>(lane);
    placed.lane_units[lane].push_back(u);
    placed.lane_work[lane] += work[u];
  }
  for (const std::size_t w : placed.lane_work) {
    placed.makespan = std::max(placed.makespan, w);
  }
  return placed;
}

namespace {

Unit unit_of_subplan(const SubPlan& sub, std::string label) {
  Unit unit;
  unit.label = std::move(label);
  unit.work = sub.cost();
  for (const std::size_t s : sub.survivors()) {
    unit.reads.push_back(Access{s, 0, kRangeEnd});
  }
  for (const std::size_t u : sub.unknowns()) {
    unit.writes.push_back(Access{u, 0, kRangeEnd});
  }
  return unit;
}

}  // namespace

HazardGraph graph_of_subplans(std::span<const SubPlan> groups,
                              const SubPlan* rest) {
  HazardGraph graph;
  graph.units.reserve(groups.size() + (rest != nullptr ? 1 : 0));
  for (std::size_t i = 0; i < groups.size(); ++i) {
    graph.units.push_back(
        unit_of_subplan(groups[i], "group " + size_str(i)));
  }
  if (rest != nullptr) {
    const std::size_t rest_index = graph.units.size();
    graph.units.push_back(unit_of_subplan(*rest, "rest"));
    for (std::size_t i = 0; i < rest_index; ++i) {
      graph.edges.emplace_back(i, rest_index);
    }
  }
  return graph;
}

HazardGraph graph_of_plan(const CachedPlan& plan) {
  return graph_of_subplans(
      plan.groups(),
      plan.rest().has_value() ? &*plan.rest() : nullptr);
}

HazardGraph graph_of_slices(const SubPlan& plan,
                            std::span<const SliceRange> slices) {
  HazardGraph graph;
  graph.units.reserve(slices.size());
  for (std::size_t i = 0; i < slices.size(); ++i) {
    Unit unit;
    unit.label = "slice " + size_str(i);
    // Every slice runs the full op list over its bytes, so its weight is
    // ops × bytes (mult_XOR·byte units — consistent within one slice
    // graph; speedup_bound stays dimensionless).
    unit.work = plan.cost() * slices[i].bytes;
    const std::size_t begin = slices[i].offset;
    const std::size_t end = begin + slices[i].bytes;
    for (const std::size_t s : plan.survivors()) {
      unit.reads.push_back(Access{s, begin, end});
    }
    for (const std::size_t u : plan.unknowns()) {
      unit.writes.push_back(Access{u, begin, end});
    }
    graph.units.push_back(std::move(unit));
  }
  return graph;
}

HazardGraph graph_of_schedule(const XorSchedule& schedule, std::size_t rows,
                              std::size_t cols) {
  HazardGraph graph;
  graph.units.resize(rows);
  for (std::size_t t = 0; t < rows; ++t) {
    graph.units[t].label = "target " + size_str(t);
    // Each target writes its own output row; rows live above the survivor
    // columns in a disjoint block namespace.
    graph.units[t].writes.push_back(Access{cols + t, 0, kRangeEnd});
  }
  for (const XorOp& op : schedule.ops) {
    if (op.target >= rows) continue;  // analyze_schedule reports these
    Unit& unit = graph.units[op.target];
    ++unit.work;
    if (op.from_output) {
      if (op.source >= rows || op.source == op.target) continue;
      unit.reads.push_back(Access{cols + op.source, 0, kRangeEnd});
      const auto edge = std::make_pair(op.source, op.target);
      if (std::find(graph.edges.begin(), graph.edges.end(), edge) ==
          graph.edges.end()) {
        graph.edges.push_back(edge);
      }
    } else if (op.source < cols) {
      unit.reads.push_back(Access{op.source, 0, kRangeEnd});
    }
  }
  return graph;
}

Analysis analyze_plan(const CachedPlan& plan) {
  return analyze(graph_of_plan(plan));
}

PlanReadiness plan_readiness(const CachedPlan& plan) {
  const HazardGraph graph = graph_of_plan(plan);
  // Blocks any unit writes are recovered by compute; they are never
  // fetch inputs, even when a later unit (rest) reads them.
  std::vector<std::size_t> written;
  for (const Unit& unit : graph.units) {
    for (const Access& w : unit.writes) written.push_back(w.block);
  }
  std::sort(written.begin(), written.end());
  written.erase(std::unique(written.begin(), written.end()), written.end());

  const auto inputs_of = [&written](const Unit& unit) {
    std::vector<std::size_t> inputs;
    inputs.reserve(unit.reads.size());
    for (const Access& r : unit.reads) {
      if (!std::binary_search(written.begin(), written.end(), r.block)) {
        inputs.push_back(r.block);
      }
    }
    std::sort(inputs.begin(), inputs.end());
    inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
    return inputs;
  };

  PlanReadiness out;
  // graph_of_plan unit order: the p group units first, rest (if any) last.
  out.has_rest = plan.rest().has_value();
  const std::size_t group_count =
      graph.units.size() - (out.has_rest ? 1 : 0);
  out.group_inputs.reserve(group_count);
  for (std::size_t i = 0; i < group_count; ++i) {
    out.group_inputs.push_back(inputs_of(graph.units[i]));
  }
  if (out.has_rest) out.rest_inputs = inputs_of(graph.units.back());

  for (const auto& g : out.group_inputs) {
    out.all_inputs.insert(out.all_inputs.end(), g.begin(), g.end());
  }
  out.all_inputs.insert(out.all_inputs.end(), out.rest_inputs.begin(),
                        out.rest_inputs.end());
  std::sort(out.all_inputs.begin(), out.all_inputs.end());
  out.all_inputs.erase(
      std::unique(out.all_inputs.begin(), out.all_inputs.end()),
      out.all_inputs.end());
  return out;
}

Analysis analyze_slices(const SubPlan& plan,
                        std::span<const SliceRange> slices,
                        std::size_t block_bytes, unsigned symbol_bytes) {
  Analysis result = analyze(graph_of_slices(plan, slices));
  auto& out = result.violations;
  std::size_t expected = 0;
  for (std::size_t i = 0; i < slices.size(); ++i) {
    const SliceRange& s = slices[i];
    if (symbol_bytes != 0 &&
        (s.offset % symbol_bytes != 0 || s.bytes % symbol_bytes != 0)) {
      report(out, ViolationKind::kSliceMisalignment, i, kNoIndex,
             "slice " + size_str(i) + " [" + size_str(s.offset) + "," +
                 size_str(s.offset + s.bytes) +
                 ") is not aligned to the " + size_str(symbol_bytes) +
                 "-byte symbol size");
    }
    if (s.offset != expected) {
      report(out, ViolationKind::kSliceMisalignment, i, kNoIndex,
             "slice " + size_str(i) + " starts at byte " +
                 size_str(s.offset) + " but the previous slice ended at " +
                 size_str(expected) + " (gap or overlap)");
    }
    expected = s.offset + s.bytes;
  }
  // Coverage must reach the symbol floor of the region; a tail shorter
  // than one symbol cannot be decoded by any slice and is excluded by the
  // plan_slices contract.
  const std::size_t floor =
      symbol_bytes == 0 ? block_bytes
                        : block_bytes / symbol_bytes * symbol_bytes;
  if (expected != floor) {
    report(out, ViolationKind::kSliceMisalignment, kNoIndex, kNoIndex,
           "slices cover [0," + size_str(expected) + ") of a " +
               size_str(block_bytes) + "-byte region (decodable floor " +
               size_str(floor) + ")");
  }
  return result;
}

Analysis analyze_schedule(const XorSchedule& schedule, const Matrix& g) {
  const std::size_t rows = g.rows();
  // The register file spans the matrix's target rows plus the
  // optimizer's temporaries; each temporary is its own execution unit
  // (it writes a scratch region disjoint from every row).
  const std::size_t regs = rows + schedule.temps;
  Analysis result = analyze(graph_of_schedule(schedule, regs, g.cols()));
  // Out-of-range indices are a malformed schedule: such an op belongs to
  // no unit, so graph_of_schedule drops it from the DAG — which must be
  // reported, not silent, or the analysis would certify a program it
  // never saw in full.
  std::vector<std::size_t> out_of_range;
  std::vector<std::size_t> fragmented;
  const std::vector<TargetSpan> spans =
      target_spans(schedule, regs, &out_of_range, &fragmented);
  for (const std::size_t i : out_of_range) {
    report(result.violations, ViolationKind::kXorIndexOutOfBounds, kNoIndex,
           i,
           "op " + size_str(i) + " targets register " +
               size_str(schedule.ops[i].target) + " of a " + size_str(regs) +
               "-register system; the op belongs to no execution unit");
  }
  // Post-optimizer schedules must keep every register's op span
  // contiguous: a span containing foreign ops is not a dispatchable unit,
  // and treating it as one would silently misattribute work. Structured
  // violation instead of a wrong span.
  for (const std::size_t t : fragmented) {
    report(result.violations, ViolationKind::kXorTargetSpanFragmented, t,
           spans[t].first_op,
           "register " + size_str(t) + "'s op span [" +
               size_str(spans[t].first_op) + "," +
               size_str(spans[t].last_op) +
               "] contains ops writing other registers; the span is not a "
               "schedulable unit");
  }
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const XorOp& op = schedule.ops[i];
    if (op.from_output && op.target < regs && op.source >= regs) {
      report(result.violations, ViolationKind::kXorIndexOutOfBounds,
             op.target, i,
             "op " + size_str(i) + " reads register " + size_str(op.source) +
                 " of a " + size_str(regs) + "-register system");
    }
    if (!op.from_output || op.target >= regs || op.source >= regs ||
        op.source == op.target) {
      continue;
    }
    const TargetSpan& src = spans[op.source];
    if (src.first_op == kNoOp) {
      report(result.violations, ViolationKind::kUnorderedFromOutputUse,
             op.target, i,
             "op " + size_str(i) + " reads target " + size_str(op.source) +
                 " which no op ever writes");
    } else if (src.last_op > spans[op.target].first_op) {
      report(result.violations, ViolationKind::kUnorderedFromOutputUse,
             op.target, i,
             "op " + size_str(i) + " reads target " + size_str(op.source) +
                 " whose writes (through op " + size_str(src.last_op) +
                 ") interleave with target " + size_str(op.target) +
                 "'s unit starting at op " +
                 size_str(spans[op.target].first_op));
    }
  }
  return result;
}

}  // namespace ppm::hazard
