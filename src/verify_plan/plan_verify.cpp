#include "verify_plan/plan_verify.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

namespace ppm::planverify {

namespace {

std::string size_str(std::size_t v) { return std::to_string(v); }

void report(std::vector<Violation>& out, ViolationKind kind,
            std::size_t sub_plan, std::size_t op, std::string message) {
  out.push_back(Violation{kind, sub_plan, op, std::move(message)});
}

/// Report one violation per duplicated value in `values`.
void check_duplicates(std::span<const std::size_t> values, const char* what,
                      std::size_t sub_index, std::vector<Violation>& out) {
  std::vector<std::size_t> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    if (sorted[i] == sorted[i - 1] && (i < 2 || sorted[i] != sorted[i - 2])) {
      report(out, ViolationKind::kDuplicateIndex, sub_index, kNoIndex,
             std::string(what) + " index " + size_str(sorted[i]) +
                 " appears more than once");
    }
  }
}

// Bitset-over-columns helpers shared with the XOR replay.
using BitRow = std::vector<std::uint64_t>;

BitRow unit_bit(std::size_t cols, std::size_t c) {
  BitRow bits((cols + 63) / 64, 0);
  bits[c / 64] |= std::uint64_t{1} << (c % 64);
  return bits;
}

BitRow matrix_row_bits(const Matrix& g, std::size_t row) {
  BitRow bits((g.cols() + 63) / 64, 0);
  for (std::size_t c = 0; c < g.cols(); ++c) {
    if (g(row, c) != 0) bits[c / 64] |= std::uint64_t{1} << (c % 64);
  }
  return bits;
}

std::size_t bit_count(const BitRow& bits) {
  std::size_t n = 0;
  for (const std::uint64_t w : bits) {
    n += static_cast<std::size_t>(__builtin_popcountll(w));
  }
  return n;
}

}  // namespace

void verify_subplan(const Matrix& h, const SubPlan& sub,
                    std::span<const std::size_t> forbidden_sources,
                    std::size_t sub_index, std::vector<Violation>& out) {
  const auto unknowns = sub.unknowns();
  const auto survivors = sub.survivors();
  const auto rows = sub.check_rows();
  const std::size_t blocks = h.cols();
  const std::size_t f = unknowns.size();

  bool indices_ok = true;
  for (const std::size_t u : unknowns) {
    if (u >= blocks) {
      report(out, ViolationKind::kUnknownOutOfBounds, sub_index, kNoIndex,
             "unknown block " + size_str(u) + " >= total blocks " +
                 size_str(blocks));
      indices_ok = false;
    }
  }
  for (const std::size_t s : survivors) {
    if (s >= blocks) {
      report(out, ViolationKind::kSurvivorOutOfBounds, sub_index, kNoIndex,
             "survivor block " + size_str(s) + " >= total blocks " +
                 size_str(blocks));
      indices_ok = false;
    }
  }
  for (const std::size_t r : rows) {
    if (r >= h.rows()) {
      report(out, ViolationKind::kRowOutOfBounds, sub_index, kNoIndex,
             "check row " + size_str(r) + " >= rows of H " +
                 size_str(h.rows()));
      indices_ok = false;
    }
  }
  check_duplicates(unknowns, "unknown", sub_index, out);
  check_duplicates(survivors, "survivor", sub_index, out);

  for (const std::size_t s : survivors) {
    if (std::find(unknowns.begin(), unknowns.end(), s) != unknowns.end()) {
      report(out, ViolationKind::kSourceAliasesTarget, sub_index, kNoIndex,
             "block " + size_str(s) + " is both read and written");
    }
    if (std::binary_search(forbidden_sources.begin(), forbidden_sources.end(),
                           s)) {
      report(out, ViolationKind::kForbiddenSource, sub_index, kNoIndex,
             "block " + size_str(s) +
                 " is read but faulty and not yet recovered");
    }
  }

  if (rows.size() != f) {
    report(out, ViolationKind::kShapeMismatch, sub_index, kNoIndex,
           size_str(rows.size()) + " check rows for " + size_str(f) +
               " unknowns (F must be square)");
    return;
  }
  if (!indices_ok) return;  // cannot re-derive matrices from bad indices

  // Re-derive F and S from H and invert F from scratch — nothing below
  // trusts the solver that built the plan.
  const Matrix hr = h.select_rows(rows);
  const Matrix f_mat = hr.select_columns(unknowns);
  const auto finv = f_mat.inverse();
  if (!finv.has_value()) {
    report(out, ViolationKind::kSingularF, sub_index, kNoIndex,
           "F = H[rows][unknowns] is singular over GF(2^" +
               size_str(h.field().w()) + ")");
    return;
  }
  if (!(*finv * f_mat == Matrix::identity(h.field(), f))) {
    report(out, ViolationKind::kInverseMismatch, sub_index, kNoIndex,
           "recomputed F^-1 does not satisfy F^-1*F = I");
    return;
  }
  const Matrix s_mat = hr.select_columns(survivors);

  // Every nonzero column of the selected rows must be accounted for: an
  // ignored nonzero column would contribute garbage at execution time.
  {
    std::vector<char> covered(blocks, 0);
    for (const std::size_t u : unknowns) covered[u] = 1;
    for (const std::size_t s : survivors) covered[s] = 1;
    for (std::size_t c = 0; c < blocks; ++c) {
      if (covered[c] == 0 && !hr.column_is_zero(c)) {
        report(out, ViolationKind::kUncoveredColumn, sub_index, kNoIndex,
               "block " + size_str(c) +
                   " has nonzero coefficients in the selected rows but is "
                   "neither unknown nor survivor");
      }
    }
  }

  // The matrices the plan will actually apply, their exact op count, and
  // the distinct source blocks they read — all recomputed.
  std::size_t expected_cost = 0;
  const Matrix* applied = nullptr;  // matrix whose columns are survivors
  Matrix g_mat(h.field(), 0, 0);
  if (sub.sequence() == Sequence::kNormal) {
    expected_cost = finv->nonzeros() + s_mat.nonzeros();
    if (!(sub.finv() == *finv)) {
      report(out, ViolationKind::kMatrixMismatch, sub_index, kNoIndex,
             "stored F^-1 differs from the independent recomputation");
    }
    if (!(sub.s() == s_mat)) {
      report(out, ViolationKind::kMatrixMismatch, sub_index, kNoIndex,
             "stored S differs from H[rows][survivors]");
    }
    applied = &s_mat;
  } else {
    g_mat = *finv * s_mat;
    expected_cost = g_mat.nonzeros();
    if (!(sub.finv() == g_mat)) {
      report(out, ViolationKind::kMatrixMismatch, sub_index, kNoIndex,
             "stored G differs from recomputed F^-1*S");
    }
    if (sub.s().rows() != 0 || sub.s().cols() != 0) {
      report(out, ViolationKind::kShapeMismatch, sub_index, kNoIndex,
             "matrix-first plan carries a non-empty S matrix");
    }
    applied = &g_mat;
  }

  if (sub.cost() != expected_cost) {
    report(out, ViolationKind::kCostMismatch, sub_index, kNoIndex,
           "claimed mult_XOR count " + size_str(sub.cost()) +
               " != recomputed " + size_str(expected_cost));
  }
  std::size_t expected_sources = 0;
  for (std::size_t c = 0; c < applied->cols(); ++c) {
    expected_sources += !applied->column_is_zero(c);
  }
  if (sub.source_blocks() != expected_sources) {
    report(out, ViolationKind::kSourceBlocksMismatch, sub_index, kNoIndex,
           "claimed blocks_read " + size_str(sub.source_blocks()) +
               " != recomputed " + size_str(expected_sources));
  }
}

VerifyResult verify_plan(const ErasureCode& code,
                         const FailureScenario& scenario,
                         const CachedPlan& plan) {
  VerifyResult result;
  const Matrix& h = code.parity_check();
  const auto faulty = scenario.faulty();  // sorted, unique

  // Partition soundness: the union of sub-plan unknown sets must be
  // exactly the faulty set, with no block produced twice.
  std::vector<std::size_t> produced;
  for (const SubPlan& g : plan.groups()) {
    produced.insert(produced.end(), g.unknowns().begin(), g.unknowns().end());
  }
  std::vector<std::size_t> group_produced = produced;  // pre-rest copy
  if (plan.rest().has_value()) {
    produced.insert(produced.end(), plan.rest()->unknowns().begin(),
                    plan.rest()->unknowns().end());
  }
  std::sort(produced.begin(), produced.end());
  for (std::size_t i = 1; i < produced.size(); ++i) {
    if (produced[i] == produced[i - 1] &&
        (i < 2 || produced[i] != produced[i - 2])) {
      report(result.violations, ViolationKind::kDuplicateRecovery, kNoIndex,
             kNoIndex,
             "block " + size_str(produced[i]) +
                 " is recovered by more than one sub-plan");
    }
  }
  for (const std::size_t b : faulty) {
    if (!std::binary_search(produced.begin(), produced.end(), b)) {
      report(result.violations, ViolationKind::kMissingRecovery, kNoIndex,
             kNoIndex,
             "faulty block " + size_str(b) + " is never recovered");
    }
  }
  for (const std::size_t b : produced) {
    if (!scenario.contains(b)) {
      report(result.violations, ViolationKind::kUnexpectedRecovery, kNoIndex,
             kNoIndex,
             "block " + size_str(b) +
                 " is written but is not in the faulty set");
    }
  }

  // Groups run first and in any order, so they may read nothing faulty.
  std::size_t index = 0;
  for (const SubPlan& g : plan.groups()) {
    verify_subplan(h, g, faulty, index++, result.violations);
  }
  // H_rest runs after every group: blocks the groups recovered are
  // finalized and legal to read; still-unrecovered faulty blocks are not.
  if (plan.rest().has_value()) {
    std::sort(group_produced.begin(), group_produced.end());
    std::vector<std::size_t> rest_forbidden;
    for (const std::size_t b : faulty) {
      if (!std::binary_search(group_produced.begin(), group_produced.end(),
                              b)) {
        rest_forbidden.push_back(b);
      }
    }
    verify_subplan(h, *plan.rest(), rest_forbidden, index,
                   result.violations);
  }
  return result;
}

VerifyResult verify_xor_schedule(const Matrix& g,
                                 const XorSchedule& schedule) {
  VerifyResult result;
  auto& out = result.violations;
  for (const gf::Element v : g.data()) {
    if (v > 1) {
      report(out, ViolationKind::kXorNotBinary, kNoIndex, kNoIndex,
             "schedule claimed for a matrix with entries > 1");
      return result;
    }
  }
  const std::size_t rows = g.rows();
  const std::size_t cols = g.cols();
  // Register file: the matrix's target rows plus the optimizer's
  // temporaries. Replay covers every register; only the rows are compared
  // against the matrix at the end.
  const std::size_t regs = rows + schedule.temps;

  // Index of the last op writing each register: a from_output read is only
  // sound when the source register is fully built and never touched again.
  std::vector<std::size_t> last_write(regs, kNoIndex);
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    if (schedule.ops[i].target < regs) {
      last_write[schedule.ops[i].target] = i;
    }
  }

  // Symbolic replay over GF(2): track each register as a bitset over the
  // source columns and compare against the matrix rows at the end.
  std::vector<BitRow> value(regs, BitRow((cols + 63) / 64, 0));
  std::vector<char> written(regs, 0);
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const XorOp& op = schedule.ops[i];
    if (op.target >= regs) {
      report(out, ViolationKind::kXorIndexOutOfBounds, kNoIndex, i,
             "target " + size_str(op.target) + " >= " + size_str(regs));
      continue;
    }
    BitRow src;
    if (op.from_output) {
      if (op.source >= regs) {
        report(out, ViolationKind::kXorIndexOutOfBounds, kNoIndex, i,
               "output source " + size_str(op.source) +
                   " >= " + size_str(regs));
        continue;
      }
      if (op.source == op.target) {
        report(out, ViolationKind::kXorSelfReference, kNoIndex, i,
               "op reads target " + size_str(op.target) +
                   " while writing it");
        continue;
      }
      if (written[op.source] == 0) {
        report(out, ViolationKind::kXorReadBeforeFinal, kNoIndex, i,
               "target " + size_str(op.source) +
                   " is read before any op writes it");
      } else if (last_write[op.source] > i) {
        report(out, ViolationKind::kXorReadBeforeFinal, kNoIndex, i,
               "target " + size_str(op.source) + " is read at op " +
                   size_str(i) + " but still written at op " +
                   size_str(last_write[op.source]));
      }
      src = value[op.source];
    } else {
      if (op.source >= cols) {
        report(out, ViolationKind::kXorIndexOutOfBounds, kNoIndex, i,
               "source column " + size_str(op.source) +
                   " >= " + size_str(cols));
        continue;
      }
      src = unit_bit(cols, op.source);
    }
    if (op.overwrite && written[op.target] != 0) {
      report(out, ViolationKind::kXorOverwriteAfterWrite, kNoIndex, i,
             "overwrite clobbers partially built target " +
                 size_str(op.target));
    }
    if (!op.overwrite && written[op.target] == 0) {
      report(out, ViolationKind::kXorMissingOverwrite, kNoIndex, i,
             "first op on target " + size_str(op.target) +
                 " must have overwrite=true");
    }
    if (op.overwrite) {
      value[op.target] = std::move(src);
    } else {
      for (std::size_t wi = 0; wi < src.size(); ++wi) {
        value[op.target][wi] ^= src[wi];
      }
    }
    written[op.target] = 1;
  }

  // Cost honesty: naive_ops must equal u(G), the pure nonzero count of
  // the matrix — recomputed here rather than trusted, so neither the
  // greedy planner nor an optimizer rewrite can inflate its own baseline
  // (zero-row fix-up ops count toward cost(), never toward naive_ops).
  std::size_t naive = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const BitRow expected = matrix_row_bits(g, r);
    naive += bit_count(expected);
    if (written[r] == 0) {
      report(out, ViolationKind::kXorTargetNeverWritten, kNoIndex, kNoIndex,
             "matrix row " + size_str(r) + " is never written");
      continue;
    }
    if (value[r] != expected) {
      report(out, ViolationKind::kXorWrongResult, kNoIndex, kNoIndex,
             "replayed target " + size_str(r) +
                 " does not equal matrix row " + size_str(r));
    }
  }
  if (schedule.naive_ops != naive) {
    report(out, ViolationKind::kXorCostMismatch, kNoIndex, kNoIndex,
           "claimed naive_ops " + size_str(schedule.naive_ops) +
               " != recomputed " + size_str(naive));
  }
  return result;
}

}  // namespace ppm::planverify
