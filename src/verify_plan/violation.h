// Structured diagnostics for the plan verifier (verify_plan/).
//
// A Violation pinpoints one broken invariant of a decode plan or XOR
// schedule: which check failed (kind), where (sub-plan index, op index)
// and why (human-readable message). Verifier passes collect every
// violation they can find rather than stopping at the first, so a report
// describes the whole plan.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ppm::planverify {

/// Sentinel for "not applicable" location fields.
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

enum class ViolationKind {
  // Plan-level partition invariants (§III-A: groups recover disjoint
  // faulty sets; every faulty block is produced exactly once).
  kDuplicateRecovery,   ///< a block is produced by more than one sub-plan
  kMissingRecovery,     ///< a faulty block no sub-plan produces
  kUnexpectedRecovery,  ///< a produced block is not in the faulty set

  // Sub-plan structural invariants.
  kShapeMismatch,         ///< matrix dimensions inconsistent with index sets
  kUnknownOutOfBounds,    ///< unknown block id >= total blocks
  kSurvivorOutOfBounds,   ///< survivor block id >= total blocks
  kRowOutOfBounds,        ///< check-row index >= rows of H
  kDuplicateIndex,        ///< repeated entry in unknowns or survivors
  kSourceAliasesTarget,   ///< a block is both read and written by one plan
  kForbiddenSource,       ///< reads a block that is faulty and unrecovered
  kUncoveredColumn,       ///< selected rows touch a block the plan ignores

  // Algebraic invariants, recomputed independently of the solver.
  kSingularF,        ///< F = H[rows][unknowns] is not invertible
  kInverseMismatch,  ///< recomputed F⁻¹ fails F⁻¹·F = I
  kMatrixMismatch,   ///< stored matrix differs from the recomputation

  // Cost-model invariants (DecodeStats::mult_xors must be exact).
  kCostMismatch,          ///< claimed cost != recomputed op count
  kSourceBlocksMismatch,  ///< claimed blocks_read != recomputed

  // XOR-schedule invariants (decode/xor_schedule.h incremental contract).
  kXorNotBinary,           ///< schedule claimed for a non-binary matrix
  kXorIndexOutOfBounds,    ///< op source/target index out of range
  kXorMissingOverwrite,    ///< first op on a target is not an overwrite
  kXorOverwriteAfterWrite, ///< overwrite clobbers a partially-built target
  kXorSelfReference,       ///< op reads the target it is writing
  kXorReadBeforeFinal,     ///< from_output source not yet finalized
  kXorTargetNeverWritten,  ///< a matrix row has no ops at all
  kXorWrongResult,         ///< symbolic replay differs from the matrix row
  kXorCostMismatch,        ///< naive_ops != u(G), the matrix nonzero count

  // Concurrency-hazard invariants (analyze_hazard/): checks over the
  // dependency DAG of execution units the decoders would run in parallel.
  // For these kinds `sub_plan` carries the *unit* index within the graph.
  kConcurrentWriteOverlap,     ///< unordered units write overlapping bytes
  kConcurrentReadWriteOverlap, ///< unordered units read/write the same bytes
  kDependencyCycle,            ///< ordering edges form a cycle (no schedule)
  kSliceMisalignment,          ///< region slices unaligned or not an exact tiling
  kUnorderedFromOutputUse,     ///< from_output source not ordered before its use
  kXorTargetSpanFragmented,    ///< a register's op span contains foreign ops
};

/// Stable lowercase identifier for a kind (e.g. "singular_f"); used in the
/// JSON export and in test expectations.
const char* kind_name(ViolationKind kind);

struct Violation {
  ViolationKind kind;
  std::size_t sub_plan = kNoIndex;  ///< sub-plan index; kNoIndex = plan-level
  std::size_t op = kNoIndex;        ///< XOR-op index; kNoIndex = not an op
  std::string message;
};

/// `[{"kind":"...","sub_plan":0,"op":3,"message":"..."}, ...]` — location
/// fields are omitted when not applicable. Stable format: `ppm_cli verify`
/// emits this on failure for operator tooling.
std::string to_json(std::span<const Violation> violations);

}  // namespace ppm::planverify
