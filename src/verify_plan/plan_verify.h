// Static verification of decode plans and XOR schedules (ppm::planverify).
//
// PPM's plans are computed once and replayed against every stripe that
// shares a failure scenario; a subtly wrong cached plan silently corrupts
// all of them. This pass proves a plan sound *without executing a single
// region op*, re-deriving everything it checks from the parity-check
// matrix independently of the solver that built the plan:
//
//  1. Partition soundness — every faulty block is produced by exactly one
//     sub-plan, and nothing outside the faulty set is written.
//  2. Algebra — F = H[rows][unknowns] is invertible, a freshly computed
//     F⁻¹ satisfies F⁻¹·F = I over GF(2^w), and the matrices the plan
//     will actually apply equal the recomputation (F⁻¹ and S for the
//     normal sequence, G = F⁻¹·S for matrix-first).
//  3. Dataflow — survivor reads never alias unknown writes, group plans
//     read no faulty block, the rest plan reads only blocks finalized by
//     the groups, and the selected rows touch no block the plan ignores
//     (an uncovered nonzero column would silently contribute garbage).
//  4. Cost honesty — the plan's claimed cost (DecodeStats::mult_xors) and
//     blocks_read equal the counts recomputed from the re-derived
//     matrices, so the cost model can never drift from reality.
//  5. XOR schedules — a symbolic GF(2) replay of the op list must
//     reproduce every matrix row, with no read-before-write,
//     missing-overwrite or overwrite-after-write hazard and with
//     from_output sources referring only to already-finalized targets
//     (the incremental-target contract of decode/xor_schedule.h).
//
// All passes report every violation they find (see violation.h) instead
// of stopping at the first. docs/STATIC_ANALYSIS.md documents the
// invariants and the deployment story (PPM_VERIFY_PLANS, ppm_cli verify).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "codec/codec.h"
#include "codes/erasure_code.h"
#include "decode/plan.h"
#include "decode/scenario.h"
#include "decode/xor_schedule.h"
#include "matrix/matrix.h"
#include "verify_plan/violation.h"

namespace ppm::planverify {

struct VerifyResult {
  std::vector<Violation> violations;
  bool ok() const { return violations.empty(); }
};

/// Verify one sub-plan against the parity-check matrix it claims to have
/// been planned from. `forbidden_sources` (sorted) are blocks the plan
/// must not read — for an independent group that is the entire faulty
/// set; for H_rest it is the faulty set minus the group-recovered blocks.
/// `sub_index` labels resulting violations. Appends to `out`.
void verify_subplan(const Matrix& h, const SubPlan& sub,
                    std::span<const std::size_t> forbidden_sources,
                    std::size_t sub_index, std::vector<Violation>& out);

/// Verify a full cached plan against the code and scenario it serves:
/// partition soundness across sub-plans plus verify_subplan on each.
VerifyResult verify_plan(const ErasureCode& code,
                         const FailureScenario& scenario,
                         const CachedPlan& plan);

/// Verify an XOR schedule against the binary matrix it was planned from
/// by symbolic replay over GF(2).
VerifyResult verify_xor_schedule(const Matrix& g, const XorSchedule& schedule);

}  // namespace ppm::planverify
