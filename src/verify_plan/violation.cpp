#include "verify_plan/violation.h"

#include <cstdio>

namespace ppm::planverify {

const char* kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kDuplicateRecovery:
      return "duplicate_recovery";
    case ViolationKind::kMissingRecovery:
      return "missing_recovery";
    case ViolationKind::kUnexpectedRecovery:
      return "unexpected_recovery";
    case ViolationKind::kShapeMismatch:
      return "shape_mismatch";
    case ViolationKind::kUnknownOutOfBounds:
      return "unknown_out_of_bounds";
    case ViolationKind::kSurvivorOutOfBounds:
      return "survivor_out_of_bounds";
    case ViolationKind::kRowOutOfBounds:
      return "row_out_of_bounds";
    case ViolationKind::kDuplicateIndex:
      return "duplicate_index";
    case ViolationKind::kSourceAliasesTarget:
      return "source_aliases_target";
    case ViolationKind::kForbiddenSource:
      return "forbidden_source";
    case ViolationKind::kUncoveredColumn:
      return "uncovered_column";
    case ViolationKind::kSingularF:
      return "singular_f";
    case ViolationKind::kInverseMismatch:
      return "inverse_mismatch";
    case ViolationKind::kMatrixMismatch:
      return "matrix_mismatch";
    case ViolationKind::kCostMismatch:
      return "cost_mismatch";
    case ViolationKind::kSourceBlocksMismatch:
      return "source_blocks_mismatch";
    case ViolationKind::kXorNotBinary:
      return "xor_not_binary";
    case ViolationKind::kXorIndexOutOfBounds:
      return "xor_index_out_of_bounds";
    case ViolationKind::kXorMissingOverwrite:
      return "xor_missing_overwrite";
    case ViolationKind::kXorOverwriteAfterWrite:
      return "xor_overwrite_after_write";
    case ViolationKind::kXorSelfReference:
      return "xor_self_reference";
    case ViolationKind::kXorReadBeforeFinal:
      return "xor_read_before_final";
    case ViolationKind::kXorTargetNeverWritten:
      return "xor_target_never_written";
    case ViolationKind::kXorWrongResult:
      return "xor_wrong_result";
    case ViolationKind::kXorCostMismatch:
      return "xor_cost_mismatch";
    case ViolationKind::kConcurrentWriteOverlap:
      return "concurrent_write_overlap";
    case ViolationKind::kConcurrentReadWriteOverlap:
      return "concurrent_read_write_overlap";
    case ViolationKind::kDependencyCycle:
      return "dependency_cycle";
    case ViolationKind::kSliceMisalignment:
      return "slice_misalignment";
    case ViolationKind::kUnorderedFromOutputUse:
      return "unordered_from_output_use";
    case ViolationKind::kXorTargetSpanFragmented:
      return "xor_target_span_fragmented";
  }
  return "unknown";
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

std::string to_json(std::span<const Violation> violations) {
  std::string out = "[";
  bool first = true;
  for (const Violation& v : violations) {
    if (!first) out += ",";
    first = false;
    out += "{\"kind\":\"";
    out += kind_name(v.kind);
    out += "\"";
    if (v.sub_plan != kNoIndex) {
      out += ",\"sub_plan\":";
      out += std::to_string(v.sub_plan);
    }
    if (v.op != kNoIndex) {
      out += ",\"op\":";
      out += std::to_string(v.op);
    }
    out += ",\"message\":\"";
    append_escaped(out, v.message);
    out += "\"}";
  }
  out += "]";
  return out;
}

}  // namespace ppm::planverify
