// Verifier-guided coefficient search (search_coeff/).
//
// search_best() replaces the old "roll random tuples until a sampled
// acceptance passes" construction path with a pruned, deterministic,
// certificate-producing search:
//
//  1. A seeded candidate stream (candidate 0 is the consecutive-powers
//     tuple alpha^0..alpha^{m+s-1}; later candidates keep a_0 = 1 and
//     draw the remaining exponents biased toward residues coprime with
//     2^w - 1, i.e. high multiplicative order) is generated up to
//     `candidate_budget`, deduplicated.
//  2. Each candidate is *prescreened* by cheap early-exit rank checks —
//     the encoding scenario plus a Fisher–Yates-sampled batch of
//     maximal failure scenarios through the incremental RankOracle —
//     fanned out across a ThreadPool. No plan is ever built for a
//     candidate that fails a rank check.
//  3. Survivors are certified exhaustively (certify_tuple) in stream
//     order until `certify_budget` tuples hold a certificate.
//  4. The certified set is reduced to its Pareto frontier under
//     (worst-case critical path, worst-case work); `best` is the
//     lexicographically smallest frontier member by (critical path,
//     work, optimized ops, tuple), so results are deterministic for a
//     fixed seed regardless of thread count.
//
// certify_first() is the cheap construction-path variant: same stream,
// same prescreen, but it stops at the first tuple that certifies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gf/galois_field.h"
#include "search_coeff/certify.h"

namespace ppm::coeffsearch {

struct SearchOptions {
  /// Candidate tuples generated and prescreened.
  std::uint64_t candidate_budget = 512;
  /// Prescreen survivors certified exhaustively (search_best only).
  std::uint64_t certify_budget = 4;
  /// Fisher–Yates-sampled maximal scenarios rank-checked per candidate
  /// before any plan is built.
  std::uint64_t prescreen_scenarios = 48;
  /// Candidate-stream seed; the stream is deterministic in
  /// (geometry, seed).
  std::uint64_t seed = 0;
  /// Prescreen fan-out width; 0 = auto. Results are independent of it.
  unsigned threads = 0;
  /// Proof strength applied to survivors.
  CertifyOptions certify;
};

struct CertifiedCandidate {
  std::vector<gf::Element> tuple;
  Certificate cert;
};

struct SearchResult {
  bool found = false;
  CertifiedCandidate best;  ///< meaningful only when found
  /// Pareto frontier under (worst critical path, worst work), sorted by
  /// the deterministic tie-break order; contains `best` first.
  std::vector<CertifiedCandidate> pareto;
  std::uint64_t candidates_considered = 0;
  std::uint64_t rank_pruned = 0;  ///< killed by the prescreen
  std::uint64_t certified = 0;
  std::uint64_t refuted = 0;  ///< survived prescreen, failed certification
  std::string reason;         ///< set when !found
};

/// Pareto-best certified tuples for `g`. Deterministic for fixed
/// (geometry, options). Throws std::invalid_argument for degenerate
/// geometries.
SearchResult search_best(const Geometry& g, const SearchOptions& opts = {});

/// First tuple in the candidate stream that certifies — the
/// construction path. Same prescreen pruning as search_best. The
/// result's `certified` flag is false (with `reason` set) only if the
/// whole candidate budget is exhausted without a proof.
CertifyResult certify_first(const Geometry& g, const SearchOptions& opts = {});

}  // namespace ppm::coeffsearch
