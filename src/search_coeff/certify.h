// Certification oracle for SD/PMDS coefficient tuples (search_coeff/).
//
// certify_tuple() proves a tuple correct without executing a single
// decode: every canonical worst-case scenario class (scenario_enum.h)
// must keep H full column rank on the faulty blocks (incremental
// RankOracle sweep, ThreadPool fan-out, deterministic early exit), and
// a deterministic subset of classes — all of them when the universe
// fits the plan budget — is additionally driven through the full
// static-analysis stack: Codec::plan_for builds the plan,
// planverify::verify_plan re-proves it symbolically, and the hazard
// profile (critical path / work / max width, plus the post-xoropt op
// count when Options::optimize_xor is on) is accumulated per stratum
// and into the certificate's worst case. The result is a
// machine-checkable Certificate that records the geometry, the tuple,
// the closed-form census, every stratum proven and the proof options —
// enough for a later process to re-run the identical proofs and compare
// outcomes exactly (cert_store.h's zero-trust load contract).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gf/galois_field.h"
#include "search_coeff/scenario_enum.h"

namespace ppm::coeffsearch {

/// Bumped whenever the on-disk JSON layout, the enumeration model or
/// the proof semantics change; mismatching records are quarantined and
/// re-certified rather than trusted.
inline constexpr std::uint64_t kCertFormatVersion = 1;
inline constexpr std::uint64_t kEnumeratorVersion = 1;
inline constexpr std::uint64_t kCertifierVersion = 1;

/// Worst-case plan profile over a set of proven scenario classes
/// (per-metric maxima). `optimized_ops` is the post-superoptimizer
/// schedule cost where schedules attached, the plan cost otherwise.
struct ClassProfile {
  std::uint64_t cost = 0;
  std::uint64_t work = 0;
  std::uint64_t critical_path = 0;
  std::uint64_t max_width = 0;
  std::uint64_t optimized_ops = 0;

  bool operator==(const ClassProfile&) const = default;
};

/// Per-stratum proof aggregate; a stratum is (z, descending per-row
/// sector loads).
struct StratumReport {
  std::size_t z = 0;
  std::vector<std::size_t> loads;
  std::uint64_t classes = 0;       ///< canonical classes rank-proven
  std::uint64_t members = 0;       ///< orbit members those classes cover
  std::uint64_t plans_proven = 0;  ///< classes also plan-proven
  /// Rank-deficient classes/members in this stratum (characterization
  /// mode only; always 0 for a perfect tuple).
  std::uint64_t deficient_classes = 0;
  std::uint64_t deficient_members = 0;
  ClassProfile worst;

  bool operator==(const StratumReport&) const = default;
};

struct CertifyOptions {
  /// Prove every canonical class when the census stays at or below
  /// this; otherwise fall back to the deterministic stratified cover
  /// (recorded honestly as exact == false).
  std::uint64_t exact_class_limit = 1'500'000;
  std::uint64_t stratified_classes = 60'000;
  /// Classes driven through plan_for + planverify + hazard. All of them
  /// when the universe fits the budget, else a deterministic stride.
  /// 0 skips plan proofs entirely (pure rank certification).
  std::uint64_t plan_budget = 384;
  /// Score with the post-superoptimizer op count (Codec::Options).
  bool optimize_xor = true;
  /// Characterize instead of refute: rank-deficient scenario classes
  /// are *counted* (Certificate::deficient_*) rather than aborting the
  /// sweep, and stride classes that are undecodable are skipped by the
  /// plan proofs. Some shipped geometries (e.g. SD^{2,2}_{8,8} over
  /// GF(2^8)) provably admit no perfect tuple, matching the gaps in
  /// Plank's published SD tables; this mode lets the construction path
  /// serve the historical tuple with its deficiencies on the record
  /// instead of silently pretending they do not exist. `certified`
  /// then means "the exhaustive characterization completed", and the
  /// re-proof equality check still pins every recorded count. Not
  /// recorded in the certificate: re-proofs always run with it on,
  /// which is observationally identical for perfect tuples.
  bool allow_deficient = false;
  /// Rank-sweep fan-out width; 0 = auto. Never recorded: results are
  /// independent of it by construction.
  unsigned threads = 0;
};

/// The machine-checkable record. Equality is semantic: a re-run of
/// certify_tuple with the recorded options must reproduce it exactly.
struct Certificate {
  Geometry geometry;
  std::string family = "sd";
  std::vector<gf::Element> tuple;

  // Proof options (re-proof reruns with exactly these).
  std::uint64_t exact_class_limit = 0;
  std::uint64_t stratified_classes = 0;
  std::uint64_t plan_budget = 0;
  bool optimize_xor = false;

  bool exact = true;
  std::uint64_t maximal = 0;    ///< closed-form universe size
  std::uint64_t canonical = 0;  ///< closed-form canonical class count
  std::uint64_t enumerated = 0;
  std::uint64_t rank_checked = 0;
  std::uint64_t plans_proven = 0;
  /// Rank-deficient classes/members found (allow_deficient mode; a
  /// perfect tuple records 0/0). A nonzero count is an honest
  /// characterization of a best-effort tuple, never a silent pass.
  std::uint64_t deficient_classes = 0;
  std::uint64_t deficient_members = 0;

  ClassProfile encoding;
  ClassProfile worst_case;
  std::vector<StratumReport> strata;  ///< sorted by (z, loads)

  bool operator==(const Certificate&) const = default;

  std::string to_json() const;
};

/// Parses a Certificate from its to_json() form. Rejects unknown
/// format/oracle versions. Returns false (and fills `why`) on any
/// structural problem; parsing alone never makes a record trusted —
/// see CertStore::load for the re-proof contract.
bool parse_certificate(std::string_view json, Certificate* out,
                       std::string* why = nullptr);

struct CertifyResult {
  bool certified = false;
  Certificate cert;  ///< meaningful only when certified
  std::string reason;
  /// Faulty blocks of the first failing scenario (enumeration order),
  /// empty when certified.
  std::vector<std::size_t> first_failure;
};

/// Proves (or refutes) one tuple for one geometry. Deterministic for
/// fixed (geometry, tuple, options) regardless of thread count.
/// Throws std::invalid_argument for degenerate geometries.
CertifyResult certify_tuple(const Geometry& g,
                            std::span<const gf::Element> tuple,
                            const CertifyOptions& opts = {});

}  // namespace ppm::coeffsearch
