// Persistent store for coefficient certificates (search_coeff/), with
// the same zero-trust contract as the plan store (plan_store/):
//
//  * Records are sealed — `PPMCERT <version> <crc32> <len>` header over
//    the certificate JSON — and written atomically (temp file + rename).
//  * Nothing on disk is ever trusted. load() parses the record, checks
//    the seal, then *re-runs the entire certification* with the
//    record's own proof options (certify_tuple is deterministic) and
//    demands exact semantic equality with the record. Any mismatch —
//    torn write, bit rot, tampering, an oracle version bump — renames
//    the file aside as `<name>.quarantined` and reports kRejected; the
//    caller re-searches and overwrites. A served tuple is therefore
//    always one this process proved itself.
//  * Records weaker than the caller's required proof strength (smaller
//    exact/stratified/plan budgets) are rejected the same way: passing
//    a weak re-proof must not satisfy a strong requirement.
//
// SdCode/PmdsCode construction consumes this store through
// default_cert_store() (settable in-process, or via the PPM_CERT_DIR
// environment variable), so a fleet can certify once and restart
// cheaply — paying one re-proof instead of a full search.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "search_coeff/certify.h"

namespace ppm::coeffsearch {

class CertStore {
 public:
  /// Opens (and creates, if needed) `directory`.
  explicit CertStore(std::filesystem::path directory);

  const std::filesystem::path& directory() const { return dir_; }

  /// Seals and atomically publishes `cert`, overwriting any previous
  /// record for its geometry. Returns false on I/O failure.
  bool put(const Certificate& cert);

  enum class LoadResult { kLoaded, kMissing, kRejected };

  /// Zero-trust load of the record for `g`: seal check, parse,
  /// geometry match, minimum proof strength vs `require`, then a full
  /// re-certification compared exactly against the record. On success
  /// `out` receives the (re-proven) certificate; on any failure the
  /// record is quarantined and kRejected returned.
  LoadResult load(const Geometry& g, const CertifyOptions& require,
                  Certificate* out, std::string* why = nullptr);

  struct Entry {
    std::string filename;
    std::uintmax_t bytes = 0;
    bool quarantined = false;
  };
  std::vector<Entry> list() const;

  struct CheckReport {
    std::size_t checked = 0;
    std::size_t verified = 0;
    std::size_t quarantined = 0;
  };
  /// Re-proves every record in the store (each with its own recorded
  /// options); failing records are quarantined.
  CheckReport check();

  struct GcReport {
    std::size_t removed_quarantined = 0;
    std::size_t removed_tmp = 0;
  };
  /// Removes quarantined records and stale temp files, keeping the
  /// newest `keep_quarantined` quarantined files for forensics.
  GcReport gc(std::size_t keep_quarantined = 0);

  static std::string record_filename(const Geometry& g);

 private:
  LoadResult load_path(const std::filesystem::path& path,
                       const Geometry* expect_geometry,
                       const CertifyOptions* require, Certificate* out,
                       std::string* why);
  void quarantine(const std::filesystem::path& path);

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
};

/// The store sd_coefficients() consults. Defaults to a store over
/// $PPM_CERT_DIR when that is set, nullptr (no persistence) otherwise.
std::shared_ptr<CertStore> default_cert_store();

/// Overrides the default store (nullptr detaches). Thread-safe.
void set_default_cert_store(std::shared_ptr<CertStore> store);

}  // namespace ppm::coeffsearch
