#include "search_coeff/scenario_enum.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace ppm::coeffsearch {
namespace {

std::uint64_t binomial(std::uint64_t k, std::uint64_t j) {
  if (j > k) return 0;
  j = std::min(j, k - j);
  std::uint64_t out = 1;
  for (std::uint64_t i = 1; i <= j; ++i) out = out * (k - j + i) / i;
  return out;
}

// Ordered compositions of `s` into `z` positive parts, each part at most
// `cap`. Calls `fn` with the parts vector; returns false if `fn` did.
bool for_each_composition(std::size_t s, std::size_t z, std::size_t cap,
                          std::vector<std::size_t>& parts,
                          const std::function<bool(
                              const std::vector<std::size_t>&)>& fn) {
  if (z == 0) return s != 0 || fn(parts);
  for (std::size_t first = 1; first <= std::min(cap, s - (z - 1));
       ++first) {
    parts.push_back(first);
    const bool keep =
        for_each_composition(s - first, z - 1, cap, parts, fn);
    parts.pop_back();
    if (!keep) return false;
  }
  return true;
}

// Universe size over k columns: C(k,m) disk choices times, per stratum,
// independent per-row column choices among the k-m survivors.
std::uint64_t universe(const Geometry& g, std::size_t k) {
  if (k < g.m) return 0;
  const std::uint64_t disk_sets = binomial(k, g.m);
  if (g.s == 0) return disk_sets;
  const std::size_t survivors = k - g.m;
  std::uint64_t sectors = 0;
  std::vector<std::size_t> parts;
  for (std::size_t z = 1; z <= std::min(g.s, g.r); ++z) {
    if (g.s > z * survivors) continue;
    std::uint64_t per_rows = 0;
    for_each_composition(
        g.s, z, survivors, parts,
        [&](const std::vector<std::size_t>& loads) {
          std::uint64_t ways = 1;
          for (const std::size_t load : loads) {
            ways *= binomial(survivors, load);
          }
          per_rows += ways;
          return true;
        });
    sectors += binomial(g.r, z) * per_rows;
  }
  return disk_sets * sectors;
}

struct Emitter {
  const Geometry& g;
  const std::function<bool(const ScenarioClass&)>& visit;
  std::uint64_t visited = 0;
  bool stopped = false;

  // Emits iff the pattern is canonical (minimum involved column == 0).
  void emit(const std::vector<std::size_t>& disks,
            const std::vector<std::size_t>& sector_cells,
            const std::vector<std::size_t>& loads) {
    std::size_t min_col = disks.empty() ? g.n : disks.front();
    std::size_t max_col = disks.empty() ? 0 : disks.back();
    for (const std::size_t cell : sector_cells) {
      min_col = std::min(min_col, cell % g.n);
      max_col = std::max(max_col, cell % g.n);
    }
    if (min_col != 0) return;
    ScenarioClass cls;
    cls.disks = disks;
    cls.sectors = sector_cells;
    std::sort(cls.sectors.begin(), cls.sectors.end());
    cls.z = loads.size();
    cls.row_loads = loads;
    std::sort(cls.row_loads.begin(), cls.row_loads.end(),
              std::greater<>());
    cls.members = g.n - max_col;
    ++visited;
    if (!visit(cls)) stopped = true;
  }
};

// Chooses `load` distinct columns for each chosen row in turn, then
// emits. Rows are processed in order; `cols` accumulates block ids.
void place_rows(Emitter& em, const std::vector<std::size_t>& disks,
                const std::vector<std::size_t>& survivors,
                const std::vector<std::size_t>& rows,
                const std::vector<std::size_t>& loads,
                std::size_t row_idx, std::vector<std::size_t>& cells) {
  if (em.stopped) return;
  if (row_idx == rows.size()) {
    em.emit(disks, cells, loads);
    return;
  }
  const std::size_t load = loads[row_idx];
  const std::size_t row = rows[row_idx];
  std::vector<std::size_t> combo(load);
  const auto recurse = [&](auto&& self, std::size_t next,
                           std::size_t depth) -> void {
    if (em.stopped) return;
    if (depth == load) {
      place_rows(em, disks, survivors, rows, loads, row_idx + 1, cells);
      return;
    }
    for (std::size_t i = next;
         i + (load - depth) <= survivors.size(); ++i) {
      cells.push_back(row * em.g.n + survivors[i]);
      self(self, i + 1, depth + 1);
      cells.pop_back();
    }
  };
  recurse(recurse, 0, 0);
}

void for_each_subset(std::size_t universe, std::size_t size,
                     std::vector<std::size_t>& combo,
                     const std::function<void()>& leaf, bool& stopped) {
  if (combo.size() == size) {
    leaf();
    return;
  }
  const std::size_t next = combo.empty() ? 0 : combo.back() + 1;
  for (std::size_t i = next; i + (size - combo.size()) <= universe;
       ++i) {
    if (stopped) return;
    combo.push_back(i);
    for_each_subset(universe, size, combo, leaf, stopped);
    combo.pop_back();
  }
}

std::uint64_t enumerate_exact(
    const Geometry& g,
    const std::function<bool(const ScenarioClass&)>& visit) {
  Emitter em{g, visit};
  std::vector<std::size_t> disks;
  bool& stopped = em.stopped;
  for_each_subset(
      g.n, g.m, disks,
      [&] {
        std::vector<std::size_t> survivors;
        for (std::size_t c = 0; c < g.n; ++c) {
          if (!std::binary_search(disks.begin(), disks.end(), c)) {
            survivors.push_back(c);
          }
        }
        if (g.s == 0) {
          std::vector<std::size_t> none;
          em.emit(disks, none, none);
          return;
        }
        for (std::size_t z = 1; z <= std::min(g.s, g.r); ++z) {
          if (g.s > z * survivors.size()) continue;
          std::vector<std::size_t> rows;
          for_each_subset(
              g.r, z, rows,
              [&] {
                std::vector<std::size_t> parts;
                for_each_composition(
                    g.s, z, survivors.size(), parts,
                    [&](const std::vector<std::size_t>& loads) {
                      std::vector<std::size_t> cells;
                      place_rows(em, disks, survivors, rows, loads, 0,
                                 cells);
                      return !em.stopped;
                    });
              },
              em.stopped);
          if (em.stopped) break;
        }
      },
      stopped);
  return em.visited;
}

std::uint64_t stratified_seed(const Geometry& g, std::size_t stratum,
                              std::size_t sample) {
  std::uint64_t x = 0x5EA4C4CE11u;
  for (const std::uint64_t v :
       {std::uint64_t{g.n}, std::uint64_t{g.r}, std::uint64_t{g.m},
        std::uint64_t{g.s}, std::uint64_t{stratum},
        std::uint64_t{sample}}) {
    x ^= v + 0x9E3779B97F4A7C15u + (x << 6) + (x >> 2);
  }
  return x;
}

// Partial Fisher-Yates: the first `count` entries of a shuffled
// iota(size), sorted ascending.
std::vector<std::size_t> draw_subset(Rng& rng, std::size_t size,
                                     std::size_t count,
                                     std::vector<std::size_t>& pool) {
  pool.resize(size);
  for (std::size_t i = 0; i < size; ++i) pool[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.bounded(
                static_cast<std::uint64_t>(size - i)));
    std::swap(pool[i], pool[j]);
  }
  std::vector<std::size_t> out(pool.begin(), pool.begin() + count);
  std::sort(out.begin(), out.end());
  return out;
}

struct Stratum {
  std::size_t z = 0;
  std::vector<std::size_t> loads;  ///< ordered composition
};

std::vector<Stratum> strata_of(const Geometry& g) {
  std::vector<Stratum> out;
  if (g.s == 0) {
    out.push_back({0, {}});
    return out;
  }
  const std::size_t survivors = g.n - g.m;
  std::vector<std::size_t> parts;
  for (std::size_t z = 1; z <= std::min(g.s, g.r); ++z) {
    if (g.s > z * survivors) continue;
    for_each_composition(g.s, z, survivors, parts,
                         [&](const std::vector<std::size_t>& loads) {
                           out.push_back({z, loads});
                           return true;
                         });
  }
  return out;
}

std::uint64_t enumerate_stratified(
    const Geometry& g, std::uint64_t target,
    const std::function<bool(const ScenarioClass&)>& visit) {
  const std::vector<Stratum> strata = strata_of(g);
  if (strata.empty()) return 0;
  const std::uint64_t per_stratum =
      std::max<std::uint64_t>(2, (target * 13 / 10) / strata.size() + 1);
  Emitter em{g, visit};
  std::set<std::vector<std::size_t>> seen;
  std::vector<std::size_t> pool;
  for (std::uint64_t sample = 0;
       sample < per_stratum && !em.stopped && em.visited < target;
       ++sample) {
    for (std::size_t si = 0;
         si < strata.size() && !em.stopped && em.visited < target;
         ++si) {
      const Stratum& st = strata[si];
      Rng rng(stratified_seed(g, si, sample));
      std::vector<std::size_t> disks;
      std::vector<std::size_t> rows;
      if (sample == 0) {
        // Extremal low: everything clustered at the origin.
        for (std::size_t i = 0; i < g.m; ++i) disks.push_back(i);
        for (std::size_t i = 0; i < st.z; ++i) rows.push_back(i);
      } else if (sample == 1) {
        // Extremal high: clustered at the far edge (canonicalization
        // shifts it back; exercises the widest orbits).
        for (std::size_t i = 0; i < g.m; ++i)
          disks.push_back(g.n - g.m + i);
        for (std::size_t i = 0; i < st.z; ++i)
          rows.push_back(g.r - st.z + i);
      } else {
        disks = draw_subset(rng, g.n, g.m, pool);
        rows = draw_subset(rng, g.r, st.z, pool);
      }
      std::vector<std::size_t> survivors;
      for (std::size_t c = 0; c < g.n; ++c) {
        if (!std::binary_search(disks.begin(), disks.end(), c)) {
          survivors.push_back(c);
        }
      }
      std::vector<std::size_t> cells;
      for (std::size_t ri = 0; ri < st.z; ++ri) {
        std::vector<std::size_t> cols;
        if (sample == 0) {
          for (std::size_t i = 0; i < st.loads[ri]; ++i)
            cols.push_back(survivors[i]);
        } else if (sample == 1) {
          for (std::size_t i = 0; i < st.loads[ri]; ++i)
            cols.push_back(survivors[survivors.size() - 1 - i]);
        } else {
          const auto picks =
              draw_subset(rng, survivors.size(), st.loads[ri], pool);
          for (const std::size_t p : picks) cols.push_back(survivors[p]);
        }
        for (const std::size_t c : cols)
          cells.push_back(rows[ri] * g.n + c);
      }
      // Canonicalize: shift the whole pattern so its minimum involved
      // column is 0, then deduplicate.
      std::size_t min_col = disks.front();
      for (const std::size_t cell : cells)
        min_col = std::min(min_col, cell % g.n);
      for (std::size_t& d : disks) d -= min_col;
      for (std::size_t& cell : cells) cell -= min_col;
      std::sort(cells.begin(), cells.end());
      std::vector<std::size_t> key = disks;
      key.push_back(g.n);  // separator (never a column id)
      key.insert(key.end(), cells.begin(), cells.end());
      if (!seen.insert(std::move(key)).second) continue;
      em.emit(disks, cells, st.loads);
    }
  }
  return em.visited;
}

}  // namespace

void validate_geometry(const Geometry& g) {
  const auto fail = [&](const std::string& why) {
    throw std::invalid_argument(
        "search_coeff: degenerate SD geometry n=" + std::to_string(g.n) +
        " r=" + std::to_string(g.r) + " m=" + std::to_string(g.m) +
        " s=" + std::to_string(g.s) + " w=" + std::to_string(g.w) +
        ": " + why);
  };
  if (g.n == 0 || g.r == 0) fail("empty array");
  if (g.m == 0) fail("m == 0 (no disk parity)");
  if (g.m >= g.n) fail("m >= n leaves no surviving disks");
  if (g.s > (g.n - g.m) * g.r - 1) {
    fail("s exceeds the surviving cells (would loop forever sampling)");
  }
  const gf::Field& f = gf::field(g.w);  // throws for unsupported widths
  if (g.n * g.r > f.max_element()) fail("field too small for n*r symbols");
}

std::vector<std::size_t> ScenarioClass::blocks(const Geometry& g) const {
  std::vector<std::size_t> out;
  out.reserve(disks.size() * g.r + sectors.size());
  for (const std::size_t d : disks) {
    for (std::size_t row = 0; row < g.r; ++row) out.push_back(row * g.n + d);
  }
  out.insert(out.end(), sectors.begin(), sectors.end());
  std::sort(out.begin(), out.end());
  return out;
}

Census census(const Geometry& g) {
  Census c;
  c.maximal = universe(g, g.n);
  c.canonical = c.maximal - universe(g, g.n - 1);
  return c;
}

EnumerationPlan plan_enumeration(const Geometry& g,
                                 const EnumerateOptions& opts) {
  EnumerationPlan plan;
  plan.census = census(g);
  plan.exact = plan.census.canonical <= opts.exact_class_limit;
  plan.classes = plan.exact
                     ? plan.census.canonical
                     : std::min(plan.census.canonical,
                                opts.stratified_classes);
  return plan;
}

std::uint64_t enumerate_classes(
    const Geometry& g, const EnumerateOptions& opts,
    const std::function<bool(const ScenarioClass&)>& visit) {
  validate_geometry(g);
  const EnumerationPlan plan = plan_enumeration(g, opts);
  if (plan.exact) return enumerate_exact(g, visit);
  return enumerate_stratified(g, plan.classes, visit);
}

RankOracle::RankOracle(const Matrix& h) : h_(&h), f_(&h.field()) {
  basis_.reserve(h.rows());
  pivots_.reserve(h.rows());
}

bool RankOracle::add_column(std::size_t col) {
  const std::size_t rows = h_->rows();
  scratch_.resize(rows);
  for (std::size_t i = 0; i < rows; ++i) scratch_[i] = (*h_)(i, col);
  for (std::size_t k = 0; k < basis_.size(); ++k) {
    const gf::Element c = scratch_[pivots_[k]];
    if (c == 0) continue;
    const std::vector<gf::Element>& b = basis_[k];
    for (std::size_t i = 0; i < rows; ++i) {
      scratch_[i] = gf::Field::add(scratch_[i], f_->mul(c, b[i]));
    }
  }
  std::size_t pivot = rows;
  for (std::size_t i = 0; i < rows; ++i) {
    if (scratch_[i] != 0) {
      pivot = i;
      break;
    }
  }
  if (pivot == rows) return false;
  const gf::Element scale = f_->inv(scratch_[pivot]);
  for (std::size_t i = 0; i < rows; ++i) {
    scratch_[i] = f_->mul(scratch_[i], scale);
  }
  basis_.push_back(scratch_);
  pivots_.push_back(pivot);
  return true;
}

void RankOracle::truncate(std::size_t size) {
  basis_.resize(std::min(size, basis_.size()));
  pivots_.resize(basis_.size());
}

}  // namespace ppm::coeffsearch
