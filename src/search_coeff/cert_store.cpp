#include "search_coeff/cert_store.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/metrics.h"

namespace ppm::coeffsearch {
namespace {

constexpr const char* kMagic = "PPMCERT";
constexpr const char* kCertSuffix = ".cert";
constexpr const char* kQuarantineSuffix = ".quarantined";
constexpr const char* kTmpSuffix = ".tmp";

bool read_file(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

// Splits "PPMCERT <version> <crc32 hex> <len>\n<payload>" and checks
// the seal. Returns false with `why` set on any structural problem.
bool unseal(const std::string& raw, std::string* payload,
            std::string* why) {
  const std::size_t nl = raw.find('\n');
  if (nl == std::string::npos) {
    *why = "missing header line";
    return false;
  }
  const std::string header = raw.substr(0, nl);
  char magic[16] = {};
  std::uint64_t version = 0;
  std::uint64_t crc = 0;
  std::uint64_t len = 0;
  if (std::sscanf(header.c_str(), "%15s %" SCNu64 " %" SCNx64 " %" SCNu64,
                  magic, &version, &crc, &len) != 4 ||
      std::string(magic) != kMagic) {
    *why = "malformed header";
    return false;
  }
  if (version != kCertFormatVersion) {
    *why = "unsupported record version";
    return false;
  }
  *payload = raw.substr(nl + 1);
  if (payload->size() != len) {
    *why = "length mismatch (torn write?)";
    return false;
  }
  if (crc32(payload->data(), payload->size()) != crc) {
    *why = "CRC mismatch";
    return false;
  }
  return true;
}

}  // namespace

CertStore::CertStore(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

std::string CertStore::record_filename(const Geometry& g) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "sd-n%zu-r%zu-m%zu-s%zu-w%u%s", g.n,
                g.r, g.m, g.s, g.w, kCertSuffix);
  return buf;
}

bool CertStore::put(const Certificate& cert) {
  const std::string payload = cert.to_json();
  char header[64];
  std::snprintf(header, sizeof header, "%s %" PRIu64 " %08" PRIx64
                " %zu\n",
                kMagic, kCertFormatVersion,
                static_cast<std::uint64_t>(
                    crc32(payload.data(), payload.size())),
                payload.size());
  std::scoped_lock lock(mutex_);
  const std::filesystem::path path =
      dir_ / record_filename(cert.geometry);
  const std::filesystem::path tmp = path.string() + kTmpSuffix;
  bool wrote = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out) {
      out << header << payload;
      out.flush();
      wrote = out.good();
    }
  }
  std::error_code ec;
  if (!wrote) {
    // Never leave a torn temporary behind a failed write.
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  search_metrics().cert_stores.add();
  return true;
}

void CertStore::quarantine(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::rename(path, path.string() + kQuarantineSuffix, ec);
  search_metrics().cert_quarantined.add();
}

CertStore::LoadResult CertStore::load_path(
    const std::filesystem::path& path, const Geometry* expect_geometry,
    const CertifyOptions* require, Certificate* out, std::string* why) {
  SearchMetrics& metrics = search_metrics();
  std::string raw;
  if (!read_file(path, &raw)) return LoadResult::kMissing;
  const auto fail = [&](const std::string& reason) {
    if (why) *why = reason;
    quarantine(path);
    metrics.cert_load_failures.add();
    return LoadResult::kRejected;
  };
  std::string payload;
  std::string reason;
  if (!unseal(raw, &payload, &reason)) return fail(reason);
  Certificate record;
  if (!parse_certificate(payload, &record, &reason)) return fail(reason);
  if (record.family != "sd") return fail("unknown family");
  if (expect_geometry != nullptr &&
      !(record.geometry == *expect_geometry)) {
    return fail("geometry mismatch");
  }
  if (require != nullptr) {
    if (record.exact_class_limit < require->exact_class_limit ||
        record.stratified_classes < require->stratified_classes ||
        record.plan_budget < require->plan_budget ||
        (require->optimize_xor && !record.optimize_xor)) {
      return fail("recorded proof weaker than required");
    }
  }
  // Zero trust: re-run the full certification with the record's own
  // options and demand exact equality. Anything the record claims that
  // the oracles do not reproduce — census, strata, profiles, the tuple
  // itself — quarantines it.
  CertifyOptions reproof;
  reproof.exact_class_limit = record.exact_class_limit;
  reproof.stratified_classes = record.stratified_classes;
  reproof.plan_budget = record.plan_budget;
  reproof.optimize_xor = record.optimize_xor;
  // Characterization mode is observationally identical for perfect
  // tuples and required to reproduce best-effort records; the exact
  // equality check below pins the recorded deficiency counts either
  // way, so a record claiming perfection for an imperfect tuple (or
  // vice versa) still quarantines.
  reproof.allow_deficient = true;
  CertifyResult fresh;
  try {
    fresh = certify_tuple(record.geometry, record.tuple, reproof);
  } catch (const std::invalid_argument&) {
    return fail("recorded geometry is degenerate");
  }
  if (!fresh.certified) {
    return fail("re-proof refuted the record: " + fresh.reason);
  }
  if (!(fresh.cert == record)) {
    return fail("re-proof disagrees with the record");
  }
  if (out != nullptr) *out = std::move(fresh.cert);
  metrics.cert_loads.add();
  return LoadResult::kLoaded;
}

CertStore::LoadResult CertStore::load(const Geometry& g,
                                      const CertifyOptions& require,
                                      Certificate* out,
                                      std::string* why) {
  std::scoped_lock lock(mutex_);
  return load_path(dir_ / record_filename(g), &g, &require, out, why);
}

std::vector<CertStore::Entry> CertStore::list() const {
  std::scoped_lock lock(mutex_);
  std::vector<Entry> out;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = de.path().filename().string();
    const bool quarantined = name.ends_with(kQuarantineSuffix);
    if (!name.ends_with(kCertSuffix) && !quarantined) continue;
    Entry e;
    e.filename = name;
    std::error_code size_ec;
    e.bytes = std::filesystem::file_size(de.path(), size_ec);
    e.quarantined = quarantined;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) {
              return a.filename < b.filename;
            });
  return out;
}

CertStore::CheckReport CertStore::check() {
  std::scoped_lock lock(mutex_);
  CheckReport report;
  std::vector<std::filesystem::path> records;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(dir_, ec)) {
    if (de.path().filename().string().ends_with(kCertSuffix)) {
      records.push_back(de.path());
    }
  }
  std::sort(records.begin(), records.end());
  for (const auto& path : records) {
    ++report.checked;
    std::string why;
    if (load_path(path, nullptr, nullptr, nullptr, &why) ==
        LoadResult::kLoaded) {
      ++report.verified;
    } else {
      ++report.quarantined;
    }
  }
  return report;
}

CertStore::GcReport CertStore::gc(std::size_t keep_quarantined) {
  std::scoped_lock lock(mutex_);
  GcReport report;
  std::vector<std::filesystem::path> quarantined;
  std::vector<std::filesystem::path> doomed_tmp;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = de.path().filename().string();
    if (name.ends_with(kQuarantineSuffix)) {
      quarantined.push_back(de.path());
    } else if (name.ends_with(kTmpSuffix)) {
      doomed_tmp.push_back(de.path());
    }
  }
  // Newest quarantined files (write time, then name) survive as the
  // forensic window; everything older goes.
  std::sort(quarantined.begin(), quarantined.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              std::error_code ta_ec;
              std::error_code tb_ec;
              const auto ta = std::filesystem::last_write_time(a, ta_ec);
              const auto tb = std::filesystem::last_write_time(b, tb_ec);
              if (ta != tb) return ta > tb;
              return a.filename().string() > b.filename().string();
            });
  for (std::size_t i = keep_quarantined; i < quarantined.size(); ++i) {
    std::error_code rm;
    if (std::filesystem::remove(quarantined[i], rm)) {
      ++report.removed_quarantined;
    }
  }
  for (const auto& p : doomed_tmp) {
    std::error_code rm;
    if (std::filesystem::remove(p, rm)) ++report.removed_tmp;
  }
  return report;
}

namespace {

std::mutex g_default_store_mutex;
std::shared_ptr<CertStore> g_default_store;
bool g_default_store_initialized = false;

}  // namespace

std::shared_ptr<CertStore> default_cert_store() {
  std::scoped_lock lock(g_default_store_mutex);
  if (!g_default_store_initialized) {
    g_default_store_initialized = true;
    if (const char* dir = std::getenv("PPM_CERT_DIR");
        dir != nullptr && *dir != '\0') {
      g_default_store = std::make_shared<CertStore>(dir);
    }
  }
  return g_default_store;
}

void set_default_cert_store(std::shared_ptr<CertStore> store) {
  std::scoped_lock lock(g_default_store_mutex);
  g_default_store_initialized = true;
  g_default_store = std::move(store);
}

}  // namespace ppm::coeffsearch
