#include "search_coeff/search.h"

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <tuple>

#include "codes/sd_code.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "matrix/matrix.h"
#include "parallel/thread_pool.h"

namespace ppm::coeffsearch {
namespace {

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t stream_seed(const Geometry& g, std::uint64_t seed) {
  std::uint64_t h = 0x5eac4c0eff1c1e75ULL;
  h = hash_combine(h, g.n);
  h = hash_combine(h, g.r);
  h = hash_combine(h, g.m);
  h = hash_combine(h, g.s);
  h = hash_combine(h, g.w);
  h = hash_combine(h, seed);
  return h;
}

/// Partial Fisher–Yates draw of `k` distinct values from [0, n) — O(n)
/// setup, O(k) draws, no rejection loop. Result is unsorted.
std::vector<std::size_t> sample_distinct(Rng& rng, std::size_t k,
                                         std::size_t n) {
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng.bounded(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

/// Deterministic candidate-tuple stream for one geometry. Candidate 0
/// is the consecutive-powers tuple; later candidates pin a_0 = 1 and
/// draw the remaining exponents from a seeded Rng, biased toward
/// residues coprime with 2^w - 1 (maximal multiplicative order, the
/// same heuristic Plank's published SD tuples follow). Duplicates are
/// skipped; the stream ends after `budget` distinct tuples or when the
/// attempt bound runs dry.
class CandidateStream {
 public:
  CandidateStream(const Geometry& g, const gf::Field& f,
                  std::uint64_t seed, std::uint64_t budget)
      : g_(g),
        f_(&f),
        base_(stream_seed(g, seed)),
        budget_(budget),
        attempts_left_(budget * 8 + 16) {}

  bool next(std::vector<gf::Element>* out) {
    const std::size_t count = g_.m + g_.s;
    const std::uint64_t order = f_->max_element();  // |GF(2^w)*|
    while (emitted_ < budget_ && attempts_left_ > 0) {
      --attempts_left_;
      std::vector<gf::Element> tuple(count);
      if (index_ == 0) {
        for (std::size_t q = 0; q < count; ++q) {
          tuple[q] = f_->exp2(q);
        }
      } else {
        Rng rng(hash_combine(base_, index_));
        tuple[0] = f_->exp2(0);
        bool ok = true;
        for (std::size_t q = 1; q < count && ok; ++q) {
          ok = false;
          for (int tries = 0; tries < 64; ++tries) {
            std::uint64_t e = 1 + rng.bounded(order - 1);
            if (std::gcd(e, order) != 1 && tries < 8) continue;
            const gf::Element a = f_->exp2(e);
            if (std::find(tuple.begin(), tuple.begin() + q, a) !=
                tuple.begin() + q) {
              continue;
            }
            tuple[q] = a;
            ok = true;
            break;
          }
        }
        if (!ok) {
          ++index_;
          continue;
        }
      }
      ++index_;
      if (!seen_.insert(tuple).second) continue;
      ++emitted_;
      *out = std::move(tuple);
      return true;
    }
    return false;
  }

 private:
  Geometry g_;
  const gf::Field* f_;
  std::uint64_t base_;
  std::uint64_t budget_;
  std::uint64_t attempts_left_;
  std::uint64_t index_ = 0;
  std::uint64_t emitted_ = 0;
  std::set<std::vector<gf::Element>> seen_;
};

/// Early-exit rank prescreen: the encoding scenario plus
/// `scenario_count` Fisher–Yates-sampled maximal failure scenarios,
/// all through one incremental RankOracle. Cheap enough to run on
/// every candidate; no plan is built here.
bool prescreen_tuple(const Geometry& g, const gf::Field& f,
                     std::span<const gf::Element> tuple,
                     std::uint64_t scenario_count,
                     std::uint64_t scenario_seed) {
  const Matrix h =
      SDCode::build_parity_check(f, g.n, g.r, g.m, g.s, tuple);
  RankOracle oracle(h);
  for (const std::size_t col :
       SDCode::parity_block_ids(g.n, g.r, g.m, g.s)) {
    if (!oracle.add_column(col)) return false;  // encoding rank deficient
  }
  const std::size_t survivors_n = g.n - g.m;
  for (std::uint64_t k = 0; k < scenario_count; ++k) {
    Rng rng(hash_combine(scenario_seed, k));
    std::vector<std::size_t> disks = sample_distinct(rng, g.m, g.n);
    std::sort(disks.begin(), disks.end());
    // Flat bitmap membership instead of per-draw linear scans.
    std::vector<char> failed(g.n, 0);
    for (const std::size_t d : disks) failed[d] = 1;
    std::vector<std::size_t> survivors;
    survivors.reserve(survivors_n);
    for (std::size_t c = 0; c < g.n; ++c) {
      if (!failed[c]) survivors.push_back(c);
    }
    const std::vector<std::size_t> cells =
        sample_distinct(rng, g.s, survivors_n * g.r);
    oracle.truncate(0);
    bool ok = true;
    for (const std::size_t d : disks) {
      for (std::size_t row = 0; row < g.r && ok; ++row) {
        ok = oracle.add_column(row * g.n + d);
      }
      if (!ok) break;
    }
    for (std::size_t i = 0; i < cells.size() && ok; ++i) {
      const std::size_t row = cells[i] / survivors_n;
      const std::size_t col = survivors[cells[i] % survivors_n];
      ok = oracle.add_column(row * g.n + col);
    }
    if (!ok) return false;
  }
  return true;
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(8u, hw == 0 ? 1u : hw);
}

/// Deterministic tie-break order: worst critical path, then worst
/// work, then optimized op count, then the tuple itself.
bool candidate_less(const CertifiedCandidate& a,
                    const CertifiedCandidate& b) {
  return std::tie(a.cert.worst_case.critical_path, a.cert.worst_case.work,
                  a.cert.worst_case.optimized_ops, a.tuple) <
         std::tie(b.cert.worst_case.critical_path, b.cert.worst_case.work,
                  b.cert.worst_case.optimized_ops, b.tuple);
}

bool dominates(const CertifiedCandidate& a, const CertifiedCandidate& b) {
  const ClassProfile& x = a.cert.worst_case;
  const ClassProfile& y = b.cert.worst_case;
  return x.critical_path <= y.critical_path && x.work <= y.work &&
         (x.critical_path < y.critical_path || x.work < y.work);
}

}  // namespace

SearchResult search_best(const Geometry& g, const SearchOptions& opts) {
  validate_geometry(g);
  SearchResult result;
  SearchMetrics& metrics = search_metrics();
  const gf::Field& f = gf::field(g.w);
  const std::uint64_t seed_base = stream_seed(g, opts.seed);

  // 1. Draw the deterministic candidate stream.
  std::vector<std::vector<gf::Element>> candidates;
  {
    CandidateStream stream(g, f, opts.seed, opts.candidate_budget);
    std::vector<gf::Element> tuple;
    while (stream.next(&tuple)) candidates.push_back(std::move(tuple));
  }
  result.candidates_considered = candidates.size();
  metrics.tuples_considered.add(candidates.size());

  // 2. Rank prescreen, fanned out across a pool. Each slot is written
  //    by exactly one task; the countdown latch publishes them all.
  std::vector<char> pass(candidates.size(), 0);
  const unsigned threads = resolve_threads(opts.threads);
  const auto screen = [&](std::size_t i) {
    bool ok = false;
    try {
      ok = prescreen_tuple(g, f, candidates[i], opts.prescreen_scenarios,
                           hash_combine(seed_base, 0x70726573ULL + i));
    } catch (...) {
      ok = false;
    }
    pass[i] = ok ? 1 : 0;
  };
  if (threads > 1 && candidates.size() > 1) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::condition_variable cv;
    std::size_t pending = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      pool.submit([&, i] {
        screen(i);
        std::scoped_lock lock(mu);
        if (--pending == 0) cv.notify_one();
      });
    }
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return pending == 0; });
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) screen(i);
  }

  // 3. Certify survivors in stream order until the budget is spent.
  std::vector<CertifiedCandidate> certified;
  CertifyOptions certify = opts.certify;
  certify.threads = opts.threads;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!pass[i]) {
      ++result.rank_pruned;
      continue;
    }
    if (certified.size() >= opts.certify_budget) break;
    CertifyResult proof = certify_tuple(g, candidates[i], certify);
    if (proof.certified) {
      ++result.certified;
      certified.push_back({std::move(candidates[i]), std::move(proof.cert)});
    } else {
      ++result.refuted;
    }
  }
  metrics.tuples_prescreened.add(result.rank_pruned);

  if (certified.empty()) {
    result.reason = "no candidate certified within budget (" +
                    std::to_string(result.rank_pruned) +
                    " prescreen-pruned, " +
                    std::to_string(result.refuted) + " refuted)";
    return result;
  }

  // 4. Pareto frontier under (worst critical path, worst work).
  std::sort(certified.begin(), certified.end(), candidate_less);
  for (const CertifiedCandidate& c : certified) {
    const bool dominated =
        std::any_of(result.pareto.begin(), result.pareto.end(),
                    [&](const CertifiedCandidate& p) {
                      return dominates(p, c);
                    });
    if (!dominated) result.pareto.push_back(c);
  }
  result.found = true;
  result.best = result.pareto.front();
  return result;
}

CertifyResult certify_first(const Geometry& g, const SearchOptions& opts) {
  validate_geometry(g);
  SearchMetrics& metrics = search_metrics();
  const gf::Field& f = gf::field(g.w);
  const std::uint64_t seed_base = stream_seed(g, opts.seed);
  CertifyOptions certify = opts.certify;
  certify.threads = opts.threads;

  CandidateStream stream(g, f, opts.seed, opts.candidate_budget);
  std::vector<gf::Element> tuple;
  std::uint64_t index = 0;
  std::uint64_t pruned = 0;
  std::uint64_t refuted = 0;
  CertifyResult last;
  while (stream.next(&tuple)) {
    metrics.tuples_considered.add();
    const std::uint64_t i = index++;
    if (!prescreen_tuple(g, f, tuple, opts.prescreen_scenarios,
                         hash_combine(seed_base, 0x70726573ULL + i))) {
      ++pruned;
      metrics.tuples_prescreened.add();
      continue;
    }
    last = certify_tuple(g, tuple, certify);
    if (last.certified) return last;
    ++refuted;
  }
  CertifyResult out;
  out.certified = false;
  out.reason = "candidate budget exhausted without a certified tuple (" +
               std::to_string(pruned) + " prescreen-pruned, " +
               std::to_string(refuted) + " refuted" +
               (last.reason.empty() ? std::string()
                                    : "; last: " + last.reason) +
               ")";
  return out;
}

}  // namespace ppm::coeffsearch
