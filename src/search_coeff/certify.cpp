#include "search_coeff/certify.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analyze_hazard/hazard.h"
#include "codec/codec.h"
#include "codes/sd_code.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "decode/scenario.h"
#include "parallel/thread_pool.h"
#include "verify_plan/plan_verify.h"

namespace ppm::coeffsearch {
namespace {

constexpr std::size_t kChunkClasses = 1024;
constexpr std::size_t kSerialSweepLimit = 4096;

using StratumKey = std::pair<std::size_t, std::vector<std::size_t>>;

struct StratumAgg {
  std::uint64_t classes = 0;
  std::uint64_t members = 0;
  std::uint64_t deficient_classes = 0;
  std::uint64_t deficient_members = 0;
};

struct IndexedClass {
  std::uint64_t index = 0;
  ScenarioClass cls;
};

// Shared state of one rank sweep. Aggregation is order-independent
// (sums and an index-minimum), so the result is deterministic for any
// thread count.
struct SweepState {
  bool allow_deficient = false;  // set before the sweep, read-only after
  std::mutex mu;
  std::condition_variable cv;
  std::size_t inflight = 0;
  std::atomic<std::uint64_t> min_fail{UINT64_MAX};
  ScenarioClass fail_class;  // class at min_fail; guarded by mu
  std::map<StratumKey, StratumAgg> strata;  // guarded by mu

  bool failed() const {
    return !allow_deficient &&
           min_fail.load(std::memory_order_relaxed) != UINT64_MAX;
  }
};

// Rank-checks one chunk of classes against H. Reuses the disk-set
// basis across consecutive classes (the enumerator emits classes
// grouped by disk set).
void sweep_chunk(const Geometry& g, const Matrix& h,
                 const std::vector<IndexedClass>& chunk,
                 SweepState& state) {
  RankOracle oracle(h);
  std::vector<std::size_t> current_disks;
  bool disks_ok = false;
  std::size_t disk_mark = 0;
  std::map<StratumKey, StratumAgg> local;
  std::uint64_t local_fail = UINT64_MAX;
  const ScenarioClass* local_fail_class = nullptr;
  for (const IndexedClass& entry : chunk) {
    if (!state.allow_deficient &&
        entry.index > state.min_fail.load(std::memory_order_relaxed)) {
      continue;  // a strictly earlier failure is already recorded
    }
    const ScenarioClass& cls = entry.cls;
    if (cls.disks != current_disks) {
      current_disks = cls.disks;
      oracle.truncate(0);
      disks_ok = true;
      for (const std::size_t d : cls.disks) {
        for (std::size_t row = 0; row < g.r && disks_ok; ++row) {
          disks_ok = oracle.add_column(row * g.n + d);
        }
      }
      disk_mark = oracle.basis_size();
    }
    bool ok = disks_ok;
    if (ok) {
      for (const std::size_t b : cls.sectors) {
        if (!oracle.add_column(b)) {
          ok = false;
          break;
        }
      }
      oracle.truncate(disk_mark);
    }
    StratumAgg& agg = local[{cls.z, cls.row_loads}];
    if (!ok) {
      if (entry.index < local_fail) {
        local_fail = entry.index;
        local_fail_class = &entry.cls;
      }
      // In characterization mode the class still counts toward the
      // stratum census — its deficiency is tallied, not hidden.
      if (state.allow_deficient) {
        ++agg.classes;
        agg.members += cls.members;
        ++agg.deficient_classes;
        agg.deficient_members += cls.members;
      }
      continue;
    }
    ++agg.classes;
    agg.members += cls.members;
  }
  std::scoped_lock lock(state.mu);
  for (auto& [key, agg] : local) {
    StratumAgg& into = state.strata[key];
    into.classes += agg.classes;
    into.members += agg.members;
    into.deficient_classes += agg.deficient_classes;
    into.deficient_members += agg.deficient_members;
  }
  if (local_fail != UINT64_MAX &&
      local_fail < state.min_fail.load(std::memory_order_relaxed)) {
    state.min_fail.store(local_fail, std::memory_order_relaxed);
    state.fail_class = *local_fail_class;
  }
}

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(8u, std::max(1u, hw));
}

void profile_max(ClassProfile& into, const ClassProfile& p) {
  into.cost = std::max(into.cost, p.cost);
  into.work = std::max(into.work, p.work);
  into.critical_path = std::max(into.critical_path, p.critical_path);
  into.max_width = std::max(into.max_width, p.max_width);
  into.optimized_ops = std::max(into.optimized_ops, p.optimized_ops);
}

// ---------------------------------------------------------------------------
// JSON emission. Integers, booleans, one string field and fixed nesting
// only — mirrors the append_kv style of common/metrics.cpp.

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ',';
}

void append_bool(std::string& out, const char* key, bool v,
                 bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += v ? "true" : "false";
  if (comma) out += ',';
}

void append_profile(std::string& out, const char* key,
                    const ClassProfile& p, bool comma = true) {
  out += '"';
  out += key;
  out += "\":{";
  append_u64(out, "cost", p.cost);
  append_u64(out, "work", p.work);
  append_u64(out, "critical_path", p.critical_path);
  append_u64(out, "max_width", p.max_width);
  append_u64(out, "optimized_ops", p.optimized_ops, false);
  out += '}';
  if (comma) out += ',';
}

// ---------------------------------------------------------------------------
// Minimal JSON parser for the certificate format: objects, arrays,
// unsigned integers, true/false and plain (escape-free) strings.

struct JsonValue {
  enum class Kind { kNumber, kBool, kString, kArray, kObject };
  Kind kind = Kind::kNumber;
  std::uint64_t number = 0;
  bool boolean = false;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue* out, std::string* why) {
    if (!value(out)) {
      if (why) *why = error_.empty() ? "malformed JSON" : error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      if (why) *why = "trailing bytes after JSON value";
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool fail(const char* what) {
    error_ = std::string(what) + " at byte " + std::to_string(pos_);
    return false;
  }

  bool value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end");
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') return string_value(out);
    if (c == 't' || c == 'f') return boolean(out);
    if (std::isdigit(static_cast<unsigned char>(c))) return number(out);
    return fail("unexpected character");
  }

  bool object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue key;
      if (pos_ >= text_.size() || text_[pos_] != '"' ||
          !string_value(&key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail("expected ':'");
      }
      ++pos_;
      JsonValue val;
      if (!value(&val)) return false;
      out->fields.emplace_back(std::move(key.text), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!value(&item)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool string_value(JsonValue* out) {
    out->kind = JsonValue::Kind::kString;
    ++pos_;  // '"'
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') return fail("escape sequences unsupported");
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    out->text = std::string(text_.substr(start, pos_ - start));
    ++pos_;  // closing '"'
    return true;
  }

  bool boolean(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.substr(pos_, 5) == "false") {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return fail("expected true/false");
  }

  bool number(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    std::uint64_t v = 0;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const std::uint64_t digit =
          static_cast<std::uint64_t>(text_[pos_] - '0');
      if (v > (UINT64_MAX - digit) / 10) return fail("number overflow");
      v = v * 10 + digit;
      ++pos_;
    }
    if (pos_ == start) return fail("expected digits");
    out->number = v;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool read_u64(const JsonValue& obj, std::string_view key,
              std::uint64_t* out, std::string* why) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) {
    if (why) *why = "missing integer field '" + std::string(key) + "'";
    return false;
  }
  *out = v->number;
  return true;
}

bool read_bool(const JsonValue& obj, std::string_view key, bool* out,
               std::string* why) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kBool) {
    if (why) *why = "missing boolean field '" + std::string(key) + "'";
    return false;
  }
  *out = v->boolean;
  return true;
}

bool read_profile(const JsonValue& obj, std::string_view key,
                  ClassProfile* out, std::string* why) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kObject) {
    if (why) *why = "missing profile object '" + std::string(key) + "'";
    return false;
  }
  return read_u64(*v, "cost", &out->cost, why) &&
         read_u64(*v, "work", &out->work, why) &&
         read_u64(*v, "critical_path", &out->critical_path, why) &&
         read_u64(*v, "max_width", &out->max_width, why) &&
         read_u64(*v, "optimized_ops", &out->optimized_ops, why);
}

}  // namespace

std::string Certificate::to_json() const {
  std::string out;
  out.reserve(512 + strata.size() * 160);
  out += '{';
  append_u64(out, "format", kCertFormatVersion);
  append_u64(out, "enumerator_version", kEnumeratorVersion);
  append_u64(out, "certifier_version", kCertifierVersion);
  out += "\"family\":\"" + family + "\",";
  append_u64(out, "n", geometry.n);
  append_u64(out, "r", geometry.r);
  append_u64(out, "m", geometry.m);
  append_u64(out, "s", geometry.s);
  append_u64(out, "w", geometry.w);
  out += "\"tuple\":[";
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(tuple[i]);
  }
  out += "],";
  append_u64(out, "exact_class_limit", exact_class_limit);
  append_u64(out, "stratified_classes", stratified_classes);
  append_u64(out, "plan_budget", plan_budget);
  append_bool(out, "optimize_xor", optimize_xor);
  append_bool(out, "exact", exact);
  out += "\"universe\":{";
  append_u64(out, "maximal", maximal);
  append_u64(out, "canonical", canonical);
  append_u64(out, "enumerated", enumerated);
  append_u64(out, "rank_checked", rank_checked);
  append_u64(out, "plans_proven", plans_proven);
  append_u64(out, "deficient_classes", deficient_classes);
  append_u64(out, "deficient_members", deficient_members, false);
  out += "},";
  append_profile(out, "encoding", encoding);
  append_profile(out, "worst_case", worst_case);
  out += "\"strata\":[";
  for (std::size_t i = 0; i < strata.size(); ++i) {
    const StratumReport& st = strata[i];
    if (i != 0) out += ',';
    out += '{';
    append_u64(out, "z", st.z);
    out += "\"loads\":[";
    for (std::size_t j = 0; j < st.loads.size(); ++j) {
      if (j != 0) out += ',';
      out += std::to_string(st.loads[j]);
    }
    out += "],";
    append_u64(out, "classes", st.classes);
    append_u64(out, "members", st.members);
    append_u64(out, "plans_proven", st.plans_proven);
    append_u64(out, "deficient_classes", st.deficient_classes);
    append_u64(out, "deficient_members", st.deficient_members);
    append_profile(out, "worst", st.worst, false);
    out += '}';
  }
  out += "]}";
  return out;
}

bool parse_certificate(std::string_view json, Certificate* out,
                       std::string* why) {
  JsonValue root;
  JsonParser parser(json);
  if (!parser.parse(&root, why)) return false;
  if (root.kind != JsonValue::Kind::kObject) {
    if (why) *why = "certificate is not a JSON object";
    return false;
  }
  std::uint64_t format = 0;
  std::uint64_t enumerator = 0;
  std::uint64_t certifier = 0;
  if (!read_u64(root, "format", &format, why) ||
      !read_u64(root, "enumerator_version", &enumerator, why) ||
      !read_u64(root, "certifier_version", &certifier, why)) {
    return false;
  }
  if (format != kCertFormatVersion || enumerator != kEnumeratorVersion ||
      certifier != kCertifierVersion) {
    if (why) *why = "oracle version mismatch";
    return false;
  }
  Certificate cert;
  const JsonValue* family = root.find("family");
  if (family == nullptr || family->kind != JsonValue::Kind::kString) {
    if (why) *why = "missing family";
    return false;
  }
  cert.family = family->text;
  std::uint64_t n = 0;
  std::uint64_t r = 0;
  std::uint64_t m = 0;
  std::uint64_t s = 0;
  std::uint64_t w = 0;
  if (!read_u64(root, "n", &n, why) || !read_u64(root, "r", &r, why) ||
      !read_u64(root, "m", &m, why) || !read_u64(root, "s", &s, why) ||
      !read_u64(root, "w", &w, why)) {
    return false;
  }
  cert.geometry = Geometry{static_cast<std::size_t>(n),
                           static_cast<std::size_t>(r),
                           static_cast<std::size_t>(m),
                           static_cast<std::size_t>(s),
                           static_cast<unsigned>(w)};
  const JsonValue* tuple = root.find("tuple");
  if (tuple == nullptr || tuple->kind != JsonValue::Kind::kArray) {
    if (why) *why = "missing tuple";
    return false;
  }
  for (const JsonValue& e : tuple->items) {
    if (e.kind != JsonValue::Kind::kNumber ||
        e.number > UINT32_MAX) {
      if (why) *why = "malformed tuple element";
      return false;
    }
    cert.tuple.push_back(static_cast<gf::Element>(e.number));
  }
  if (!read_u64(root, "exact_class_limit", &cert.exact_class_limit, why) ||
      !read_u64(root, "stratified_classes", &cert.stratified_classes,
                why) ||
      !read_u64(root, "plan_budget", &cert.plan_budget, why) ||
      !read_bool(root, "optimize_xor", &cert.optimize_xor, why) ||
      !read_bool(root, "exact", &cert.exact, why)) {
    return false;
  }
  const JsonValue* universe = root.find("universe");
  if (universe == nullptr ||
      universe->kind != JsonValue::Kind::kObject) {
    if (why) *why = "missing universe";
    return false;
  }
  if (!read_u64(*universe, "maximal", &cert.maximal, why) ||
      !read_u64(*universe, "canonical", &cert.canonical, why) ||
      !read_u64(*universe, "enumerated", &cert.enumerated, why) ||
      !read_u64(*universe, "rank_checked", &cert.rank_checked, why) ||
      !read_u64(*universe, "plans_proven", &cert.plans_proven, why) ||
      !read_u64(*universe, "deficient_classes", &cert.deficient_classes,
                why) ||
      !read_u64(*universe, "deficient_members", &cert.deficient_members,
                why)) {
    return false;
  }
  if (!read_profile(root, "encoding", &cert.encoding, why) ||
      !read_profile(root, "worst_case", &cert.worst_case, why)) {
    return false;
  }
  const JsonValue* strata = root.find("strata");
  if (strata == nullptr || strata->kind != JsonValue::Kind::kArray) {
    if (why) *why = "missing strata";
    return false;
  }
  for (const JsonValue& entry : strata->items) {
    if (entry.kind != JsonValue::Kind::kObject) {
      if (why) *why = "malformed stratum";
      return false;
    }
    StratumReport st;
    std::uint64_t z = 0;
    if (!read_u64(entry, "z", &z, why)) return false;
    st.z = static_cast<std::size_t>(z);
    const JsonValue* loads = entry.find("loads");
    if (loads == nullptr || loads->kind != JsonValue::Kind::kArray) {
      if (why) *why = "malformed stratum loads";
      return false;
    }
    for (const JsonValue& l : loads->items) {
      if (l.kind != JsonValue::Kind::kNumber) {
        if (why) *why = "malformed stratum load";
        return false;
      }
      st.loads.push_back(static_cast<std::size_t>(l.number));
    }
    if (!read_u64(entry, "classes", &st.classes, why) ||
        !read_u64(entry, "members", &st.members, why) ||
        !read_u64(entry, "plans_proven", &st.plans_proven, why) ||
        !read_u64(entry, "deficient_classes", &st.deficient_classes,
                  why) ||
        !read_u64(entry, "deficient_members", &st.deficient_members,
                  why) ||
        !read_profile(entry, "worst", &st.worst, why)) {
      return false;
    }
    cert.strata.push_back(std::move(st));
  }
  *out = std::move(cert);
  return true;
}

CertifyResult certify_tuple(const Geometry& g,
                            std::span<const gf::Element> tuple,
                            const CertifyOptions& opts) {
  validate_geometry(g);
  Timer clock;
  SearchMetrics& metrics = search_metrics();
  CertifyResult out;
  const auto reject = [&](std::string reason,
                          std::vector<std::size_t> blocks = {}) {
    out.certified = false;
    out.reason = std::move(reason);
    out.first_failure = std::move(blocks);
    metrics.tuples_rejected.add();
    metrics.certify_seconds.record_seconds(clock.seconds());
    return out;
  };

  const gf::Field& f = gf::field(g.w);
  if (tuple.size() != g.m + g.s) {
    return reject("tuple arity != m+s");
  }
  for (const gf::Element e : tuple) {
    if (e == 0 || e > f.max_element()) {
      return reject("tuple element outside GF(2^w) \\ {0}");
    }
  }

  const Matrix h =
      SDCode::build_parity_check(f, g.n, g.r, g.m, g.s, tuple);

  // Encoding system first: parity blocks must be computable at all.
  const std::vector<std::size_t> parity =
      SDCode::parity_block_ids(g.n, g.r, g.m, g.s);
  {
    RankOracle enc(h);
    for (const std::size_t b : parity) {
      if (!enc.add_column(b)) {
        return reject("encoding system rank deficient", parity);
      }
    }
  }

  const EnumerateOptions eopts{opts.exact_class_limit,
                               opts.stratified_classes};
  const EnumerationPlan eplan = plan_enumeration(g, eopts);
  const std::uint64_t plan_stride =
      opts.plan_budget == 0
          ? 0
          : std::max<std::uint64_t>(
                1, (std::max<std::uint64_t>(eplan.classes, 1) +
                    opts.plan_budget - 1) /
                       opts.plan_budget);

  // --- Rank sweep: every enumerated class must keep H full column
  // rank on its faulty blocks. Chunked fan-out over a local pool.
  SweepState state;
  state.allow_deficient = opts.allow_deficient;
  std::vector<ScenarioClass> plan_set;
  const unsigned threads = resolve_threads(opts.threads);
  const bool pooled =
      threads > 1 && eplan.classes > kSerialSweepLimit;
  std::unique_ptr<ThreadPool> pool;
  if (pooled) pool = std::make_unique<ThreadPool>(threads);
  const std::size_t max_inflight = static_cast<std::size_t>(threads) * 3;

  std::vector<IndexedClass> pending;
  pending.reserve(kChunkClasses);
  std::uint64_t index = 0;
  const auto flush = [&] {
    if (pending.empty()) return;
    auto chunk = std::make_shared<std::vector<IndexedClass>>(
        std::move(pending));
    pending.clear();
    pending.reserve(kChunkClasses);
    if (!pooled) {
      sweep_chunk(g, h, *chunk, state);
      return;
    }
    {
      std::unique_lock lock(state.mu);
      state.cv.wait(lock,
                    [&] { return state.inflight < max_inflight; });
      ++state.inflight;
    }
    pool->submit([&, chunk] {
      sweep_chunk(g, h, *chunk, state);
      {
        std::scoped_lock lock(state.mu);
        --state.inflight;
      }
      state.cv.notify_all();
    });
  };

  enumerate_classes(g, eopts, [&](const ScenarioClass& cls) {
    if (plan_stride != 0 && index % plan_stride == 0 &&
        plan_set.size() < opts.plan_budget) {
      plan_set.push_back(cls);
    }
    pending.push_back({index, cls});
    ++index;
    if (pending.size() >= kChunkClasses) flush();
    return !state.failed();
  });
  flush();
  if (pooled) {
    std::unique_lock lock(state.mu);
    state.cv.wait(lock, [&] { return state.inflight == 0; });
  }
  metrics.classes_rank_checked.add(index);

  if (state.failed()) {
    ScenarioClass fail;
    {
      std::scoped_lock lock(state.mu);
      fail = state.fail_class;
    }
    return reject("scenario rank deficient (class " +
                      std::to_string(state.min_fail.load()) + ")",
                  fail.blocks(g));
  }

  std::uint64_t deficient_classes = 0;
  std::uint64_t deficient_members = 0;
  for (const auto& [key, agg] : state.strata) {
    deficient_classes += agg.deficient_classes;
    deficient_members += agg.deficient_members;
  }

  // Internal consistency of the symmetry quotient: in exact mode the
  // canonical classes and their orbit sizes must reproduce the
  // closed-form census exactly. A mismatch is an enumerator bug, and
  // no certificate may be issued over it.
  std::uint64_t classes_total = 0;
  std::uint64_t members_total = 0;
  for (const auto& [key, agg] : state.strata) {
    classes_total += agg.classes;
    members_total += agg.members;
  }
  if (classes_total != index) {
    return reject("enumerator stratum accounting mismatch");
  }
  if (eplan.exact && (index != eplan.census.canonical ||
                      members_total != eplan.census.maximal)) {
    return reject("census cross-check failed (symmetry accounting)");
  }

  // --- Plan proofs: drive the selected classes through the full
  // static-analysis stack and accumulate worst-case profiles.
  ClassProfile encoding_profile;
  ClassProfile worst;
  std::map<StratumKey, std::pair<std::uint64_t, ClassProfile>>
      stratum_plans;  // key -> (plans proven, worst profile)
  std::uint64_t plans_proven = 0;
  if (opts.plan_budget > 0) {
    const std::vector<gf::Element> coeffs(tuple.begin(), tuple.end());
    const SDCode code(g.n, g.r, g.m, g.s, g.w, coeffs);
    Codec::Options copts;
    copts.threads = 1;
    copts.cache_capacity = 16;
    copts.optimize_xor = opts.optimize_xor;
    Codec codec(code, copts);

    enum class Proof { kProven, kUndecodable, kFailed };
    const auto prove = [&](const std::vector<std::size_t>& blocks,
                           ClassProfile* profile) -> Proof {
      const FailureScenario scenario(blocks);
      std::shared_ptr<const CachedPlan> plan;
      try {
        plan = codec.plan_for(scenario);
      } catch (const std::logic_error&) {
        // PPM_VERIFY_PLANS builds throw on violations.
        return Proof::kFailed;
      }
      if (plan == nullptr) return Proof::kUndecodable;
      const planverify::VerifyResult vr =
          planverify::verify_plan(code, scenario, *plan);
      if (!vr.ok()) return Proof::kFailed;
      const hazard::Analysis an = hazard::analyze_plan(*plan);
      if (!an.violations.empty()) return Proof::kFailed;
      const PlanProfile& p = plan->profile();
      if (!p.hazard_free) return Proof::kFailed;
      profile->cost = p.cost;
      profile->work = p.work;
      profile->critical_path = p.critical_path;
      profile->max_width = p.max_width;
      std::uint64_t optimized = 0;
      for (const PlanSchedule& sched : plan->schedules()) {
        optimized += sched.schedule.cost();
      }
      profile->optimized_ops = optimized == 0 ? p.cost : optimized;
      return Proof::kProven;
    };

    if (prove(parity, &encoding_profile) != Proof::kProven) {
      return reject("encoding plan failed static proof", parity);
    }
    profile_max(worst, encoding_profile);

    for (const ScenarioClass& cls : plan_set) {
      ClassProfile profile;
      const Proof proof = prove(cls.blocks(g), &profile);
      if (proof == Proof::kUndecodable && opts.allow_deficient) {
        continue;  // a counted deficiency, not a proof failure
      }
      if (proof != Proof::kProven) {
        return reject("scenario plan failed static proof",
                      cls.blocks(g));
      }
      ++plans_proven;
      profile_max(worst, profile);
      auto& [count, stratum_worst] =
          stratum_plans[{cls.z, cls.row_loads}];
      ++count;
      profile_max(stratum_worst, profile);
    }
    metrics.plans_proven.add(plans_proven + 1);
  }

  // --- Assemble the certificate.
  Certificate cert;
  cert.geometry = g;
  cert.family = "sd";
  cert.tuple.assign(tuple.begin(), tuple.end());
  cert.exact_class_limit = opts.exact_class_limit;
  cert.stratified_classes = opts.stratified_classes;
  cert.plan_budget = opts.plan_budget;
  cert.optimize_xor = opts.optimize_xor;
  cert.exact = eplan.exact;
  cert.maximal = eplan.census.maximal;
  cert.canonical = eplan.census.canonical;
  cert.enumerated = index;
  cert.rank_checked = index;
  cert.plans_proven = plans_proven;
  cert.deficient_classes = deficient_classes;
  cert.deficient_members = deficient_members;
  cert.encoding = encoding_profile;
  cert.worst_case = worst;
  for (const auto& [key, agg] : state.strata) {
    StratumReport st;
    st.z = key.first;
    st.loads = key.second;
    st.classes = agg.classes;
    st.members = agg.members;
    st.deficient_classes = agg.deficient_classes;
    st.deficient_members = agg.deficient_members;
    if (const auto it = stratum_plans.find(key);
        it != stratum_plans.end()) {
      st.plans_proven = it->second.first;
      st.worst = it->second.second;
    }
    cert.strata.push_back(std::move(st));
  }

  out.certified = true;
  out.cert = std::move(cert);
  metrics.tuples_certified.add();
  metrics.certify_seconds.record_seconds(clock.seconds());
  return out;
}

}  // namespace ppm::coeffsearch
