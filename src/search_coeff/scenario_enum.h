// Exhaustive worst-case scenario enumeration for SD/PMDS coefficient
// certification (search_coeff/).
//
// An SD^{m,s}_{n,r} code must decode every scenario of m whole-disk
// failures plus s additional sector failures on the surviving disks.
// Certifying a coefficient tuple therefore means proving full column
// rank of H restricted to the faulty blocks for *every* such pattern.
// Two structural reductions keep that tractable at paper scale:
//
//  * Maximality. A column subset of a full-column-rank matrix keeps
//    full column rank, so only maximal patterns (exactly m disks and
//    exactly s sectors) need proving; every smaller failure embeds in
//    one of them.
//
//  * Column-translation symmetry. Every row of H has the geometric
//    form H[row, l] = a_q^l (disk-parity rows restrict l to one
//    stripe row). Shifting a whole pattern right by one column
//    (disks and sector cells jointly, no wraparound) multiplies each
//    H-row of the restricted submatrix by the nonzero scalar a_q, so
//    rank — and, because the nonzero structure is unchanged, the
//    partition/plan shape — is invariant. Patterns are enumerated in
//    canonical form (minimum involved column == 0); `members` records
//    the orbit size, and the sum of orbit sizes over canonical classes
//    must reproduce the closed-form universe count exactly. That
//    identity is re-checked by the certifier on every run.
//
// The class universe is stratified by z = number of distinct rows the
// s sectors occupy and by the (descending) multiset of per-row sector
// loads; certificates report per-stratum aggregates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "gf/galois_field.h"
#include "matrix/matrix.h"

namespace ppm::coeffsearch {

/// SD-family code geometry. `w` is the GF(2^w) symbol width.
struct Geometry {
  std::size_t n = 0;  ///< disks (columns)
  std::size_t r = 0;  ///< rows per disk
  std::size_t m = 0;  ///< whole-disk failures tolerated
  std::size_t s = 0;  ///< additional sector failures tolerated
  unsigned w = 8;

  bool operator==(const Geometry&) const = default;
};

/// Throws std::invalid_argument for degenerate geometries (m == 0,
/// m >= n, more sectors than surviving cells, field too small) instead
/// of letting enumeration or sampling loop forever.
void validate_geometry(const Geometry& g);

/// One canonical worst-case failure class: `disks` failed whole disks
/// (column ids) plus `sectors` failed blocks (block ids, row-major
/// `row * n + col`) on surviving disks. Canonical form has minimum
/// involved column 0; `members` is the orbit size under column
/// translation (n minus the maximum involved column).
struct ScenarioClass {
  std::vector<std::size_t> disks;
  std::vector<std::size_t> sectors;
  std::size_t z = 0;                    ///< distinct sector rows
  std::vector<std::size_t> row_loads;   ///< per-row sector counts, descending
  std::uint64_t members = 1;

  /// All faulty block ids (disk blocks expanded), sorted ascending.
  std::vector<std::size_t> blocks(const Geometry& g) const;
};

/// Closed-form census of the maximal-scenario universe. With
/// U(k) = C(k,m) * sum_z C(r,z) * sum_{compositions of s into z
/// positive parts} prod_i C(k-m, load_i), the universe is U(n) and the
/// canonical (translation-reduced) class count is U(n) - U(n-1):
/// classes whose minimum involved column is >= 1 biject onto patterns
/// over the last n-1 columns.
struct Census {
  std::uint64_t maximal = 0;
  std::uint64_t canonical = 0;
};
Census census(const Geometry& g);

struct EnumerateOptions {
  /// Enumerate every canonical class when the census stays at or below
  /// this; beyond it fall back to a deterministic stratified cover.
  std::uint64_t exact_class_limit = 1'500'000;
  /// Target size of the stratified cover (canonicalized + deduplicated).
  std::uint64_t stratified_classes = 60'000;
};

struct EnumerationPlan {
  Census census;
  bool exact = true;
  /// Upper bound on classes the walk will visit (exact: the canonical
  /// census; stratified: the requested cover size).
  std::uint64_t classes = 0;
};
EnumerationPlan plan_enumeration(const Geometry& g,
                                 const EnumerateOptions& opts);

/// Streams canonical classes in a deterministic order (grouped by disk
/// set so rank oracles can reuse the disk basis). The visitor returns
/// false to stop early. Returns the number of classes visited.
std::uint64_t enumerate_classes(
    const Geometry& g, const EnumerateOptions& opts,
    const std::function<bool(const ScenarioClass&)>& visit);

/// Incremental column-independence oracle over a fixed parity-check
/// matrix. Columns are appended one at a time into a growing reduced
/// basis (non-destructive Gaussian elimination); `truncate` rolls the
/// basis back so one disk-set prefix can be shared across every sector
/// placement. Turns the per-scenario O((mr+s)^3) dense rank into
/// ~O(s * (mr+s)^2) incremental work.
class RankOracle {
 public:
  explicit RankOracle(const Matrix& h);

  /// Appends column `col` of H. Returns true iff it is independent of
  /// the columns inserted so far (and was added to the basis).
  bool add_column(std::size_t col);

  std::size_t basis_size() const { return basis_.size(); }

  /// Rolls back to an earlier basis size (from `basis_size()`).
  void truncate(std::size_t size);

 private:
  const Matrix* h_;
  const gf::Field* f_;
  std::vector<std::vector<gf::Element>> basis_;  ///< pivot-normalized rows
  std::vector<std::size_t> pivots_;
  std::vector<gf::Element> scratch_;
};

}  // namespace ppm::coeffsearch
