// Continuous scrub & proactive repair (ppm::scrub).
//
// A latent sector error is damage nobody has read yet: the stripe still
// answers foreground decodes, but its effective redundancy has silently
// shrunk, and the next *visible* failure may land on a stripe that can no
// longer absorb it. The Scrubber closes that window. It patrols a fleet
// of stripes behind the io::BlockSource seam and runs a three-stage
// cycle:
//
//  1. SWEEP  — every block of every stripe is read (token-bucket paced,
//              scrub/rate_limiter.h) and digest-checked against the
//              fleet's expected CRC32s; unreadable or mismatching blocks
//              are classified *latent*. Periodically a healthy stripe
//              additionally gets a verify-decode spot check: one block is
//              re-derived from the parity relations via
//              Codec::decode_resilient and byte-verified, catching
//              cross-block parity inconsistency that per-block digests
//              cannot see.
//  2. RANK   — damaged stripes are ordered by how close they are to
//              unrecoverability, using the codec's own partition and
//              capability model: stripes whose combined faulty set is
//              already undecodable sort first, then by the probed number
//              of additional erasures until failure, then by how much of
//              the damage is coupled (needs the global H_rest solve
//              rather than an isolated independent group), then by raw
//              damage.
//  3. REPAIR — most-at-risk first, each stripe's damage is re-checked
//              (another repairer may have healed it — at-most-once),
//              journaled as a write-ahead intent (scrub/journal.h),
//              decoded through the full resilient ladder, written back
//              through the stripe's BlockWriter, and the journal record
//              sealed committed claiming exactly the blocks that were
//              digest-verified and durably written.
//
// After a crash, replay() performs zero-trust recovery: every journal
// record is re-loaded (seal + parse re-checked), every *claimed-repaired*
// block of committed records is re-read and re-verified against the
// fleet's expected digests — records whose claims do not hold are
// quarantined, never believed — and intent-only records (the crash
// evidence) surface their blocks for the next sweep/repair cycle.
//
// All scrub I/O — sweep reads, repair survivor fetches, replay
// re-verification — pays one shared TokenBucket, so a scrub running
// beside a DecodeServer stays inside its byte budget and the serving
// p99 gate (docs/SERVING.md) keeps passing.
//
// Thread-safety: sweep/rank/repair/run_cycle/replay may be called
// concurrently from several threads over one Scrubber; the per-stripe
// claim set serializes repairs of the same stripe (at-most-once) while
// distinct stripes repair in parallel. See docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "decode/scenario.h"
#include "io/block_source.h"
#include "scrub/journal.h"
#include "scrub/rate_limiter.h"

namespace ppm::scrub {

/// One stripe under scrub patrol. The source/writer/blocks pointers must
/// outlive the Scrubber; `blocks` is caller-owned scratch (one region per
/// block) that repairs decode into before writing back — it is not the
/// storage itself.
struct ScrubTarget {
  io::BlockSource* source = nullptr;  ///< required: where scrub reads
  io::BlockWriter* writer = nullptr;  ///< optional: where repairs land
  std::uint8_t* const* blocks = nullptr;  ///< decode scratch, one per block
  std::vector<std::uint32_t> expected_crc;  ///< per-block truth digests
  FailureScenario known_faulty;  ///< damage already known before scrubbing
  std::string stripe_id;         ///< journal identity (sanitized on write)
};

/// Knobs of the scrub cycle. Defaults are test-friendly; deployments tune
/// the rate to their medium.
struct ScrubOptions {
  /// Extra read attempts per block during sweeps (beyond the first)
  /// before the block is classified unreadable.
  std::size_t sweep_read_retries = 1;

  /// Run a verify-decode spot check on one healthy stripe every
  /// `spot_check_every` sweeps (round-robin over stripes and blocks).
  /// 0 disables spot checks.
  std::size_t spot_check_every = 0;

  /// Token-bucket budget for all scrub I/O. rate <= 0 means unpaced.
  double rate_bytes_per_sec = 0.0;
  std::size_t burst_bytes = std::size_t{1} << 20;

  /// Resilience ladder options for repair decodes.
  ResilienceOptions repair;

  /// Crash-injection test hook: after publishing this many journal
  /// intents, the repair pass stops dead — no decode, no commit —
  /// simulating a crash between begin() and commit(). 0 disables.
  std::size_t crash_after_intents = 0;
};

/// Damage found in one stripe by one sweep.
struct StripeDamage {
  std::size_t stripe = 0;           ///< index into the scrubbed fleet
  std::string stripe_id;
  std::vector<std::size_t> latent;  ///< newly detected damaged blocks
  std::size_t known = 0;            ///< known-faulty blocks (not re-scanned)
  std::size_t read_failures = 0;
  std::size_t crc_mismatches = 0;
  bool spot_checked = false;
  bool spot_check_ok = false;
};

struct SweepReport {
  std::vector<StripeDamage> stripes;  ///< one entry per scrubbed stripe
  std::size_t blocks_scanned = 0;
  std::size_t read_failures = 0;
  std::size_t crc_mismatches = 0;
  std::size_t latent_total = 0;     ///< Σ latent across stripes
  std::size_t spot_checks = 0;
  std::size_t spot_check_failures = 0;
  double seconds = 0.0;

  /// Stripes with at least one latent or known-faulty block.
  std::size_t damaged() const;
};

/// Risk assessment of one damaged stripe (see Scrubber::rank).
struct RiskAssessment {
  std::size_t stripe = 0;
  std::string stripe_id;
  std::vector<std::size_t> faulty;  ///< known ∪ latent, sorted
  bool decodable = false;
  /// Probed distance to unrecoverability: 0 = already undecodable,
  /// 1 = some single additional erasure kills it, 2 = survives any one.
  std::size_t erasures_to_failure = 0;
  /// Damaged blocks whose recovery needs the coupled H_rest solve — the
  /// partition could not isolate them into an independent group.
  std::size_t coupled_faulty = 0;
  double risk = 0.0;  ///< scalar for display; the sort is lexicographic
};

/// Outcome of one stripe's repair attempt.
struct RepairOutcome {
  std::size_t stripe = 0;
  std::string stripe_id;
  bool attempted = false;
  bool skipped = false;    ///< healed or claimed by a concurrent repairer
  bool complete = false;   ///< every damaged block recovered and verified
  bool partial = false;
  std::vector<std::size_t> repaired;      ///< recovered + digest-verified
  std::vector<std::size_t> written_back;  ///< durably written via writer
  std::uint64_t journal_seq = 0;  ///< 0 when no journal record was begun
  bool committed = false;         ///< journal record sealed committed
};

struct RepairReport {
  std::vector<RepairOutcome> outcomes;
  std::size_t attempted = 0;
  std::size_t completed = 0;
  std::size_t partial = 0;
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::size_t blocks_repaired = 0;
  bool crashed_for_test = false;  ///< crash_after_intents hook fired
};

struct CycleReport {
  SweepReport sweep;
  std::vector<RiskAssessment> ranking;
  RepairReport repair;
};

/// Zero-trust journal replay result (see Scrubber::replay).
struct ReplayReport {
  std::size_t records = 0;           ///< records that passed seal + parse
  std::size_t verified_commits = 0;  ///< committed, every claim re-verified
  std::size_t false_claims = 0;      ///< claimed-repaired blocks that were not
  std::size_t quarantined = 0;       ///< records renamed aside this replay
  std::size_t pending_intents = 0;   ///< intent-only records (crash evidence)
  std::size_t unmatched = 0;         ///< records naming no scrubbed stripe
  /// Blocks named by pending intents that are still damaged right now —
  /// the work the crashed repairer left behind, as (stripe, block) pairs.
  std::vector<std::pair<std::size_t, std::size_t>> outstanding;
};

class Scrubber {
 public:
  /// The codec and journal (optional, may be null) must outlive the
  /// scrubber; the codec's code geometry must match every target.
  Scrubber(Codec& codec, ScrubOptions options,
           RepairJournal* journal = nullptr);

  /// Register a stripe for patrol. Not thread-safe against concurrent
  /// sweeps — build the fleet first, then scrub.
  void add_target(ScrubTarget target);

  std::size_t target_count() const { return targets_.size(); }
  const ScrubTarget& target(std::size_t i) const { return targets_[i]; }

  /// Stage 1: read + digest-check every block of every stripe.
  SweepReport sweep();

  /// Stage 2: risk-rank the sweep's damaged stripes, most-at-risk first.
  std::vector<RiskAssessment> rank(const SweepReport& report);

  /// Stage 3: repair in ranking order (at-most-once per stripe, journaled
  /// when a journal is attached).
  RepairReport repair(const std::vector<RiskAssessment>& ranking);

  /// sweep → rank → repair, one full patrol cycle.
  CycleReport run_cycle();

  /// Crash recovery: zero-trust re-verification of every journal record
  /// against the registered fleet. No-op (empty report) without a journal.
  ReplayReport replay();

  const TokenBucket& bucket() const { return bucket_; }

 private:
  /// Current damage of `target`: known faulty plus every block of
  /// `candidates` that is unreadable or digest-mismatched *right now*.
  std::vector<std::size_t> recheck_damage(
      const ScrubTarget& target, const std::vector<std::size_t>& candidates);

  /// Repair one stripe; appends the outcome. Returns false when the
  /// crash hook fired and the pass must stop.
  bool repair_stripe(const RiskAssessment& risk, RepairReport& report);

  Codec* codec_;
  ScrubOptions options_;
  RepairJournal* journal_;
  std::vector<ScrubTarget> targets_;
  TokenBucket bucket_;

  std::mutex claim_mutex_;
  std::set<std::size_t> in_flight_;  ///< stripes being repaired right now

  std::atomic<std::uint64_t> sweep_seq_{0};    ///< spot-check round-robin
  std::atomic<std::uint64_t> intents_{0};      ///< crash-hook trigger count
};

}  // namespace ppm::scrub
