// Token-bucket pacing for scrub I/O (ppm::scrub).
//
// A continuous scrub must never starve the serving path it shares a
// fleet with: docs/SERVING.md gates the serve campaign on a p99 ratio,
// and an unthrottled sweep reading every block of every stripe would
// blow straight through it. The TokenBucket meters scrub bytes against a
// refill rate with a bounded burst; RateLimitedSource is the BlockSource
// adapter that pays for each read before issuing it, so everything the
// scrubber fetches — sweep reads, repair survivor reads, replay
// re-verification — is paced by one budget while foreground decode
// traffic bypasses the bucket entirely.
//
// The bucket's core is a pure state machine (acquire_at) driven by
// caller-supplied elapsed nanoseconds, so unit tests exercise the refill
// and debt math without sleeping; acquire() is the sleeping wrapper over
// an internal steady clock. Thread-safe: acquisitions are serialized by
// an internal mutex (the sleep happens outside it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

#include "common/timer.h"
#include "io/block_source.h"

namespace ppm::scrub {

class TokenBucket {
 public:
  /// A bucket refilling at `bytes_per_second` with at most `burst_bytes`
  /// banked. Rate <= 0 means unlimited (acquire never waits).
  TokenBucket(double bytes_per_second, std::size_t burst_bytes)
      : rate_(bytes_per_second),
        burst_(static_cast<double>(burst_bytes)),
        tokens_(static_cast<double>(burst_bytes)) {}

  /// Account an acquisition of `bytes` at elapsed time `now_ns` and
  /// return how long the caller must wait before proceeding. The bucket
  /// runs a debt model: the acquisition is always granted, tokens may go
  /// negative, and the wait is the time until the debt refills — so
  /// consumers of oversized requests wait proportionally instead of
  /// deadlocking on a burst they can never bank.
  std::chrono::nanoseconds acquire_at(std::size_t bytes, std::int64_t now_ns);

  /// Acquire against the bucket's own steady clock and sleep out the
  /// returned wait. This is what RateLimitedSource calls per read.
  void acquire(std::size_t bytes);

  bool unlimited() const { return rate_ <= 0.0; }

  /// Acquisitions that had to wait (cumulative, relaxed).
  std::size_t waits() const {
    return waits_.load(std::memory_order_relaxed);
  }

 private:
  double rate_;   ///< bytes per second; <= 0 disables pacing
  double burst_;  ///< token cap in bytes
  double tokens_;
  std::int64_t last_ns_ = 0;
  Timer clock_;
  std::mutex mutex_;  ///< guards tokens_ and last_ns_
  std::atomic<std::size_t> waits_{0};
};

/// BlockSource adapter that pays `bytes` tokens before every read. The
/// inner source and the bucket must outlive the adapter; several
/// adapters may share one bucket (one scrub budget across a fleet).
class RateLimitedSource : public io::BlockSource {
 public:
  RateLimitedSource(io::BlockSource& inner, TokenBucket& bucket)
      : inner_(&inner), bucket_(&bucket) {}

  std::size_t block_count() const override { return inner_->block_count(); }
  std::size_t block_bytes() const override { return inner_->block_bytes(); }
  io::ReadStatus read(std::size_t block, std::uint8_t* dst,
                      std::size_t bytes) override {
    bucket_->acquire(bytes);
    return inner_->read(block, dst, bytes);
  }

 private:
  io::BlockSource* inner_;
  TokenBucket* bucket_;
};

}  // namespace ppm::scrub
