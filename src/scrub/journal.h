// Crash-consistent write-ahead repair journal (ppm::scrub).
//
// Every scrub repair is journaled in two phases:
//
//   1. begin()  — before any repair work, an *intent* record naming the
//                 stripe and the damaged blocks is published;
//   2. commit() — after the repair completed, was digest-verified, and
//                 (when a writer is attached) written back, the record
//                 is atomically replaced by a *committed* one claiming
//                 exactly the blocks that were verified repaired.
//
// Records are one file each, sealed like the plan/cert stores:
// `PPMSCRUBJ <version> <crc32 hex> <len>\n<payload>`, written to a
// `.tmp` sibling and atomically renamed into place — a crash at any
// instant leaves either the previous record state or the next, never a
// torn file a reader could trust. A crash between begin and commit
// leaves an intent-only record: that is the evidence Scrubber::replay
// feeds on after restart.
//
// The trust model mirrors docs/PLAN_STORE.md: nothing read back from
// disk is believed. load_all() re-checks the seal and bounds-checks the
// parse, renaming failures aside as `<name>.quarantined`; replay
// re-verifies every *claimed-repaired* block byte-for-byte against the
// fleet's expected digests and quarantines records whose claims do not
// hold, rather than trusting the record (scrub/scrub.h). gc() collects
// committed records, stale temporaries and aged-out quarantined files
// (newest `keep_quarantined` survive for forensics); intent records are
// never collected — they are actionable until a commit supersedes them.
//
// Thread-safety: all operations are serialized by an internal mutex;
// begin/commit never throw on I/O failure (the repair path is a serving
// path) — they count scrub.journal_store_failures and return failure.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ppm::scrub {

/// One journal record as trusted after the zero-trust load.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::string stripe_id;
  bool committed = false;               ///< false: write-ahead intent only
  std::vector<std::size_t> blocks;      ///< damaged (intent) / repaired
  std::vector<std::uint32_t> crc;       ///< expected CRC32 per block
};

class RepairJournal {
 public:
  /// Opens (creating if needed) the journal directory and resumes the
  /// sequence counter past every record already on disk.
  explicit RepairJournal(std::filesystem::path directory);

  /// Publish a write-ahead intent for repairing `blocks` of `stripe_id`
  /// (`crc[i]` is the expected digest of `blocks[i]`). Returns the
  /// record's sequence number, or nullopt on I/O failure.
  std::optional<std::uint64_t> begin(const std::string& stripe_id,
                                     const std::vector<std::size_t>& blocks,
                                     const std::vector<std::uint32_t>& crc);

  /// Seal record `seq` as committed, claiming exactly `repaired` (with
  /// digests `crc`) — possibly a subset of the intent for partial
  /// repairs. Only records begun by this instance can commit. False on
  /// unknown seq or I/O failure; the intent survives either way.
  bool commit(std::uint64_t seq, const std::vector<std::size_t>& repaired,
              const std::vector<std::uint32_t>& crc);

  /// Zero-trust load of every record: seal re-checked, parse
  /// bounds-checked; files failing either are quarantined. Sorted by seq.
  std::vector<JournalRecord> load_all();

  /// Rename record `seq` aside as `.quarantined` (replay calls this when
  /// a committed record's claims fail re-verification).
  bool quarantine(std::uint64_t seq);

  /// One journal file as seen on disk (no verification).
  struct Entry {
    std::string filename;
    std::uintmax_t bytes = 0;
    bool quarantined = false;
  };
  std::vector<Entry> list() const;

  /// Collect committed records, stale `.tmp` files, and all but the
  /// newest `keep_quarantined` quarantined files. Intents are kept.
  struct GcReport {
    std::size_t removed_committed = 0;
    std::size_t removed_quarantined = 0;
    std::size_t removed_tmp = 0;
  };
  GcReport gc(std::size_t keep_quarantined = 0);

  const std::filesystem::path& directory() const { return dir_; }

  /// Canonical record file name for a sequence number.
  static std::string record_filename(std::uint64_t seq);

  /// The identifier a stripe id is journaled under (whitespace and
  /// non-portable characters mapped to '_'). Replay matches targets to
  /// records through this.
  static std::string sanitize(const std::string& stripe_id);

 private:
  std::filesystem::path record_path(std::uint64_t seq) const;
  bool write_record(const JournalRecord& record);

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, JournalRecord> pending_;  ///< intents we begun
};

}  // namespace ppm::scrub
