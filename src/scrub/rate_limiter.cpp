#include "scrub/rate_limiter.h"

#include <thread>

#include "common/metrics.h"

namespace ppm::scrub {

std::chrono::nanoseconds TokenBucket::acquire_at(std::size_t bytes,
                                                 std::int64_t now_ns) {
  if (unlimited() || bytes == 0) return std::chrono::nanoseconds{0};
  const std::lock_guard<std::mutex> lock(mutex_);
  if (now_ns > last_ns_) {
    tokens_ += rate_ * static_cast<double>(now_ns - last_ns_) * 1e-9;
    if (tokens_ > burst_) tokens_ = burst_;
    last_ns_ = now_ns;
  }
  tokens_ -= static_cast<double>(bytes);
  if (tokens_ >= 0.0) return std::chrono::nanoseconds{0};
  waits_.fetch_add(1, std::memory_order_relaxed);
  const double wait_ns = -tokens_ / rate_ * 1e9;
  return std::chrono::nanoseconds{static_cast<std::int64_t>(wait_ns)};
}

void TokenBucket::acquire(std::size_t bytes) {
  const auto wait = acquire_at(bytes, clock_.nanos());
  if (wait.count() > 0) {
    scrub_metrics().rate_limit_waits.add();
    std::this_thread::sleep_for(wait);
  }
}

}  // namespace ppm::scrub
