#include "scrub/journal.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/crc32.h"
#include "common/metrics.h"

namespace ppm::scrub {
namespace {

constexpr const char* kMagic = "PPMSCRUBJ";
constexpr std::uint64_t kFormatVersion = 1;
constexpr const char* kRecordSuffix = ".scrubj";
constexpr const char* kQuarantineSuffix = ".quarantined";
constexpr const char* kTmpSuffix = ".tmp";
// Parse cap on list lengths: no stripe has this many blocks; a record
// claiming more is hostile or rotten, not big.
constexpr std::size_t kMaxBlocks = 1u << 20;

bool read_file(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return in.good() || in.eof();
}

// Splits "PPMSCRUBJ <version> <crc32 hex> <len>\n<payload>" and checks
// the seal.
bool unseal(const std::string& raw, std::string* payload) {
  const std::size_t nl = raw.find('\n');
  if (nl == std::string::npos) return false;
  const std::string header = raw.substr(0, nl);
  char magic[16] = {};
  std::uint64_t version = 0;
  std::uint64_t crc = 0;
  std::uint64_t len = 0;
  if (std::sscanf(header.c_str(), "%15s %" SCNu64 " %" SCNx64 " %" SCNu64,
                  magic, &version, &crc, &len) != 4 ||
      std::string(magic) != kMagic) {
    return false;
  }
  if (version != kFormatVersion) return false;
  *payload = raw.substr(nl + 1);
  if (payload->size() != len) return false;
  return crc32(payload->data(), payload->size()) == crc;
}

std::string serialize(const JournalRecord& record) {
  std::string out;
  out += "seq ";
  out += std::to_string(record.seq);
  out += "\nstripe ";
  out += RepairJournal::sanitize(record.stripe_id);
  out += "\nstate ";
  out += record.committed ? "committed" : "intent";
  out += "\nblocks";
  for (const std::size_t b : record.blocks) {
    out += " ";
    out += std::to_string(b);
  }
  out += "\ncrc";
  for (const std::uint32_t c : record.crc) {
    char buf[16];
    std::snprintf(buf, sizeof buf, " %08x", c);
    out += buf;
  }
  out += "\n";
  return out;
}

// Bounds-checked parse of an unsealed payload. The seal already proved
// integrity; this proves *shape* — nothing read here is trusted to be
// well-formed.
bool parse(const std::string& payload, JournalRecord* out) {
  std::istringstream in(payload);
  std::string line;
  bool have_seq = false;
  bool have_state = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "seq") {
      if (!(ls >> out->seq)) return false;
      have_seq = true;
    } else if (key == "stripe") {
      if (!(ls >> out->stripe_id)) return false;
    } else if (key == "state") {
      std::string state;
      if (!(ls >> state)) return false;
      if (state == "committed") {
        out->committed = true;
      } else if (state == "intent") {
        out->committed = false;
      } else {
        return false;
      }
      have_state = true;
    } else if (key == "blocks") {
      std::size_t b = 0;
      while (ls >> b) {
        if (out->blocks.size() >= kMaxBlocks) return false;
        out->blocks.push_back(b);
      }
      if (!ls.eof()) return false;
    } else if (key == "crc") {
      std::string tok;
      while (ls >> tok) {
        if (out->crc.size() >= kMaxBlocks) return false;
        char* end = nullptr;
        const unsigned long v = std::strtoul(tok.c_str(), &end, 16);
        if (end == tok.c_str() || *end != '\0') return false;
        out->crc.push_back(static_cast<std::uint32_t>(v));
      }
      if (!ls.eof()) return false;
    } else {
      return false;  // unknown key: not a record this version wrote
    }
  }
  return have_seq && have_state && out->blocks.size() == out->crc.size();
}

}  // namespace

RepairJournal::RepairJournal(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Resume the sequence past everything on disk — including quarantined
  // files, so a rebuilt record can never collide with crash evidence.
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    std::uint64_t seq = 0;
    if (std::sscanf(name.c_str(), "rep-%016" SCNx64, &seq) == 1 &&
        seq >= next_seq_) {
      next_seq_ = seq + 1;
    }
  }
}

// Journal identifiers travel inside the sealed payload as one
// whitespace-free token.
std::string RepairJournal::sanitize(const std::string& stripe_id) {
  std::string out = stripe_id.empty() ? std::string{"stripe"} : stripe_id;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                    c == '.' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

std::string RepairJournal::record_filename(std::uint64_t seq) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "rep-%016" PRIx64 "%s", seq, kRecordSuffix);
  return buf;
}

std::filesystem::path RepairJournal::record_path(std::uint64_t seq) const {
  return dir_ / record_filename(seq);
}

bool RepairJournal::write_record(const JournalRecord& record) try {
  const std::string payload = serialize(record);
  char header[64];
  std::snprintf(header, sizeof header, "%s %" PRIu64 " %08" PRIx64 " %zu\n",
                kMagic, kFormatVersion,
                static_cast<std::uint64_t>(
                    crc32(payload.data(), payload.size())),
                payload.size());
  const std::filesystem::path path = record_path(record.seq);
  const std::filesystem::path tmp = path.string() + kTmpSuffix;
  bool written = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (out) {
      out << header << payload;
      out.flush();
      written = out.good();
    }
  }
  std::error_code ec;
  if (!written) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
} catch (...) {
  // The repair path is a serving path: journal I/O failures are counted,
  // never thrown.
  return false;
}

std::optional<std::uint64_t> RepairJournal::begin(
    const std::string& stripe_id, const std::vector<std::size_t>& blocks,
    const std::vector<std::uint32_t>& crc) {
  if (blocks.size() != crc.size()) return std::nullopt;
  const std::lock_guard<std::mutex> lock(mutex_);
  JournalRecord record;
  record.seq = next_seq_;
  record.stripe_id = RepairJournal::sanitize(stripe_id);
  record.committed = false;
  record.blocks = blocks;
  record.crc = crc;
  if (!write_record(record)) {
    scrub_metrics().journal_store_failures.add();
    return std::nullopt;
  }
  ++next_seq_;
  const std::uint64_t seq = record.seq;
  pending_.emplace(seq, std::move(record));
  scrub_metrics().journal_intents.add();
  return seq;
}

bool RepairJournal::commit(std::uint64_t seq,
                           const std::vector<std::size_t>& repaired,
                           const std::vector<std::uint32_t>& crc) {
  if (repaired.size() != crc.size()) return false;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return false;
  JournalRecord record = it->second;
  record.committed = true;
  record.blocks = repaired;
  record.crc = crc;
  if (!write_record(record)) {
    scrub_metrics().journal_store_failures.add();
    return false;
  }
  pending_.erase(it);
  scrub_metrics().journal_commits.add();
  return true;
}

std::vector<JournalRecord> RepairJournal::load_all() {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<JournalRecord> records;
  std::vector<std::filesystem::path> doomed;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(kRecordSuffix)) continue;
    std::string raw;
    std::string payload;
    JournalRecord record;
    if (!read_file(entry.path(), &raw) || !unseal(raw, &payload) ||
        !parse(payload, &record)) {
      doomed.push_back(entry.path());
      continue;
    }
    records.push_back(std::move(record));
  }
  for (const auto& path : doomed) {
    std::error_code rn;
    std::filesystem::rename(path, path.string() + kQuarantineSuffix, rn);
    scrub_metrics().journal_quarantined.add();
  }
  std::sort(records.begin(), records.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

bool RepairJournal::quarantine(std::uint64_t seq) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::filesystem::path path = record_path(seq);
  std::error_code ec;
  std::filesystem::rename(path, path.string() + kQuarantineSuffix, ec);
  if (ec) return false;
  pending_.erase(seq);
  scrub_metrics().journal_quarantined.add();
  return true;
}

std::vector<RepairJournal::Entry> RepairJournal::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir_, ec)) {
    if (!de.is_regular_file()) continue;
    Entry entry;
    entry.filename = de.path().filename().string();
    std::error_code sz;
    entry.bytes = de.file_size(sz);
    entry.quarantined = entry.filename.ends_with(kQuarantineSuffix);
    entries.push_back(std::move(entry));
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.filename < b.filename;
            });
  return entries;
}

RepairJournal::GcReport RepairJournal::gc(std::size_t keep_quarantined) {
  const std::lock_guard<std::mutex> lock(mutex_);
  GcReport report;
  std::vector<std::filesystem::path> committed;
  std::vector<std::filesystem::path> quarantined;
  std::vector<std::filesystem::path> tmp;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.ends_with(kQuarantineSuffix)) {
      quarantined.push_back(entry.path());
    } else if (name.ends_with(kTmpSuffix)) {
      tmp.push_back(entry.path());
    } else if (name.ends_with(kRecordSuffix)) {
      // Only *verified* committed records are collectable; intents (and
      // anything unreadable) stay for replay to deal with.
      std::string raw;
      std::string payload;
      JournalRecord record;
      if (read_file(entry.path(), &raw) && unseal(raw, &payload) &&
          parse(payload, &record) && record.committed) {
        committed.push_back(entry.path());
      }
    }
  }
  for (const auto& path : committed) {
    std::error_code rm;
    if (std::filesystem::remove(path, rm)) ++report.removed_committed;
  }
  // Age out quarantined files, newest first by write time (ties broken
  // by name so the order is total).
  std::sort(quarantined.begin(), quarantined.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              std::error_code ta_ec;
              std::error_code tb_ec;
              const auto ta = std::filesystem::last_write_time(a, ta_ec);
              const auto tb = std::filesystem::last_write_time(b, tb_ec);
              if (ta != tb) return ta > tb;
              return a.filename().string() > b.filename().string();
            });
  for (std::size_t i = keep_quarantined; i < quarantined.size(); ++i) {
    std::error_code rm;
    if (std::filesystem::remove(quarantined[i], rm)) {
      ++report.removed_quarantined;
    }
  }
  for (const auto& path : tmp) {
    std::error_code rm;
    if (std::filesystem::remove(path, rm)) ++report.removed_tmp;
  }
  return report;
}

}  // namespace ppm::scrub
