#include "scrub/scrub.h"

#include <algorithm>
#include <utility>

#include "common/crc32.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "decode/log_table.h"
#include "decode/partition.h"

namespace ppm::scrub {
namespace {

// Read `block` through `source` with bounded retries. True when any
// attempt succeeded and `dst` holds the block's first `bytes` bytes.
bool read_with_retries(io::BlockSource& source, std::size_t block,
                       std::uint8_t* dst, std::size_t bytes,
                       std::size_t retries) {
  for (std::size_t attempt = 0; attempt <= retries; ++attempt) {
    if (source.read(block, dst, bytes) == io::ReadStatus::kOk) return true;
  }
  return false;
}

// Whether `block` has a truth digest to check against.
bool has_digest(const ScrubTarget& target, std::size_t block) {
  return block < target.expected_crc.size();
}

}  // namespace

std::size_t SweepReport::damaged() const {
  std::size_t n = 0;
  for (const StripeDamage& s : stripes) {
    if (!s.latent.empty() || s.known > 0) ++n;
  }
  return n;
}

Scrubber::Scrubber(Codec& codec, ScrubOptions options, RepairJournal* journal)
    : codec_(&codec),
      options_(options),
      journal_(journal),
      bucket_(options.rate_bytes_per_sec, options.burst_bytes) {}

void Scrubber::add_target(ScrubTarget target) {
  targets_.push_back(std::move(target));
}

SweepReport Scrubber::sweep() {
  ScrubMetrics& metrics = scrub_metrics();
  const Timer timer;
  SweepReport report;
  const std::uint64_t seq = sweep_seq_.fetch_add(1, std::memory_order_relaxed);
  const bool spot_round =
      options_.spot_check_every > 0 && seq % options_.spot_check_every == 0;
  const std::size_t spot_stripe =
      targets_.empty() ? 0
                       : static_cast<std::size_t>(
                             options_.spot_check_every > 0
                                 ? (seq / options_.spot_check_every) %
                                       targets_.size()
                                 : 0);

  for (std::size_t i = 0; i < targets_.size(); ++i) {
    ScrubTarget& target = targets_[i];
    StripeDamage damage;
    damage.stripe = i;
    damage.stripe_id = target.stripe_id;
    damage.known = target.known_faulty.count();
    metrics.stripes_scanned.add();
    if (target.source == nullptr) {
      report.stripes.push_back(std::move(damage));
      continue;
    }
    RateLimitedSource paced(*target.source, bucket_);
    const std::size_t bytes = target.source->block_bytes();
    const std::size_t count = target.source->block_count();
    std::vector<std::uint8_t> scratch(bytes);
    for (std::size_t b = 0; b < count; ++b) {
      if (target.known_faulty.contains(b)) continue;  // already accounted
      metrics.blocks_scanned.add();
      metrics.bytes_scanned.add(bytes);
      ++report.blocks_scanned;
      if (!read_with_retries(paced, b, scratch.data(), bytes,
                             options_.sweep_read_retries)) {
        ++damage.read_failures;
        damage.latent.push_back(b);
        metrics.read_failures.add();
        metrics.latent_detected.add();
        continue;
      }
      if (has_digest(target, b) &&
          crc32(scratch.data(), bytes) != target.expected_crc[b]) {
        ++damage.crc_mismatches;
        damage.latent.push_back(b);
        metrics.crc_mismatches.add();
        metrics.latent_detected.add();
      }
    }

    // Verify-decode spot check: on a healthy stripe, re-derive one block
    // from the parity relations and byte-verify it. Catches cross-block
    // inconsistency (a stale-but-internally-valid block, a wrong parity)
    // that per-block digests cannot.
    if (spot_round && i == spot_stripe && damage.latent.empty() &&
        target.known_faulty.empty() && target.blocks != nullptr && count > 0) {
      const std::size_t spot_block = static_cast<std::size_t>(seq) % count;
      damage.spot_checked = true;
      metrics.spot_checks.add();
      ++report.spot_checks;
      const FailureScenario probe({spot_block});
      const ResilientResult result = codec_->decode_resilient(
          probe, paced, target.blocks, bytes, options_.repair,
          std::span<const std::uint32_t>(target.expected_crc));
      damage.spot_check_ok = result.complete;
      if (!damage.spot_check_ok) {
        metrics.spot_check_failures.add();
        ++report.spot_check_failures;
      }
    }

    report.read_failures += damage.read_failures;
    report.crc_mismatches += damage.crc_mismatches;
    report.latent_total += damage.latent.size();
    report.stripes.push_back(std::move(damage));
  }

  report.seconds = timer.seconds();
  metrics.sweeps.add();
  metrics.sweep_seconds.record_seconds(report.seconds);
  return report;
}

std::vector<RiskAssessment> Scrubber::rank(const SweepReport& report) {
  ScrubMetrics& metrics = scrub_metrics();
  const ErasureCode& code = codec_->code();
  std::vector<RiskAssessment> ranking;
  for (const StripeDamage& damage : report.stripes) {
    if (damage.stripe >= targets_.size()) continue;
    const ScrubTarget& target = targets_[damage.stripe];
    std::vector<std::size_t> faulty(target.known_faulty.faulty().begin(),
                                    target.known_faulty.faulty().end());
    faulty.insert(faulty.end(), damage.latent.begin(), damage.latent.end());
    const FailureScenario scenario(std::move(faulty));
    if (scenario.empty()) continue;

    RiskAssessment risk;
    risk.stripe = damage.stripe;
    risk.stripe_id = damage.stripe_id;
    risk.faulty.assign(scenario.faulty().begin(), scenario.faulty().end());
    risk.decodable = codec_->plan_for(scenario) != nullptr;

    if (!risk.decodable) {
      risk.erasures_to_failure = 0;
    } else if (scenario.count() + 1 > code.check_rows()) {
      // One more erasure exceeds the check-row count outright.
      risk.erasures_to_failure = 1;
    } else {
      // Probe every single additional erasure through the plan cache;
      // 2 means "survives any one more", not an exact distance.
      risk.erasures_to_failure = 2;
      for (std::size_t b = 0; b < code.total_blocks(); ++b) {
        if (scenario.contains(b)) continue;
        std::vector<std::size_t> probe = risk.faulty;
        probe.push_back(b);
        if (codec_->plan_for(FailureScenario(std::move(probe))) == nullptr) {
          risk.erasures_to_failure = 1;
          break;
        }
      }
    }

    const LogTable table =
        LogTable::build(code.parity_check(), scenario.faulty());
    const Partition partition = make_partition(code.parity_check(), table);
    risk.coupled_faulty = partition.rest_faulty.size();

    risk.risk =
        !risk.decodable
            ? 1000.0 + static_cast<double>(risk.faulty.size())
            : 100.0 / (1.0 + static_cast<double>(risk.erasures_to_failure)) +
                  10.0 * static_cast<double>(risk.coupled_faulty) +
                  static_cast<double>(risk.faulty.size());

    metrics.stripes_ranked.add();
    ranking.push_back(std::move(risk));
  }

  std::sort(ranking.begin(), ranking.end(),
            [](const RiskAssessment& a, const RiskAssessment& b) {
              if (a.decodable != b.decodable) return !a.decodable;
              if (a.erasures_to_failure != b.erasures_to_failure) {
                return a.erasures_to_failure < b.erasures_to_failure;
              }
              if (a.coupled_faulty != b.coupled_faulty) {
                return a.coupled_faulty > b.coupled_faulty;
              }
              if (a.faulty.size() != b.faulty.size()) {
                return a.faulty.size() > b.faulty.size();
              }
              return a.stripe < b.stripe;
            });
  return ranking;
}

std::vector<std::size_t> Scrubber::recheck_damage(
    const ScrubTarget& target, const std::vector<std::size_t>& candidates) {
  std::vector<std::size_t> damaged;
  if (target.source == nullptr) return damaged;
  RateLimitedSource paced(*target.source, bucket_);
  const std::size_t bytes = target.source->block_bytes();
  std::vector<std::uint8_t> scratch(bytes);
  for (const std::size_t b : candidates) {
    if (target.known_faulty.contains(b)) {
      damaged.push_back(b);  // declared lost; reads prove nothing
      continue;
    }
    if (!read_with_retries(paced, b, scratch.data(), bytes,
                           options_.sweep_read_retries)) {
      damaged.push_back(b);
      continue;
    }
    if (has_digest(target, b) &&
        crc32(scratch.data(), bytes) != target.expected_crc[b]) {
      damaged.push_back(b);
    }
  }
  std::sort(damaged.begin(), damaged.end());
  damaged.erase(std::unique(damaged.begin(), damaged.end()), damaged.end());
  return damaged;
}

bool Scrubber::repair_stripe(const RiskAssessment& risk,
                             RepairReport& report) {
  ScrubMetrics& metrics = scrub_metrics();
  RepairOutcome outcome;
  outcome.stripe = risk.stripe;
  outcome.stripe_id = risk.stripe_id;
  if (risk.stripe >= targets_.size()) return true;
  ScrubTarget& target = targets_[risk.stripe];
  if (target.source == nullptr || target.blocks == nullptr) return true;

  // At-most-once: claim the stripe, or yield to whoever holds it.
  {
    const std::lock_guard<std::mutex> lock(claim_mutex_);
    if (!in_flight_.insert(risk.stripe).second) {
      outcome.skipped = true;
      metrics.repairs_skipped.add();
      ++report.skipped;
      report.outcomes.push_back(std::move(outcome));
      return true;
    }
  }
  const auto release = [&] {
    const std::lock_guard<std::mutex> lock(claim_mutex_);
    in_flight_.erase(risk.stripe);
  };

  // Re-check inside the claim: a concurrent repairer (or a write through
  // the fault seam) may have healed the damage since the sweep.
  const std::vector<std::size_t> damaged =
      recheck_damage(target, risk.faulty);
  if (damaged.empty()) {
    outcome.skipped = true;
    metrics.repairs_skipped.add();
    ++report.skipped;
    report.outcomes.push_back(std::move(outcome));
    release();
    return true;
  }

  const Timer timer;
  const std::size_t bytes = target.source->block_bytes();

  // Write-ahead intent before any repair work touches storage.
  std::uint64_t seq = 0;
  if (journal_ != nullptr) {
    std::vector<std::uint32_t> crc;
    crc.reserve(damaged.size());
    for (const std::size_t b : damaged) {
      crc.push_back(has_digest(target, b) ? target.expected_crc[b] : 0);
    }
    if (const auto begun = journal_->begin(target.stripe_id, damaged, crc)) {
      seq = *begun;
      outcome.journal_seq = seq;
      const std::uint64_t published =
          intents_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (options_.crash_after_intents > 0 &&
          published >= options_.crash_after_intents) {
        // Simulated crash between begin() and commit(): stop dead. The
        // claim is deliberately not released — the "process" died.
        report.crashed_for_test = true;
        report.outcomes.push_back(std::move(outcome));
        return false;
      }
    }
  }

  outcome.attempted = true;
  metrics.repairs_attempted.add();
  ++report.attempted;

  RateLimitedSource paced(*target.source, bucket_);
  const ResilientResult result = codec_->decode_resilient(
      FailureScenario(damaged), paced, target.blocks, bytes, options_.repair,
      std::span<const std::uint32_t>(target.expected_crc));

  outcome.repaired = result.recovered;
  if (target.writer != nullptr) {
    for (const std::size_t b : result.recovered) {
      if (target.writer->write(b, target.blocks[b], bytes) ==
          io::WriteStatus::kOk) {
        outcome.written_back.push_back(b);
        metrics.writebacks.add();
      } else {
        metrics.writeback_failures.add();
      }
    }
  }

  // Only blocks that are verified *and durable* may be claimed. Without
  // a writer the repair lives in the caller's scratch regions and the
  // recovered set is the claim.
  const std::vector<std::size_t>& claimed =
      target.writer != nullptr ? outcome.written_back : outcome.repaired;
  metrics.blocks_repaired.add(claimed.size());
  report.blocks_repaired += claimed.size();

  if (journal_ != nullptr && seq != 0) {
    std::vector<std::uint32_t> crc;
    crc.reserve(claimed.size());
    for (const std::size_t b : claimed) {
      crc.push_back(has_digest(target, b) ? target.expected_crc[b] : 0);
    }
    outcome.committed = journal_->commit(seq, claimed, crc);
  }

  outcome.complete = result.complete && claimed.size() == damaged.size();
  outcome.partial = !outcome.complete && !claimed.empty();
  if (outcome.complete) {
    metrics.repairs_completed.add();
    ++report.completed;
  } else if (outcome.partial) {
    metrics.repairs_partial.add();
    ++report.partial;
  } else {
    metrics.repairs_failed.add();
    ++report.failed;
  }
  metrics.repair_seconds.record_seconds(timer.seconds());
  report.outcomes.push_back(std::move(outcome));
  release();
  return true;
}

RepairReport Scrubber::repair(const std::vector<RiskAssessment>& ranking) {
  RepairReport report;
  for (const RiskAssessment& risk : ranking) {
    if (!repair_stripe(risk, report)) break;  // simulated crash
  }
  return report;
}

CycleReport Scrubber::run_cycle() {
  CycleReport cycle;
  cycle.sweep = sweep();
  cycle.ranking = rank(cycle.sweep);
  cycle.repair = repair(cycle.ranking);
  return cycle;
}

ReplayReport Scrubber::replay() {
  ReplayReport report;
  if (journal_ == nullptr) return report;
  ScrubMetrics& metrics = scrub_metrics();

  // Journal identity → fleet index (first registration wins).
  std::vector<std::pair<std::string, std::size_t>> ids;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    ids.emplace_back(RepairJournal::sanitize(targets_[i].stripe_id), i);
  }
  const auto find_target = [&](const std::string& id) {
    for (const auto& [key, idx] : ids) {
      if (key == id) return std::optional<std::size_t>(idx);
    }
    return std::optional<std::size_t>{};
  };

  const std::vector<JournalRecord> records = journal_->load_all();
  report.records = records.size();
  for (const JournalRecord& record : records) {
    metrics.journal_replayed.add();
    const auto idx = find_target(record.stripe_id);
    if (!idx) {
      // A claim no registered stripe can vouch for is not trusted.
      ++report.unmatched;
      if (journal_->quarantine(record.seq)) ++report.quarantined;
      continue;
    }
    ScrubTarget& target = targets_[*idx];
    if (record.committed) {
      // Zero-trust: every claimed-repaired block is re-read and
      // re-verified against the fleet's digests, not the record's.
      std::size_t bad = 0;
      if (target.source == nullptr) {
        bad = record.blocks.size();
      } else {
        RateLimitedSource paced(*target.source, bucket_);
        const std::size_t bytes = target.source->block_bytes();
        const std::size_t count = target.source->block_count();
        std::vector<std::uint8_t> scratch(bytes);
        for (std::size_t i = 0; i < record.blocks.size(); ++i) {
          const std::size_t b = record.blocks[i];
          if (b >= count ||
              !read_with_retries(paced, b, scratch.data(), bytes,
                                 options_.sweep_read_retries)) {
            ++bad;
            continue;
          }
          const std::uint32_t expect =
              has_digest(target, b) ? target.expected_crc[b] : record.crc[i];
          if (crc32(scratch.data(), bytes) != expect) ++bad;
        }
      }
      if (bad > 0) {
        report.false_claims += bad;
        if (journal_->quarantine(record.seq)) ++report.quarantined;
      } else {
        ++report.verified_commits;
      }
    } else {
      // Crash evidence: the repairer published intent and died. Surface
      // whatever is still damaged for the next cycle.
      ++report.pending_intents;
      metrics.journal_pending.add();
      for (const std::size_t b : recheck_damage(target, record.blocks)) {
        report.outstanding.emplace_back(*idx, b);
      }
    }
  }
  return report;
}

}  // namespace ppm::scrub
