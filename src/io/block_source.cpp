#include "io/block_source.h"

#include <cstring>

namespace ppm::io {

ReadStatus MemoryBlockSource::read(std::size_t block, std::uint8_t* dst,
                                   std::size_t bytes) {
  if (block >= count_ || bytes > block_bytes_ || dst == nullptr) {
    return ReadStatus::kFailed;
  }
  std::memcpy(dst, blocks_[block], bytes);
  return ReadStatus::kOk;
}

ReadStatus MemoryBlockStore::read(std::size_t block, std::uint8_t* dst,
                                  std::size_t bytes) {
  if (block >= count_ || bytes > block_bytes_ || dst == nullptr) {
    return ReadStatus::kFailed;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::memcpy(dst, blocks_[block], bytes);
  return ReadStatus::kOk;
}

WriteStatus MemoryBlockStore::write(std::size_t block, const std::uint8_t* src,
                                    std::size_t bytes) {
  if (block >= count_ || bytes > block_bytes_ || src == nullptr) {
    return WriteStatus::kFailed;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  std::memcpy(blocks_[block], src, bytes);
  return WriteStatus::kOk;
}

}  // namespace ppm::io
