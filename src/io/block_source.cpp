#include "io/block_source.h"

#include <cstring>

namespace ppm::io {

ReadStatus MemoryBlockSource::read(std::size_t block, std::uint8_t* dst,
                                   std::size_t bytes) {
  if (block >= count_ || bytes > block_bytes_ || dst == nullptr) {
    return ReadStatus::kFailed;
  }
  std::memcpy(dst, blocks_[block], bytes);
  return ReadStatus::kOk;
}

}  // namespace ppm::io
