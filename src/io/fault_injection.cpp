#include "io/fault_injection.h"

#include <algorithm>
#include <thread>

namespace ppm::io {

namespace {
const FaultSpec kHealthy{};
}  // namespace

void FaultInjectingSource::set_fault(std::size_t block,
                                     const FaultSpec& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (block >= specs_.size()) return;
  specs_[block] = spec;
  attempts_[block] = 0;
  write_attempts_[block] = 0;
}

const FaultSpec& FaultInjectingSource::fault(std::size_t block) const {
  return block < specs_.size() ? specs_[block] : kHealthy;
}

void FaultInjectingSource::roll_campaign(
    const CampaignOptions& options, Rng& rng,
    const std::vector<std::size_t>& exempt) {
  for (std::size_t b = 0; b < specs_.size(); ++b) {
    // Draw for every block, exempt or not, so the schedule of the
    // non-exempt blocks does not depend on which blocks were exempted.
    const double roll = rng.uniform();
    const std::size_t transient_reads = 1 + rng.bounded(3);
    const std::size_t corrupt_offset =
        block_bytes() == 0 ? 0 : rng.bounded(block_bytes());
    const std::size_t corrupt_len = 1 + rng.bounded(16);
    if (std::find(exempt.begin(), exempt.end(), b) != exempt.end()) continue;
    FaultSpec spec;
    double threshold = options.fail_permanent;
    if (roll < threshold) {
      spec.fail_always = true;
    } else if (roll < (threshold += options.fail_transient)) {
      spec.fail_reads = transient_reads;
    } else if (roll < (threshold += options.corrupt)) {
      spec.corrupt = true;
      spec.corrupt_offset = corrupt_offset;
      spec.corrupt_bytes =
          std::min(corrupt_len, block_bytes() - corrupt_offset);
    } else if (roll < threshold + options.delay) {
      spec.delay = options.delay_ns;
      if (options.delay_attempts > 0) spec.delay_reads = options.delay_attempts;
    }
    set_fault(b, spec);
  }
}

void FaultInjectingSource::roll_arrivals(
    const ArrivalOptions& options, Rng& rng,
    const std::vector<std::size_t>& exempt) {
  // Separate stream discipline from roll_campaign: every block draws the
  // same four values in the same order regardless of exemption or which
  // class (if any) it lands in, so the schedule of block b is a function
  // of the seed and the options alone.
  std::vector<Arrival> rolled;
  const std::size_t horizon = options.epochs == 0 ? 1 : options.epochs;
  for (std::size_t b = 0; b < specs_.size(); ++b) {
    const double roll = rng.uniform();
    const std::size_t epoch = 1 + rng.bounded(horizon);
    const std::size_t corrupt_offset =
        block_bytes() == 0 ? 0 : rng.bounded(block_bytes());
    const std::size_t corrupt_len = 1 + rng.bounded(16);
    if (std::find(exempt.begin(), exempt.end(), b) != exempt.end()) continue;
    Arrival arrival;
    arrival.block = b;
    arrival.epoch = epoch;
    double threshold = options.fail_permanent;
    if (roll < threshold) {
      arrival.spec.fail_always = true;
    } else if (roll < threshold + options.corrupt) {
      arrival.spec.corrupt = true;
      arrival.spec.corrupt_offset = corrupt_offset;
      arrival.spec.corrupt_bytes =
          std::min(corrupt_len, block_bytes() - corrupt_offset);
    } else {
      continue;  // this block stays healthy
    }
    rolled.push_back(arrival);
  }
  std::sort(rolled.begin(), rolled.end(),
            [](const Arrival& a, const Arrival& b) {
              return a.epoch != b.epoch ? a.epoch < b.epoch
                                        : a.block < b.block;
            });
  const std::lock_guard<std::mutex> lock(mutex_);
  arrivals_ = std::move(rolled);
  epoch_ = 0;
}

std::size_t FaultInjectingSource::advance_epoch() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
  std::size_t landed = 0;
  for (const Arrival& a : arrivals_) {
    if (a.epoch != epoch_ || a.block >= specs_.size()) continue;
    specs_[a.block] = a.spec;
    attempts_[a.block] = 0;
    write_attempts_[a.block] = 0;
    ++landed;
  }
  return landed;
}

std::size_t FaultInjectingSource::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

ReadStatus FaultInjectingSource::read(std::size_t block, std::uint8_t* dst,
                                      std::size_t bytes) {
  reads_attempted_.fetch_add(1, std::memory_order_relaxed);
  if (block >= specs_.size()) return inner_->read(block, dst, bytes);
  // Snapshot the schedule and claim this attempt number under the lock;
  // the straggler sleep and the inner read run outside it so concurrent
  // delayed reads actually overlap instead of serializing on the mutex.
  FaultSpec spec;
  std::size_t attempt;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    spec = specs_[block];
    attempt = attempts_[block]++;
  }
  if (spec.delay.count() > 0 && attempt < spec.delay_reads) {
    delays_injected_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(spec.delay);
  }
  if (spec.fail_always || attempt < spec.fail_reads) {
    failures_injected_.fetch_add(1, std::memory_order_relaxed);
    return ReadStatus::kFailed;
  }
  const ReadStatus status = inner_->read(block, dst, bytes);
  if (status != ReadStatus::kOk) return status;
  if (spec.corrupt && bytes > 0) {
    const std::uint8_t mask = spec.corrupt_mask == 0 ? std::uint8_t{0xFF}
                                                     : spec.corrupt_mask;
    const std::size_t begin = std::min(spec.corrupt_offset, bytes);
    const std::size_t len = spec.corrupt_bytes == 0
                                ? bytes - begin
                                : std::min(spec.corrupt_bytes, bytes - begin);
    for (std::size_t i = 0; i < len; ++i) dst[begin + i] ^= mask;
    if (len > 0) corruptions_injected_.fetch_add(1, std::memory_order_relaxed);
  }
  return ReadStatus::kOk;
}

WriteStatus FaultInjectingSource::write(std::size_t block,
                                        const std::uint8_t* src,
                                        std::size_t bytes) {
  writes_attempted_.fetch_add(1, std::memory_order_relaxed);
  if (writer_ == nullptr) {
    write_failures_injected_.fetch_add(1, std::memory_order_relaxed);
    return WriteStatus::kFailed;
  }
  if (block >= specs_.size()) return writer_->write(block, src, bytes);
  FaultSpec spec;
  std::size_t attempt;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    spec = specs_[block];
    attempt = write_attempts_[block]++;
  }
  if (spec.fail_write_always || attempt < spec.fail_writes) {
    write_failures_injected_.fetch_add(1, std::memory_order_relaxed);
    return WriteStatus::kFailed;
  }
  if (spec.short_write_bytes < bytes) {
    // Torn write: the prefix lands, then the device gives up — the block
    // now holds a mix of old and new bytes.
    write_failures_injected_.fetch_add(1, std::memory_order_relaxed);
    (void)writer_->write(block, src, spec.short_write_bytes);
    return WriteStatus::kFailed;
  }
  const WriteStatus status = writer_->write(block, src, bytes);
  if (status != WriteStatus::kOk) return status;
  // A full successful write heals the read side: the rewritten sector
  // reads back what was written. Write-side faults persist (a nearly
  // full device stays nearly full).
  const std::lock_guard<std::mutex> lock(mutex_);
  specs_[block].fail_always = false;
  specs_[block].fail_reads = 0;
  specs_[block].corrupt = false;
  attempts_[block] = 0;
  return WriteStatus::kOk;
}

}  // namespace ppm::io
