// Deterministic read-fault injection for chaos testing (ppm::io).
//
// FaultInjectingSource wraps any BlockSource and applies a per-block
// FaultSpec on every read attempt: fail permanently, fail the first N
// attempts then recover (transient failure), delay the read (straggler),
// or corrupt a byte range of the returned data (torn sector / bit rot).
// Specs are either set explicitly per block (unit tests pin exact
// schedules) or rolled from a seeded Rng (`roll_campaign`), so a chaos
// run is reproducible from its seed alone — no wall-clock or entropy
// dependence decides which faults fire.
//
// Attempt counting is per block: the first read of block b is attempt 0,
// its first retry attempt 1, and so on. That is what makes
// fail-then-recover schedules meaningful to the resilient pipeline's
// bounded-retry loop.
//
// Thread-safety: configuration (set_fault / roll_campaign) must be
// quiesced before reads begin; after that, read() is safe for concurrent
// callers — per-block attempt counts are mutex-guarded (straggler sleeps
// happen outside the lock, so delayed reads overlap), injection counters
// are relaxed atomics — provided the wrapped inner source supports
// concurrent read(), as MemoryBlockSource does. fault() returns a
// reference into the schedule and is for quiescent inspection only.
// Serial callers observe exactly the pre-lock attempt/injection
// semantics, so seeded chaos campaigns stay bit-reproducible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "io/block_source.h"

namespace ppm::io {

/// Per-block fault schedule. Default-constructed = healthy block.
struct FaultSpec {
  /// Fail every read attempt (a dead disk / unreachable peer).
  bool fail_always = false;

  /// Fail the first `fail_reads` attempts, then succeed — the transient
  /// failure class (paper-adjacent: LRC's 90%-transient motivation).
  /// Ignored when fail_always is set.
  std::size_t fail_reads = 0;

  /// Added latency per read attempt (straggler). Applied before the
  /// read outcome is decided, so a delayed read can still fail.
  std::chrono::nanoseconds delay{0};

  /// Number of initial attempts `delay` applies to. The default
  /// (kEveryAttempt) delays every attempt — a persistently slow disk.
  /// 1 models the transient straggler hedged reads exist for: the first
  /// request is stuck, a duplicate read completes fast.
  static constexpr std::size_t kEveryAttempt = static_cast<std::size_t>(-1);
  std::size_t delay_reads = kEveryAttempt;

  /// XOR `corrupt_mask` over `[corrupt_offset, corrupt_offset +
  /// corrupt_bytes)` of every successful read (torn sector). A zero mask
  /// is promoted to 0xFF so a corrupting spec always changes bytes;
  /// corrupt_bytes == 0 with corrupt == true corrupts the whole block.
  bool corrupt = false;
  std::size_t corrupt_offset = 0;
  std::size_t corrupt_bytes = 0;
  std::uint8_t corrupt_mask = 0xFF;

  /// Write-side faults (the BlockWriter path; reads are unaffected).
  /// fail_write_always models a full or write-protected device;
  /// fail_writes fails the first N write attempts then recovers. A
  /// short_write_bytes below the write size tears the write: that many
  /// bytes land in the inner store, then the attempt fails — the caller
  /// must treat the block as unspecified, exactly the crash window the
  /// repair journal's write-ahead contract exists for.
  static constexpr std::size_t kFullWrite = static_cast<std::size_t>(-1);
  bool fail_write_always = false;
  std::size_t fail_writes = 0;
  std::size_t short_write_bytes = kFullWrite;

  /// True when this spec can never return clean bytes to a caller that
  /// retries at most `retries` times: permanently failing, failing longer
  /// than the retry budget, or corrupting every success.
  bool permanently_unreadable(std::size_t retries) const {
    return fail_always || fail_reads > retries || corrupt;
  }
};

class FaultInjectingSource : public BlockSource, public BlockWriter {
 public:
  /// Wraps `inner` (which must outlive this source) with no faults.
  /// Reads pass through with faults applied; writes fail (no writer).
  explicit FaultInjectingSource(BlockSource& inner)
      : FaultInjectingSource(inner, nullptr) {}

  /// Read/write wrapper: reads go to `inner`, writes to `writer` (both
  /// must outlive this source). A successful write *heals* the block's
  /// read-side faults — the repaired sector reads clean from then on —
  /// which is what lets a scrub repair writeback actually fix a latent
  /// error instead of re-detecting it every sweep.
  FaultInjectingSource(BlockSource& inner, BlockWriter& writer)
      : FaultInjectingSource(inner, &writer) {}

  std::size_t block_count() const override { return inner_->block_count(); }
  std::size_t block_bytes() const override { return inner_->block_bytes(); }

  /// Install the fault schedule for one block (replacing any previous).
  void set_fault(std::size_t block, const FaultSpec& spec);

  /// The active schedule for `block` (default spec when out of range).
  const FaultSpec& fault(std::size_t block) const;

  /// Probabilities for one seeded campaign roll. Each block draws at most
  /// one fault class, tested in the order listed (permanent, transient,
  /// corrupt, delay), so the sum may approach 1 without double-faulting.
  struct CampaignOptions {
    double fail_permanent = 0.0;   ///< dead block
    double fail_transient = 0.0;   ///< 1..3 failed attempts, then clean
    double corrupt = 0.0;          ///< random 1..16-byte torn range
    double delay = 0.0;            ///< straggler of `delay_ns`
    std::chrono::nanoseconds delay_ns{0};
    /// Attempts each rolled straggler delays: 0 keeps the legacy
    /// every-attempt behavior, 1 rolls transient stragglers (hedgeable).
    std::size_t delay_attempts = 0;
  };

  /// Roll a FaultSpec for every block of `inner` from `rng`, skipping the
  /// blocks listed in `exempt` (callers exempt the already-faulty blocks
  /// a scenario erases — their loss is modeled by the scenario itself).
  /// Deterministic: same rng state + options => same schedule.
  void roll_campaign(const CampaignOptions& options, Rng& rng,
                     const std::vector<std::size_t>& exempt = {});

  /// One scheduled latent error: `spec` is installed on `block` when
  /// advance_epoch() reaches `epoch`. Errors *arrive* mid-campaign
  /// instead of existing from setup — the scrub sweep model.
  struct Arrival {
    std::size_t block = 0;
    std::size_t epoch = 1;
    FaultSpec spec;
  };

  /// Probabilities for one seeded arrival roll. Each block draws at most
  /// one latent-error class (permanent death, then silent corruption);
  /// a drawn error's epoch is uniform in [1, epochs].
  struct ArrivalOptions {
    double fail_permanent = 0.0;  ///< block dies at its arrival epoch
    double corrupt = 0.0;         ///< 1..16-byte torn range from then on
    std::size_t epochs = 1;       ///< arrival epochs are 1..epochs
  };

  /// Roll an arrival schedule from `rng` (replacing any previous one).
  /// Like roll_campaign, every block draws — exempt or not — so the
  /// schedule is a function of the seed alone. Campaign drivers then call
  /// advance_epoch() once per sweep round; arrivals() is the oracle a
  /// harness judges detection/repair completeness against.
  void roll_arrivals(const ArrivalOptions& options, Rng& rng,
                     const std::vector<std::size_t>& exempt = {});

  /// Install every arrival scheduled for the next epoch. Returns the
  /// number of faults that landed. Thread-safe against concurrent reads.
  std::size_t advance_epoch();

  /// Epochs advanced so far (0 before the first advance_epoch()).
  std::size_t epoch() const;

  /// The rolled arrival schedule, sorted by (epoch, block). Quiescent
  /// inspection only, like fault().
  const std::vector<Arrival>& arrivals() const { return arrivals_; }

  ReadStatus read(std::size_t block, std::uint8_t* dst,
                  std::size_t bytes) override;

  /// Apply the block's write-side faults, forward to the writer, and on
  /// success heal the block's read-side faults (see the constructor). A
  /// torn write (short_write_bytes) lands its prefix in the inner store
  /// before failing. Fails outright when no writer was attached.
  WriteStatus write(std::size_t block, const std::uint8_t* src,
                    std::size_t bytes) override;

  // Injection counters (cumulative over the source's lifetime; relaxed
  // atomics, so concurrent readers observe consistent per-counter values).
  std::size_t reads_attempted() const {
    return reads_attempted_.load(std::memory_order_relaxed);
  }
  std::size_t failures_injected() const {
    return failures_injected_.load(std::memory_order_relaxed);
  }
  std::size_t corruptions_injected() const {
    return corruptions_injected_.load(std::memory_order_relaxed);
  }
  std::size_t delays_injected() const {
    return delays_injected_.load(std::memory_order_relaxed);
  }
  std::size_t writes_attempted() const {
    return writes_attempted_.load(std::memory_order_relaxed);
  }
  std::size_t write_failures_injected() const {
    return write_failures_injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjectingSource(BlockSource& inner, BlockWriter* writer)
      : inner_(&inner),
        writer_(writer),
        specs_(inner.block_count()),
        attempts_(inner.block_count(), 0),
        write_attempts_(inner.block_count(), 0) {}

  BlockSource* inner_;
  BlockWriter* writer_;                ///< null: writes always fail
  mutable std::mutex mutex_;           ///< guards specs_, attempts_, epoch_
  std::vector<FaultSpec> specs_;
  std::vector<std::size_t> attempts_;        ///< per-block read attempts
  std::vector<std::size_t> write_attempts_;  ///< per-block write attempts
  std::vector<Arrival> arrivals_;      ///< rolled latent-error schedule
  std::size_t epoch_ = 0;              ///< arrival epochs advanced so far
  std::atomic<std::size_t> reads_attempted_{0};
  std::atomic<std::size_t> failures_injected_{0};
  std::atomic<std::size_t> corruptions_injected_{0};
  std::atomic<std::size_t> delays_injected_{0};
  std::atomic<std::size_t> writes_attempted_{0};
  std::atomic<std::size_t> write_failures_injected_{0};
};

}  // namespace ppm::io
