// Deterministic read-fault injection for chaos testing (ppm::io).
//
// FaultInjectingSource wraps any BlockSource and applies a per-block
// FaultSpec on every read attempt: fail permanently, fail the first N
// attempts then recover (transient failure), delay the read (straggler),
// or corrupt a byte range of the returned data (torn sector / bit rot).
// Specs are either set explicitly per block (unit tests pin exact
// schedules) or rolled from a seeded Rng (`roll_campaign`), so a chaos
// run is reproducible from its seed alone — no wall-clock or entropy
// dependence decides which faults fire.
//
// Attempt counting is per block: the first read of block b is attempt 0,
// its first retry attempt 1, and so on. That is what makes
// fail-then-recover schedules meaningful to the resilient pipeline's
// bounded-retry loop.
//
// Thread-safety: configuration (set_fault / roll_campaign) must be
// quiesced before reads begin; after that, read() is safe for concurrent
// callers — per-block attempt counts are mutex-guarded (straggler sleeps
// happen outside the lock, so delayed reads overlap), injection counters
// are relaxed atomics — provided the wrapped inner source supports
// concurrent read(), as MemoryBlockSource does. fault() returns a
// reference into the schedule and is for quiescent inspection only.
// Serial callers observe exactly the pre-lock attempt/injection
// semantics, so seeded chaos campaigns stay bit-reproducible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "io/block_source.h"

namespace ppm::io {

/// Per-block fault schedule. Default-constructed = healthy block.
struct FaultSpec {
  /// Fail every read attempt (a dead disk / unreachable peer).
  bool fail_always = false;

  /// Fail the first `fail_reads` attempts, then succeed — the transient
  /// failure class (paper-adjacent: LRC's 90%-transient motivation).
  /// Ignored when fail_always is set.
  std::size_t fail_reads = 0;

  /// Added latency per read attempt (straggler). Applied before the
  /// read outcome is decided, so a delayed read can still fail.
  std::chrono::nanoseconds delay{0};

  /// Number of initial attempts `delay` applies to. The default
  /// (kEveryAttempt) delays every attempt — a persistently slow disk.
  /// 1 models the transient straggler hedged reads exist for: the first
  /// request is stuck, a duplicate read completes fast.
  static constexpr std::size_t kEveryAttempt = static_cast<std::size_t>(-1);
  std::size_t delay_reads = kEveryAttempt;

  /// XOR `corrupt_mask` over `[corrupt_offset, corrupt_offset +
  /// corrupt_bytes)` of every successful read (torn sector). A zero mask
  /// is promoted to 0xFF so a corrupting spec always changes bytes;
  /// corrupt_bytes == 0 with corrupt == true corrupts the whole block.
  bool corrupt = false;
  std::size_t corrupt_offset = 0;
  std::size_t corrupt_bytes = 0;
  std::uint8_t corrupt_mask = 0xFF;

  /// True when this spec can never return clean bytes to a caller that
  /// retries at most `retries` times: permanently failing, failing longer
  /// than the retry budget, or corrupting every success.
  bool permanently_unreadable(std::size_t retries) const {
    return fail_always || fail_reads > retries || corrupt;
  }
};

class FaultInjectingSource : public BlockSource {
 public:
  /// Wraps `inner` (which must outlive this source) with no faults.
  explicit FaultInjectingSource(BlockSource& inner)
      : inner_(&inner),
        specs_(inner.block_count()),
        attempts_(inner.block_count(), 0) {}

  std::size_t block_count() const override { return inner_->block_count(); }
  std::size_t block_bytes() const override { return inner_->block_bytes(); }

  /// Install the fault schedule for one block (replacing any previous).
  void set_fault(std::size_t block, const FaultSpec& spec);

  /// The active schedule for `block` (default spec when out of range).
  const FaultSpec& fault(std::size_t block) const;

  /// Probabilities for one seeded campaign roll. Each block draws at most
  /// one fault class, tested in the order listed (permanent, transient,
  /// corrupt, delay), so the sum may approach 1 without double-faulting.
  struct CampaignOptions {
    double fail_permanent = 0.0;   ///< dead block
    double fail_transient = 0.0;   ///< 1..3 failed attempts, then clean
    double corrupt = 0.0;          ///< random 1..16-byte torn range
    double delay = 0.0;            ///< straggler of `delay_ns`
    std::chrono::nanoseconds delay_ns{0};
    /// Attempts each rolled straggler delays: 0 keeps the legacy
    /// every-attempt behavior, 1 rolls transient stragglers (hedgeable).
    std::size_t delay_attempts = 0;
  };

  /// Roll a FaultSpec for every block of `inner` from `rng`, skipping the
  /// blocks listed in `exempt` (callers exempt the already-faulty blocks
  /// a scenario erases — their loss is modeled by the scenario itself).
  /// Deterministic: same rng state + options => same schedule.
  void roll_campaign(const CampaignOptions& options, Rng& rng,
                     const std::vector<std::size_t>& exempt = {});

  ReadStatus read(std::size_t block, std::uint8_t* dst,
                  std::size_t bytes) override;

  // Injection counters (cumulative over the source's lifetime; relaxed
  // atomics, so concurrent readers observe consistent per-counter values).
  std::size_t reads_attempted() const {
    return reads_attempted_.load(std::memory_order_relaxed);
  }
  std::size_t failures_injected() const {
    return failures_injected_.load(std::memory_order_relaxed);
  }
  std::size_t corruptions_injected() const {
    return corruptions_injected_.load(std::memory_order_relaxed);
  }
  std::size_t delays_injected() const {
    return delays_injected_.load(std::memory_order_relaxed);
  }

 private:
  BlockSource* inner_;
  mutable std::mutex mutex_;           ///< guards specs_ and attempts_
  std::vector<FaultSpec> specs_;
  std::vector<std::size_t> attempts_;  ///< per-block read-attempt count
  std::atomic<std::size_t> reads_attempted_{0};
  std::atomic<std::size_t> failures_injected_{0};
  std::atomic<std::size_t> corruptions_injected_{0};
  std::atomic<std::size_t> delays_injected_{0};
};

}  // namespace ppm::io
