// Block I/O abstraction between the codec and block data (ppm::io).
//
// The plain decode paths consume raw `uint8_t*` regions and presume every
// survivor read succeeds and returns uncorrupted bytes — exactly the
// assumption the sector-failure model behind SD/PMDS codes exists to
// break. A BlockSource makes the read explicit and fallible: the resilient
// decode pipeline (codec/resilient.h) fetches each survivor through this
// interface, so failed reads, stragglers and torn sectors become events
// the pipeline can retry, escalate or degrade around instead of undefined
// behavior.
//
// Two implementations ship here:
//  * MemoryBlockSource — the trivial adapter over an in-memory stripe
//    (the "disks" of tests, benches and the chaos harness);
//  * FaultInjectingSource (fault_injection.h) — a wrapper that injects a
//    deterministic, seeded schedule of read faults for chaos testing.
//
// Reads are pull-only and idempotent from the caller's perspective; a
// source may internally count attempts (fault schedules are per-attempt).
// Thread-safety is per-implementation: the resilient pipeline issues
// reads serially from the decoding thread and needs none, but the async
// serving layer (serve/async_source.h) multiplexes concurrent read()
// calls from reactor threads, so sources handed to it must tolerate
// concurrent read() with distinct `dst` buffers. MemoryBlockSource
// (const backing, pure copy) and FaultInjectingSource (internally
// locked) both do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>

namespace ppm::io {

/// Outcome of one read attempt.
enum class ReadStatus {
  kOk,      ///< `bytes` bytes of the block were copied into `dst`
  kFailed,  ///< the read failed; `dst` contents are unspecified
};

/// Outcome of one write attempt.
enum class WriteStatus {
  kOk,      ///< `bytes` bytes landed durably in the block
  kFailed,  ///< the write failed; the block may hold a torn prefix
};

/// A readable collection of equally sized blocks (one stripe's worth of
/// storage targets: disks, object-store keys, remote peers, ...).
class BlockSource {
 public:
  BlockSource() = default;
  BlockSource(const BlockSource&) = delete;
  BlockSource& operator=(const BlockSource&) = delete;
  virtual ~BlockSource() = default;

  /// Number of addressable blocks.
  virtual std::size_t block_count() const = 0;

  /// Bytes per block.
  virtual std::size_t block_bytes() const = 0;

  /// Read the first `bytes` bytes of block `block` into `dst`. Returns
  /// kFailed for out-of-range ids or `bytes` beyond the block size; a
  /// failed read may leave `dst` partially written (torn read).
  virtual ReadStatus read(std::size_t block, std::uint8_t* dst,
                          std::size_t bytes) = 0;
};

/// The write side of a block store. Separated from BlockSource because
/// most consumers only read: decode fetches survivors, but only the scrub
/// repair path (scrub/scrub.h) writes recovered blocks back to storage. A
/// write may fail (disk full, dead device) or tear — land a prefix and
/// then fail — and callers must treat a kFailed write as "block contents
/// unspecified", never as a no-op.
class BlockWriter {
 public:
  BlockWriter() = default;
  BlockWriter(const BlockWriter&) = delete;
  BlockWriter& operator=(const BlockWriter&) = delete;
  virtual ~BlockWriter() = default;

  /// Write the first `bytes` bytes of block `block` from `src`. Returns
  /// kFailed for out-of-range ids or `bytes` beyond the block size.
  virtual WriteStatus write(std::size_t block, const std::uint8_t* src,
                            std::size_t bytes) = 0;
};

/// Adapter over an in-memory stripe: block `i` is backed by `blocks[i]`.
/// The backing pointers must outlive the source; reads always succeed
/// (within bounds) and copy from the backing region.
class MemoryBlockSource : public BlockSource {
 public:
  MemoryBlockSource(const std::uint8_t* const* blocks, std::size_t count,
                    std::size_t block_bytes)
      : blocks_(blocks), count_(count), block_bytes_(block_bytes) {}

  std::size_t block_count() const override { return count_; }
  std::size_t block_bytes() const override { return block_bytes_; }
  ReadStatus read(std::size_t block, std::uint8_t* dst,
                  std::size_t bytes) override;

 private:
  const std::uint8_t* const* blocks_;
  std::size_t count_;
  std::size_t block_bytes_;
};

/// Read/write adapter over a mutable in-memory stripe. Unlike the
/// read-only MemoryBlockSource (const backing, lock-free), a writable
/// store serializes read() and write() under one mutex so a concurrent
/// reader never observes a half-applied write — the scrubber writes
/// repaired blocks back through this seam while serving traffic may still
/// be reading them.
class MemoryBlockStore : public BlockSource, public BlockWriter {
 public:
  MemoryBlockStore(std::uint8_t* const* blocks, std::size_t count,
                   std::size_t block_bytes)
      : blocks_(blocks), count_(count), block_bytes_(block_bytes) {}

  std::size_t block_count() const override { return count_; }
  std::size_t block_bytes() const override { return block_bytes_; }
  ReadStatus read(std::size_t block, std::uint8_t* dst,
                  std::size_t bytes) override;
  WriteStatus write(std::size_t block, const std::uint8_t* src,
                    std::size_t bytes) override;

 private:
  std::uint8_t* const* blocks_;
  std::size_t count_;
  std::size_t block_bytes_;
  std::mutex mutex_;  ///< read/write atomicity for concurrent callers
};

}  // namespace ppm::io
