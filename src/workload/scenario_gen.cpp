#include "workload/scenario_gen.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace ppm {

namespace {

// Draw `count` distinct values in [0, bound).
std::vector<std::size_t> distinct(Rng& rng, std::size_t count,
                                  std::size_t bound) {
  std::set<std::size_t> out;
  while (out.size() < count) out.insert(rng.bounded(bound));
  return {out.begin(), out.end()};
}

}  // namespace

bool ScenarioGenerator::decodable(const ErasureCode& code,
                                  const FailureScenario& sc) const {
  const Matrix f = code.parity_check().select_columns(sc.faulty());
  return f.rank() == f.cols();
}

GeneratedScenario ScenarioGenerator::sd_worst_case(const ErasureCode& code,
                                                   std::size_t m,
                                                   std::size_t s,
                                                   std::size_t z) {
  const std::size_t n = code.disks();
  const std::size_t r = code.rows();
  if (z > std::min(s, r) || (s > 0 && z == 0) || s > z * (n - m) ||
      m >= n) {
    throw std::invalid_argument("sd_worst_case: invalid (m, s, z)");
  }

  GeneratedScenario out;
  for (;;) {
    const auto disks = distinct(rng_, m, n);
    const auto rows = distinct(rng_, z, r);

    std::set<std::size_t> blocks;
    for (const std::size_t d : disks) {
      for (std::size_t i = 0; i < r; ++i) blocks.insert(i * n + d);
    }
    const auto on_failed_disk = [&](std::size_t d) {
      return std::binary_search(disks.begin(), disks.end(), d);
    };
    // One sector in each chosen row first (so exactly z rows are hit),
    // then the remainder anywhere within those rows.
    std::size_t placed = 0;
    for (const std::size_t row : rows) {
      for (;;) {
        const std::size_t d = rng_.bounded(n);
        if (on_failed_disk(d)) continue;
        if (blocks.insert(row * n + d).second) {
          ++placed;
          break;
        }
      }
    }
    while (placed < s) {
      const std::size_t row = rows[rng_.bounded(z)];
      const std::size_t d = rng_.bounded(n);
      if (on_failed_disk(d)) continue;
      if (blocks.insert(row * n + d).second) ++placed;
    }

    out.scenario = FailureScenario({blocks.begin(), blocks.end()});
    if (decodable(code, out.scenario)) return out;
    ++out.redraws;
  }
}

GeneratedScenario ScenarioGenerator::lrc_failures(const LRCCode& code,
                                                  std::size_t local_groups,
                                                  std::size_t extra) {
  if (local_groups > code.l() ||
      local_groups + extra > code.l() + code.g()) {
    throw std::invalid_argument("lrc_failures: too many failures");
  }
  GeneratedScenario out;
  for (;;) {
    std::set<std::size_t> blocks;
    // One faulty strip per chosen local group: a data strip of the group or
    // the group's local parity — either way its local equation has t = 1.
    const auto groups = distinct(rng_, local_groups, code.l());
    for (const std::size_t grp : groups) {
      const auto members = code.group_members(grp);
      const std::size_t pick = rng_.bounded(members.size() + 1);
      blocks.insert(pick == members.size() ? code.local_parity_block(grp)
                                           : members[pick]);
    }
    // Extra failures anywhere else in the stripe (they force the global
    // equations into H_rest).
    while (blocks.size() < local_groups + extra) {
      blocks.insert(rng_.bounded(code.total_blocks()));
    }
    out.scenario = FailureScenario({blocks.begin(), blocks.end()});
    if (decodable(code, out.scenario)) return out;
    ++out.redraws;
  }
}

GeneratedScenario ScenarioGenerator::disk_failures(const ErasureCode& code,
                                                   std::size_t count,
                                                   std::size_t max_redraws) {
  if (count > code.disks()) {
    throw std::invalid_argument("disk_failures: more disks than exist");
  }
  GeneratedScenario out;
  for (;;) {
    const auto disks = distinct(rng_, count, code.disks());
    std::vector<std::size_t> blocks;
    for (const std::size_t d : disks) {
      for (std::size_t i = 0; i < code.rows(); ++i) {
        blocks.push_back(code.block_id(i, d));
      }
    }
    out.scenario = FailureScenario(std::move(blocks));
    if (decodable(code, out.scenario)) return out;
    if (++out.redraws > max_redraws) {
      throw std::runtime_error(
          "disk_failures: no decodable pattern found (beyond tolerance?)");
    }
  }
}

GeneratedScenario ScenarioGenerator::rs_failures(const RSCode& code,
                                                 std::size_t f) {
  if (f > code.m()) {
    throw std::invalid_argument("rs_failures: more failures than parities");
  }
  GeneratedScenario out;
  const auto blocks = distinct(rng_, f, code.total_blocks());
  out.scenario = FailureScenario(blocks);
  // Cauchy-based RS is MDS: any f <= m failures are decodable.
  return out;
}

}  // namespace ppm
