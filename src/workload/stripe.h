// Stripe buffers: one contiguous aligned allocation per stripe, one region
// per block, plus fill / erase / verify helpers used by tests, examples and
// the benchmark harnesses.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/erasure_code.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "decode/scenario.h"

namespace ppm {

class Stripe {
 public:
  /// Allocate storage for every block of `code`, `block_bytes` bytes each
  /// (must be a multiple of the code's symbol size).
  Stripe(const ErasureCode& code, std::size_t block_bytes);

  const ErasureCode& code() const { return *code_; }
  std::size_t block_bytes() const { return block_bytes_; }
  std::size_t stripe_bytes() const { return block_bytes_ * ptrs_.size(); }

  std::uint8_t* block(std::size_t id) { return ptrs_[id]; }
  const std::uint8_t* block(std::size_t id) const { return ptrs_[id]; }

  /// Block-pointer table in block-id order — the form the decoders take.
  std::uint8_t* const* block_ptrs() { return ptrs_.data(); }

  /// Fill the data blocks with pseudo-random bytes and zero the parities.
  void fill_data(Rng& rng);

  /// Overwrite the scenario's blocks with a poison pattern, simulating
  /// their loss (decoders must not read them before writing).
  void erase(const FailureScenario& scenario);

  /// Snapshot the whole stripe (for byte-exact post-decode comparison).
  std::vector<std::uint8_t> snapshot() const;

  /// Compare the listed blocks against a snapshot taken earlier.
  bool blocks_equal(const std::vector<std::uint8_t>& snap,
                    std::span<const std::size_t> blocks) const;

  /// Compare the full stripe against a snapshot.
  bool equals(const std::vector<std::uint8_t>& snap) const;

 private:
  const ErasureCode* code_;
  std::size_t block_bytes_;
  AlignedBuffer storage_;
  std::vector<std::uint8_t*> ptrs_;
};

}  // namespace ppm
