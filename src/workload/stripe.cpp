#include "workload/stripe.h"

#include <cstring>
#include <stdexcept>

namespace ppm {

Stripe::Stripe(const ErasureCode& code, std::size_t block_bytes)
    : code_(&code),
      block_bytes_(block_bytes),
      storage_(block_bytes * code.total_blocks()),
      ptrs_(code.total_blocks()) {
  if (block_bytes == 0 || block_bytes % code.field().symbol_bytes() != 0) {
    throw std::invalid_argument(
        "block size must be a positive multiple of the symbol size");
  }
  for (std::size_t b = 0; b < ptrs_.size(); ++b) {
    ptrs_[b] = storage_.data() + b * block_bytes_;
  }
}

void Stripe::fill_data(Rng& rng) {
  for (std::size_t b = 0; b < ptrs_.size(); ++b) {
    if (code_->is_parity(b)) {
      std::memset(ptrs_[b], 0, block_bytes_);
    } else {
      rng.fill(ptrs_[b], block_bytes_);
    }
  }
}

void Stripe::erase(const FailureScenario& scenario) {
  for (const std::size_t b : scenario.faulty()) {
    std::memset(ptrs_[b], 0xDB, block_bytes_);  // poison, not zero
  }
}

std::vector<std::uint8_t> Stripe::snapshot() const {
  std::vector<std::uint8_t> out(stripe_bytes());
  std::memcpy(out.data(), storage_.data(), out.size());
  return out;
}

bool Stripe::blocks_equal(const std::vector<std::uint8_t>& snap,
                          std::span<const std::size_t> blocks) const {
  for (const std::size_t b : blocks) {
    if (std::memcmp(snap.data() + b * block_bytes_, ptrs_[b], block_bytes_) !=
        0) {
      return false;
    }
  }
  return true;
}

bool Stripe::equals(const std::vector<std::uint8_t>& snap) const {
  return snap.size() == stripe_bytes() &&
         std::memcmp(snap.data(), storage_.data(), snap.size()) == 0;
}

}  // namespace ppm
