// Paper-faithful failure-scenario generation (§IV).
//
// SD/PMDS: the worst case — m whole faulty disks (uniform over disks) plus
// s additional faulty sectors drawn among the surviving disks' sectors,
// confined to z rows. LRC: one faulty strip in each of `local_groups`
// distinct local groups (the independent, locally-repairable part) plus
// `extra` additional strip failures that exercise the global parities.
// RS: f uniformly random strips.
//
// Every generator retries until the scenario is decodable under the given
// code (rank(F) = |faults|) and reports how many redraws that took, so
// coefficient-induced singular corner cases are visible instead of silent.
#pragma once

#include <cstddef>

#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "common/rng.h"
#include "decode/scenario.h"

namespace ppm {

struct GeneratedScenario {
  FailureScenario scenario;
  std::size_t redraws = 0;  ///< undecodable draws discarded before this one
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t seed) : rng_(seed) {}

  /// Worst-case SD/PMDS scenario: m disks + s sectors in z rows.
  /// Preconditions: z <= min(s, r), s <= z * (n - m).
  GeneratedScenario sd_worst_case(const ErasureCode& code, std::size_t m,
                                  std::size_t s, std::size_t z);

  /// LRC scenario: one strip per chosen local group + extra failures.
  /// Preconditions: local_groups <= l, local_groups + extra <= l + g.
  GeneratedScenario lrc_failures(const LRCCode& code,
                                 std::size_t local_groups, std::size_t extra);

  /// RS scenario: f random strips (f <= m for decodability).
  GeneratedScenario rs_failures(const RSCode& code, std::size_t f);

  /// Generic whole-disk failures for any code: `count` random distinct
  /// disks, every block on them faulty; redraws until decodable (throws
  /// after `max_redraws` draws for patterns the code cannot tolerate).
  GeneratedScenario disk_failures(const ErasureCode& code, std::size_t count,
                                  std::size_t max_redraws = 64);

  Rng& rng() { return rng_; }

 private:
  bool decodable(const ErasureCode& code, const FailureScenario& sc) const;

  Rng rng_;
};

}  // namespace ppm
