#include "workload/verify.h"

#include <algorithm>
#include <cstring>

#include "common/aligned_buffer.h"

namespace ppm {

namespace {

// Compute the syndrome of one check row into `syndrome`.
void row_syndrome(const ErasureCode& code, std::size_t row,
                  std::uint8_t* const* blocks, std::size_t block_bytes,
                  std::uint8_t* syndrome) {
  const Matrix& h = code.parity_check();
  const gf::Field& f = code.field();
  bool first = true;
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    const gf::Element c = h(row, b);
    if (c == 0) continue;
    if (first) {
      f.mult_region(syndrome, blocks[b], c, block_bytes);
      first = false;
    } else {
      f.mult_region_xor(syndrome, blocks[b], c, block_bytes);
    }
  }
  if (first) std::memset(syndrome, 0, block_bytes);
}

bool all_zero(const std::uint8_t* p, std::size_t n) {
  return std::all_of(p, p + n, [](std::uint8_t b) { return b == 0; });
}

}  // namespace

bool stripe_consistent(const ErasureCode& code, std::uint8_t* const* blocks,
                       std::size_t block_bytes) {
  AlignedBuffer syndrome(block_bytes);
  for (std::size_t row = 0; row < code.check_rows(); ++row) {
    row_syndrome(code, row, blocks, block_bytes, syndrome.data());
    if (!all_zero(syndrome.data(), block_bytes)) return false;
  }
  return true;
}

std::vector<std::size_t> violated_checks(const ErasureCode& code,
                                         std::uint8_t* const* blocks,
                                         std::size_t block_bytes) {
  std::vector<std::size_t> out;
  AlignedBuffer syndrome(block_bytes);
  for (std::size_t row = 0; row < code.check_rows(); ++row) {
    row_syndrome(code, row, blocks, block_bytes, syndrome.data());
    if (!all_zero(syndrome.data(), block_bytes)) out.push_back(row);
  }
  return out;
}

std::vector<std::size_t> locate_single_corruption(
    const ErasureCode& code, std::uint8_t* const* blocks,
    std::size_t block_bytes) {
  const auto violated = violated_checks(code, blocks, block_bytes);
  if (violated.empty()) return {};
  const Matrix& h = code.parity_check();
  std::vector<std::size_t> candidates;
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    // The block's nonzero-row signature must match the violated set.
    std::vector<std::size_t> sig;
    for (std::size_t row = 0; row < h.rows(); ++row) {
      if (h(row, b) != 0) sig.push_back(row);
    }
    if (sig == violated) candidates.push_back(b);
  }
  return candidates;
}

}  // namespace ppm
