// Stripe consistency checking via parity-check syndromes.
//
// A consistent stripe satisfies H · B = 0 on every symbol. These helpers
// compute the syndrome per check row, which storage systems use for
// scrubbing (detecting silent corruption, paper §I's data-corruption
// motivation) and which the tests use as an encoder oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/erasure_code.h"

namespace ppm {

/// True iff every check row's syndrome is zero over the whole region.
bool stripe_consistent(const ErasureCode& code, std::uint8_t* const* blocks,
                       std::size_t block_bytes);

/// Indices of check rows whose syndrome is nonzero (empty = consistent).
/// A single corrupted block trips exactly the rows whose column for that
/// block is nonzero, which localizes the corruption for SD-style codes.
std::vector<std::size_t> violated_checks(const ErasureCode& code,
                                         std::uint8_t* const* blocks,
                                         std::size_t block_bytes);

/// Candidate corrupted blocks consistent with the violated-check pattern:
/// blocks whose nonzero-row set equals the violated set exactly. Returns
/// an empty vector when the stripe is consistent or when no single-block
/// corruption explains the syndrome (multi-block corruption).
std::vector<std::size_t> locate_single_corruption(
    const ErasureCode& code, std::uint8_t* const* blocks,
    std::size_t block_bytes);

}  // namespace ppm
