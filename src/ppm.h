// Umbrella header for the PPM erasure-coding library.
//
// Typical use:
//
//   #include "ppm.h"
//
//   ppm::SDCode code(/*n=*/8, /*r=*/16, /*m=*/2, /*s=*/2, /*w=*/8);
//   ppm::Stripe stripe(code, /*block_bytes=*/64 * 1024);
//   ppm::Rng rng(1);
//   stripe.fill_data(rng);
//   ppm::PpmDecoder ppm_dec(code);
//   ppm_dec.encode(stripe.block_ptrs(), stripe.block_bytes());
//   ...
//   auto result = ppm_dec.decode(scenario, stripe.block_ptrs(),
//                                stripe.block_bytes());
//
// See README.md for the full walkthrough and DESIGN.md for the
// architecture.
#pragma once

#include "analysis/closed_form.h"
#include "analyze_hazard/hazard.h"
#include "codec/codec.h"
#include "codec/resilient.h"
#include "codec/update.h"
#include "codes/coeff_search.h"
#include "codes/crs_code.h"
#include "codes/erasure_code.h"
#include "codes/evenodd_code.h"
#include "codes/lrc_code.h"
#include "codes/pmds_code.h"
#include "codes/rdp_code.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "codes/star_code.h"
#include "codes/xorbas_lrc_code.h"
#include "common/aligned_buffer.h"
#include "common/cpu.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/sharded_lru.h"
#include "common/timer.h"
#include "decode/block_parallel_decoder.h"
#include "decode/cost_model.h"
#include "decode/degraded_read.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "decode/plan.h"
#include "decode/ppm_decoder.h"
#include "decode/scenario.h"
#include "decode/traditional_decoder.h"
#include "decode/xor_schedule.h"
#include "gf/galois_field.h"
#include "io/block_source.h"
#include "io/fault_injection.h"
#include "matrix/matrix.h"
#include "matrix/solve.h"
#include "optimize_xor/xoropt.h"
#include "parallel/dag_executor.h"
#include "parallel/task_group.h"
#include "plan_store/plan_store.h"
#include "search_coeff/cert_store.h"
#include "search_coeff/certify.h"
#include "search_coeff/scenario_enum.h"
#include "search_coeff/search.h"
#include "scrub/journal.h"
#include "scrub/rate_limiter.h"
#include "scrub/scrub.h"
#include "serve/async_source.h"
#include "serve/overlap.h"
#include "serve/server.h"
#include "serve/uring_source.h"
#include "sim/array_sim.h"
#include "verify_plan/plan_verify.h"
#include "verify_plan/violation.h"
#include "parallel/thread_pool.h"
#include "workload/scenario_gen.h"
#include "workload/stripe.h"
#include "workload/verify.h"
