// Resilient decode pipeline (Codec::decode_resilient): the serving path
// rebuilt over a fallible BlockSource. See codec/resilient.h for the
// ladder contract and docs/ROBUSTNESS.md for the fault model.
#include "codec/resilient.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "codec/codec.h"
#include "common/crc32.h"
#include "common/rng.h"
#include "common/timer.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "io/block_source.h"

namespace ppm {

std::chrono::nanoseconds backoff_delay(const ResilienceOptions& options,
                                       std::size_t retry_index) {
  double ns = static_cast<double>(options.initial_backoff.count());
  const double cap = static_cast<double>(options.max_backoff.count());
  for (std::size_t i = 0; i < retry_index && ns < cap; ++i) {
    ns *= options.backoff_multiplier;
  }
  if (ns > cap) ns = cap;
  if (ns < 0) ns = 0;
  return std::chrono::nanoseconds{static_cast<std::int64_t>(ns)};
}

std::chrono::nanoseconds backoff_delay(const ResilienceOptions& options,
                                       std::size_t retry_index,
                                       std::chrono::nanoseconds remaining) {
  if (remaining.count() <= 0) return std::chrono::nanoseconds{0};
  return std::min(backoff_delay(options, retry_index), remaining);
}

std::chrono::nanoseconds backoff_delay(const ResilienceOptions& options,
                                       std::size_t retry_index, Rng& rng) {
  const std::chrono::nanoseconds base = backoff_delay(options, retry_index);
  double jitter = options.backoff_jitter;
  if (jitter <= 0.0) return base;  // no draw: bit-identical to the base form
  if (jitter > 1.0) jitter = 1.0;
  const double b = static_cast<double>(base.count());
  const double lo = b * (1.0 - jitter);
  return std::chrono::nanoseconds{
      static_cast<std::int64_t>(lo + rng.uniform() * (b - lo))};
}

RecoveryOutcome ResilientResult::outcome_of(std::size_t block) const {
  const auto in = [block](const std::vector<std::size_t>& v) {
    return std::binary_search(v.begin(), v.end(), block);
  };
  if (in(recovered)) return RecoveryOutcome::kRecovered;
  if (in(corrupted)) return RecoveryOutcome::kCorruptionDetected;
  if (in(source_failed)) return RecoveryOutcome::kSourceFailed;
  if (in(unrecoverable)) return RecoveryOutcome::kUnrecoverable;
  return RecoveryOutcome::kIntact;
}

namespace {

enum class FetchState : std::uint8_t { kUnread, kInBuffer, kFailed };

/// Jitter-stream seed for decodes that did not pin one: a process-global
/// counter, so concurrent decodes retrying against the same dead device
/// draw from distinct streams and spread out instead of thundering in
/// lockstep.
std::uint64_t next_jitter_seed() {
  static std::atomic<std::uint64_t> counter{0x9e3779b97f4a7c15ULL};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Survivor fetch engine: reads blocks from the source into the caller's
/// stripe buffers exactly once per decode, with bounded retries,
/// exponential backoff and the per-decode deadline. CRC verification of
/// fetched survivors (when digests are supplied) happens here too, so a
/// silently corrupt read is indistinguishable from a failed one — it
/// retries and, if persistent, escalates.
class Fetcher {
 public:
  Fetcher(io::BlockSource& source, std::uint8_t* const* blocks,
          std::size_t block_bytes, const ResilienceOptions& options,
          std::span<const std::uint32_t> expected_crc, const Timer& clock,
          CodecMetrics& metrics, ResilientResult& out)
      : source_(&source),
        blocks_(blocks),
        block_bytes_(block_bytes),
        options_(&options),
        expected_crc_(expected_crc),
        clock_(&clock),
        metrics_(&metrics),
        out_(&out),
        state_(source.block_count(), FetchState::kUnread),
        jitter_rng_(options.jitter_seed != 0 ? options.jitter_seed
                                             : next_jitter_seed()) {}

  /// True once the per-decode deadline (if any) has elapsed. From then on
  /// no source reads or backoff sleeps are issued.
  bool deadline_passed() const {
    return options_->deadline.count() > 0 &&
           clock_->nanos() >= options_->deadline.count();
  }

  /// `block` was given up on (retries exhausted or deadline passed).
  bool failed(std::size_t block) const {
    return block < state_.size() && state_[block] == FetchState::kFailed;
  }

  /// Fetch `block` into the caller's buffer. Idempotent per decode: a
  /// block already fetched returns true without touching the source, a
  /// block already given up on returns false without new attempts.
  bool fetch(std::size_t block) {
    if (block >= state_.size()) return false;
    if (state_[block] == FetchState::kInBuffer) return true;
    if (state_[block] == FetchState::kFailed) return false;
    for (std::size_t attempt = 0;; ++attempt) {
      if (deadline_passed()) {
        out_->deadline_exceeded = true;
        break;
      }
      bool ok = source_->read(block, blocks_[block], block_bytes_) ==
                io::ReadStatus::kOk;
      if (ok && has_digests() &&
          crc32(blocks_[block], block_bytes_) != expected_crc_[block]) {
        // A read that returns wrong bytes is a failed read that lied;
        // count the detection and retry — transient corruption heals,
        // persistent corruption escalates like any dead block.
        ++out_->corruption_detected;
        metrics_->resilience_corruption_detected.add();
        ok = false;
      }
      if (ok) {
        state_[block] = FetchState::kInBuffer;
        return true;
      }
      if (attempt >= options_->max_read_retries) break;
      ++out_->retries;
      metrics_->resilience_retries.add();
      sleep_backoff(attempt);
    }
    state_[block] = FetchState::kFailed;
    return false;
  }

 private:
  bool has_digests() const { return !expected_crc_.empty(); }

  void sleep_backoff(std::size_t retry_index) {
    // Jitter first, then clamp: the deadline budget always wins.
    auto delay = backoff_delay(*options_, retry_index, jitter_rng_);
    if (options_->deadline.count() > 0) {
      const std::chrono::nanoseconds remaining{options_->deadline.count() -
                                               clock_->nanos()};
      delay = remaining.count() <= 0 ? std::chrono::nanoseconds{0}
                                     : std::min(delay, remaining);
    }
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
  }

  io::BlockSource* source_;
  std::uint8_t* const* blocks_;
  std::size_t block_bytes_;
  const ResilienceOptions* options_;
  std::span<const std::uint32_t> expected_crc_;
  const Timer* clock_;
  CodecMetrics* metrics_;
  ResilientResult* out_;
  std::vector<FetchState> state_;
  Rng jitter_rng_;  ///< per-decode jitter stream (see ResilienceOptions)
};

/// Classify every block into the result's disjoint outcome lists, set the
/// summary flags, and account the decode in the metrics. `decoded` is the
/// sorted set of blocks rewritten by the final executed sub-plans; a
/// decoded block is re-verified against its expected CRC (rung 4) before
/// it may be reported as recovered.
void finish(ResilientResult& out, const std::vector<std::size_t>& faulty,
            const std::vector<std::size_t>& decoded, const Fetcher& fetcher,
            std::span<const std::uint32_t> expected_crc,
            std::uint8_t* const* blocks, std::size_t block_bytes,
            std::size_t total_blocks, const Timer& clock,
            CodecMetrics& metrics) {
  for (std::size_t b = 0; b < total_blocks; ++b) {
    const bool is_faulty = std::binary_search(faulty.begin(), faulty.end(), b);
    // A fetch-failed survivor the ladder could not escalate (deadline or
    // escalation cap) is an outcome too: its bytes never arrived.
    if (!is_faulty && !fetcher.failed(b)) continue;
    if (std::binary_search(decoded.begin(), decoded.end(), b)) {
      if (!expected_crc.empty() &&
          crc32(blocks[b], block_bytes) != expected_crc[b]) {
        out.corrupted.push_back(b);
        ++out.corruption_detected;
        metrics.resilience_corruption_detected.add();
      } else {
        out.recovered.push_back(b);
      }
    } else if (fetcher.failed(b)) {
      out.source_failed.push_back(b);
    } else {
      out.unrecoverable.push_back(b);
    }
  }
  out.complete = out.corrupted.empty() && out.source_failed.empty() &&
                 out.unrecoverable.empty();
  out.partial = !out.complete && !out.recovered.empty();
  metrics.decodes.add();
  metrics.stripes_decoded.add();
  metrics.mult_xors.add(out.stats.mult_xors);
  metrics.bytes_touched.add(out.stats.bytes_touched);
  metrics.decode_seconds.record_seconds(clock.seconds());
  if (out.deadline_exceeded) metrics.resilience_deadline_exceeded.add();
}

}  // namespace

ResilientResult Codec::decode_resilient(
    const FailureScenario& scenario, io::BlockSource& source,
    std::uint8_t* const* blocks, std::size_t block_bytes,
    const ResilienceOptions& options,
    std::span<const std::uint32_t> expected_crc) {
  ResilientResult out;
  out.final_scenario = scenario;
  if (scenario.empty()) {
    out.complete = true;
    return out;
  }
  const Timer clock;
  // Digests are all-or-nothing: one CRC32 per block of the stripe.
  if (expected_crc.size() != code_->total_blocks()) expected_crc = {};
  Fetcher fetcher(source, blocks, block_bytes, options, expected_crc, clock,
                  metrics_, out);

  // The working faulty set: the scenario plus every escalated survivor.
  // Kept sorted so sub-plan survivor lists can be membership-tested.
  std::vector<std::size_t> faulty(scenario.faulty().begin(),
                                  scenario.faulty().end());
  const auto in_faulty = [&faulty](std::size_t b) {
    return std::binary_search(faulty.begin(), faulty.end(), b);
  };

  // ---- Rungs 1+2: retry + escalate, re-planning each round. ----------
  // Each round replans for the current faulty set (plan cache / store
  // warm hit), fetches each sub-plan's survivors and executes it. A
  // survivor whose reads fail permanently is promoted into the faulty
  // set and the round restarts; re-executing earlier sub-plans is safe
  // (they overwrite their outputs from fetched survivors). The loop
  // terminates: every escalation strictly grows `faulty`, and an
  // over-capability set makes plan_for return null.
  bool ladder_open = true;  // false: stop escalating, degrade to partial
  std::shared_ptr<const CachedPlan> plan;
  while (ladder_open) {
    const FailureScenario current{
        std::vector<std::size_t>(faulty.begin(), faulty.end())};
    out.final_scenario = current;
    plan = faulty.size() > code_->check_rows() ? nullptr : plan_for(current);
    if (plan == nullptr) break;  // undecodable: degrade to partial

    bool escalated = false;
    const auto run_sub = [&](const SubPlan& sub) -> bool {
      for (const std::size_t s : sub.survivors()) {
        // H_rest may read blocks an earlier group recovered in-buffer;
        // those are in the faulty set and must not be source-read.
        if (in_faulty(s)) continue;
        if (fetcher.fetch(s)) continue;
        if (fetcher.deadline_passed() ||
            out.escalations >= options.max_escalations) {
          ladder_open = false;  // cannot escalate: degrade to partial
          return false;
        }
        faulty.insert(std::upper_bound(faulty.begin(), faulty.end(), s), s);
        ++out.escalations;
        metrics_.resilience_escalations.add();
        escalated = true;
        return false;
      }
      sub.execute(blocks, block_bytes, &out.stats);
      return true;
    };

    bool executed = true;
    for (const SubPlan& sub : plan->groups()) {
      if (!run_sub(sub)) {
        executed = false;
        break;
      }
    }
    if (executed && plan->rest().has_value()) {
      executed = run_sub(*plan->rest());
    }
    if (!executed) {
      if (escalated) continue;  // replan with the larger faulty set
      break;                    // ladder closed: degrade to partial
    }

    // Full decode executed: every block of `faulty` was rewritten.
    finish(out, faulty, faulty, fetcher, expected_crc, blocks, block_bytes,
           code_->total_blocks(), clock, metrics_);
    return out;
  }

  // ---- Rung 3: partial recovery over the O1 group decomposition. -----
  // The escalated scenario is beyond full recovery (or the ladder was
  // closed by the deadline / escalation cap). Solve every independent
  // group whose survivors are all readable; groups with unreadable or
  // unsolvable inputs leave their blocks unrecovered. If every group
  // solved, H_rest gets the same chance with the recovered blocks
  // readable in-buffer.
  metrics_.resilience_partial_decodes.add();
  const FailureScenario current{
      std::vector<std::size_t>(faulty.begin(), faulty.end())};
  out.final_scenario = current;
  const Matrix& h = code_->parity_check();
  const LogTable table = LogTable::build(h, current.faulty());
  const Partition part = make_partition(h, table);
  std::vector<std::size_t> decoded;

  const auto try_solve = [&](std::span<const std::size_t> rows,
                             std::span<const std::size_t> unknowns,
                             std::span<const std::size_t> excluded) -> bool {
    auto sub = SubPlan::make(h, rows, unknowns, excluded,
                             Sequence::kMatrixFirst);
    if (!sub.has_value()) return false;
    for (const std::size_t s : sub->survivors()) {
      if (std::binary_search(decoded.begin(), decoded.end(), s)) {
        continue;  // recovered earlier this pass; valid in-buffer
      }
      if (!fetcher.fetch(s)) return false;
    }
    sub->execute(blocks, block_bytes, &out.stats);
    return true;
  };

  for (const IndependentGroup& g : part.groups) {
    if (try_solve(g.rows, g.faulty_cols, current.faulty())) {
      for (const std::size_t b : g.faulty_cols) {
        decoded.insert(std::upper_bound(decoded.begin(), decoded.end(), b),
                       b);
      }
    }
  }
  if (!part.rest_empty()) {
    // H_rest may legitimately read group-recovered blocks, so exclude
    // only the still-unknown blocks (mirrors Codec::build_plan, which
    // excludes rest_faulty once the groups are known to have run).
    std::vector<std::size_t> still_faulty;
    for (const std::size_t b : faulty) {
      if (!std::binary_search(decoded.begin(), decoded.end(), b)) {
        still_faulty.push_back(b);
      }
    }
    const bool groups_all_decoded =
        still_faulty.size() == part.rest_faulty.size();
    if (groups_all_decoded &&
        try_solve(part.rest_rows, part.rest_faulty, still_faulty)) {
      for (const std::size_t b : part.rest_faulty) {
        decoded.insert(std::upper_bound(decoded.begin(), decoded.end(), b),
                       b);
      }
    }
  }
  finish(out, faulty, decoded, fetcher, expected_crc, blocks, block_bytes,
         code_->total_blocks(), clock, metrics_);
  return out;
}

}  // namespace ppm
