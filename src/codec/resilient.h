// Resilient decode pipeline: options and report types (ppm).
//
// Codec::decode_resilient (declared in codec/codec.h, implemented in
// resilient.cpp) rebuilds the serving path on top of the fallible
// BlockSource abstraction (io/block_source.h). Its ladder, rung by rung:
//
//  1. RETRY      — every survivor read gets up to `max_read_retries`
//                  retries with exponential backoff, all bounded by one
//                  per-decode `deadline`;
//  2. ESCALATE   — a survivor whose reads fail permanently (or whose
//                  bytes fail the caller-supplied CRC) is promoted into
//                  the faulty set; the decode re-plans through the plan
//                  cache/store (warm hit) and restarts, up to the code's
//                  correction capability;
//  3. DEGRADE    — when the escalated scenario is undecodable, every
//                  independent sub-matrix (paper §III-A O1 group) whose
//                  survivors are all readable is still solved, yielding a
//                  partial per-block recovery report instead of
//                  all-or-nothing failure;
//  4. VERIFY     — recovered blocks are checked against expected CRC32
//                  digests when supplied; mismatches are reported as
//                  corruption instead of silently returned.
//
// docs/ROBUSTNESS.md documents the fault model and the exact semantics;
// `ppm_cli chaos` drives the pipeline through seeded fault campaigns.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "decode/plan.h"
#include "decode/scenario.h"

namespace ppm {

class Rng;

/// Knobs of the resilient decode ladder. Defaults are test-friendly
/// (microsecond backoff); serving deployments tune them to the medium.
struct ResilienceOptions {
  /// Retries per survivor read beyond the first attempt.
  std::size_t max_read_retries = 3;

  /// Backoff before retry k (k = 0 for the first retry) is
  /// initial_backoff * backoff_multiplier^k, capped at max_backoff.
  std::chrono::nanoseconds initial_backoff{1000};
  double backoff_multiplier = 2.0;
  std::chrono::nanoseconds max_backoff{1000000};

  /// Jitter fraction in [0, 1]: each backoff sleep is drawn uniformly
  /// from [(1 - jitter) * base, base], decorrelating the retry storms of
  /// decodes that hit the same failed device in lockstep. 0 (default)
  /// reproduces the exact exponential schedule.
  double backoff_jitter = 0.0;

  /// Seed for the jitter stream. 0 (default) gives every decode its own
  /// stream (a process-global counter), which is what production wants;
  /// tests pin a nonzero seed to make the jittered schedule replayable.
  std::uint64_t jitter_seed = 0;

  /// Wall-clock budget for the whole decode (reads + retries + solves);
  /// zero means no deadline. Once exceeded, no further source reads or
  /// backoff sleeps are issued: pending fetches fail fast and the decode
  /// degrades to whatever the already-fetched survivors support.
  std::chrono::nanoseconds deadline{0};

  /// Cap on survivor-to-faulty promotions per decode. The code's
  /// correction capability bounds useful escalations anyway; lower this
  /// only to pin specific ladder behavior in tests.
  std::size_t max_escalations = static_cast<std::size_t>(-1);
};

/// Backoff before retry `retry_index` (0-based) under `options`:
/// initial_backoff * multiplier^retry_index, saturated at max_backoff.
/// Pure — unit-testable without a clock.
std::chrono::nanoseconds backoff_delay(const ResilienceOptions& options,
                                       std::size_t retry_index);

/// Deadline-aware overload: the same exponential backoff, additionally
/// clamped to the `remaining` wall-clock budget (zero when the budget is
/// spent). This is the sleep the resilient pipeline actually issues — a
/// near-expired deadline can never oversleep. Pure, like the base form.
std::chrono::nanoseconds backoff_delay(const ResilienceOptions& options,
                                       std::size_t retry_index,
                                       std::chrono::nanoseconds remaining);

/// Jittered overload: the exponential backoff for `retry_index`, scaled
/// by a uniform draw from `rng` into [(1 - backoff_jitter) * base, base].
/// With backoff_jitter == 0 no draw is consumed and the result equals the
/// base form exactly. Deterministic for a given rng state — seed it to
/// replay a schedule. The pipeline composes this with the deadline clamp
/// (jitter first, then min with the remaining budget), so a near-expired
/// deadline still can never oversleep.
std::chrono::nanoseconds backoff_delay(const ResilienceOptions& options,
                                       std::size_t retry_index, Rng& rng);

/// Final, mutually exclusive per-block outcome of a resilient decode.
enum class RecoveryOutcome {
  kIntact,              ///< survivor; read fine (or never needed)
  kRecovered,           ///< decoded, and byte-verified when digests given
  kCorruptionDetected,  ///< decoded but failed the expected-CRC check
  kSourceFailed,        ///< reads failed permanently; never recovered
  kUnrecoverable,       ///< faulty and beyond the achievable recovery
};

/// Report of one resilient decode. The four block lists are disjoint and
/// sorted; a block appears in at most one (outcome_of() folds them).
struct ResilientResult {
  bool complete = false;  ///< every faulty block recovered and clean
  bool partial = false;   ///< some, but not all, recovered
  bool deadline_exceeded = false;

  std::size_t retries = 0;              ///< read retries issued
  std::size_t escalations = 0;          ///< survivors promoted to faulty
  std::size_t corruption_detected = 0;  ///< CRC mismatches (read + decode)

  std::vector<std::size_t> recovered;      ///< decoded, digest-clean
  std::vector<std::size_t> corrupted;      ///< decoded, digest mismatch
  std::vector<std::size_t> source_failed;  ///< unreadable, not recovered
  std::vector<std::size_t> unrecoverable;  ///< lost beyond recovery

  /// The faulty set the final (full or partial) solve ran against:
  /// the input scenario plus every escalated survivor.
  FailureScenario final_scenario;

  DecodeStats stats;  ///< region-op volume of executed sub-plans

  /// Fold the lists into one outcome for `block`.
  RecoveryOutcome outcome_of(std::size_t block) const;
};

}  // namespace ppm
