// Codec: the stripe-store-facing facade.
//
// A storage system rarely decodes one stripe: a disk failure touches the
// same block positions of *every* stripe in the placement group. The codec
// therefore (a) caches decode plans per failure scenario — the matrix
// bookkeeping (log table, partition, inversions) is paid once and reused
// across stripes — and (b) offers a batch decode that pipelines many
// stripes, combining PPM's intra-stripe (matrix-level) parallelism with
// the classic inter-stripe (block-level) parallelism of [36]-[38] in the
// paper's related work. The ablation benches quantify each contribution.
//
// Thread-safety: a Codec is safe for concurrent use from any number of
// threads. plan_for/decode/encode/decode_batch may all run at once; the
// plan cache is sharded-LRU (common/sharded_lru.h) so lookups on distinct
// scenarios rarely contend, and the stats/metrics accessors are lock-free
// relaxed-atomic reads. Two threads that miss on the same scenario
// concurrently may both build the plan; the first insert wins and both
// threads share the surviving instance. See docs/CONCURRENCY.md for the
// full contract.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "codec/resilient.h"
#include "codes/erasure_code.h"
#include "common/metrics.h"
#include "common/sharded_lru.h"
#include "decode/plan.h"
#include "decode/ppm_decoder.h"
#include "decode/scenario.h"
#include "decode/xor_schedule.h"
#include "optimize_xor/xoropt.h"
#include "parallel/thread_pool.h"

namespace ppm {

namespace planstore {
class PlanStore;
}  // namespace planstore

namespace io {
class BlockSource;
}  // namespace io

/// Cost/concurrency profile of a cached plan — the numbers the hazard
/// analyzer (analyze_hazard/) derives from the plan's dependency DAG.
/// Computed exactly once, when the plan is built (or re-verified on load
/// from the persistent store), and carried with the plan so downstream
/// consumers (`ppm_cli analyze`, schedulers, the store) never recompute
/// the analysis for a plan that already holds it.
struct PlanProfile {
  std::size_t cost = 0;           ///< exact mult_XORs of one execution
  std::size_t work = 0;           ///< Σ unit work over the hazard DAG
  std::size_t critical_path = 0;  ///< heaviest dependency chain (mult_XORs)
  std::size_t max_width = 0;      ///< peak concurrently-runnable units
  std::vector<std::size_t> level_width;  ///< units per DAG level
  bool hazard_free = false;       ///< no violation in the parallel fan-out

  /// Brent's-theorem speedup ceiling: work / critical path.
  double speedup_bound() const {
    return critical_path == 0 ? 1.0
                              : static_cast<double>(work) /
                                    static_cast<double>(critical_path);
  }

  bool operator==(const PlanProfile&) const = default;
};

/// A superoptimized XOR schedule for one binary sub-system of a plan,
/// attached only after it carried a passing xoropt proof (symbolic GF(2)
/// replay + hazard re-analysis). `sub` indexes CachedPlan::groups();
/// sub == groups().size() refers to the rest() sub-plan.
struct PlanSchedule {
  std::size_t sub = 0;
  XorSchedule schedule;
};

/// A fully planned PPM decode, reusable across stripes with the same
/// failure scenario. Thread-safe to execute concurrently on distinct
/// stripes.
class CachedPlan {
 public:
  std::size_t p() const { return group_plans_.size(); }
  std::size_t cost() const;

  /// The hazard/cost profile computed when this plan was built or
  /// re-verified on load. Plans assembled via assemble() carry a default
  /// (all-zero, !hazard_free) profile — nothing is analyzed there.
  const PlanProfile& profile() const { return profile_; }

  /// Execute on one stripe: groups (serially, in the calling thread) then
  /// the rest plan. Batch-level parallelism comes from the codec running
  /// many of these concurrently.
  void execute(std::uint8_t* const* blocks, std::size_t block_bytes,
               DecodeStats* stats = nullptr) const;

  /// Execute on one stripe with the group fan-out LPT-placed onto up to
  /// `lanes` lanes of `pool` (hazard::place_lpt over the groups' costs —
  /// the same weights the plan's hazard DAG carries); the rest plan runs
  /// in the calling thread after every group completes, matching the
  /// DAG's group -> rest edges. Callers must gate on profile().hazard_free
  /// — the proof that the groups may run concurrently at all. Falls back
  /// to execute() when there is no exploitable width (lanes < 2 or fewer
  /// than two groups); returns true when the parallel path actually ran.
  bool execute_placed(std::uint8_t* const* blocks, std::size_t block_bytes,
                      ThreadPool& pool, unsigned lanes,
                      DecodeStats* stats = nullptr) const;

  /// The independent-group sub-plans, in execution order.
  std::span<const SubPlan> groups() const { return group_plans_; }

  /// The H_rest sub-plan, executed after every group (its survivors may
  /// therefore include group-recovered blocks).
  const std::optional<SubPlan>& rest() const { return rest_plan_; }

  /// Proof-carrying optimized XOR schedules for the plan's binary
  /// sub-systems, one per entry (empty unless the codec was built with
  /// Options::optimize_xor and at least one rewrite proved out). Each
  /// schedule passed xoropt::prove against its sub-plan's applied matrix
  /// when it was attached; the plan store re-proves on every reload.
  std::span<const PlanSchedule> schedules() const { return schedules_; }

  /// Aggregate optimizer statistics over every sub-system the pipeline
  /// ran on (all-zero when Options::optimize_xor is off).
  const xoropt::Stats& xoropt_stats() const { return xoropt_stats_; }

  /// Assemble a plan from explicit sub-plans, bypassing the planner. For
  /// verification tooling and tests (verify_plan/ exercises hand-corrupted
  /// plans); nothing is validated here.
  static CachedPlan assemble(std::vector<SubPlan> groups,
                             std::optional<SubPlan> rest);

 private:
  friend class Codec;
  friend class planstore::PlanStore;  // sets profile_ after re-verification
  std::vector<SubPlan> group_plans_;
  std::optional<SubPlan> rest_plan_;
  PlanProfile profile_;
  std::vector<PlanSchedule> schedules_;
  xoropt::Stats xoropt_stats_;
};

struct BatchResult {
  std::size_t stripes = 0;
  DecodeStats stats;           ///< summed over all stripes
  double seconds = 0;          ///< wall time for the whole batch
  double plan_seconds = 0;     ///< planning time (paid once)
};

class Codec {
 public:
  struct Options {
    unsigned threads = 0;     ///< worker threads for batch decode (0 = hw)
    std::size_t cache_capacity = 64;  ///< retained scenario plans (total)
    /// Plan-cache mutex domains. 0 = auto: min(8, cache_capacity). 1
    /// degenerates to a single strict-LRU cache (useful for tests wanting
    /// deterministic eviction order); more shards reduce lock contention
    /// but evict per shard rather than globally.
    std::size_t cache_shards = 0;
    /// Run the proof-carrying XOR-schedule superoptimizer
    /// (optimize_xor/xoropt.h) over every binary sub-system when a plan
    /// is built, and attach the proven schedules to the CachedPlan (and,
    /// through the store, to disk). Off by default: planning cost grows
    /// and only binary (CRS/EVENODD/RDP/STAR-style) systems benefit.
    bool optimize_xor = false;
  };

  explicit Codec(const ErasureCode& code) : Codec(code, Options{}) {}
  Codec(const ErasureCode& code, Options options);

  const ErasureCode& code() const { return *code_; }

  /// Plan (or fetch the cached plan for) a scenario. std::nullopt when
  /// undecodable. The shared_ptr keeps the plan alive for the caller even
  /// after LRU eviction.
  std::shared_ptr<const CachedPlan> plan_for(const FailureScenario& scenario);

  /// Decode one stripe using the cached plan.
  bool decode(const FailureScenario& scenario, std::uint8_t* const* blocks,
              std::size_t block_bytes, DecodeStats* stats = nullptr);

  /// Encode one stripe (scenario = all parity blocks).
  bool encode(std::uint8_t* const* blocks, std::size_t block_bytes,
              DecodeStats* stats = nullptr);

  /// Resilient decode over a fallible BlockSource (io/block_source.h):
  /// survivors are fetched through `source` into the caller's `blocks`
  /// regions with bounded retries + exponential backoff under one
  /// per-decode deadline; a permanently unreadable (or, given digests,
  /// corrupt) survivor is escalated into the faulty set and the decode
  /// re-planned through the plan cache/store; an undecodable escalated
  /// scenario still recovers every independent O1 group whose inputs are
  /// readable (partial recovery). When `expected_crc` has one CRC32 per
  /// block, survivor reads and recovered blocks are integrity-checked
  /// against it and mismatches reported as corruption_detected. Never
  /// throws on I/O faults; see codec/resilient.h and docs/ROBUSTNESS.md.
  ResilientResult decode_resilient(const FailureScenario& scenario,
                                   io::BlockSource& source,
                                   std::uint8_t* const* blocks,
                                   std::size_t block_bytes,
                                   const ResilienceOptions& options = {},
                                   std::span<const std::uint32_t>
                                       expected_crc = {});

  /// Decode a batch of stripes sharing one failure scenario — the
  /// disk-rebuild path. Planning happens once; stripes are distributed
  /// over the codec's persistent worker pool (created on first use).
  std::optional<BatchResult> decode_batch(
      const FailureScenario& scenario,
      const std::vector<std::uint8_t* const*>& stripes,
      std::size_t block_bytes);

  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_capacity() const { return cache_.capacity(); }
  std::size_t cache_shards() const { return cache_.shard_count(); }

  /// Attach a persistent plan store (plan_store/): plan_for writes every
  /// freshly built plan through to disk and, on a cache miss, tries a
  /// zero-trust load from disk before rebuilding. Creates `directory` if
  /// needed. Attaching while traffic is in flight is safe (the pointer is
  /// swapped under a mutex); in-flight misses may still rebuild.
  void attach_store(const std::string& directory);
  void attach_store(std::shared_ptr<planstore::PlanStore> store);

  /// The attached store, or nullptr.
  std::shared_ptr<planstore::PlanStore> store() const;

  /// Bulk-preload the plan cache from the attached store: every record of
  /// this code (or just `scenarios`) is loaded through the zero-trust
  /// path — parse, planverify, hazard re-analysis — and inserted into the
  /// sharded cache. Returns the number of plans that entered the cache
  /// from disk (also counted in planstore.warm_hits). Records that fail
  /// re-verification are quarantined, counted, and skipped — warm() never
  /// builds; pair it with plan_for for rebuild-on-demand.
  std::size_t warm();
  std::size_t warm(std::span<const FailureScenario> scenarios);

  // Lock-free stats reads (relaxed atomics — safe concurrent with
  // decode traffic; see docs/CONCURRENCY.md).
  std::size_t cache_hits() const { return metrics_.plan_hits.value(); }
  std::size_t cache_misses() const { return metrics_.plan_misses.value(); }
  std::size_t cache_evictions() const {
    return metrics_.plan_evictions.value();
  }

  /// Full metric set (counters + latency histograms); every member is
  /// individually thread-safe to read while the codec serves traffic.
  const CodecMetrics& metrics() const { return metrics_; }

  /// JSON snapshot of metrics() — the export format of `ppm_cli batch`.
  std::string metrics_json() const { return metrics_.to_json(); }

 private:
  std::shared_ptr<CachedPlan> build_plan(const FailureScenario& scenario) const;
  ThreadPool& batch_pool();

  /// The one key-derivation function shared by the in-memory cache and —
  /// via CodeSignature — the plan store: signature digest, then the
  /// sorted faulty set.
  std::vector<std::size_t> plan_key(const FailureScenario& scenario) const;

  /// Point-in-time copy of the attached store pointer.
  std::shared_ptr<planstore::PlanStore> store_ref() const;

  const ErasureCode* code_;
  Options options_;
  std::uint64_t signature_digest_;
  CodecMetrics metrics_;
  ShardedLruCache<std::shared_ptr<const CachedPlan>> cache_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex store_mutex_;
  std::shared_ptr<planstore::PlanStore> store_;
};

}  // namespace ppm
