// Codec: the stripe-store-facing facade.
//
// A storage system rarely decodes one stripe: a disk failure touches the
// same block positions of *every* stripe in the placement group. The codec
// therefore (a) caches decode plans per failure scenario — the matrix
// bookkeeping (log table, partition, inversions) is paid once and reused
// across stripes — and (b) offers a batch decode that pipelines many
// stripes, combining PPM's intra-stripe (matrix-level) parallelism with
// the classic inter-stripe (block-level) parallelism of [36]-[38] in the
// paper's related work. The ablation benches quantify each contribution.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "codes/erasure_code.h"
#include "decode/plan.h"
#include "decode/ppm_decoder.h"
#include "decode/scenario.h"
#include "parallel/thread_pool.h"

namespace ppm {

/// A fully planned PPM decode, reusable across stripes with the same
/// failure scenario. Thread-safe to execute concurrently on distinct
/// stripes.
class CachedPlan {
 public:
  std::size_t p() const { return group_plans_.size(); }
  std::size_t cost() const;

  /// Execute on one stripe: groups (serially, in the calling thread) then
  /// the rest plan. Batch-level parallelism comes from the codec running
  /// many of these concurrently.
  void execute(std::uint8_t* const* blocks, std::size_t block_bytes,
               DecodeStats* stats = nullptr) const;

 private:
  friend class Codec;
  std::vector<SubPlan> group_plans_;
  std::optional<SubPlan> rest_plan_;
};

struct BatchResult {
  std::size_t stripes = 0;
  DecodeStats stats;           ///< summed over all stripes
  double seconds = 0;          ///< wall time for the whole batch
  double plan_seconds = 0;     ///< planning time (paid once)
};

class Codec {
 public:
  struct Options {
    unsigned threads = 0;     ///< worker threads for batch decode (0 = hw)
    std::size_t cache_capacity = 64;  ///< retained scenario plans
  };

  explicit Codec(const ErasureCode& code) : Codec(code, Options{}) {}
  Codec(const ErasureCode& code, Options options);

  const ErasureCode& code() const { return *code_; }

  /// Plan (or fetch the cached plan for) a scenario. std::nullopt when
  /// undecodable. The returned pointer stays valid for the life of the
  /// codec or until evicted (shared_ptr keeps it alive for callers).
  std::shared_ptr<const CachedPlan> plan_for(const FailureScenario& scenario);

  /// Decode one stripe using the cached plan.
  bool decode(const FailureScenario& scenario, std::uint8_t* const* blocks,
              std::size_t block_bytes, DecodeStats* stats = nullptr);

  /// Encode one stripe (scenario = all parity blocks).
  bool encode(std::uint8_t* const* blocks, std::size_t block_bytes,
              DecodeStats* stats = nullptr);

  /// Decode a batch of stripes sharing one failure scenario — the
  /// disk-rebuild path. Planning happens once; stripes are distributed
  /// over the worker pool.
  std::optional<BatchResult> decode_batch(
      const FailureScenario& scenario,
      const std::vector<std::uint8_t* const*>& stripes,
      std::size_t block_bytes);

  std::size_t cache_size() const;
  std::size_t cache_hits() const { return hits_; }
  std::size_t cache_misses() const { return misses_; }

 private:
  std::shared_ptr<const CachedPlan> build_plan(
      const FailureScenario& scenario) const;

  const ErasureCode* code_;
  Options options_;
  mutable std::mutex mutex_;
  // FIFO-evicted scenario -> plan map (scenario lists are small).
  std::map<std::vector<std::size_t>, std::shared_ptr<const CachedPlan>>
      cache_;
  std::vector<std::vector<std::size_t>> eviction_order_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace ppm
