// Codec: the stripe-store-facing facade.
//
// A storage system rarely decodes one stripe: a disk failure touches the
// same block positions of *every* stripe in the placement group. The codec
// therefore (a) caches decode plans per failure scenario — the matrix
// bookkeeping (log table, partition, inversions) is paid once and reused
// across stripes — and (b) offers a batch decode that pipelines many
// stripes, combining PPM's intra-stripe (matrix-level) parallelism with
// the classic inter-stripe (block-level) parallelism of [36]-[38] in the
// paper's related work. The ablation benches quantify each contribution.
//
// Thread-safety: a Codec is safe for concurrent use from any number of
// threads. plan_for/decode/encode/decode_batch may all run at once; the
// plan cache is sharded-LRU (common/sharded_lru.h) so lookups on distinct
// scenarios rarely contend, and the stats/metrics accessors are lock-free
// relaxed-atomic reads. Two threads that miss on the same scenario
// concurrently may both build the plan; the first insert wins and both
// threads share the surviving instance. See docs/CONCURRENCY.md for the
// full contract.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "codes/erasure_code.h"
#include "common/metrics.h"
#include "common/sharded_lru.h"
#include "decode/plan.h"
#include "decode/ppm_decoder.h"
#include "decode/scenario.h"
#include "parallel/thread_pool.h"

namespace ppm {

/// A fully planned PPM decode, reusable across stripes with the same
/// failure scenario. Thread-safe to execute concurrently on distinct
/// stripes.
class CachedPlan {
 public:
  std::size_t p() const { return group_plans_.size(); }
  std::size_t cost() const;

  /// Execute on one stripe: groups (serially, in the calling thread) then
  /// the rest plan. Batch-level parallelism comes from the codec running
  /// many of these concurrently.
  void execute(std::uint8_t* const* blocks, std::size_t block_bytes,
               DecodeStats* stats = nullptr) const;

  /// The independent-group sub-plans, in execution order.
  std::span<const SubPlan> groups() const { return group_plans_; }

  /// The H_rest sub-plan, executed after every group (its survivors may
  /// therefore include group-recovered blocks).
  const std::optional<SubPlan>& rest() const { return rest_plan_; }

  /// Assemble a plan from explicit sub-plans, bypassing the planner. For
  /// verification tooling and tests (verify_plan/ exercises hand-corrupted
  /// plans); nothing is validated here.
  static CachedPlan assemble(std::vector<SubPlan> groups,
                             std::optional<SubPlan> rest);

 private:
  friend class Codec;
  std::vector<SubPlan> group_plans_;
  std::optional<SubPlan> rest_plan_;
};

struct BatchResult {
  std::size_t stripes = 0;
  DecodeStats stats;           ///< summed over all stripes
  double seconds = 0;          ///< wall time for the whole batch
  double plan_seconds = 0;     ///< planning time (paid once)
};

class Codec {
 public:
  struct Options {
    unsigned threads = 0;     ///< worker threads for batch decode (0 = hw)
    std::size_t cache_capacity = 64;  ///< retained scenario plans (total)
    /// Plan-cache mutex domains. 0 = auto: min(8, cache_capacity). 1
    /// degenerates to a single strict-LRU cache (useful for tests wanting
    /// deterministic eviction order); more shards reduce lock contention
    /// but evict per shard rather than globally.
    std::size_t cache_shards = 0;
  };

  explicit Codec(const ErasureCode& code) : Codec(code, Options{}) {}
  Codec(const ErasureCode& code, Options options);

  const ErasureCode& code() const { return *code_; }

  /// Plan (or fetch the cached plan for) a scenario. std::nullopt when
  /// undecodable. The shared_ptr keeps the plan alive for the caller even
  /// after LRU eviction.
  std::shared_ptr<const CachedPlan> plan_for(const FailureScenario& scenario);

  /// Decode one stripe using the cached plan.
  bool decode(const FailureScenario& scenario, std::uint8_t* const* blocks,
              std::size_t block_bytes, DecodeStats* stats = nullptr);

  /// Encode one stripe (scenario = all parity blocks).
  bool encode(std::uint8_t* const* blocks, std::size_t block_bytes,
              DecodeStats* stats = nullptr);

  /// Decode a batch of stripes sharing one failure scenario — the
  /// disk-rebuild path. Planning happens once; stripes are distributed
  /// over the codec's persistent worker pool (created on first use).
  std::optional<BatchResult> decode_batch(
      const FailureScenario& scenario,
      const std::vector<std::uint8_t* const*>& stripes,
      std::size_t block_bytes);

  std::size_t cache_size() const { return cache_.size(); }
  std::size_t cache_capacity() const { return cache_.capacity(); }
  std::size_t cache_shards() const { return cache_.shard_count(); }

  // Lock-free stats reads (relaxed atomics — safe concurrent with
  // decode traffic; see docs/CONCURRENCY.md).
  std::size_t cache_hits() const { return metrics_.plan_hits.value(); }
  std::size_t cache_misses() const { return metrics_.plan_misses.value(); }
  std::size_t cache_evictions() const {
    return metrics_.plan_evictions.value();
  }

  /// Full metric set (counters + latency histograms); every member is
  /// individually thread-safe to read while the codec serves traffic.
  const CodecMetrics& metrics() const { return metrics_; }

  /// JSON snapshot of metrics() — the export format of `ppm_cli batch`.
  std::string metrics_json() const { return metrics_.to_json(); }

 private:
  std::shared_ptr<const CachedPlan> build_plan(
      const FailureScenario& scenario) const;
  ThreadPool& batch_pool();

  const ErasureCode* code_;
  Options options_;
  CodecMetrics metrics_;
  ShardedLruCache<std::shared_ptr<const CachedPlan>> cache_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ppm
