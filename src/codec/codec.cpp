#include "codec/codec.h"

#include <algorithm>
#include <stdexcept>

#include "analyze_hazard/hazard.h"
#include "common/cpu.h"
#include "common/timer.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "parallel/task_group.h"
#include "verify_plan/plan_verify.h"

namespace ppm {

CachedPlan CachedPlan::assemble(std::vector<SubPlan> groups,
                                std::optional<SubPlan> rest) {
  CachedPlan plan;
  plan.group_plans_ = std::move(groups);
  plan.rest_plan_ = std::move(rest);
  return plan;
}

std::size_t CachedPlan::cost() const {
  std::size_t c = 0;
  for (const SubPlan& p : group_plans_) c += p.cost();
  if (rest_plan_.has_value()) c += rest_plan_->cost();
  return c;
}

void CachedPlan::execute(std::uint8_t* const* blocks, std::size_t block_bytes,
                         DecodeStats* stats) const {
  for (const SubPlan& p : group_plans_) p.execute(blocks, block_bytes, stats);
  if (rest_plan_.has_value()) rest_plan_->execute(blocks, block_bytes, stats);
}

Codec::Codec(const ErasureCode& code, Options options)
    : code_(&code),
      options_(options),
      cache_(options.cache_capacity == 0 ? 1 : options.cache_capacity,
             options.cache_shards, &metrics_.plan_hits, &metrics_.plan_misses,
             &metrics_.plan_evictions) {
  if (options_.threads == 0) options_.threads = hardware_threads();
  if (options_.cache_capacity == 0) options_.cache_capacity = 1;
}

std::shared_ptr<const CachedPlan> Codec::build_plan(
    const FailureScenario& scenario) const {
  const Matrix& h = code_->parity_check();
  const LogTable table = LogTable::build(h, scenario.faulty());
  const Partition part = make_partition(h, table);

  auto plan = std::make_shared<CachedPlan>();
  plan->group_plans_.reserve(part.p());
  for (const IndependentGroup& g : part.groups) {
    auto sub = SubPlan::make(h, g.rows, g.faulty_cols, scenario.faulty(),
                             Sequence::kMatrixFirst);
    if (!sub.has_value()) return nullptr;
    plan->group_plans_.push_back(std::move(*sub));
  }
  if (!part.rest_empty()) {
    // Auto sequence: the cheaper of C3/C4 tails.
    const auto costs = SubPlan::sequence_costs(h, part.rest_rows,
                                               part.rest_faulty,
                                               part.rest_faulty);
    if (!costs.has_value()) return nullptr;
    const Sequence seq = costs->second < costs->first
                             ? Sequence::kMatrixFirst
                             : Sequence::kNormal;
    auto rest = SubPlan::make(h, part.rest_rows, part.rest_faulty,
                              part.rest_faulty, seq);
    if (!rest.has_value()) return nullptr;
    plan->rest_plan_ = std::move(*rest);
  }
  return plan;
}

std::shared_ptr<const CachedPlan> Codec::plan_for(
    const FailureScenario& scenario) {
  const std::vector<std::size_t> key(scenario.faulty().begin(),
                                     scenario.faulty().end());
  if (auto cached = cache_.get(key)) return *cached;
  // Miss: build outside any lock. Concurrent missers may build the same
  // plan; insert() keeps the first and everyone shares it.
  const Timer build;
  auto plan = build_plan(scenario);
  if (plan == nullptr) {
    metrics_.plan_failures.add();
    return nullptr;
  }
#ifdef PPM_VERIFY_PLANS
  // Statically prove the plan sound before it can touch a byte (Debug /
  // -DPPM_VERIFY_PLANS=ON builds). A violation is a library bug; serving
  // a provably wrong plan would corrupt every stripe it decodes, so fail
  // loudly instead of returning it.
  {
    const auto verdict = planverify::verify_plan(*code_, scenario, *plan);
    if (!verdict.ok()) {
      metrics_.plan_verify_failures.add();
      throw std::logic_error("PPM_VERIFY_PLANS: plan rejected: " +
                             planverify::to_json(verdict.violations));
    }
    metrics_.plans_verified.add();
  }
  // And prove its parallel fan-out race-free for every interleaving —
  // serial soundness (above) says the bytes are right one sub-plan at a
  // time; this says the TaskGroup fan-out can't corrupt them either.
  {
    const auto analysis = hazard::analyze_plan(*plan);
    if (!analysis.ok()) {
      metrics_.hazard_failures.add();
      throw std::logic_error("PPM_VERIFY_PLANS: concurrency hazard: " +
                             planverify::to_json(analysis.violations));
    }
    metrics_.plans_analyzed.add();
    metrics_.analyzed_work.add(analysis.total_work);
    metrics_.analyzed_critical_path.add(analysis.critical_path);
  }
#endif
  metrics_.plan_seconds.record_seconds(build.seconds());
  return cache_.insert(key, std::move(plan));
}

bool Codec::decode(const FailureScenario& scenario,
                   std::uint8_t* const* blocks, std::size_t block_bytes,
                   DecodeStats* stats) {
  if (scenario.empty()) return true;
  const Timer total;
  const auto plan = plan_for(scenario);
  if (plan == nullptr) return false;
  DecodeStats local;
  plan->execute(blocks, block_bytes, &local);
  metrics_.decodes.add();
  metrics_.stripes_decoded.add();
  metrics_.mult_xors.add(local.mult_xors);
  metrics_.bytes_touched.add(local.bytes_touched);
  metrics_.decode_seconds.record_seconds(total.seconds());
  if (stats != nullptr) {
    stats->mult_xors += local.mult_xors;
    stats->bytes_touched += local.bytes_touched;
    stats->blocks_read += local.blocks_read;
  }
  return true;
}

bool Codec::encode(std::uint8_t* const* blocks, std::size_t block_bytes,
                   DecodeStats* stats) {
  return decode(FailureScenario::encoding_of(*code_), blocks, block_bytes,
                stats);
}

ThreadPool& Codec::batch_pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(std::max(1u, options_.threads));
  });
  return *pool_;
}

std::optional<BatchResult> Codec::decode_batch(
    const FailureScenario& scenario,
    const std::vector<std::uint8_t* const*>& stripes,
    std::size_t block_bytes) {
  BatchResult result;
  result.stripes = stripes.size();
  const Timer total;
  const auto plan = plan_for(scenario);
  if (plan == nullptr) return std::nullopt;
  result.plan_seconds = total.seconds();

  if (stripes.empty()) {
    result.seconds = total.seconds();
    metrics_.batches.add();
    metrics_.batch_seconds.record_seconds(result.seconds);
    return result;
  }

  std::vector<DecodeStats> per_stripe(stripes.size());
  if (options_.threads <= 1 || stripes.size() == 1) {
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      plan->execute(stripes[i], block_bytes, &per_stripe[i]);
    }
  } else {
    TaskGroup group(batch_pool());
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      group.add([&, i] { plan->execute(stripes[i], block_bytes,
                                       &per_stripe[i]); });
    }
    group.wait();
  }
  for (const DecodeStats& st : per_stripe) {
    result.stats.mult_xors += st.mult_xors;
    result.stats.bytes_touched += st.bytes_touched;
    result.stats.blocks_read += st.blocks_read;
  }
  result.seconds = total.seconds();
  metrics_.batches.add();
  metrics_.stripes_decoded.add(stripes.size());
  metrics_.mult_xors.add(result.stats.mult_xors);
  metrics_.bytes_touched.add(result.stats.bytes_touched);
  metrics_.batch_seconds.record_seconds(result.seconds);
  return result;
}

}  // namespace ppm
