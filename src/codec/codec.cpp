#include "codec/codec.h"

#include <algorithm>

#include "common/cpu.h"
#include "common/timer.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "parallel/task_group.h"

namespace ppm {

std::size_t CachedPlan::cost() const {
  std::size_t c = 0;
  for (const SubPlan& p : group_plans_) c += p.cost();
  if (rest_plan_.has_value()) c += rest_plan_->cost();
  return c;
}

void CachedPlan::execute(std::uint8_t* const* blocks, std::size_t block_bytes,
                         DecodeStats* stats) const {
  for (const SubPlan& p : group_plans_) p.execute(blocks, block_bytes, stats);
  if (rest_plan_.has_value()) rest_plan_->execute(blocks, block_bytes, stats);
}

Codec::Codec(const ErasureCode& code, Options options)
    : code_(&code), options_(options) {
  if (options_.threads == 0) options_.threads = hardware_threads();
  if (options_.cache_capacity == 0) options_.cache_capacity = 1;
}

std::shared_ptr<const CachedPlan> Codec::build_plan(
    const FailureScenario& scenario) const {
  const Matrix& h = code_->parity_check();
  const LogTable table = LogTable::build(h, scenario.faulty());
  const Partition part = make_partition(h, table);

  auto plan = std::make_shared<CachedPlan>();
  plan->group_plans_.reserve(part.p());
  for (const IndependentGroup& g : part.groups) {
    auto sub = SubPlan::make(h, g.rows, g.faulty_cols, scenario.faulty(),
                             Sequence::kMatrixFirst);
    if (!sub.has_value()) return nullptr;
    plan->group_plans_.push_back(std::move(*sub));
  }
  if (!part.rest_empty()) {
    // Auto sequence: the cheaper of C3/C4 tails.
    const auto costs = SubPlan::sequence_costs(h, part.rest_rows,
                                               part.rest_faulty,
                                               part.rest_faulty);
    if (!costs.has_value()) return nullptr;
    const Sequence seq = costs->second < costs->first
                             ? Sequence::kMatrixFirst
                             : Sequence::kNormal;
    auto rest = SubPlan::make(h, part.rest_rows, part.rest_faulty,
                              part.rest_faulty, seq);
    if (!rest.has_value()) return nullptr;
    plan->rest_plan_ = std::move(*rest);
  }
  return plan;
}

std::shared_ptr<const CachedPlan> Codec::plan_for(
    const FailureScenario& scenario) {
  const std::vector<std::size_t> key(scenario.faulty().begin(),
                                     scenario.faulty().end());
  {
    const std::scoped_lock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
  }
  auto plan = build_plan(scenario);
  if (plan == nullptr) return nullptr;
  const std::scoped_lock lock(mutex_);
  if (cache_.size() >= options_.cache_capacity && !eviction_order_.empty()) {
    cache_.erase(eviction_order_.front());
    eviction_order_.erase(eviction_order_.begin());
  }
  cache_.emplace(key, plan);
  eviction_order_.push_back(key);
  return plan;
}

bool Codec::decode(const FailureScenario& scenario,
                   std::uint8_t* const* blocks, std::size_t block_bytes,
                   DecodeStats* stats) {
  if (scenario.empty()) return true;
  const auto plan = plan_for(scenario);
  if (plan == nullptr) return false;
  plan->execute(blocks, block_bytes, stats);
  return true;
}

bool Codec::encode(std::uint8_t* const* blocks, std::size_t block_bytes,
                   DecodeStats* stats) {
  return decode(FailureScenario::encoding_of(*code_), blocks, block_bytes,
                stats);
}

std::optional<BatchResult> Codec::decode_batch(
    const FailureScenario& scenario,
    const std::vector<std::uint8_t* const*>& stripes,
    std::size_t block_bytes) {
  BatchResult result;
  result.stripes = stripes.size();
  const Timer total;
  const auto plan = plan_for(scenario);
  if (plan == nullptr) return std::nullopt;
  result.plan_seconds = total.seconds();

  if (stripes.empty()) {
    result.seconds = total.seconds();
    return result;
  }

  std::vector<DecodeStats> per_stripe(stripes.size());
  if (options_.threads <= 1 || stripes.size() == 1) {
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      plan->execute(stripes[i], block_bytes, &per_stripe[i]);
    }
  } else {
    ThreadPool pool(std::min<unsigned>(
        options_.threads, static_cast<unsigned>(stripes.size())));
    TaskGroup group(pool);
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      group.add([&, i] { plan->execute(stripes[i], block_bytes,
                                       &per_stripe[i]); });
    }
    group.wait();
  }
  for (const DecodeStats& st : per_stripe) {
    result.stats.mult_xors += st.mult_xors;
    result.stats.bytes_touched += st.bytes_touched;
    result.stats.blocks_read += st.blocks_read;
  }
  result.seconds = total.seconds();
  return result;
}

std::size_t Codec::cache_size() const {
  const std::scoped_lock lock(mutex_);
  return cache_.size();
}

}  // namespace ppm
