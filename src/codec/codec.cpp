#include "codec/codec.h"

#include <algorithm>
#include <stdexcept>

#include "analyze_hazard/hazard.h"
#include "common/cpu.h"
#include "common/timer.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "decode/xor_schedule.h"
#include "optimize_xor/xoropt.h"
#include "parallel/task_group.h"
#include "plan_store/plan_store.h"
#include "verify_plan/plan_verify.h"

namespace ppm {

CachedPlan CachedPlan::assemble(std::vector<SubPlan> groups,
                                std::optional<SubPlan> rest) {
  CachedPlan plan;
  plan.group_plans_ = std::move(groups);
  plan.rest_plan_ = std::move(rest);
  return plan;
}

std::size_t CachedPlan::cost() const {
  std::size_t c = 0;
  for (const SubPlan& p : group_plans_) c += p.cost();
  if (rest_plan_.has_value()) c += rest_plan_->cost();
  return c;
}

void CachedPlan::execute(std::uint8_t* const* blocks, std::size_t block_bytes,
                         DecodeStats* stats) const {
  for (const SubPlan& p : group_plans_) p.execute(blocks, block_bytes, stats);
  if (rest_plan_.has_value()) rest_plan_->execute(blocks, block_bytes, stats);
}

bool CachedPlan::execute_placed(std::uint8_t* const* blocks,
                                std::size_t block_bytes, ThreadPool& pool,
                                unsigned lanes, DecodeStats* stats) const {
  if (lanes < 2 || group_plans_.size() < 2) {
    execute(blocks, block_bytes, stats);
    return false;
  }
  std::vector<std::size_t> work(group_plans_.size());
  for (std::size_t i = 0; i < group_plans_.size(); ++i) {
    work[i] = group_plans_[i].cost();
  }
  const hazard::Placement placement = hazard::place_lpt(work, lanes);
  std::vector<DecodeStats> lane_stats(placement.lane_units.size());
  {
    TaskGroup group(pool);
    for (std::size_t l = 0; l < placement.lane_units.size(); ++l) {
      if (placement.lane_units[l].empty()) continue;
      group.add([this, &placement, l, blocks, block_bytes, &lane_stats] {
        for (const std::size_t i : placement.lane_units[l]) {
          group_plans_[i].execute(blocks, block_bytes, &lane_stats[l]);
        }
      });
    }
    group.wait();
  }
  if (rest_plan_.has_value()) rest_plan_->execute(blocks, block_bytes, stats);
  if (stats != nullptr) {
    for (const DecodeStats& st : lane_stats) {
      stats->mult_xors += st.mult_xors;
      stats->bytes_touched += st.bytes_touched;
      stats->blocks_read += st.blocks_read;
    }
  }
  return true;
}

Codec::Codec(const ErasureCode& code, Options options)
    : code_(&code),
      options_(options),
      signature_digest_(code.code_signature().digest),
      cache_(options.cache_capacity == 0 ? 1 : options.cache_capacity,
             options.cache_shards, &metrics_.plan_hits, &metrics_.plan_misses,
             &metrics_.plan_evictions) {
  if (options_.threads == 0) options_.threads = hardware_threads();
  if (options_.cache_capacity == 0) options_.cache_capacity = 1;
}

std::vector<std::size_t> Codec::plan_key(
    const FailureScenario& scenario) const {
  std::vector<std::size_t> key;
  key.reserve(scenario.count() + 1);
  key.push_back(static_cast<std::size_t>(signature_digest_));
  key.insert(key.end(), scenario.faulty().begin(), scenario.faulty().end());
  return key;
}

void Codec::attach_store(const std::string& directory) {
  attach_store(std::make_shared<planstore::PlanStore>(directory));
}

void Codec::attach_store(std::shared_ptr<planstore::PlanStore> store) {
  const std::scoped_lock lock(store_mutex_);
  store_ = std::move(store);
}

std::shared_ptr<planstore::PlanStore> Codec::store() const {
  return store_ref();
}

std::shared_ptr<planstore::PlanStore> Codec::store_ref() const {
  const std::scoped_lock lock(store_mutex_);
  return store_;
}

std::size_t Codec::warm() {
  const auto store = store_ref();
  if (store == nullptr) return 0;
  auto bulk = store->load_all(*code_);
  metrics_.planstore_load_failures.add(bulk.rejected);
  metrics_.planstore_quarantined.add(bulk.rejected);
  std::size_t warmed = 0;
  for (auto& [scenario, plan] : bulk.plans) {
    metrics_.planstore_loads.add();
    cache_.insert(plan_key(scenario), std::move(plan));
    metrics_.planstore_warm_hits.add();
    ++warmed;
  }
  return warmed;
}

std::size_t Codec::warm(std::span<const FailureScenario> scenarios) {
  const auto store = store_ref();
  if (store == nullptr) return 0;
  std::size_t warmed = 0;
  for (const FailureScenario& scenario : scenarios) {
    std::shared_ptr<const CachedPlan> plan;
    switch (store->load(*code_, scenario, &plan)) {
      case planstore::PlanStore::LoadResult::kLoaded:
        metrics_.planstore_loads.add();
        cache_.insert(plan_key(scenario), std::move(plan));
        metrics_.planstore_warm_hits.add();
        ++warmed;
        break;
      case planstore::PlanStore::LoadResult::kRejected:
        metrics_.planstore_load_failures.add();
        metrics_.planstore_quarantined.add();
        break;
      case planstore::PlanStore::LoadResult::kMissing:
        break;
    }
  }
  return warmed;
}

std::shared_ptr<CachedPlan> Codec::build_plan(
    const FailureScenario& scenario) const {
  const Matrix& h = code_->parity_check();
  const LogTable table = LogTable::build(h, scenario.faulty());
  const Partition part = make_partition(h, table);

  auto plan = std::make_shared<CachedPlan>();
  plan->group_plans_.reserve(part.p());
  for (const IndependentGroup& g : part.groups) {
    auto sub = SubPlan::make(h, g.rows, g.faulty_cols, scenario.faulty(),
                             Sequence::kMatrixFirst);
    if (!sub.has_value()) return nullptr;
    plan->group_plans_.push_back(std::move(*sub));
  }
  if (!part.rest_empty()) {
    // Auto sequence: the cheaper of C3/C4 tails.
    const auto costs = SubPlan::sequence_costs(h, part.rest_rows,
                                               part.rest_faulty,
                                               part.rest_faulty);
    if (!costs.has_value()) return nullptr;
    const Sequence seq = costs->second < costs->first
                             ? Sequence::kMatrixFirst
                             : Sequence::kNormal;
    auto rest = SubPlan::make(h, part.rest_rows, part.rest_faulty,
                              part.rest_faulty, seq);
    if (!rest.has_value()) return nullptr;
    plan->rest_plan_ = std::move(*rest);
  }
  // Every plan carries its hazard/cost profile from birth: consumers
  // (`ppm_cli analyze`, the plan store, schedulers) read profile()
  // instead of re-running the analysis, and the store cross-checks the
  // persisted copy against a fresh analysis on every load.
  const auto analysis = hazard::analyze_plan(*plan);
  plan->profile_.cost = plan->cost();
  plan->profile_.work = analysis.total_work;
  plan->profile_.critical_path = analysis.critical_path;
  plan->profile_.max_width = analysis.max_width;
  plan->profile_.level_width = analysis.level_width;
  plan->profile_.hazard_free = analysis.ok();
  // Superoptimize every binary sub-system's XOR schedule when asked. Each
  // accepted rewrite already carries its proof (xoropt gates on symbolic
  // replay + hazard re-analysis); a sub-system whose every rewrite was
  // rejected still attaches its greedy schedule — the plan is never worse
  // off for having tried.
  if (options_.optimize_xor) {
    const auto optimize_sub = [&](const SubPlan& sub, std::size_t index) {
      const Matrix& applied =
          sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
      const auto base = plan_xor_schedule(applied);
      if (!base.has_value()) return;  // non-binary system: no XOR schedule
      auto result = xoropt::optimize(applied, *base);
      plan->xoropt_stats_.passes += result.stats.passes;
      plan->xoropt_stats_.rewrites_accepted += result.stats.rewrites_accepted;
      plan->xoropt_stats_.rewrites_rejected += result.stats.rewrites_rejected;
      plan->xoropt_stats_.ops_saved += result.stats.ops_saved;
      plan->xoropt_stats_.temps += result.stats.temps;
      plan->schedules_.push_back(
          PlanSchedule{index, std::move(result.schedule)});
    };
    for (std::size_t i = 0; i < plan->group_plans_.size(); ++i) {
      optimize_sub(plan->group_plans_[i], i);
    }
    if (plan->rest_plan_.has_value()) {
      optimize_sub(*plan->rest_plan_, plan->group_plans_.size());
    }
  }
  return plan;
}

std::shared_ptr<const CachedPlan> Codec::plan_for(
    const FailureScenario& scenario) {
  const std::vector<std::size_t> key = plan_key(scenario);
  if (auto cached = cache_.get(key)) return *cached;

  // Miss: with a store attached, try a zero-trust load from disk before
  // paying the rebuild — the store re-proves the record with planverify +
  // hazard analysis and quarantines anything that fails, so a loaded plan
  // is exactly as trustworthy as a built one.
  const auto store = store_ref();
  if (store != nullptr) {
    std::shared_ptr<const CachedPlan> loaded;
    switch (store->load(*code_, scenario, &loaded)) {
      case planstore::PlanStore::LoadResult::kLoaded:
        metrics_.planstore_loads.add();
        return cache_.insert(key, std::move(loaded));
      case planstore::PlanStore::LoadResult::kRejected:
        metrics_.planstore_load_failures.add();
        metrics_.planstore_quarantined.add();
        break;  // fall through to rebuild; the bad record is gone
      case planstore::PlanStore::LoadResult::kMissing:
        break;
    }
  }

  // Build outside any lock. Concurrent missers may build the same plan;
  // insert() keeps the first and everyone shares it.
  const Timer build;
  auto plan = build_plan(scenario);
  if (plan == nullptr) {
    metrics_.plan_failures.add();
    return nullptr;
  }
  metrics_.plans_analyzed.add();
  metrics_.analyzed_work.add(plan->profile().work);
  metrics_.analyzed_critical_path.add(plan->profile().critical_path);
  metrics_.xoropt_passes.add(plan->xoropt_stats().passes);
  metrics_.xoropt_rewrites_accepted.add(plan->xoropt_stats().rewrites_accepted);
  metrics_.xoropt_rewrites_rejected.add(plan->xoropt_stats().rewrites_rejected);
  metrics_.xoropt_ops_saved.add(plan->xoropt_stats().ops_saved);
  if (!plan->profile().hazard_free) {
    metrics_.hazard_failures.add();
#ifdef PPM_VERIFY_PLANS
    // A hazardous fan-out is a library bug; running it could corrupt
    // every stripe it decodes, so fail loudly instead of returning it.
    throw std::logic_error(
        "PPM_VERIFY_PLANS: concurrency hazard: " +
        planverify::to_json(hazard::analyze_plan(*plan).violations));
#endif
  }
#ifdef PPM_VERIFY_PLANS
  // Statically prove the plan sound before it can touch a byte (Debug /
  // -DPPM_VERIFY_PLANS=ON builds). A violation is a library bug; serving
  // a provably wrong plan would corrupt every stripe it decodes, so fail
  // loudly instead of returning it.
  {
    const auto verdict = planverify::verify_plan(*code_, scenario, *plan);
    if (!verdict.ok()) {
      metrics_.plan_verify_failures.add();
      throw std::logic_error("PPM_VERIFY_PLANS: plan rejected: " +
                             planverify::to_json(verdict.violations));
    }
    metrics_.plans_verified.add();
  }
#endif
  metrics_.plan_seconds.record_seconds(build.seconds());
  // Write-through: persist the verified plan so the next process (or a
  // sibling node) can warm from disk. Hazardous plans are never persisted
  // — the load path would only quarantine them again.
  if (store != nullptr && plan->profile().hazard_free) {
    if (store->put(*code_, scenario, *plan)) {
      metrics_.planstore_stores.add();
    } else {
      // Best-effort durability: a failed write-through costs the next
      // restart a rebuild, nothing more. Counted, never thrown.
      metrics_.planstore_store_failures.add();
    }
  }
  return cache_.insert(key, std::move(plan));
}

bool Codec::decode(const FailureScenario& scenario,
                   std::uint8_t* const* blocks, std::size_t block_bytes,
                   DecodeStats* stats) {
  if (scenario.empty()) return true;
  const Timer total;
  const auto plan = plan_for(scenario);
  if (plan == nullptr) return false;
  DecodeStats local;
  // Route through the DAG-guided placer when the plan's carried profile
  // proves the group fan-out race-free and the codec has lanes to offer;
  // otherwise (or when the plan has no width) the serial executor runs.
  const bool qualifies =
      options_.threads > 1 && plan->p() > 1 && plan->profile().hazard_free;
  if (qualifies) {
    if (plan->execute_placed(blocks, block_bytes, batch_pool(),
                             options_.threads, &local)) {
      metrics_.placed_decodes.add();
    } else {
      metrics_.placed_fallbacks.add();
    }
  } else {
    plan->execute(blocks, block_bytes, &local);
  }
  metrics_.decodes.add();
  metrics_.stripes_decoded.add();
  metrics_.mult_xors.add(local.mult_xors);
  metrics_.bytes_touched.add(local.bytes_touched);
  metrics_.decode_seconds.record_seconds(total.seconds());
  if (stats != nullptr) {
    stats->mult_xors += local.mult_xors;
    stats->bytes_touched += local.bytes_touched;
    stats->blocks_read += local.blocks_read;
  }
  return true;
}

bool Codec::encode(std::uint8_t* const* blocks, std::size_t block_bytes,
                   DecodeStats* stats) {
  return decode(FailureScenario::encoding_of(*code_), blocks, block_bytes,
                stats);
}

ThreadPool& Codec::batch_pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(std::max(1u, options_.threads));
  });
  return *pool_;
}

std::optional<BatchResult> Codec::decode_batch(
    const FailureScenario& scenario,
    const std::vector<std::uint8_t* const*>& stripes,
    std::size_t block_bytes) {
  BatchResult result;
  result.stripes = stripes.size();
  const Timer total;
  const auto plan = plan_for(scenario);
  if (plan == nullptr) return std::nullopt;
  result.plan_seconds = total.seconds();

  if (stripes.empty()) {
    result.seconds = total.seconds();
    metrics_.batches.add();
    metrics_.batch_seconds.record_seconds(result.seconds);
    return result;
  }

  std::vector<DecodeStats> per_stripe(stripes.size());
  if (options_.threads <= 1 || stripes.size() == 1) {
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      plan->execute(stripes[i], block_bytes, &per_stripe[i]);
    }
  } else {
    TaskGroup group(batch_pool());
    for (std::size_t i = 0; i < stripes.size(); ++i) {
      group.add([&, i] { plan->execute(stripes[i], block_bytes,
                                       &per_stripe[i]); });
    }
    group.wait();
  }
  for (const DecodeStats& st : per_stripe) {
    result.stats.mult_xors += st.mult_xors;
    result.stats.bytes_touched += st.bytes_touched;
    result.stats.blocks_read += st.blocks_read;
  }
  result.seconds = total.seconds();
  metrics_.batches.add();
  metrics_.stripes_decoded.add(stripes.size());
  metrics_.mult_xors.add(result.stats.mult_xors);
  metrics_.bytes_touched.add(result.stats.bytes_touched);
  metrics_.batch_seconds.record_seconds(result.seconds);
  return result;
}

}  // namespace ppm
