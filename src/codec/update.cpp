#include "codec/update.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/aligned_buffer.h"
#include "gf/galois_field.h"

namespace ppm {

UpdatePlanner::UpdatePlanner(const ErasureCode& code)
    : code_(&code),
      data_ids_(code.data_blocks()),
      parity_ids_(code.parity_blocks().begin(), code.parity_blocks().end()),
      generator_(code.field(), parity_ids_.size(), data_ids_.size()) {
  // The matrix-first encoding matrix *is* the generator: it maps data
  // blocks to parity blocks (H restricted to parity columns, inverted,
  // times H restricted to data columns). Every code in this library has
  // exactly one check row per parity block, so F is square.
  const Matrix& h = code.parity_check();
  if (h.rows() != parity_ids_.size()) {
    throw std::invalid_argument(
        "UpdatePlanner: non-square encoding systems are not supported");
  }
  const auto finv = h.select_columns(parity_ids_).inverse();
  if (!finv.has_value()) {
    throw std::invalid_argument("UpdatePlanner: code is not encodable");
  }
  generator_ = *finv * h.select_columns(data_ids_);
}

std::vector<std::size_t> UpdatePlanner::affected_parities(
    std::size_t data_block) const {
  const auto it =
      std::lower_bound(data_ids_.begin(), data_ids_.end(), data_block);
  if (it == data_ids_.end() || *it != data_block) {
    throw std::invalid_argument("affected_parities: not a data block");
  }
  const std::size_t col = static_cast<std::size_t>(it - data_ids_.begin());
  std::vector<std::size_t> out;
  for (std::size_t p = 0; p < parity_ids_.size(); ++p) {
    if (generator_(p, col) != 0) out.push_back(parity_ids_[p]);
  }
  return out;
}

gf::Element UpdatePlanner::coefficient(std::size_t parity_block,
                                       std::size_t data_block) const {
  const auto pit =
      std::lower_bound(parity_ids_.begin(), parity_ids_.end(), parity_block);
  const auto dit =
      std::lower_bound(data_ids_.begin(), data_ids_.end(), data_block);
  if (pit == parity_ids_.end() || *pit != parity_block ||
      dit == data_ids_.end() || *dit != data_block) {
    throw std::invalid_argument("coefficient: bad block ids");
  }
  return generator_(static_cast<std::size_t>(pit - parity_ids_.begin()),
                    static_cast<std::size_t>(dit - data_ids_.begin()));
}

std::size_t UpdatePlanner::apply_write(std::size_t data_block,
                                       const std::uint8_t* new_data,
                                       std::uint8_t* const* blocks,
                                       std::size_t block_bytes) const {
  const gf::Field& f = code_->field();
  // delta = old ^ new
  AlignedBuffer delta(block_bytes);
  std::memcpy(delta.data(), blocks[data_block], block_bytes);
  gf::xor_region(delta.data(), new_data, block_bytes);

  std::size_t ops = 0;
  for (const std::size_t parity : affected_parities(data_block)) {
    f.mult_region_xor(blocks[parity], delta.data(),
                      coefficient(parity, data_block), block_bytes);
    ++ops;
  }
  if (blocks[data_block] != new_data) {  // callers may update in place
    std::memcpy(blocks[data_block], new_data, block_bytes);
  }
  return ops;
}

}  // namespace ppm
