// Incremental parity updates.
//
// Overwriting one data block must not re-encode the stripe: every parity
// block is a fixed linear function of the data blocks, so a data delta
// d_new ^ d_old propagates to parity p as g_{p,d} * delta. The planner
// derives the generator coefficients g from the parity-check matrix once
// (by solving the encoding system) and then applies updates with one
// mult_XOR per affected parity — the small-write path of an erasure-coded
// store.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/erasure_code.h"
#include "matrix/matrix.h"

namespace ppm {

class UpdatePlanner {
 public:
  /// Derives the generator coefficients from the code's parity-check
  /// matrix. Throws std::invalid_argument if the code's encoding system is
  /// unsolvable (never, for the codes in this library).
  explicit UpdatePlanner(const ErasureCode& code);

  /// Parity blocks affected by a write to `data_block`, i.e. those with a
  /// nonzero generator coefficient (for LRC: the local parity of the
  /// block's group plus every global parity).
  std::vector<std::size_t> affected_parities(std::size_t data_block) const;

  /// Generator coefficient g such that parity ^= g * delta(data_block).
  gf::Element coefficient(std::size_t parity_block,
                          std::size_t data_block) const;

  /// Apply a write: `new_data` replaces block `data_block` (whose current
  /// contents must still be in `blocks[data_block]`). Updates the data
  /// block and every affected parity region in place. Returns the number
  /// of mult_XOR region ops performed.
  std::size_t apply_write(std::size_t data_block,
                          const std::uint8_t* new_data,
                          std::uint8_t* const* blocks,
                          std::size_t block_bytes) const;

  const ErasureCode& code() const { return *code_; }

 private:
  const ErasureCode* code_;
  std::vector<std::size_t> data_ids_;    // data block ids (sorted)
  std::vector<std::size_t> parity_ids_;  // parity block ids (sorted)
  Matrix generator_;  // parity x data generator coefficients
};

}  // namespace ppm
