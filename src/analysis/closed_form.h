// Closed-form SD cost formulas from the paper (§III-B), derived there from
// simulation of the matrix nonzero counts:
//
//   C1 = n·r·(m+s) + m·(m·r+s)·(z−1) + m²·(r−z)
//   C2 = (n·r − (m·r+s))·(m·z+s) + m·(n−m)·(r−z)
//   C3 = (n·r − (m+s))·(m·z+s) + m·(n−m)·(r−z)
//   C4 = n·r·(m+s) + m·(m·z+s)·(z−1) − m²·(r−z)
//
// and the identities the paper states:
//   C1 − C4 = m²·(z+1)·(r−z)         (the (r−1) form in §III-B is a typo —
//                                     expanding the four equations gives
//                                     (r−z); both agree at z = 1)
//   C3 − C2 = m·(r−1)·(m·z+s)
//
// These are the reference curves for Figs. 4–6; tests cross-check them
// against the empirical cost model on the paper's own example.
#pragma once

#include <cstddef>

namespace ppm {

struct ClosedFormCosts {
  long long c1 = 0;
  long long c2 = 0;
  long long c3 = 0;
  long long c4 = 0;
};

/// Evaluate the §III-B formulas for SD^{m,s}_{n,r} with the s faulty
/// sectors concentrated in z rows.
ClosedFormCosts sd_closed_form(std::size_t n, std::size_t r, std::size_t m,
                               std::size_t s, std::size_t z);

}  // namespace ppm
