#include "analysis/closed_form.h"

namespace ppm {

ClosedFormCosts sd_closed_form(std::size_t n_, std::size_t r_, std::size_t m_,
                               std::size_t s_, std::size_t z_) {
  const auto n = static_cast<long long>(n_);
  const auto r = static_cast<long long>(r_);
  const auto m = static_cast<long long>(m_);
  const auto s = static_cast<long long>(s_);
  const auto z = static_cast<long long>(z_);

  ClosedFormCosts c;
  c.c1 = n * r * (m + s) + m * (m * r + s) * (z - 1) + m * m * (r - z);
  c.c2 = (n * r - (m * r + s)) * (m * z + s) + m * (n - m) * (r - z);
  c.c3 = (n * r - (m + s)) * (m * z + s) + m * (n - m) * (r - z);
  c.c4 = n * r * (m + s) + m * (m * z + s) * (z - 1) - m * m * (r - z);
  return c;
}

}  // namespace ppm
