// Persistent plan store (ppm::planstore): verified decode plans on disk.
//
// A decode plan is a pure function of (code signature, faulty set), yet
// every process restart rebuilds all of them — inversion, verification,
// hazard analysis, repeated per fleet node. This subsystem serializes
// verified CachedPlans into a versioned binary format, one record file
// per plan under a store directory, so a restarted (or sibling) process
// can warm its sharded plan cache from disk instead of rebuilding, and a
// fleet can share one precomputed plan space.
//
// Record format (all integers little-endian):
//
//   header   magic "PPMPLAN\0" (8) | format version u32 | payload CRC32
//            u32 | payload length u64
//   payload  code-signature digest u64 | signature text (u32 len + bytes)
//            | field width u32 | faulty set (u32 count + u64 ids)
//            | PlanProfile (cost/work/critical_path/max_width u64,
//              hazard_free u8, level widths u32 count + u64 each)
//            | group count u32 | per sub-plan: sequence u8, unknowns /
//              survivors / check rows (u32 count + u64 each), F⁻¹ and S
//              matrices (u32 rows, u32 cols, u32 per element), cost u64,
//              source_blocks u64
//            | has_rest u8 [| rest sub-plan]
//            | schedule count u32 | per optimized XOR schedule: sub index
//              u32 (groups().size() = rest), temps u64, naive_ops u64, op
//              count u32, per op: flags u8 (bit0 from_output, bit1
//              overwrite), source u64, target u64
//
// ZERO-TRUST LOAD CONTRACT: bytes from disk are never executed on faith.
// Every load re-proves the record — CRC + structural parse with bounds
// and field-range checks, then planverify::verify_plan (independent
// algebraic recomputation) and hazard::analyze_plan (race-freedom for all
// interleavings), plus a cross-check of the stored profile against the
// fresh analysis. Superoptimized XOR schedules riding on the record are
// held to the same standard: each one is re-proved with xoropt::prove
// (symbolic GF(2) replay against the sub-plan's applied matrix + hazard
// re-analysis) before it is attached — a schedule proof failure
// quarantines the whole record. A record failing ANY step is quarantined
// — renamed to
// "<name>.quarantined", never served, never deleted silently — and the
// caller rebuilds from the code itself. docs/PLAN_STORE.md documents the
// format and the contract; `ppm_cli store {build,ls,check,gc}` operates
// stores offline.
//
// Thread-safety: all public methods are safe to call concurrently; file
// operations serialize on one internal mutex (loads and stores are rare
// — cache misses and warms — so a single lock is not a bottleneck).
// Cross-process safety comes from atomic write-rename: readers only ever
// observe complete records.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "codec/codec.h"
#include "codes/erasure_code.h"
#include "decode/scenario.h"

namespace ppm::planstore {

/// On-disk format version; bumped on any layout change. Records with a
/// different version never parse (they quarantine and rebuild). v2 added
/// the optimized-XOR-schedule section.
inline constexpr std::uint32_t kFormatVersion = 2;

/// Serialize one verified plan into a self-contained record (header +
/// payload, see the format comment above).
std::vector<std::uint8_t> serialize_plan(const ErasureCode& code,
                                         const FailureScenario& scenario,
                                         const CachedPlan& plan);

/// A structurally parsed record. `plan` carries a default profile — the
/// stored one is returned separately as UNTRUSTED data for cross-checking
/// against a fresh hazard analysis; PlanStore::load installs the fresh
/// profile after re-verification. `schedules` likewise holds the record's
/// optimized XOR schedules as UNTRUSTED data — the loader attaches them
/// to the plan only after each re-proves with xoropt::prove.
struct StoredPlan {
  FailureScenario scenario;
  CachedPlan plan;
  PlanProfile stored_profile;
  std::vector<PlanSchedule> schedules;
};

/// Structural parse of a record: magic, version, CRC, bounds, field-range
/// and scenario sanity checks — NO algebraic trust (that is the loader's
/// planverify/hazard pass). std::nullopt on any inconsistency, including
/// a signature digest or field width not matching `code` (a stale or
/// foreign record). `error`, when non-null, receives a short reason.
std::optional<StoredPlan> deserialize_plan(std::span<const std::uint8_t> bytes,
                                           const ErasureCode& code,
                                           std::string* error = nullptr);

/// Directory-backed store: one record file per (code signature, faulty
/// set), named "sig<digest hex>-f<ids>.plan".
class PlanStore {
 public:
  /// Opens (and creates, if needed) `directory`. Throws
  /// std::filesystem::filesystem_error when the directory cannot be
  /// created.
  explicit PlanStore(std::filesystem::path directory);

  const std::filesystem::path& directory() const { return dir_; }

  /// Serialize `plan` and persist it atomically (write to a temporary
  /// name, then rename). Overwrites an existing record for the same key.
  /// Returns false on I/O failure (the store is best-effort durable; the
  /// caller's in-memory plan is unaffected).
  bool put(const ErasureCode& code, const FailureScenario& scenario,
           const CachedPlan& plan);

  enum class LoadResult {
    kLoaded,    ///< record re-proved sound; *out is the verified plan
    kMissing,   ///< no record for this key
    kRejected,  ///< record failed the zero-trust gate and was quarantined
  };

  /// Zero-trust load of the record for (code, scenario): parse, then
  /// planverify::verify_plan + hazard::analyze_plan + profile cross-check.
  /// On success the plan's profile is the freshly recomputed one. `why`,
  /// when non-null, receives the rejection reason for kRejected.
  LoadResult load(const ErasureCode& code, const FailureScenario& scenario,
                  std::shared_ptr<const CachedPlan>* out,
                  std::string* why = nullptr);

  /// Result of a bulk zero-trust load of every record for `code`.
  struct BulkLoad {
    std::vector<std::pair<FailureScenario, std::shared_ptr<const CachedPlan>>>
        plans;                 ///< every record that re-proved sound
    std::size_t rejected = 0;  ///< records quarantined during the scan
  };
  BulkLoad load_all(const ErasureCode& code);

  /// One store entry as seen on disk (no verification).
  struct Entry {
    std::string filename;
    std::uintmax_t bytes = 0;
    bool quarantined = false;
  };
  /// Every record and quarantined file in the store, sorted by name.
  std::vector<Entry> list() const;

  /// Re-verify every record for `code` through the zero-trust gate.
  struct CheckReport {
    std::size_t checked = 0;      ///< records examined
    std::size_t verified = 0;     ///< records that re-proved sound
    std::size_t quarantined = 0;  ///< records renamed aside
  };
  CheckReport check(const ErasureCode& code);

  /// Remove quarantined records and orphaned temporaries. Healthy records
  /// are never touched. The newest `keep_quarantined` quarantined files
  /// (by last write time, names breaking ties) are retained for
  /// forensics; the default 0 removes them all.
  struct GcReport {
    std::size_t removed_quarantined = 0;
    std::size_t removed_tmp = 0;
  };
  GcReport gc(std::size_t keep_quarantined = 0);

  /// Canonical record file name for a key.
  static std::string record_filename(const ErasureCode& code,
                                     const FailureScenario& scenario);

 private:
  LoadResult load_file(const std::filesystem::path& path,
                       const ErasureCode& code,
                       const FailureScenario* expected,
                       std::shared_ptr<const CachedPlan>* out,
                       FailureScenario* scenario_out, std::string* why);
  void quarantine(const std::filesystem::path& path);

  std::filesystem::path dir_;
  mutable std::mutex mutex_;
};

}  // namespace ppm::planstore
