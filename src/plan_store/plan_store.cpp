#include "plan_store/plan_store.h"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "analyze_hazard/hazard.h"
#include "common/crc32.h"
#include "optimize_xor/xoropt.h"
#include "verify_plan/plan_verify.h"

namespace ppm::planstore {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'M', 'P', 'L', 'A', 'N', '\0'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back((v >> (8 * i)) & 0xFFu);
}

void put_index_vec(std::vector<std::uint8_t>& out,
                   std::span<const std::size_t> v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const std::size_t x : v) put_u64(out, x);
}

void put_matrix(std::vector<std::uint8_t>& out, const Matrix& m) {
  put_u32(out, static_cast<std::uint32_t>(m.rows()));
  put_u32(out, static_cast<std::uint32_t>(m.cols()));
  for (const gf::Element e : m.data()) put_u32(out, e);
}

void put_schedule(std::vector<std::uint8_t>& out, const PlanSchedule& ps) {
  put_u32(out, static_cast<std::uint32_t>(ps.sub));
  put_u64(out, ps.schedule.temps);
  put_u64(out, ps.schedule.naive_ops);
  put_u32(out, static_cast<std::uint32_t>(ps.schedule.ops.size()));
  for (const XorOp& op : ps.schedule.ops) {
    put_u8(out, static_cast<std::uint8_t>((op.from_output ? 1u : 0u) |
                                          (op.overwrite ? 2u : 0u)));
    put_u64(out, op.source);
    put_u64(out, op.target);
  }
}

void put_subplan(std::vector<std::uint8_t>& out, const SubPlan& sub) {
  put_u8(out, sub.sequence() == Sequence::kMatrixFirst ? 1 : 0);
  put_index_vec(out, sub.unknowns());
  put_index_vec(out, sub.survivors());
  put_index_vec(out, sub.check_rows());
  put_matrix(out, sub.finv());
  put_matrix(out, sub.s());
  put_u64(out, sub.cost());
  put_u64(out, sub.source_blocks());
}

// Bounds-checked little-endian reader over an untrusted byte span. Every
// accessor fails closed: once `ok` drops, all further reads return zero
// values and the parse is abandoned.
struct Reader {
  std::span<const std::uint8_t> in;
  std::size_t pos = 0;
  bool ok = true;

  std::size_t remaining() const { return ok ? in.size() - pos : 0; }

  std::uint8_t u8() {
    if (remaining() < 1) {
      ok = false;
      return 0;
    }
    return in[pos++];
  }

  std::uint32_t u32() {
    if (remaining() < 4) {
      ok = false;
      return 0;
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[pos++]} << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    if (remaining() < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[pos++]} << (8 * i);
    return v;
  }

  std::vector<std::size_t> index_vec() {
    const std::uint32_t count = u32();
    // A corrupt length field must not drive allocation: the elements have
    // to fit in the remaining bytes.
    if (!ok || count > remaining() / 8) {
      ok = false;
      return {};
    }
    std::vector<std::size_t> v(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      v[i] = static_cast<std::size_t>(u64());
    }
    return v;
  }

  std::optional<Matrix> matrix(const gf::Field& f) {
    const std::uint32_t rows = u32();
    const std::uint32_t cols = u32();
    if (!ok || (rows != 0 && cols > remaining() / 4 / rows)) {
      ok = false;
      return std::nullopt;
    }
    Matrix m(f, rows, cols);
    const gf::Element max = f.max_element();
    for (std::uint32_t r = 0; r < rows; ++r) {
      for (std::uint32_t c = 0; c < cols; ++c) {
        const gf::Element e = u32();
        if (e > max) {  // out-of-field coefficient: table lookups would UB
          ok = false;
          return std::nullopt;
        }
        m(r, c) = e;
      }
    }
    if (!ok) return std::nullopt;
    return m;
  }
};

std::optional<PlanSchedule> read_schedule(Reader& r) {
  PlanSchedule ps;
  ps.sub = static_cast<std::size_t>(r.u32());
  ps.schedule.temps = static_cast<std::size_t>(r.u64());
  ps.schedule.naive_ops = static_cast<std::size_t>(r.u64());
  const std::uint32_t op_count = r.u32();
  // Corrupt lengths must not drive allocation: each op is 17 bytes.
  if (!r.ok || op_count > r.remaining() / 17) return std::nullopt;
  ps.schedule.ops.reserve(op_count);
  for (std::uint32_t i = 0; i < op_count; ++i) {
    const std::uint8_t flags = r.u8();
    if (!r.ok || flags > 3) return std::nullopt;
    XorOp op;
    op.from_output = (flags & 1u) != 0;
    op.overwrite = (flags & 2u) != 0;
    op.source = static_cast<std::size_t>(r.u64());
    op.target = static_cast<std::size_t>(r.u64());
    ps.schedule.ops.push_back(op);
  }
  if (!r.ok) return std::nullopt;
  return ps;
}

std::optional<SubPlan> read_subplan(Reader& r, const gf::Field& f) {
  const std::uint8_t seq_raw = r.u8();
  if (!r.ok || seq_raw > 1) return std::nullopt;
  const Sequence seq =
      seq_raw == 1 ? Sequence::kMatrixFirst : Sequence::kNormal;
  std::vector<std::size_t> unknowns = r.index_vec();
  std::vector<std::size_t> survivors = r.index_vec();
  std::vector<std::size_t> check_rows = r.index_vec();
  auto finv = r.matrix(f);
  auto s = r.matrix(f);
  const std::size_t cost = static_cast<std::size_t>(r.u64());
  const std::size_t source_blocks = static_cast<std::size_t>(r.u64());
  if (!r.ok || !finv.has_value() || !s.has_value()) return std::nullopt;
  return SubPlan::from_parts(f, seq, std::move(unknowns), std::move(survivors),
                             std::move(check_rows), std::move(*finv),
                             std::move(*s), cost, source_blocks);
}

bool fail(std::string* error, const char* why) {
  if (error != nullptr) *error = why;
  return false;
}

PlanProfile fresh_profile(const CachedPlan& plan,
                          const hazard::Analysis& analysis) {
  PlanProfile p;
  p.cost = plan.cost();
  p.work = analysis.total_work;
  p.critical_path = analysis.critical_path;
  p.max_width = analysis.max_width;
  p.level_width = analysis.level_width;
  p.hazard_free = analysis.ok();
  return p;
}

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

std::vector<std::uint8_t> serialize_plan(const ErasureCode& code,
                                         const FailureScenario& scenario,
                                         const CachedPlan& plan) {
  const CodeSignature sig = code.code_signature();
  std::vector<std::uint8_t> payload;
  payload.reserve(1024);
  put_u64(payload, sig.digest);
  put_u32(payload, static_cast<std::uint32_t>(sig.text.size()));
  payload.insert(payload.end(), sig.text.begin(), sig.text.end());
  put_u32(payload, code.field().w());
  put_index_vec(payload, scenario.faulty());

  const PlanProfile& prof = plan.profile();
  put_u64(payload, prof.cost);
  put_u64(payload, prof.work);
  put_u64(payload, prof.critical_path);
  put_u64(payload, prof.max_width);
  put_u8(payload, prof.hazard_free ? 1 : 0);
  put_index_vec(payload, prof.level_width);

  put_u32(payload, static_cast<std::uint32_t>(plan.groups().size()));
  for (const SubPlan& sub : plan.groups()) put_subplan(payload, sub);
  put_u8(payload, plan.rest().has_value() ? 1 : 0);
  if (plan.rest().has_value()) put_subplan(payload, *plan.rest());

  put_u32(payload, static_cast<std::uint32_t>(plan.schedules().size()));
  for (const PlanSchedule& ps : plan.schedules()) put_schedule(payload, ps);

  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size());
  for (const char c : kMagic) out.push_back(static_cast<std::uint8_t>(c));
  put_u32(out, kFormatVersion);
  put_u32(out, crc32(payload.data(), payload.size()));
  put_u64(out, payload.size());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<StoredPlan> deserialize_plan(std::span<const std::uint8_t> bytes,
                                           const ErasureCode& code,
                                           std::string* error) {
  if (bytes.size() < kHeaderBytes) {
    fail(error, "truncated header");
    return std::nullopt;
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0) {
    fail(error, "bad magic");
    return std::nullopt;
  }
  Reader hdr{bytes.subspan(sizeof kMagic), 0, true};
  const std::uint32_t version = hdr.u32();
  const std::uint32_t crc = hdr.u32();
  const std::uint64_t payload_len = hdr.u64();
  if (version != kFormatVersion) {
    fail(error, "format version mismatch");
    return std::nullopt;
  }
  if (payload_len != bytes.size() - kHeaderBytes) {
    fail(error, "payload length mismatch");
    return std::nullopt;
  }
  const std::span<const std::uint8_t> payload = bytes.subspan(kHeaderBytes);
  if (crc32(payload.data(), payload.size()) != crc) {
    fail(error, "CRC mismatch");
    return std::nullopt;
  }

  Reader r{payload, 0, true};
  const std::uint64_t digest = r.u64();
  const std::uint32_t text_len = r.u32();
  if (!r.ok || text_len > r.remaining()) {
    fail(error, "truncated signature");
    return std::nullopt;
  }
  r.pos += text_len;  // text is informational; the digest is the identity
  const std::uint32_t w = r.u32();
  const CodeSignature sig = code.code_signature();
  if (!r.ok || digest != sig.digest || w != code.field().w()) {
    fail(error, "stale code signature");
    return std::nullopt;
  }

  const std::vector<std::size_t> faulty = r.index_vec();
  if (!r.ok || faulty.empty() ||
      !std::is_sorted(faulty.begin(), faulty.end()) ||
      std::adjacent_find(faulty.begin(), faulty.end()) != faulty.end() ||
      faulty.back() >= code.total_blocks()) {
    fail(error, "bad faulty set");
    return std::nullopt;
  }

  PlanProfile prof;
  prof.cost = static_cast<std::size_t>(r.u64());
  prof.work = static_cast<std::size_t>(r.u64());
  prof.critical_path = static_cast<std::size_t>(r.u64());
  prof.max_width = static_cast<std::size_t>(r.u64());
  prof.hazard_free = r.u8() != 0;
  prof.level_width = r.index_vec();

  const std::uint32_t group_count = r.u32();
  if (!r.ok || group_count > r.remaining()) {
    fail(error, "bad group count");
    return std::nullopt;
  }
  std::vector<SubPlan> groups;
  groups.reserve(group_count);
  for (std::uint32_t i = 0; i < group_count; ++i) {
    auto sub = read_subplan(r, code.field());
    if (!sub.has_value()) {
      fail(error, "bad group sub-plan");
      return std::nullopt;
    }
    groups.push_back(std::move(*sub));
  }
  std::optional<SubPlan> rest;
  const std::uint8_t has_rest = r.u8();
  if (!r.ok || has_rest > 1) {
    fail(error, "bad rest flag");
    return std::nullopt;
  }
  if (has_rest == 1) {
    rest = read_subplan(r, code.field());
    if (!rest.has_value()) {
      fail(error, "bad rest sub-plan");
      return std::nullopt;
    }
  }

  const std::uint32_t sched_count = r.u32();
  if (!r.ok || sched_count > r.remaining()) {
    fail(error, "bad schedule count");
    return std::nullopt;
  }
  std::vector<PlanSchedule> schedules;
  schedules.reserve(sched_count);
  for (std::uint32_t i = 0; i < sched_count; ++i) {
    auto ps = read_schedule(r);
    // The sub index must resolve to a sub-plan of THIS record (the value
    // groups.size() is the rest plan, valid only when one exists).
    if (!ps.has_value() || ps->sub > group_count ||
        (ps->sub == group_count && has_rest == 0)) {
      fail(error, "bad optimized schedule");
      return std::nullopt;
    }
    schedules.push_back(std::move(*ps));
  }

  if (!r.ok || r.remaining() != 0) {
    fail(error, "trailing bytes");
    return std::nullopt;
  }

  StoredPlan stored{FailureScenario(faulty),
                    CachedPlan::assemble(std::move(groups), std::move(rest)),
                    std::move(prof), std::move(schedules)};
  return stored;
}

PlanStore::PlanStore(std::filesystem::path directory)
    : dir_(std::move(directory)) {
  std::filesystem::create_directories(dir_);
}

std::string PlanStore::record_filename(const ErasureCode& code,
                                       const FailureScenario& scenario) {
  std::string name = "sig" + hex16(code.code_signature().digest) + "-f";
  bool first = true;
  for (const std::size_t b : scenario.faulty()) {
    if (!first) name += '_';
    name += std::to_string(b);
    first = false;
  }
  return name + ".plan";
}

bool PlanStore::put(const ErasureCode& code, const FailureScenario& scenario,
                    const CachedPlan& plan) try {
  const std::vector<std::uint8_t> bytes =
      serialize_plan(code, scenario, plan);
  const std::scoped_lock lock(mutex_);
  const std::filesystem::path target =
      dir_ / record_filename(code, scenario);
  const std::filesystem::path tmp = target.string() + ".tmp";
  std::error_code ec;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    // Force the bytes out and re-check: a short write (disk full) must
    // surface here, before the record can be published under its real
    // name. A failed or partial .tmp is removed — readers never see it
    // (load paths ignore .tmp) and gc() sweeps any crash leftovers.
    out.flush();
    const bool wrote = out.good();
    out.close();
    if (!wrote || out.fail()) {
      std::filesystem::remove(tmp, ec);
      return false;
    }
  }
  std::filesystem::rename(tmp, target, ec);  // atomic publish
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return false;
  }
  return true;
} catch (...) {
  // put() sits on the decode path's write-through; serialization or
  // filesystem surprises must degrade to "not persisted", never throw
  // into a decode. The caller counts planstore.store_failures.
  return false;
}

void PlanStore::quarantine(const std::filesystem::path& path) {
  std::error_code ec;
  std::filesystem::rename(path, path.string() + ".quarantined", ec);
  if (ec) std::filesystem::remove(path, ec);  // rename failed: fail closed
}

PlanStore::LoadResult PlanStore::load_file(
    const std::filesystem::path& path, const ErasureCode& code,
    const FailureScenario* expected, std::shared_ptr<const CachedPlan>* out,
    FailureScenario* scenario_out, std::string* why) {
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return LoadResult::kMissing;
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    in.seekg(0, std::ios::beg);
    bytes.resize(size > 0 ? static_cast<std::size_t>(size) : 0);
    if (!bytes.empty()) {
      in.read(reinterpret_cast<char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    }
    if (!in.good() && !bytes.empty()) {
      quarantine(path);
      if (why != nullptr) *why = "unreadable record";
      return LoadResult::kRejected;
    }
  }

  std::string parse_error;
  auto stored = deserialize_plan(bytes, code, &parse_error);
  if (!stored.has_value()) {
    quarantine(path);
    if (why != nullptr) *why = "parse: " + parse_error;
    return LoadResult::kRejected;
  }
  if (expected != nullptr && !(stored->scenario == *expected)) {
    quarantine(path);
    if (why != nullptr) *why = "record key does not match its contents";
    return LoadResult::kRejected;
  }

  // Zero trust: re-prove the plan exactly as if it had just been built.
  const auto verdict =
      planverify::verify_plan(code, stored->scenario, stored->plan);
  if (!verdict.ok()) {
    quarantine(path);
    if (why != nullptr) {
      *why = "planverify: " + planverify::to_json(verdict.violations);
    }
    return LoadResult::kRejected;
  }
  const auto analysis = hazard::analyze_plan(stored->plan);
  if (!analysis.ok()) {
    quarantine(path);
    if (why != nullptr) {
      *why = "hazard: " + planverify::to_json(analysis.violations);
    }
    return LoadResult::kRejected;
  }
  const PlanProfile fresh = fresh_profile(stored->plan, analysis);
  if (!(fresh == stored->stored_profile)) {
    quarantine(path);
    if (why != nullptr) *why = "stored profile disagrees with re-analysis";
    return LoadResult::kRejected;
  }

  // Optimized XOR schedules get the same zero trust as the plan itself:
  // each one must re-prove — symbolic GF(2) replay against its sub-plan's
  // applied matrix plus hazard re-analysis — before it is attached. A
  // single failed proof condemns the record; the rebuilt plan simply
  // re-optimizes from scratch.
  for (const PlanSchedule& ps : stored->schedules) {
    const SubPlan& sub = ps.sub < stored->plan.groups().size()
                             ? stored->plan.groups()[ps.sub]
                             : *stored->plan.rest();
    const Matrix& applied =
        sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
    const auto violations = xoropt::prove(applied, ps.schedule);
    if (!violations.empty()) {
      quarantine(path);
      if (why != nullptr) {
        *why = "schedule re-proof: " + planverify::to_json(violations);
      }
      return LoadResult::kRejected;
    }
  }
  stored->plan.schedules_ = std::move(stored->schedules);

  stored->plan.profile_ = fresh;  // install the RECOMPUTED profile
  if (scenario_out != nullptr) *scenario_out = stored->scenario;
  *out = std::make_shared<const CachedPlan>(std::move(stored->plan));
  return LoadResult::kLoaded;
}

PlanStore::LoadResult PlanStore::load(const ErasureCode& code,
                                      const FailureScenario& scenario,
                                      std::shared_ptr<const CachedPlan>* out,
                                      std::string* why) {
  const std::scoped_lock lock(mutex_);
  return load_file(dir_ / record_filename(code, scenario), code, &scenario,
                   out, nullptr, why);
}

PlanStore::BulkLoad PlanStore::load_all(const ErasureCode& code) {
  const std::string prefix = "sig" + hex16(code.code_signature().digest);
  BulkLoad result;
  const std::scoped_lock lock(mutex_);
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".plan") continue;
    if (name.rfind(prefix, 0) != 0) continue;  // another code's record
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    std::shared_ptr<const CachedPlan> plan;
    FailureScenario scenario;
    switch (load_file(path, code, nullptr, &plan, &scenario, nullptr)) {
      case LoadResult::kLoaded:
        result.plans.emplace_back(std::move(scenario), std::move(plan));
        break;
      case LoadResult::kMissing:
        break;  // raced with an external remove; nothing to count
      case LoadResult::kRejected:
        ++result.rejected;
        break;
    }
  }
  return result;
}

std::vector<PlanStore::Entry> PlanStore::list() const {
  std::vector<Entry> entries;
  const std::scoped_lock lock(mutex_);
  for (const auto& item : std::filesystem::directory_iterator(dir_)) {
    if (!item.is_regular_file()) continue;
    const std::string name = item.path().filename().string();
    const bool plan = name.ends_with(".plan");
    const bool quarantined = name.ends_with(".quarantined");
    if (!plan && !quarantined) continue;
    std::error_code ec;
    const std::uintmax_t bytes = std::filesystem::file_size(item.path(), ec);
    entries.push_back(Entry{name, ec ? 0 : bytes, quarantined});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) {
              return a.filename < b.filename;
            });
  return entries;
}

PlanStore::CheckReport PlanStore::check(const ErasureCode& code) {
  const std::string prefix = "sig" + hex16(code.code_signature().digest);
  CheckReport report;
  const std::scoped_lock lock(mutex_);
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.ends_with(".plan")) continue;
    if (name.rfind(prefix, 0) != 0) continue;
    paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    ++report.checked;
    std::shared_ptr<const CachedPlan> plan;
    switch (load_file(path, code, nullptr, &plan, nullptr, nullptr)) {
      case LoadResult::kLoaded:
        ++report.verified;
        break;
      case LoadResult::kRejected:
        ++report.quarantined;
        break;
      case LoadResult::kMissing:
        --report.checked;  // raced with an external remove
        break;
    }
  }
  return report;
}

PlanStore::GcReport PlanStore::gc(std::size_t keep_quarantined) {
  GcReport report;
  const std::scoped_lock lock(mutex_);
  std::vector<std::filesystem::path> quarantined;
  std::vector<std::filesystem::path> doomed_tmp;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.ends_with(".quarantined")) {
      quarantined.push_back(entry.path());
    } else if (name.ends_with(".tmp")) {
      doomed_tmp.push_back(entry.path());
    }
  }
  // Age out quarantined files newest-first (write time, then name) so a
  // bounded forensic window survives repeated gc passes.
  std::sort(quarantined.begin(), quarantined.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              std::error_code ta_ec;
              std::error_code tb_ec;
              const auto ta = std::filesystem::last_write_time(a, ta_ec);
              const auto tb = std::filesystem::last_write_time(b, tb_ec);
              if (ta != tb) return ta > tb;
              return a.filename().string() > b.filename().string();
            });
  std::error_code ec;
  for (std::size_t i = keep_quarantined; i < quarantined.size(); ++i) {
    if (std::filesystem::remove(quarantined[i], ec)) {
      ++report.removed_quarantined;
    }
  }
  for (const auto& path : doomed_tmp) {
    if (std::filesystem::remove(path, ec)) ++report.removed_tmp;
  }
  return report;
}

}  // namespace ppm::planstore
