// Row selection for (possibly over-determined) decoding systems.
//
// The parity-check method solves F · BF = S · BS. When fewer blocks failed
// than the code's full tolerance, F is tall (more check rows than unknowns);
// the decoder then uses any row subset whose square restriction of F is
// invertible. With the paper's worst-case scenarios F is square and the
// selection is the identity.
#pragma once

#include <optional>
#include <vector>

#include "matrix/matrix.h"

namespace ppm {

/// Find `f.cols()` row indices of `f` (ascending) whose square submatrix is
/// invertible; std::nullopt when rank(f) < f.cols() (undecodable scenario).
std::optional<std::vector<std::size_t>> independent_rows(const Matrix& f);

}  // namespace ppm
