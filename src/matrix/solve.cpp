#include "matrix/solve.h"

#include <algorithm>

namespace ppm {

std::optional<std::vector<std::size_t>> independent_rows(const Matrix& f) {
  const std::size_t rows = f.rows();
  const std::size_t cols = f.cols();
  if (rows < cols) return std::nullopt;

  // Greedy Gaussian elimination over a working copy, remembering which
  // original row supplied each pivot. Earlier rows are preferred, so for a
  // square invertible F this returns 0..cols-1.
  Matrix work(f);
  std::vector<std::size_t> origin(rows);
  for (std::size_t i = 0; i < rows; ++i) origin[i] = i;

  std::vector<std::size_t> selected;
  selected.reserve(cols);
  const gf::Field& gf = f.field();
  std::size_t next = 0;  // next working row to place a pivot in
  for (std::size_t col = 0; col < cols; ++col) {
    std::size_t pivot = next;
    while (pivot < rows && work(pivot, col) == 0) ++pivot;
    if (pivot == rows) return std::nullopt;  // rank deficient
    if (pivot != next) {
      for (std::size_t j = 0; j < cols; ++j) {
        std::swap(work(next, j), work(pivot, j));
      }
      std::swap(origin[next], origin[pivot]);
    }
    selected.push_back(origin[next]);
    const gf::Element scale = gf.inv(work(next, col));
    for (std::size_t j = col; j < cols; ++j) {
      work(next, j) = gf.mul(work(next, j), scale);
    }
    for (std::size_t r = next + 1; r < rows; ++r) {
      const gf::Element factor = work(r, col);
      if (factor == 0) continue;
      for (std::size_t j = col; j < cols; ++j) {
        work(r, j) ^= gf.mul(factor, work(next, j));
      }
    }
    ++next;
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace ppm
