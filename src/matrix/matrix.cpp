#include "matrix/matrix.h"

#include <cassert>
#include <stdexcept>

namespace ppm {

Matrix::Matrix(const gf::Field& f, std::size_t rows, std::size_t cols)
    : field_(&f), rows_(rows), cols_(cols), data_(rows * cols, 0) {}

Matrix::Matrix(const gf::Field& f, std::size_t rows, std::size_t cols,
               std::initializer_list<gf::Element> values)
    : Matrix(f, rows, cols) {
  if (values.size() != rows * cols) {
    throw std::invalid_argument("initializer size does not match dimensions");
  }
  std::size_t i = 0;
  for (const gf::Element v : values) data_[i++] = v;
}

Matrix Matrix::identity(const gf::Field& f, std::size_t n) {
  Matrix m(f, n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1;
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(field_ == rhs.field_);
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("matrix product dimension mismatch");
  }
  Matrix out(*field_, rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const gf::Element a = (*this)(i, k);
      if (a == 0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        const gf::Element b = rhs(k, j);
        if (b != 0) out(i, j) ^= field_->mul(a, b);
      }
    }
  }
  return out;
}

bool Matrix::operator==(const Matrix& rhs) const {
  return rows_ == rhs.rows_ && cols_ == rhs.cols_ && data_ == rhs.data_;
}

std::size_t Matrix::nonzeros() const {
  std::size_t n = 0;
  for (const gf::Element v : data_) n += (v != 0);
  return n;
}

bool Matrix::column_is_zero(std::size_t c) const {
  for (std::size_t r = 0; r < rows_; ++r) {
    if ((*this)(r, c) != 0) return false;
  }
  return true;
}

Matrix Matrix::select_columns(std::span<const std::size_t> cols) const {
  Matrix out(*field_, rows_, cols.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      out(r, j) = (*this)(r, cols[j]);
    }
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> rows) const {
  Matrix out(*field_, rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t c = 0; c < cols_; ++c) {
      out(i, c) = (*this)(rows[i], c);
    }
  }
  return out;
}

std::optional<Matrix> Matrix::inverse() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("inverse of non-square matrix");
  }
  const std::size_t n = rows_;
  Matrix a(*this);
  Matrix inv = identity(*field_, n);
  for (std::size_t col = 0; col < n; ++col) {
    // Find a pivot at or below the diagonal.
    std::size_t pivot = col;
    while (pivot < n && a(pivot, col) == 0) ++pivot;
    if (pivot == n) return std::nullopt;  // singular
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a(col, j), a(pivot, j));
        std::swap(inv(col, j), inv(pivot, j));
      }
    }
    // Normalize the pivot row.
    const gf::Element scale = field_->inv(a(col, col));
    if (scale != 1) {
      for (std::size_t j = 0; j < n; ++j) {
        a(col, j) = field_->mul(a(col, j), scale);
        inv(col, j) = field_->mul(inv(col, j), scale);
      }
    }
    // Eliminate the column from every other row.
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const gf::Element factor = a(r, col);
      if (factor == 0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a(r, j) ^= field_->mul(factor, a(col, j));
        inv(r, j) ^= field_->mul(factor, inv(col, j));
      }
    }
  }
  return inv;
}

std::size_t Matrix::rank() const {
  Matrix a(*this);
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols_ && rank < rows_; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows_ && a(pivot, col) == 0) ++pivot;
    if (pivot == rows_) continue;
    if (pivot != rank) {
      for (std::size_t j = 0; j < cols_; ++j) std::swap(a(rank, j), a(pivot, j));
    }
    const gf::Element scale = field_->inv(a(rank, col));
    for (std::size_t j = col; j < cols_; ++j) {
      a(rank, j) = field_->mul(a(rank, j), scale);
    }
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == rank) continue;
      const gf::Element factor = a(r, col);
      if (factor == 0) continue;
      for (std::size_t j = col; j < cols_; ++j) {
        a(r, j) ^= field_->mul(factor, a(rank, j));
      }
    }
    ++rank;
  }
  return rank;
}

}  // namespace ppm
