// Dense matrices over GF(2^w).
//
// These matrices are the *planning* data structures of the decoder: the
// parity-check matrix H, its column splits F and S, inverses and products.
// They are tiny (at most a few hundred rows/columns), so clarity wins over
// micro-optimization here; all the heavy lifting happens in the GF region
// kernels that the resulting plans drive.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <optional>
#include <span>
#include <vector>

#include "gf/galois_field.h"

namespace ppm {

class Matrix {
 public:
  /// rows × cols zero matrix over `f`.
  Matrix(const gf::Field& f, std::size_t rows, std::size_t cols);

  /// Construct from row-major initializer data (used heavily in tests).
  Matrix(const gf::Field& f, std::size_t rows, std::size_t cols,
         std::initializer_list<gf::Element> values);

  /// n × n identity.
  static Matrix identity(const gf::Field& f, std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  const gf::Field& field() const { return *field_; }

  gf::Element operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  gf::Element& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }

  /// Row-major element storage (exposed for the census helpers).
  std::span<const gf::Element> data() const { return data_; }

  /// Matrix product; requires cols() == rhs.rows() and same field.
  Matrix operator*(const Matrix& rhs) const;

  bool operator==(const Matrix& rhs) const;

  /// Number of nonzero coefficients — the paper's u(M). One nonzero equals
  /// one mult_XOR when the matrix is applied to block regions.
  std::size_t nonzeros() const;

  /// True iff every element of column c is zero.
  bool column_is_zero(std::size_t c) const;

  /// New matrix formed from the given columns, in the given order.
  Matrix select_columns(std::span<const std::size_t> cols) const;

  /// New matrix formed from the given rows, in the given order.
  Matrix select_rows(std::span<const std::size_t> rows) const;

  /// Gauss–Jordan inverse; std::nullopt when singular. Requires square.
  std::optional<Matrix> inverse() const;

  /// Rank via Gaussian elimination (non-destructive).
  std::size_t rank() const;

 private:
  const gf::Field* field_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<gf::Element> data_;
};

}  // namespace ppm
