// Deterministic xoshiro256** PRNG.
//
// The paper drew failure scenarios from random.org; we substitute a seeded,
// reproducible generator so every experiment run regenerates exactly the same
// workload (DESIGN.md §3). Header-only: it is used from tests, benches and
// the workload generator alike.
#pragma once

#include <cmath>
#include <cstdint>

namespace ppm {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t bounded(std::uint64_t bound) {
    // Rejection-free variant is unnecessary here; the simple reduction bias
    // (< 2^-32 for all bounds used) is irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform value in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given rate (events/unit).
  double exponential(double rate) {
    double u = uniform();
    while (u == 0.0) u = uniform();  // avoid log(0)
    return -std::log(u) / rate;
  }

  /// Fill a byte region with pseudo-random data.
  void fill(std::uint8_t* dst, std::size_t n) {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
      const std::uint64_t v = next();
      __builtin_memcpy(dst + i, &v, 8);
    }
    if (i < n) {
      const std::uint64_t v = next();
      __builtin_memcpy(dst + i, &v, n - i);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace ppm
