// Sharded LRU cache keyed by failure-scenario block lists.
//
// The codec's plan cache is read under heavy multi-threaded traffic: every
// decode starts with a lookup, and rebuild storms make many threads miss
// on the same few keys at once. A single mutex around a std::map serializes
// all of that. This cache splits the key space into N shards by key hash;
// each shard holds an independent mutex, an intrusive LRU list and an
// index, so lookups on different shards never contend and the critical
// section per lookup is a list splice.
//
// Capacity is distributed across shards at construction (sum of shard
// capacities == total capacity), so the total resident count never exceeds
// the configured capacity regardless of how keys hash. Duplicate-free by
// construction: the index owns one entry per key and eviction pops the
// list tail, so the evicted-then-reinserted churn that corrupted the old
// FIFO vector bookkeeping cannot occur.
//
// Thread-safety: every public method is safe to call concurrently. The
// hit/miss/eviction counters are optional relaxed atomics (see
// common/metrics.h) so stats reads never take a shard lock.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace ppm {

template <typename Value>
class ShardedLruCache {
 public:
  using Key = std::vector<std::size_t>;

  /// `capacity` total retained entries (>= 1 enforced); `shards` mutex
  /// domains (0 = auto: min(8, capacity), always clamped to capacity so no
  /// shard has capacity zero).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 0,
                           Counter* hits = nullptr, Counter* misses = nullptr,
                           Counter* evictions = nullptr)
      : hits_(hits), misses_(misses), evictions_(evictions) {
    if (capacity == 0) capacity = 1;
    if (shards == 0) shards = 8;
    if (shards > capacity) shards = capacity;
    capacity_ = capacity;
    shards_.reserve(shards);
    const std::size_t base = capacity / shards;
    const std::size_t extra = capacity % shards;
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(base + (i < extra ? 1 : 0)));
    }
  }

  /// Look up `key`; a hit bumps it to most-recently-used and returns a
  /// copy of the value. Counts a hit or a miss.
  std::optional<Value> get(const Key& key) {
    Shard& s = shard_for(key);
    {
      const std::scoped_lock lock(s.mutex);
      const auto it = s.index.find(key);
      if (it != s.index.end()) {
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        if (hits_ != nullptr) hits_->add();
        return it->second->second;
      }
    }
    if (misses_ != nullptr) misses_->add();
    return std::nullopt;
  }

  /// Insert `key -> value`, evicting the shard's least-recently-used entry
  /// when at capacity. If another thread inserted the key while this one
  /// was building the value (the benign double-build race), the existing
  /// entry wins and is returned so every caller shares one instance.
  Value insert(const Key& key, Value value) {
    Shard& s = shard_for(key);
    const std::scoped_lock lock(s.mutex);
    const auto it = s.index.find(key);
    if (it != s.index.end()) {
      s.lru.splice(s.lru.begin(), s.lru, it->second);
      return it->second->second;
    }
    while (s.lru.size() >= s.capacity) {
      s.index.erase(s.lru.back().first);
      s.lru.pop_back();
      if (evictions_ != nullptr) evictions_->add();
    }
    s.lru.emplace_front(key, std::move(value));
    s.index.emplace(key, s.lru.begin());
    return s.lru.front().second;
  }

  /// Current resident entries, summed over shards (approximate while
  /// writers are active, exact when quiescent).
  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& s : shards_) {
      const std::scoped_lock lock(s->mutex);
      total += s->lru.size();
    }
    return total;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

  /// Drop every entry (counts no evictions — this is an operator action,
  /// not cache pressure).
  void clear() {
    for (const auto& s : shards_) {
      const std::scoped_lock lock(s->mutex);
      s->lru.clear();
      s->index.clear();
    }
  }

  /// FNV-1a over the key's words — stable shard placement for tests.
  static std::size_t hash_key(const Key& key) {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::size_t word : key) {
      std::uint64_t w = word;
      for (int i = 0; i < 8; ++i) {
        h ^= w & 0xff;
        h *= 1099511628211ull;
        w >>= 8;
      }
    }
    return static_cast<std::size_t>(h);
  }

 private:
  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}
    mutable std::mutex mutex;
    // front = most recently used; back is the eviction victim.
    std::list<std::pair<Key, Value>> lru;
    std::map<Key, typename std::list<std::pair<Key, Value>>::iterator> index;
    std::size_t capacity;
  };

  Shard& shard_for(const Key& key) {
    return *shards_[hash_key(key) % shards_.size()];
  }

  std::size_t capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  Counter* hits_;
  Counter* misses_;
  Counter* evictions_;
};

}  // namespace ppm
