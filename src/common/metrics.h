// Lightweight observability primitives for the codec's hot paths.
//
// Everything here is safe for concurrent writers and concurrent readers
// without external locking: counters are relaxed atomics (they count
// events, they do not order them) and the latency histogram is a fixed
// array of atomic buckets indexed by log2(nanoseconds). Recording costs
// one clock read plus one relaxed fetch_add — cheap enough to leave on in
// production serving paths.
//
// Readers (stats APIs, JSON export) observe each cell atomically but the
// set of cells is not snapshotted as a unit; totals read while writers
// are active are internally consistent per cell, approximate across
// cells. That is the usual metrics contract.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>

namespace ppm {

/// Monotonic event counter. add()/value() are wait-free relaxed atomics.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Log2-bucketed latency histogram. Bucket i counts samples with
/// nanoseconds in [2^i, 2^(i+1)); 64 buckets cover every representable
/// duration. Quantiles are estimated by linear interpolation inside the
/// containing bucket, which is exact to within a factor-of-2 bucket width
/// — plenty for serving dashboards.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  void record_seconds(double seconds) {
    record_nanos(seconds <= 0
                     ? 0
                     : static_cast<std::uint64_t>(seconds * 1e9));
  }

  void record_nanos(std::uint64_t ns) {
    buckets_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    std::uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double max_seconds() const {
    return static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-9;
  }
  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : total_seconds() / static_cast<double>(n);
  }

  /// Estimated q-quantile (q in [0,1]) in seconds, from a point-in-time
  /// read of the buckets. 0 when empty.
  double quantile_seconds(double q) const;

  /// Lower edge (inclusive) of bucket i in nanoseconds.
  static std::uint64_t bucket_floor_ns(std::size_t i) {
    return i == 0 ? 0 : std::uint64_t{1} << i;
  }
  /// Upper edge (exclusive) of bucket i in nanoseconds.
  static std::uint64_t bucket_ceil_ns(std::size_t i) {
    return i + 1 >= kBuckets ? ~std::uint64_t{0} : std::uint64_t{1} << (i + 1);
  }

  static std::size_t bucket_of(std::uint64_t ns) {
    return ns == 0 ? 0 : static_cast<std::size_t>(std::bit_width(ns) - 1);
  }

  void reset();

  /// Append `{"count":..,"mean_s":..,"p50_s":..,...,"buckets":[...]}` —
  /// only non-empty buckets are listed, as [floor_ns, count] pairs.
  void append_json(std::string& out) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
  std::atomic<std::uint64_t> max_ns_{0};
};

/// The codec's metric set: plan-cache traffic, decode volume, and
/// latency distributions. One instance per Codec (aggregate across codecs
/// in the application if desired); every member is individually
/// thread-safe, so the struct needs no lock.
struct CodecMetrics {
  // Plan cache.
  Counter plan_hits;        ///< plan_for served from cache
  Counter plan_misses;      ///< plan_for had to build
  Counter plan_evictions;   ///< cached plans discarded by LRU pressure
  Counter plan_failures;    ///< undecodable scenarios (build returned null)

  // Plan verification (populated in PPM_VERIFY_PLANS / Debug builds,
  // where every built plan runs through ppm::planverify before insertion).
  Counter plans_verified;        ///< plans proven sound before caching
  Counter plan_verify_failures;  ///< plans rejected by the verifier

  // Concurrency-hazard analysis (analyze_hazard/). Every built plan is
  // analyzed so it carries its PlanProfile; in PPM_VERIFY_PLANS builds a
  // hazardous plan additionally throws. The two accumulators divide into
  // the fleet-level parallelism picture: analyzed_work /
  // analyzed_critical_path is the average max-speedup bound over every
  // plan built.
  Counter plans_analyzed;         ///< plans profiled (and proven race-free)
  Counter hazard_failures;        ///< plans with a concurrency hazard
  Counter analyzed_work;          ///< Σ total mult_XOR work of analyzed plans
  Counter analyzed_critical_path; ///< Σ critical-path mult_XORs of same

  // Persistent plan store (plan_store/; populated once a store is
  // attached to the codec). Every load — read-through or warm — passed
  // the zero-trust gate (parse + planverify + hazard re-analysis);
  // load_failures counts records that did not, and quarantined counts the
  // files renamed aside as a result.
  Counter planstore_loads;          ///< plans served from disk, re-verified
  Counter planstore_load_failures;  ///< records failing parse or re-proof
  Counter planstore_stores;         ///< plans written through to disk
  Counter planstore_store_failures; ///< put() aborted by an I/O error
  Counter planstore_quarantined;    ///< records renamed aside as untrusted
  Counter planstore_warm_hits;      ///< warm() preloads entering the cache

  // Resilient decode pipeline (codec/resilient.cpp). Events, not blocks:
  // one decode that retries a block three times counts three retries, and
  // corruption_detected counts every CRC mismatch observed (a persistently
  // corrupt block re-checked across retries counts each check).
  Counter resilience_retries;             ///< survivor-read retries issued
  Counter resilience_escalations;         ///< survivors promoted to faulty
  Counter resilience_partial_decodes;     ///< decodes degraded to partial
  Counter resilience_deadline_exceeded;   ///< decodes that ran out of budget
  Counter resilience_corruption_detected; ///< expected-CRC mismatches

  // Proof-carrying XOR-schedule superoptimizer (optimize_xor/; populated
  // when the codec runs with Options::optimize_xor). Accepted rewrites
  // carried a full proof — symbolic GF(2) replay plus hazard re-analysis
  // — when they were counted; rejected ones were discarded without ever
  // touching a decode.
  Counter xoropt_passes;             ///< rewrite candidates attempted
  Counter xoropt_rewrites_accepted;  ///< candidates that proved out
  Counter xoropt_rewrites_rejected;  ///< failed proof or regressed cost
  Counter xoropt_ops_saved;          ///< Σ XOR ops removed vs greedy schedules

  // Decode volume.
  Counter decodes;          ///< single-stripe decode() calls
  Counter batches;          ///< decode_batch() calls
  Counter stripes_decoded;  ///< stripes across all batches + decodes
  Counter mult_xors;        ///< region ops issued (the paper's C, summed)
  Counter bytes_touched;    ///< source bytes read by region ops

  // Hazard-DAG-guided execution (docs/CONCURRENCY.md,
  // "DAG-consumed-by-executors"): decodes whose group fan-out ran LPT-
  // placed on the codec pool, vs. decodes that qualified for placement
  // but fell back to the serial in-caller execute().
  Counter placed_decodes;    ///< decode() runs through execute_placed
  Counter placed_fallbacks;  ///< placement qualified but ran serially

  // Latency.
  LatencyHistogram decode_seconds;  ///< per-stripe decode() wall time
  LatencyHistogram batch_seconds;   ///< decode_batch() wall time
  LatencyHistogram plan_seconds;    ///< plan build time (cache misses only)

  void reset();

  /// One JSON object with every counter and histogram. Stable key names —
  /// this is the export format of `ppm_cli batch --metrics` and the
  /// ablation benches.
  std::string to_json() const;
};

/// Coefficient certification & search metrics (search_coeff/). Process-
/// global rather than per-codec: certification runs once per geometry and
/// is shared by every SDCode/PMDSCode construction in the process. Every
/// member is individually thread-safe.
struct SearchMetrics {
  Counter searches;            ///< certified searches run (cache misses)
  Counter cache_hits;          ///< sd_coefficients served from memory
  Counter tuples_considered;   ///< candidate tuples drawn
  Counter tuples_prescreened;  ///< candidates killed by the rank prescreen
  Counter tuples_certified;    ///< candidates that proved exhaustively
  Counter tuples_rejected;     ///< candidates refuted by the oracle
  Counter classes_rank_checked;  ///< scenario classes rank-proven
  Counter plans_proven;          ///< classes driven through planverify+hazard

  // Certificate store (search_coeff/cert_store.h; zero-trust contract).
  Counter cert_loads;          ///< certificates re-proven and served
  Counter cert_load_failures;  ///< records failing parse or re-proof
  Counter cert_quarantined;    ///< records renamed aside as untrusted
  Counter cert_stores;         ///< certificates written to disk

  LatencyHistogram certify_seconds;  ///< per-tuple certification wall time

  void reset();

  /// `{"search":{...}}` — the export format of `ppm_cli search --metrics`.
  std::string to_json() const;
};

/// The process-global search metric set.
SearchMetrics& search_metrics();

/// Decode-serving front-end metrics (serve/). Process-global: one
/// DecodeServer typically serves the process, and the async fetch layer
/// (hedged reads) records here even when driven without a server. Every
/// member is individually thread-safe.
struct ServeMetrics {
  // Admission control (bounded request queue).
  Counter requests;          ///< submit() calls received
  Counter accepted;          ///< requests admitted to the queue
  Counter rejected;          ///< requests refused with backpressure
  Counter batches;           ///< plan-shared batches dispatched
  Counter batched_requests;  ///< requests folded into those batches

  // Overlapped decode outcomes.
  Counter overlapped_decodes;  ///< fast-path fetch/solve-overlap completions
  Counter group_solves_early;  ///< group solves started before last read
  Counter fallbacks;           ///< overlap abandoned → decode_resilient

  // Hedged reads. launched counts duplicate reads issued for stragglers;
  // won counts hedges whose completion arrived first; wasted counts
  // hedge completions discarded because another attempt already won.
  Counter hedges_launched;
  Counter hedges_won;
  Counter hedges_wasted;

  // Async fetch volume.
  Counter reads_submitted;  ///< read attempts issued (primaries + hedges)
  Counter reads_failed;     ///< attempts completing with kFailed

  // Per-stage tail latency.
  LatencyHistogram queue_seconds;    ///< admission → dispatch wait
  LatencyHistogram fetch_seconds;    ///< submit → last needed input landed
  LatencyHistogram solve_seconds;    ///< first solve start → last solve end
  LatencyHistogram request_seconds;  ///< submit → response completed
  LatencyHistogram read_seconds;     ///< per-attempt async read wall time

  void reset();

  /// `{"serve":{...}}` — the export format of `ppm_cli serve --metrics`.
  std::string to_json() const;
};

/// The process-global serving metric set.
ServeMetrics& serve_metrics();

/// Scrub & proactive-repair metrics (scrub/). Process-global: one
/// Scrubber typically patrols the process's fleet, and the repair
/// journal records here even when driven standalone. Every member is
/// individually thread-safe.
struct ScrubMetrics {
  // Sweep volume and detection.
  Counter sweeps;            ///< sweep() passes over a fleet
  Counter stripes_scanned;   ///< stripes examined across sweeps
  Counter blocks_scanned;    ///< blocks read + digest-checked
  Counter bytes_scanned;     ///< bytes fetched by scrub reads
  Counter read_failures;     ///< scrub reads exhausting their retries
  Counter crc_mismatches;    ///< digest mismatches on readable blocks
  Counter latent_detected;   ///< blocks classified latent (either cause)
  Counter spot_checks;       ///< verify-decode spot checks run
  Counter spot_check_failures;  ///< spot checks that did not complete

  // Risk-ranked repair scheduler.
  Counter stripes_ranked;      ///< damage reports risk-assessed
  Counter repairs_attempted;   ///< stripes entering repair
  Counter repairs_completed;   ///< every damaged block recovered + verified
  Counter repairs_partial;     ///< some blocks recovered, not all
  Counter repairs_failed;      ///< nothing recovered
  Counter repairs_skipped;     ///< damage healed (or claimed) before repair
  Counter blocks_repaired;     ///< blocks recovered, digest-verified
  Counter writebacks;          ///< repaired blocks written back to storage
  Counter writeback_failures;  ///< writebacks that failed (no commit)

  // Token-bucket pacing.
  Counter rate_limit_waits;  ///< scrub I/O acquisitions that had to sleep

  // Write-ahead repair journal (scrub/journal.h; zero-trust contract).
  Counter journal_intents;         ///< intent records published
  Counter journal_commits;         ///< records sealed committed
  Counter journal_store_failures;  ///< journal writes aborted by I/O errors
  Counter journal_replayed;        ///< records re-verified during replay
  Counter journal_quarantined;     ///< records renamed aside as untrusted
  Counter journal_pending;         ///< intent-only records found by replay

  // Latency.
  LatencyHistogram sweep_seconds;   ///< per-fleet sweep wall time
  LatencyHistogram repair_seconds;  ///< per-stripe repair wall time

  void reset();

  /// `{"scrub":{...}}` — the export format of `ppm_cli scrub --metrics`.
  std::string to_json() const;
};

/// The process-global scrub metric set.
ScrubMetrics& scrub_metrics();

}  // namespace ppm
