// Monotonic wall-clock timing helpers used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace ppm {

/// Stopwatch over std::chrono::steady_clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppm
