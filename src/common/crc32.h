// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// Integrity check for the persistent plan store's on-disk records
// (plan_store/): cheap enough to run on every load, strong enough to
// catch the torn writes and bit rot the zero-trust load path quarantines
// before re-verification even starts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ppm {

/// CRC-32 of `bytes` bytes at `data`. Pass a previous result as `seed` to
/// chain incremental computation over discontiguous buffers; the empty
/// input maps to 0.
std::uint32_t crc32(const void* data, std::size_t bytes,
                    std::uint32_t seed = 0);

}  // namespace ppm
