#include "common/cpu.h"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace ppm {

namespace {

IsaLevel detect_raw() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx512bw")) return IsaLevel::kAvx512;
  if (__builtin_cpu_supports("avx2")) return IsaLevel::kAvx2;
  if (__builtin_cpu_supports("ssse3")) return IsaLevel::kSsse3;
#endif
  return IsaLevel::kScalar;
}

IsaLevel apply_env_cap(IsaLevel detected) {
  const char* force = std::getenv("PPM_FORCE_ISA");
  if (force == nullptr) return detected;
  IsaLevel cap = detected;
  if (std::strcmp(force, "scalar") == 0) cap = IsaLevel::kScalar;
  if (std::strcmp(force, "ssse3") == 0) cap = IsaLevel::kSsse3;
  if (std::strcmp(force, "avx2") == 0) cap = IsaLevel::kAvx2;
  if (std::strcmp(force, "avx512") == 0) cap = IsaLevel::kAvx512;
  // Never exceed what the CPU actually supports.
  return cap < detected ? cap : detected;
}

}  // namespace

IsaLevel detect_isa() {
  static const IsaLevel level = apply_env_cap(detect_raw());
  return level;
}

const char* isa_name(IsaLevel level) {
  switch (level) {
    case IsaLevel::kScalar: return "scalar";
    case IsaLevel::kSsse3: return "ssse3";
    case IsaLevel::kAvx2: return "avx2";
    case IsaLevel::kAvx512: return "avx512";
  }
  return "unknown";
}

unsigned hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

}  // namespace ppm
