#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace ppm {

namespace {

void append_kv(std::string& out, const char* key, std::uint64_t value,
               bool trailing_comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", key, value,
                trailing_comma ? "," : "");
  out += buf;
}

void append_kv(std::string& out, const char* key, double value,
               bool trailing_comma = true) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "\"%s\":%.9g%s", key, value,
                trailing_comma ? "," : "");
  out += buf;
}

}  // namespace

double LatencyHistogram::quantile_seconds(double q) const {
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Point-in-time copy so rank and cumulative walk agree.
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total - 1);
  double cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double next = cumulative + static_cast<double>(counts[i]);
    if (rank < next) {
      const double frac =
          (rank - cumulative) / static_cast<double>(counts[i]);
      const double lo = static_cast<double>(bucket_floor_ns(i));
      const double hi = static_cast<double>(
          i + 1 >= kBuckets ? bucket_floor_ns(i) * 2 : bucket_ceil_ns(i));
      const double v = (lo + frac * (hi - lo)) * 1e-9;
      // Interpolation can overshoot the true tail; never report a
      // quantile above the observed maximum.
      const double mx = max_seconds();
      return mx > 0 && v > mx ? mx : v;
    }
    cumulative = next;
  }
  return max_seconds();
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_ns_.store(0, std::memory_order_relaxed);
  max_ns_.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::append_json(std::string& out) const {
  out += '{';
  append_kv(out, "count", count());
  append_kv(out, "total_s", total_seconds());
  append_kv(out, "mean_s", mean_seconds());
  append_kv(out, "p50_s", quantile_seconds(0.50));
  append_kv(out, "p95_s", quantile_seconds(0.95));
  append_kv(out, "p99_s", quantile_seconds(0.99));
  append_kv(out, "p999_s", quantile_seconds(0.999));
  append_kv(out, "max_s", max_seconds());
  out += "\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = bucket_count(i);
    if (n == 0) continue;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s[%" PRIu64 ",%" PRIu64 "]",
                  first ? "" : ",", bucket_floor_ns(i), n);
    out += buf;
    first = false;
  }
  out += "]}";
}

void CodecMetrics::reset() {
  plan_hits.reset();
  plan_misses.reset();
  plan_evictions.reset();
  plan_failures.reset();
  plans_verified.reset();
  plan_verify_failures.reset();
  plans_analyzed.reset();
  hazard_failures.reset();
  analyzed_work.reset();
  analyzed_critical_path.reset();
  planstore_loads.reset();
  planstore_load_failures.reset();
  planstore_stores.reset();
  planstore_store_failures.reset();
  planstore_quarantined.reset();
  planstore_warm_hits.reset();
  resilience_retries.reset();
  resilience_escalations.reset();
  resilience_partial_decodes.reset();
  resilience_deadline_exceeded.reset();
  resilience_corruption_detected.reset();
  xoropt_passes.reset();
  xoropt_rewrites_accepted.reset();
  xoropt_rewrites_rejected.reset();
  xoropt_ops_saved.reset();
  decodes.reset();
  batches.reset();
  stripes_decoded.reset();
  mult_xors.reset();
  bytes_touched.reset();
  placed_decodes.reset();
  placed_fallbacks.reset();
  decode_seconds.reset();
  batch_seconds.reset();
  plan_seconds.reset();
}

std::string CodecMetrics::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"plan_cache\":{";
  append_kv(out, "hits", plan_hits.value());
  append_kv(out, "misses", plan_misses.value());
  append_kv(out, "evictions", plan_evictions.value());
  append_kv(out, "failures", plan_failures.value());
  append_kv(out, "verified", plans_verified.value());
  append_kv(out, "verify_failures", plan_verify_failures.value(), false);
  out += "},\"hazard\":{";
  append_kv(out, "analyzed", plans_analyzed.value());
  append_kv(out, "failures", hazard_failures.value());
  append_kv(out, "work_mult_xors", analyzed_work.value());
  append_kv(out, "critical_path_mult_xors", analyzed_critical_path.value(),
            false);
  out += "},\"planstore\":{";
  append_kv(out, "loads", planstore_loads.value());
  append_kv(out, "load_failures", planstore_load_failures.value());
  append_kv(out, "stores", planstore_stores.value());
  append_kv(out, "store_failures", planstore_store_failures.value());
  append_kv(out, "quarantined", planstore_quarantined.value());
  append_kv(out, "warm_hits", planstore_warm_hits.value(), false);
  out += "},\"resilience\":{";
  append_kv(out, "retries", resilience_retries.value());
  append_kv(out, "escalations", resilience_escalations.value());
  append_kv(out, "partial_decodes", resilience_partial_decodes.value());
  append_kv(out, "deadline_exceeded", resilience_deadline_exceeded.value());
  append_kv(out, "corruption_detected",
            resilience_corruption_detected.value(), false);
  out += "},\"xoropt\":{";
  append_kv(out, "passes", xoropt_passes.value());
  append_kv(out, "rewrites_accepted", xoropt_rewrites_accepted.value());
  append_kv(out, "rewrites_rejected", xoropt_rewrites_rejected.value());
  append_kv(out, "ops_saved", xoropt_ops_saved.value(), false);
  out += "},\"decode\":{";
  append_kv(out, "decodes", decodes.value());
  append_kv(out, "batches", batches.value());
  append_kv(out, "stripes", stripes_decoded.value());
  append_kv(out, "mult_xors", mult_xors.value());
  append_kv(out, "bytes_touched", bytes_touched.value());
  append_kv(out, "placed", placed_decodes.value());
  append_kv(out, "placed_fallbacks", placed_fallbacks.value(), false);
  out += "},\"latency\":{\"decode\":";
  decode_seconds.append_json(out);
  out += ",\"batch\":";
  batch_seconds.append_json(out);
  out += ",\"plan\":";
  plan_seconds.append_json(out);
  out += "}}";
  return out;
}

void SearchMetrics::reset() {
  searches.reset();
  cache_hits.reset();
  tuples_considered.reset();
  tuples_prescreened.reset();
  tuples_certified.reset();
  tuples_rejected.reset();
  classes_rank_checked.reset();
  plans_proven.reset();
  cert_loads.reset();
  cert_load_failures.reset();
  cert_quarantined.reset();
  cert_stores.reset();
  certify_seconds.reset();
}

std::string SearchMetrics::to_json() const {
  std::string out;
  out.reserve(512);
  out += "{\"search\":{";
  append_kv(out, "searches", searches.value());
  append_kv(out, "cache_hits", cache_hits.value());
  append_kv(out, "tuples_considered", tuples_considered.value());
  append_kv(out, "tuples_prescreened", tuples_prescreened.value());
  append_kv(out, "tuples_certified", tuples_certified.value());
  append_kv(out, "tuples_rejected", tuples_rejected.value());
  append_kv(out, "classes_rank_checked", classes_rank_checked.value());
  append_kv(out, "plans_proven", plans_proven.value());
  append_kv(out, "cert_loads", cert_loads.value());
  append_kv(out, "cert_load_failures", cert_load_failures.value());
  append_kv(out, "cert_quarantined", cert_quarantined.value());
  append_kv(out, "cert_stores", cert_stores.value());
  out += "\"certify\":";
  certify_seconds.append_json(out);
  out += "}}";
  return out;
}

SearchMetrics& search_metrics() {
  static SearchMetrics metrics;
  return metrics;
}

void ServeMetrics::reset() {
  requests.reset();
  accepted.reset();
  rejected.reset();
  batches.reset();
  batched_requests.reset();
  overlapped_decodes.reset();
  group_solves_early.reset();
  fallbacks.reset();
  hedges_launched.reset();
  hedges_won.reset();
  hedges_wasted.reset();
  reads_submitted.reset();
  reads_failed.reset();
  queue_seconds.reset();
  fetch_seconds.reset();
  solve_seconds.reset();
  request_seconds.reset();
  read_seconds.reset();
}

std::string ServeMetrics::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"serve\":{";
  append_kv(out, "requests", requests.value());
  append_kv(out, "accepted", accepted.value());
  append_kv(out, "rejected", rejected.value());
  append_kv(out, "batches", batches.value());
  append_kv(out, "batched_requests", batched_requests.value());
  append_kv(out, "overlapped_decodes", overlapped_decodes.value());
  append_kv(out, "group_solves_early", group_solves_early.value());
  append_kv(out, "fallbacks", fallbacks.value());
  append_kv(out, "hedges_launched", hedges_launched.value());
  append_kv(out, "hedges_won", hedges_won.value());
  append_kv(out, "hedges_wasted", hedges_wasted.value());
  append_kv(out, "reads_submitted", reads_submitted.value());
  append_kv(out, "reads_failed", reads_failed.value());
  out += "\"latency\":{\"queue\":";
  queue_seconds.append_json(out);
  out += ",\"fetch\":";
  fetch_seconds.append_json(out);
  out += ",\"solve\":";
  solve_seconds.append_json(out);
  out += ",\"request\":";
  request_seconds.append_json(out);
  out += ",\"read\":";
  read_seconds.append_json(out);
  out += "}}}";
  return out;
}

ServeMetrics& serve_metrics() {
  static ServeMetrics metrics;
  return metrics;
}

void ScrubMetrics::reset() {
  sweeps.reset();
  stripes_scanned.reset();
  blocks_scanned.reset();
  bytes_scanned.reset();
  read_failures.reset();
  crc_mismatches.reset();
  latent_detected.reset();
  spot_checks.reset();
  spot_check_failures.reset();
  stripes_ranked.reset();
  repairs_attempted.reset();
  repairs_completed.reset();
  repairs_partial.reset();
  repairs_failed.reset();
  repairs_skipped.reset();
  blocks_repaired.reset();
  writebacks.reset();
  writeback_failures.reset();
  rate_limit_waits.reset();
  journal_intents.reset();
  journal_commits.reset();
  journal_store_failures.reset();
  journal_replayed.reset();
  journal_quarantined.reset();
  journal_pending.reset();
  sweep_seconds.reset();
  repair_seconds.reset();
}

std::string ScrubMetrics::to_json() const {
  std::string out;
  out.reserve(1024);
  out += "{\"scrub\":{";
  append_kv(out, "sweeps", sweeps.value());
  append_kv(out, "stripes_scanned", stripes_scanned.value());
  append_kv(out, "blocks_scanned", blocks_scanned.value());
  append_kv(out, "bytes_scanned", bytes_scanned.value());
  append_kv(out, "read_failures", read_failures.value());
  append_kv(out, "crc_mismatches", crc_mismatches.value());
  append_kv(out, "latent_detected", latent_detected.value());
  append_kv(out, "spot_checks", spot_checks.value());
  append_kv(out, "spot_check_failures", spot_check_failures.value());
  append_kv(out, "stripes_ranked", stripes_ranked.value());
  append_kv(out, "repairs_attempted", repairs_attempted.value());
  append_kv(out, "repairs_completed", repairs_completed.value());
  append_kv(out, "repairs_partial", repairs_partial.value());
  append_kv(out, "repairs_failed", repairs_failed.value());
  append_kv(out, "repairs_skipped", repairs_skipped.value());
  append_kv(out, "blocks_repaired", blocks_repaired.value());
  append_kv(out, "writebacks", writebacks.value());
  append_kv(out, "writeback_failures", writeback_failures.value());
  append_kv(out, "rate_limit_waits", rate_limit_waits.value());
  append_kv(out, "journal_intents", journal_intents.value());
  append_kv(out, "journal_commits", journal_commits.value());
  append_kv(out, "journal_store_failures", journal_store_failures.value());
  append_kv(out, "journal_replayed", journal_replayed.value());
  append_kv(out, "journal_quarantined", journal_quarantined.value());
  append_kv(out, "journal_pending", journal_pending.value());
  out += "\"latency\":{\"sweep\":";
  sweep_seconds.append_json(out);
  out += ",\"repair\":";
  repair_seconds.append_json(out);
  out += "}}}";
  return out;
}

ScrubMetrics& scrub_metrics() {
  static ScrubMetrics metrics;
  return metrics;
}

}  // namespace ppm
