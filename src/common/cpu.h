// CPU feature detection used to select Galois-field region kernels at runtime.
#pragma once

namespace ppm {

/// Instruction-set levels the GF region kernels are specialized for.
enum class IsaLevel {
  kScalar = 0,  ///< portable C++, no vector intrinsics
  kSsse3 = 1,   ///< 128-bit pshufb split-table kernels
  kAvx2 = 2,    ///< 256-bit vpshufb split-table kernels
  kAvx512 = 3,  ///< 512-bit vpshufb split-table kernels (AVX-512BW)
};

/// Highest ISA level supported by the executing CPU.
///
/// Honours the environment variable `PPM_FORCE_ISA` (values: `scalar`,
/// `ssse3`, `avx2`, `avx512`) which caps the detected level; this is how
/// tests and the Fig. 10 CPU-proxy benchmark pin a kernel family.
IsaLevel detect_isa();

/// Human-readable name for an ISA level.
const char* isa_name(IsaLevel level);

/// Number of hardware threads visible to this process (>= 1).
unsigned hardware_threads();

}  // namespace ppm
