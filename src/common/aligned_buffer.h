// Cache-line aligned byte buffers for stripe data.
//
// Erasure-coded block regions are the operands of every mult_XOR; keeping
// them 64-byte aligned lets the SIMD kernels use aligned loads on the hot
// path and keeps blocks from sharing cache lines across worker threads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ppm {

/// Owning, 64-byte-aligned, zero-initialized byte buffer.
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;

  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t size);
  ~AlignedBuffer();

  /// Allocation without the zero-fill pass — for scratch regions whose
  /// first use overwrites them (e.g. the normal-sequence intermediate
  /// blocks, written with the overwrite kernel before any read).
  static AlignedBuffer uninitialized(std::size_t size);

  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::span<std::uint8_t> span() { return {data_, size_}; }
  std::span<const std::uint8_t> span() const { return {data_, size_}; }

  /// Set every byte to zero.
  void clear();

 private:
  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ppm
