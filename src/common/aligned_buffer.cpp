#include "common/aligned_buffer.h"

#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace ppm {

AlignedBuffer::AlignedBuffer(std::size_t size) : size_(size) {
  if (size_ == 0) return;
  // Round the allocation up to a multiple of the alignment so SIMD kernels
  // may safely issue full-width loads/stores on the final vector.
  const std::size_t padded = (size_ + kAlignment - 1) / kAlignment * kAlignment;
  void* p = std::aligned_alloc(kAlignment, padded);
  if (p == nullptr) throw std::bad_alloc{};
  data_ = static_cast<std::uint8_t*>(p);
  std::memset(data_, 0, padded);
}

AlignedBuffer AlignedBuffer::uninitialized(std::size_t size) {
  AlignedBuffer buf;
  if (size == 0) return buf;
  const std::size_t padded = (size + kAlignment - 1) / kAlignment * kAlignment;
  void* p = std::aligned_alloc(kAlignment, padded);
  if (p == nullptr) throw std::bad_alloc{};
  buf.data_ = static_cast<std::uint8_t*>(p);
  buf.size_ = size;
  return buf;
}

AlignedBuffer::~AlignedBuffer() { std::free(data_); }

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this != &other) {
    std::free(data_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void AlignedBuffer::clear() {
  if (data_ != nullptr) std::memset(data_, 0, size_);
}

}  // namespace ppm
