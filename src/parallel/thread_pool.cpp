#include "parallel/thread_pool.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/cpu.h"

namespace ppm {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) throw std::invalid_argument("ThreadPool: zero threads");
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  stop();
  // jthread joins in its destructor; workers exit once the queue drains.
}

void ThreadPool::stop() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
}

bool ThreadPool::stopping() const {
  const std::scoped_lock lock(mutex_);
  return stopping_;
}

void ThreadPool::submit(std::function<void()> task) {
  if (!try_submit(std::move(task))) {
    throw std::runtime_error("ThreadPool: submit after stop");
  }
}

bool ThreadPool::try_submit(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    if (stopping_) return false;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(hardware_threads());
  return pool;
}

double ThreadPool::thread_spawn_seconds() {
  static const double cost = [] {
    std::array<double, 7> samples{};
    for (double& s : samples) {
      const auto start = std::chrono::steady_clock::now();
      std::thread t([] {});
      t.join();
      s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  }();
  return cost;
}

}  // namespace ppm
