#include "parallel/dag_executor.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

namespace ppm {
namespace {

/// Ready-queue ordering: heaviest priority first, lowest index breaking
/// ties, so dispatch order is deterministic for a given edge set.
struct ReadyOrder {
  const std::vector<std::size_t>* weight;
  bool operator()(std::size_t a, std::size_t b) const {
    const std::size_t wa = (*weight)[a];
    const std::size_t wb = (*weight)[b];
    if (wa != wb) return wa < wb;  // max-heap on weight
    return a > b;                  // then min index on top
  }
};

}  // namespace

DagRunReport run_unit_dag(
    std::size_t units,
    std::span<const std::pair<std::size_t, std::size_t>> edges,
    unsigned threads, const std::function<void(std::size_t)>& run,
    std::span<const std::size_t> priority) {
  DagRunReport report;
  if (units == 0) {
    report.ran = true;
    return report;
  }

  std::vector<std::vector<std::size_t>> succ(units);
  std::vector<std::size_t> indegree(units, 0);
  for (const auto& [from, to] : edges) {
    if (from >= units || to >= units) continue;
    succ[from].push_back(to);
    ++indegree[to];
  }

  std::vector<std::size_t> weight(units, 1);
  if (priority.size() == units) {
    weight.assign(priority.begin(), priority.end());
  }

  std::priority_queue<std::size_t, std::vector<std::size_t>, ReadyOrder> ready(
      ReadyOrder{&weight});
  for (std::size_t u = 0; u < units; ++u) {
    if (indegree[u] == 0) ready.push(u);
  }

  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      std::max(1u, threads), units));
  if (workers <= 1) {
    // In-caller Kahn order, still heaviest-ready-first.
    std::size_t done = 0;
    while (!ready.empty()) {
      const std::size_t u = ready.top();
      ready.pop();
      run(u);
      ++done;
      for (const std::size_t v : succ[u]) {
        if (--indegree[v] == 0) ready.push(v);
      }
    }
    report.ran = done == units;  // shortfall means a dependency cycle
    report.workers_used = report.ran ? 1 : 0;
    return report;
  }

  // Cycle pre-check: the parallel loop below would deadlock on a cycle, so
  // refuse up front (nothing has run yet). Reuses a scratch copy of the
  // indegrees; `ready` is rebuilt afterwards.
  {
    std::vector<std::size_t> deg = indegree;
    std::vector<std::size_t> stack;
    for (std::size_t u = 0; u < units; ++u) {
      if (deg[u] == 0) stack.push_back(u);
    }
    std::size_t seen = 0;
    while (!stack.empty()) {
      const std::size_t u = stack.back();
      stack.pop_back();
      ++seen;
      for (const std::size_t v : succ[u]) {
        if (--deg[v] == 0) stack.push_back(v);
      }
    }
    if (seen != units) return report;  // ran = false
  }

  std::mutex mu;
  std::condition_variable cv;
  std::size_t completed = 0;
  bool all_done = false;

  const auto worker_loop = [&] {
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      cv.wait(lock, [&] { return !ready.empty() || all_done; });
      if (ready.empty()) return;  // all_done and nothing left to claim
      const std::size_t u = ready.top();
      ready.pop();
      lock.unlock();
      run(u);
      lock.lock();
      // Completion signal: retire the unit, then release every consumer
      // whose last producer this was.
      ++completed;
      for (const std::size_t v : succ[u]) {
        if (--indegree[v] == 0) {
          ready.push(v);
          cv.notify_one();
        }
      }
      if (completed == units) {
        all_done = true;
        cv.notify_all();
      }
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker_loop);
  }

  report.ran = true;
  report.workers_used = workers;
  return report;
}

}  // namespace ppm
