#include "parallel/task_group.h"

#include <utility>

namespace ppm {

void TaskGroup::add(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    task();
    {
      const std::scoped_lock lock(mutex_);
      --pending_;
    }
    cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace ppm
