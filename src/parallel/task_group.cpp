#include "parallel/task_group.h"

#include <utility>

namespace ppm {

// Note on notify-under-lock: the completion lambda (and the rollback path
// below) notifies cv_ while still holding mutex_. Notifying after the
// unlock would race ~TaskGroup — wait() could observe pending_ == 0 and
// the owner destroy the group while the worker is still inside
// notify_all() on the dead condition variable (caught by TSan). With the
// lock held, wait() cannot return until the notifier has left the
// critical section.

void TaskGroup::add(std::function<void()> task) {
  {
    const std::scoped_lock lock(mutex_);
    ++pending_;
  }
  try {
    pool_.submit([this, task = std::move(task)] {
      task();
      const std::scoped_lock lock(mutex_);
      --pending_;
      cv_.notify_all();
    });
  } catch (...) {
    // Rejected by a stopped pool: the task will never run, so it must not
    // count toward wait() — otherwise wait() (and ~TaskGroup) deadlocks.
    const std::scoped_lock lock(mutex_);
    --pending_;
    cv_.notify_all();
    throw;
  }
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace ppm
