// Fixed-size worker pool.
//
// The PPM decoder supports two execution styles: paper-faithful ephemeral
// threads spawned per decode (the thread-creation overhead the paper
// measures in §III-C), or a persistent pool passed via PpmOptions for
// library use where that overhead is amortized away.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppm {

class ThreadPool {
 public:
  /// Start `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution by any worker.
  void submit(std::function<void()> task);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide pool sized to the hardware thread count.
  static ThreadPool& shared();

  /// Calibrated cost of spawning + joining one ephemeral std::thread on
  /// this host (median of several measurements, cached after the first
  /// call). Feeds the overhead-aware modeled-parallel clock
  /// (PpmResult::modeled_seconds_with_overhead).
  static double thread_spawn_seconds();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace ppm
