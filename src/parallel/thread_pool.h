// Fixed-size worker pool.
//
// The PPM decoder supports two execution styles: paper-faithful ephemeral
// threads spawned per decode (the thread-creation overhead the paper
// measures in §III-C), or a persistent pool passed via PpmOptions for
// library use where that overhead is amortized away.
//
// Shutdown contract (see docs/CONCURRENCY.md):
//   * stop() begins shutdown. Every task accepted before stop() is
//     guaranteed to run — the destructor joins the workers only after the
//     queue drains.
//   * submit() after stop() throws std::runtime_error; try_submit()
//     returns false instead. A submit racing stop() is atomic either way:
//     the task is accepted (and will run) or rejected — never silently
//     dropped into a dead queue.
//   * The destructor calls stop() and joins. Destroying the pool while
//     another thread still holds a reference to it is, as for any object,
//     the caller's bug; racing submit against *stop* is supported.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppm {

class ThreadPool {
 public:
  /// Start `threads` workers (>= 1).
  explicit ThreadPool(unsigned threads);

  /// Stops, drains the queue, joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution by any worker. Throws std::runtime_error
  /// if the pool has been stopped.
  void submit(std::function<void()> task);

  /// Like submit(), but returns false instead of throwing when the pool
  /// has been stopped. For callers racing shutdown.
  bool try_submit(std::function<void()> task);

  /// Begin shutdown: no new tasks are accepted, already-queued tasks still
  /// run to completion. Idempotent; safe to call concurrently with
  /// submit()/try_submit() from other threads. Workers are joined by the
  /// destructor, not here.
  void stop();

  /// True once stop() (or the destructor) has begun shutdown.
  bool stopping() const;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Process-wide pool sized to the hardware thread count.
  static ThreadPool& shared();

  /// Calibrated cost of spawning + joining one ephemeral std::thread on
  /// this host (median of several measurements, cached after the first
  /// call). Feeds the overhead-aware modeled-parallel clock
  /// (PpmResult::modeled_seconds_with_overhead).
  static double thread_spawn_seconds();

 private:
  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace ppm
