// Fork-join helper: run a batch of tasks and wait for all of them.
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>

#include "parallel/thread_pool.h"

namespace ppm {

/// Tracks a set of tasks submitted to a ThreadPool; wait() blocks until
/// every task added so far has completed. Tasks must not throw.
///
/// add() on a stopped pool rethrows the pool's std::runtime_error after
/// rolling back its pending count, so wait()/~TaskGroup never block on a
/// task that was rejected. One group may be fed from multiple threads;
/// wait() is safe to call repeatedly and from any thread.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  /// ~TaskGroup waits for outstanding tasks (they capture `this`).
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void add(std::function<void()> task);
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
};

}  // namespace ppm
