// Completion-signaling DAG runner.
//
// The hazard analyzer (analyze_hazard/) proves a plan's execution units
// race-free *given* their happens-before edges; this primitive is the
// runtime half of that contract: it executes every unit exactly once,
// dispatching a unit the moment its last producer completes — not at a
// level barrier, so a deep-but-narrow chain never stalls an unrelated
// wide region. Ready units are offered heaviest-priority-first, which
// makes the dispatch order LPT list scheduling over the DAG (Graham's
// bound: makespan <= work/threads + critical path).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>
#include <vector>

namespace ppm {

/// What run_unit_dag actually did.
struct DagRunReport {
  bool ran = false;          ///< false: a dependency cycle; nothing executed
  unsigned workers_used = 0; ///< worker threads (1 = in-caller serial order)
};

/// Execute `run(u)` once for every unit in [0, units), honoring
/// happens-before `edges` (from must complete before to starts). Unordered
/// units run concurrently on up to `threads` workers; when `priority` is
/// non-empty (one weight per unit) ready units are dispatched
/// heaviest-first. With `threads <= 1` the units run in the calling thread
/// in a topological order (still priority-aware). Edges with out-of-range
/// endpoints are ignored. If the edges contain a cycle no schedule exists:
/// nothing is executed and `ran` is false. `run` must not throw.
DagRunReport run_unit_dag(
    std::size_t units,
    std::span<const std::pair<std::size_t, std::size_t>> edges,
    unsigned threads, const std::function<void(std::size_t)>& run,
    std::span<const std::size_t> priority = {});

}  // namespace ppm
