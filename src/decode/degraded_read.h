// Degraded reads: recover exactly one unavailable block at minimum cost.
//
// When an upper-layer read hits an unavailable block (the 90%-transient
// failure class motivating LRC, paper §I/§II-A), the system does not need a
// full-stripe decode — it needs that one block, from as few survivors as
// possible. The reader enumerates every check-row combination that can
// express the target block in terms of available blocks and picks the one
// with the fewest region operations; for an LRC data strip that is its
// local group, for an SD sector its row parity.
#pragma once

#include <cstdint>
#include <optional>

#include "codes/erasure_code.h"
#include "decode/plan.h"
#include "decode/scenario.h"

namespace ppm {

struct DegradedReadPlan {
  SubPlan plan;            ///< recovers exactly the target block
  std::size_t cost;        ///< region operations (== survivors read)
  std::size_t survivors;   ///< distinct blocks read
};

/// Why a degraded read could not be planned. The two failure classes call
/// for different reactions: kTargetNotUnavailable is a caller bug (or a
/// race with recovery — the block is readable, just read it), while
/// kInsufficientSurvivors means this unavailable set genuinely cannot
/// express the target and the caller should fall back to a full decode or
/// report data loss.
enum class DegradedReadError {
  kNone,                   ///< planned successfully
  kTargetNotUnavailable,   ///< `unavailable` does not contain the target
  kInsufficientSurvivors,  ///< no row combination avoids unavailable blocks
};

class DegradedReader {
 public:
  explicit DegradedReader(const ErasureCode& code) : code_(&code) {}

  /// Plan the cheapest recovery of `target` when every block listed in
  /// `unavailable` (which must include `target`) cannot be read.
  /// std::nullopt when the target is not recoverable without touching
  /// other unavailable blocks... in which case callers fall back to a full
  /// PPM decode of the whole unavailable set. `error`, when non-null,
  /// receives the failure class (kNone on success).
  std::optional<DegradedReadPlan> plan(std::size_t target,
                                       const FailureScenario& unavailable,
                                       DegradedReadError* error = nullptr)
      const;

  /// Plan + execute in one call; true on success (target block rewritten).
  bool read(std::size_t target, const FailureScenario& unavailable,
            std::uint8_t* const* blocks, std::size_t block_bytes,
            DecodeStats* stats = nullptr,
            DegradedReadError* error = nullptr) const;

 private:
  const ErasureCode* code_;
};

}  // namespace ppm
