#include "decode/cost_model.h"

#include <numeric>
#include <vector>

#include "decode/log_table.h"
#include "decode/partition.h"
#include "decode/plan.h"

namespace ppm {

std::optional<SequenceCosts> analyze_costs(const ErasureCode& code,
                                           const FailureScenario& scenario) {
  if (scenario.empty()) return SequenceCosts{};
  const Matrix& h = code.parity_check();
  std::vector<std::size_t> all_rows(h.rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  const auto whole =
      SubPlan::sequence_costs(h, all_rows, scenario.faulty(), scenario.faulty());
  if (!whole.has_value()) return std::nullopt;

  SequenceCosts out;
  out.c1 = whole->first;
  out.c2 = whole->second;

  const LogTable table = LogTable::build(h, scenario.faulty());
  const Partition part = make_partition(h, table);
  out.p = part.p();

  std::size_t groups_mf = 0;
  for (const IndependentGroup& g : part.groups) {
    const auto costs =
        SubPlan::sequence_costs(h, g.rows, g.faulty_cols, scenario.faulty());
    if (!costs.has_value()) return std::nullopt;  // unreachable: F_i checked
    groups_mf += costs->second;
  }

  if (part.rest_empty()) {
    out.c3 = groups_mf;
    out.c4 = groups_mf;
    return out;
  }
  // Rest system: the recovered group blocks act as survivors, so only the
  // dependent faulty blocks are excluded from the survivor set.
  const auto rest = SubPlan::sequence_costs(h, part.rest_rows,
                                            part.rest_faulty,
                                            part.rest_faulty);
  if (!rest.has_value()) return std::nullopt;
  out.c3 = groups_mf + rest->second;
  out.c4 = groups_mf + rest->first;
  return out;
}

}  // namespace ppm
