// Empirical computational-cost model: the paper's C1..C4 (§II-B, §III-B),
// counted exactly from the nonzero structure of the decoding matrices of a
// concrete code + failure scenario. These are the quantities plotted in
// Figs. 4-6 and the inputs to the decoders' Auto sequence policies.
#pragma once

#include <cstddef>
#include <optional>

#include "codes/erasure_code.h"
#include "decode/scenario.h"

namespace ppm {

struct SequenceCosts {
  std::size_t c1 = 0;  ///< traditional, normal sequence: u(F⁻¹) + u(S)
  std::size_t c2 = 0;  ///< traditional, matrix-first: u(F⁻¹·S)
  std::size_t c3 = 0;  ///< PPM, matrix-first rest: Σu(Fi⁻¹Si) + u(Fr⁻¹Sr)
  std::size_t c4 = 0;  ///< PPM, normal rest: Σu(Fi⁻¹Si) + u(Fr⁻¹) + u(Sr)
  std::size_t p = 0;   ///< number of independent sub-matrices

  /// min(c3, c4): the cost PPM's Auto rest policy realizes.
  std::size_t ppm_best() const { return c3 < c4 ? c3 : c4; }
};

/// Analyze a scenario; std::nullopt when it is undecodable. The whole-H
/// plan yields C1/C2; the PPM partition yields C3/C4 (with an empty rest
/// the rest terms are zero; with p = 0 the partition degenerates and
/// C3/C4 equal the cost of decoding the whole system both ways).
std::optional<SequenceCosts> analyze_costs(const ErasureCode& code,
                                           const FailureScenario& scenario);

}  // namespace ppm
