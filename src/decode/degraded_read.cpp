#include "decode/degraded_read.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ppm {

namespace {

// Solve A x = b over the field (A is rows x cols, b length rows); returns
// one particular solution (free variables zero) or nullopt when
// inconsistent. Used to combine check rows into a single recovery equation.
std::optional<std::vector<gf::Element>> solve_particular(
    Matrix a, std::vector<gf::Element> b) {
  const gf::Field& f = a.field();
  const std::size_t rows = a.rows();
  const std::size_t cols = a.cols();
  std::vector<std::size_t> pivot_col;
  std::size_t rank = 0;
  for (std::size_t col = 0; col < cols && rank < rows; ++col) {
    std::size_t pivot = rank;
    while (pivot < rows && a(pivot, col) == 0) ++pivot;
    if (pivot == rows) continue;
    if (pivot != rank) {
      for (std::size_t j = col; j < cols; ++j) std::swap(a(rank, j), a(pivot, j));
      std::swap(b[rank], b[pivot]);
    }
    const gf::Element scale = f.inv(a(rank, col));
    for (std::size_t j = col; j < cols; ++j) {
      a(rank, j) = f.mul(a(rank, j), scale);
    }
    b[rank] = f.mul(b[rank], scale);
    for (std::size_t r = 0; r < rows; ++r) {
      if (r == rank) continue;
      const gf::Element factor = a(r, col);
      if (factor == 0) continue;
      for (std::size_t j = col; j < cols; ++j) {
        a(r, j) ^= f.mul(factor, a(rank, j));
      }
      b[r] ^= f.mul(factor, b[rank]);
    }
    pivot_col.push_back(col);
    ++rank;
  }
  // Inconsistency: a zero row of A with nonzero b.
  for (std::size_t r = rank; r < rows; ++r) {
    if (b[r] != 0) return std::nullopt;
  }
  std::vector<gf::Element> x(cols, 0);
  for (std::size_t i = 0; i < rank; ++i) x[pivot_col[i]] = b[i];
  return x;
}

}  // namespace

std::optional<DegradedReadPlan> DegradedReader::plan(
    std::size_t target, const FailureScenario& unavailable,
    DegradedReadError* error) const {
  const auto fail = [error](DegradedReadError why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!unavailable.contains(target)) {
    return fail(DegradedReadError::kTargetNotUnavailable);
  }
  const Matrix& h = code_->parity_check();
  const gf::Field& f = code_->field();
  const auto faulty = unavailable.faulty();

  // Candidate 1: a single check row touching the target and no other
  // unavailable block — the local-repair shortcut (optimal for LRC locals
  // and SD row parity).
  std::optional<std::size_t> best_row;
  std::size_t best_row_cost = SIZE_MAX;
  for (std::size_t row = 0; row < h.rows(); ++row) {
    if (h(row, target) == 0) continue;
    bool clean = true;
    std::size_t cost = 0;
    for (std::size_t c = 0; c < h.cols(); ++c) {
      if (h(row, c) == 0) continue;
      if (c == target) continue;
      if (unavailable.contains(c)) {
        clean = false;
        break;
      }
      ++cost;
    }
    if (clean && cost < best_row_cost) {
      best_row = row;
      best_row_cost = cost;
    }
  }

  // Candidate 2: a combination y of check rows with yᵀ·H[:,U] = e_target —
  // the general fallback when every single row also touches other
  // unavailable blocks.
  const Matrix f_cols = h.select_columns(faulty);
  // Solve Fᵀ x = e_j for x in GF^{RH}.
  Matrix ft(f, f_cols.cols(), f_cols.rows());
  for (std::size_t i = 0; i < f_cols.rows(); ++i) {
    for (std::size_t j = 0; j < f_cols.cols(); ++j) ft(j, i) = f_cols(i, j);
  }
  std::vector<gf::Element> e(faulty.size(), 0);
  e[unavailable.index_of(target)] = 1;
  const auto combo = solve_particular(std::move(ft), std::move(e));

  // Materialize the cheaper candidate as a 1-row virtual parity check.
  Matrix hrow(f, 1, h.cols());
  if (combo.has_value()) {
    for (std::size_t row = 0; row < h.rows(); ++row) {
      const gf::Element y = (*combo)[row];
      if (y == 0) continue;
      for (std::size_t c = 0; c < h.cols(); ++c) {
        if (h(row, c) != 0) hrow(0, c) ^= f.mul(y, h(row, c));
      }
    }
  }
  std::size_t combo_cost = SIZE_MAX;
  if (combo.has_value() && hrow(0, target) != 0) {
    combo_cost = 0;
    for (std::size_t c = 0; c < h.cols(); ++c) {
      if (c != target && hrow(0, c) != 0) ++combo_cost;
    }
  }

  if (best_row.has_value() && best_row_cost <= combo_cost) {
    for (std::size_t c = 0; c < h.cols(); ++c) hrow(0, c) = h(*best_row, c);
  } else if (combo_cost == SIZE_MAX) {
    // Target not expressible from available blocks.
    return fail(DegradedReadError::kInsufficientSurvivors);
  }

  const std::vector<std::size_t> rows{0};
  const std::vector<std::size_t> unknowns{target};
  auto plan = SubPlan::make(hrow, rows, unknowns, faulty,
                            Sequence::kMatrixFirst);
  if (!plan.has_value()) {
    return fail(DegradedReadError::kInsufficientSurvivors);
  }
  DegradedReadPlan out{std::move(*plan), 0, 0};
  out.cost = out.plan.cost();
  out.survivors = out.plan.survivors().size();
  if (error != nullptr) *error = DegradedReadError::kNone;
  return out;
}

bool DegradedReader::read(std::size_t target,
                          const FailureScenario& unavailable,
                          std::uint8_t* const* blocks,
                          std::size_t block_bytes, DecodeStats* stats,
                          DegradedReadError* error) const {
  const auto p = plan(target, unavailable, error);
  if (!p.has_value()) return false;
  p->plan.execute(blocks, block_bytes, stats);
  return true;
}

}  // namespace ppm
