// Block-level (region-split) parallel decoding — the classic alternative
// the paper's related work contrasts PPM against ([36]-[38]): keep the
// whole-matrix decode of §II-B but split every block region into T
// contiguous slices and run the complete plan on each slice concurrently.
// Region operations are element-wise, so slices are independent.
//
// Strengths/weaknesses vs PPM (measured in bench/ablation_block_parallel):
// region splitting parallelizes *all* the work including H_rest's serial
// tail, but executes the full C1/C2 operation count — it has no partition
// and therefore no cost reduction; PPM runs fewer operations but owns a
// serial tail. On real multi-core hardware the strongest configuration is
// often PPM's partition with region-split execution of H_rest.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codes/erasure_code.h"
#include "decode/scenario.h"
#include "decode/traditional_decoder.h"

namespace ppm {

/// One contiguous byte range of every block region, processed by one
/// worker. Produced by plan_slices(); consumed by the decoder and by the
/// hazard analyzer (analyze_hazard/), which proves the ranges disjoint,
/// symbol-aligned and an exact tiling of [0, block_bytes).
struct SliceRange {
  std::size_t offset = 0;  ///< first byte of the slice
  std::size_t bytes = 0;   ///< slice length (multiple of the symbol size)
};

/// Split [0, block_bytes) into at most `threads` contiguous symbol-aligned
/// slices of near-equal size. Fewer slices are returned when there are not
/// enough symbols to go around; zero-length tails are never emitted.
/// `block_bytes` must be a multiple of `symbol_bytes`.
std::vector<SliceRange> plan_slices(std::size_t block_bytes,
                                    unsigned symbol_bytes, unsigned threads);

struct BlockParallelResult {
  DecodeStats stats;           ///< ops counted once (slices don't multiply C)
  Sequence sequence_used = Sequence::kMatrixFirst;
  unsigned slices = 1;
  double seconds = 0;          ///< measured wall time
  double plan_seconds = 0;
  std::vector<double> slice_seconds;  ///< per-slice execution time

  /// Modeled wall time with each slice on its own core: planning + the
  /// slowest slice (same single-core substitution as PpmResult).
  double modeled_seconds() const;
};

class BlockParallelDecoder {
 public:
  /// `threads` slices (0 = min(4, hardware), the same default as PPM).
  /// With `sequential` the slices execute one after another in the calling
  /// thread — the slice split and per-slice timings (and therefore
  /// modeled_seconds) are identical, but on a single-core host the
  /// measurements are not polluted by thread interleaving; benches use
  /// this the same way they use PPM at T=1.
  explicit BlockParallelDecoder(const ErasureCode& code, unsigned threads = 0,
                                SequencePolicy policy = SequencePolicy::kAuto,
                                bool sequential = false)
      : code_(&code),
        threads_(threads),
        policy_(policy),
        sequential_(sequential) {}

  std::optional<BlockParallelResult> decode(const FailureScenario& scenario,
                                            std::uint8_t* const* blocks,
                                            std::size_t block_bytes) const;

 private:
  const ErasureCode* code_;
  unsigned threads_;
  SequencePolicy policy_;
  bool sequential_;
};

}  // namespace ppm
