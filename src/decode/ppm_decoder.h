// The PPM decoder (paper §III): partition the parity-check matrix via the
// log table, recover independent faulty blocks on T parallel threads with
// the matrix-first sequence, then recover the dependent blocks from the
// remaining sub-matrix with the cost-cheaper sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codes/erasure_code.h"
#include "common/metrics.h"
#include "decode/scenario.h"
#include "decode/traditional_decoder.h"
#include "parallel/thread_pool.h"

namespace ppm {

struct PpmOptions {
  /// Worker threads T for the independent sub-matrices. 0 selects the
  /// paper's default min(4, hardware cores); the effective count is further
  /// capped at p (T <= p, §III-C).
  unsigned threads = 0;

  /// Sequence for the remaining sub-matrix H_rest. kAuto compares the exact
  /// C3 vs C4 tail terms; kNormal reproduces the paper's Algorithm 1, which
  /// always uses the normal sequence for H_rest (i.e. C4).
  SequencePolicy rest_policy = SequencePolicy::kAuto;

  /// Optional persistent pool. When null, the decoder spawns T ephemeral
  /// threads per decode — the paper's execution model, whose thread-start
  /// cost is part of what Fig. 9 measures against stripe size.
  ThreadPool* pool = nullptr;

  /// Optional metric sink. When set, each successful decode records its
  /// wall time, planning time and mult_XOR count (thread-safe; many
  /// decoders may share one sink). The caller owns the instance and must
  /// keep it alive for the decoder's lifetime.
  CodecMetrics* metrics = nullptr;
};

struct PpmResult {
  DecodeStats stats;
  std::size_t p = 0;                 ///< independent sub-matrices found
  std::size_t dependent_blocks = 0;  ///< faulty blocks left to H_rest
  /// Lanes that actually ran work: min(T, groups) on the parallel paths
  /// (never more threads than groups are spawned), 1 on the serial path.
  unsigned threads_used = 1;
  /// Lane each group ran on under the executed LPT placement (empty until
  /// a decode ran; all zeros on the serial path).
  std::vector<unsigned> lane_of;
  Sequence rest_sequence = Sequence::kNormal;

  bool rest_empty() const { return dependent_blocks == 0; }

  double seconds = 0;           ///< measured wall time of the whole decode
  double plan_seconds = 0;      ///< log table + partition + matrix planning
  double parallel_seconds = 0;  ///< wall time of the group phase
  double rest_seconds = 0;      ///< wall time of the H_rest phase
  std::vector<double> task_seconds;  ///< per-group execution time

  /// Modeled wall time on a machine with `lanes` truly concurrent cores
  /// (0 → threads_used): planning + the makespan of Algorithm 1's static
  /// round-robin schedule (task i on lane i mod T) of the measured task
  /// times + the rest phase. Since the executor moved to LPT placement
  /// this is the *baseline* model, kept as the comparison point; the
  /// executed schedule is modeled_seconds_lpt. The lane substitution is
  /// documented in DESIGN.md §3: per-task work is measured, only the
  /// physical concurrency is simulated.
  double modeled_seconds(unsigned lanes = 0) const;

  /// modeled_seconds with longest-processing-time-first assignment — the
  /// placement the decoder now executes (within 4/3 of optimal; typically
  /// at or below the round-robin makespan).
  double modeled_seconds_lpt(unsigned lanes = 0) const;

  /// modeled_seconds plus the calibrated ephemeral-thread start/join cost.
  /// Only threads actually spawned are charged — min(lanes, tasks) of
  /// them, and none when there is no parallel phase. This is the knob
  /// behind the paper's Fig. 7 observation that m = 1 configurations peak
  /// at T = 2: with little parallel work, extra threads cost more than
  /// their lanes save.
  double modeled_seconds_with_overhead(unsigned lanes = 0) const;

  /// Measured makespan of the group phase as executed: the heaviest
  /// lane's summed task times under `lane_of`. The quantity the ROADMAP's
  /// success metric compares against critical_path_seconds().
  double placed_makespan_seconds() const;

  /// Counterfactual group-phase makespan had the same measured tasks run
  /// under Algorithm 1's i mod T assignment (0 → threads_used lanes).
  double round_robin_makespan_seconds(unsigned lanes = 0) const;

  /// The analyzer's critical-path bound on the group phase in measured
  /// time: the single heaviest task. No lane count can go below it.
  double critical_path_seconds() const;
};

class PpmDecoder {
 public:
  explicit PpmDecoder(const ErasureCode& code, PpmOptions options = {})
      : code_(&code), options_(options) {}

  /// Recover the scenario's faulty blocks in place; std::nullopt when the
  /// scenario is undecodable.
  std::optional<PpmResult> decode(const FailureScenario& scenario,
                                  std::uint8_t* const* blocks,
                                  std::size_t block_bytes) const;

  /// Encoding = decoding with all parity blocks unknown. For SD codes the
  /// per-row parity groups are independent, so encoding parallelizes the
  /// same way decoding does.
  std::optional<PpmResult> encode(std::uint8_t* const* blocks,
                                  std::size_t block_bytes) const;

  const PpmOptions& options() const { return options_; }

 private:
  const ErasureCode* code_;
  PpmOptions options_;
};

}  // namespace ppm
