#include "decode/partition.h"

#include <algorithm>
#include <map>
#include <set>

#include "matrix/solve.h"

namespace ppm {

Partition make_partition(const Matrix& h, const LogTable& table) {
  Partition out;

  // Bucket rows by signature l_i (t >= 1 only; t = 0 rows are untouched by
  // the failure and carry no work). The faulty set itself comes from the
  // table, NOT from the union of row signatures: a faulty block whose H
  // column is all zero appears in no signature yet must surface as a
  // dependent (and there unrecoverable) block rather than vanish.
  std::map<std::vector<std::size_t>, std::vector<std::size_t>> buckets;
  for (const LogRow& row : table.rows) {
    if (row.t() == 0) continue;
    buckets[row.faulty_cols].push_back(row.row);
  }
  const std::vector<std::size_t>& all_faulty = table.faulty;

  // Accept candidate groups smallest-t first so cheap single-block
  // recoveries are never blocked by a larger overlapping signature.
  std::vector<const std::pair<const std::vector<std::size_t>,
                              std::vector<std::size_t>>*> order;
  order.reserve(buckets.size());
  for (const auto& b : buckets) order.push_back(&b);
  std::stable_sort(order.begin(), order.end(),
                   [](const auto* a, const auto* b) {
                     return a->first.size() < b->first.size();
                   });

  std::set<std::size_t> covered;
  std::set<std::size_t> used_rows;
  for (const auto* bucket : order) {
    const std::vector<std::size_t>& sig = bucket->first;
    const std::vector<std::size_t>& rows = bucket->second;
    const std::size_t f = sig.size();
    if (rows.size() < f) continue;  // not enough matching rows
    bool overlaps = false;
    for (const std::size_t c : sig) overlaps |= covered.contains(c);
    if (overlaps) continue;

    // Pick f bucket rows whose square F_i is invertible; candidates with a
    // rank-deficient bucket are left for H_rest. Lighter rows first: when
    // several equations recover the same blocks (e.g. a Xorbas global
    // parity covered by both its Vandermonde row and the global-local
    // row), the sparse one reads fewer survivors.
    std::vector<std::size_t> rows_by_weight(rows);
    std::stable_sort(rows_by_weight.begin(), rows_by_weight.end(),
                     [&](std::size_t a, std::size_t b) {
                       std::size_t wa = 0;
                       std::size_t wb = 0;
                       for (std::size_t c = 0; c < h.cols(); ++c) {
                         wa += (h(a, c) != 0);
                         wb += (h(b, c) != 0);
                       }
                       return wa < wb;
                     });
    const Matrix fi_all = h.select_rows(rows_by_weight).select_columns(sig);
    const auto sel = independent_rows(fi_all);
    if (!sel.has_value()) continue;
    IndependentGroup grp;
    grp.faulty_cols = sig;
    grp.rows.reserve(f);
    for (const std::size_t idx : *sel) grp.rows.push_back(rows_by_weight[idx]);
    std::sort(grp.rows.begin(), grp.rows.end());

    for (const std::size_t c : sig) covered.insert(c);
    // All bucket rows (including surplus beyond f) are consumed: once the
    // group is recovered the surplus rows are fully satisfied checks.
    for (const std::size_t rr : rows) used_rows.insert(rr);
    out.groups.push_back(std::move(grp));
  }

  for (const std::size_t c : all_faulty) {
    if (!covered.contains(c)) out.rest_faulty.push_back(c);
  }

  // H_rest: unconsumed rows that still constrain a dependent faulty block.
  for (const LogRow& row : table.rows) {
    if (row.t() == 0 || used_rows.contains(row.row)) continue;
    bool touches_rest = false;
    for (const std::size_t c : row.faulty_cols) {
      touches_rest |= std::binary_search(out.rest_faulty.begin(),
                                         out.rest_faulty.end(), c);
    }
    if (touches_rest) out.rest_rows.push_back(row.row);
  }
  return out;
}

}  // namespace ppm
