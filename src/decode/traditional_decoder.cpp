#include "decode/traditional_decoder.h"

#include <numeric>
#include <vector>

#include "common/timer.h"

namespace ppm {

std::optional<TraditionalResult> TraditionalDecoder::decode(
    const FailureScenario& scenario, std::uint8_t* const* blocks,
    std::size_t block_bytes, SequencePolicy policy) const {
  TraditionalResult result;
  if (scenario.empty()) return result;

  const Timer total;
  const Matrix& h = code_->parity_check();
  std::vector<std::size_t> all_rows(h.rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  Sequence seq = Sequence::kNormal;
  switch (policy) {
    case SequencePolicy::kNormal:
      break;
    case SequencePolicy::kMatrixFirst:
      seq = Sequence::kMatrixFirst;
      break;
    case SequencePolicy::kAuto: {
      const auto costs = SubPlan::sequence_costs(h, all_rows,
                                                 scenario.faulty(),
                                                 scenario.faulty());
      if (!costs.has_value()) return std::nullopt;
      seq = costs->second < costs->first ? Sequence::kMatrixFirst
                                         : Sequence::kNormal;
      break;
    }
  }

  const auto plan = SubPlan::make(h, all_rows, scenario.faulty(),
                                  scenario.faulty(), seq);
  if (!plan.has_value()) return std::nullopt;
  result.plan_seconds = total.seconds();

  plan->execute(blocks, block_bytes, &result.stats);
  result.sequence_used = seq;
  result.seconds = total.seconds();
  return result;
}

std::optional<TraditionalResult> TraditionalDecoder::encode(
    std::uint8_t* const* blocks, std::size_t block_bytes,
    SequencePolicy policy) const {
  return decode(FailureScenario::encoding_of(*code_), blocks, block_bytes,
                policy);
}

}  // namespace ppm
