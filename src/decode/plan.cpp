#include "decode/plan.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "matrix/solve.h"

namespace ppm {

namespace {

// Shared front half of planning: restrict h to `rows`, split columns into
// F (unknowns) and S (survivors = nonzero columns not excluded), select an
// invertible row subset and invert. Returns false when unsolvable.
struct Prepared {
  std::vector<std::size_t> survivors;
  std::vector<std::size_t> h_rows;  // selected rows, as indices into h
  Matrix finv;
  Matrix s_used;
};

std::optional<Prepared> prepare(const Matrix& h,
                                std::span<const std::size_t> rows,
                                std::span<const std::size_t> unknowns,
                                std::span<const std::size_t> excluded) {
  const Matrix sub = h.select_rows(rows);

  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < sub.cols(); ++c) {
    if (std::binary_search(excluded.begin(), excluded.end(), c)) continue;
    if (!sub.column_is_zero(c)) survivors.push_back(c);
  }

  const Matrix f_tall = sub.select_columns(unknowns);
  const auto rowsel = independent_rows(f_tall);
  if (!rowsel.has_value()) return std::nullopt;

  const Matrix f_square = f_tall.select_rows(*rowsel);
  auto finv = f_square.inverse();
  if (!finv.has_value()) return std::nullopt;  // unreachable after rowsel

  std::vector<std::size_t> h_rows(rowsel->size());
  for (std::size_t i = 0; i < rowsel->size(); ++i) {
    h_rows[i] = rows[(*rowsel)[i]];
  }

  Matrix s_used = sub.select_columns(survivors).select_rows(*rowsel);
  return Prepared{std::move(survivors), std::move(h_rows), std::move(*finv),
                  std::move(s_used)};
}

}  // namespace

std::optional<SubPlan> SubPlan::make(const Matrix& h,
                                     std::span<const std::size_t> rows,
                                     std::span<const std::size_t> unknowns,
                                     std::span<const std::size_t> excluded,
                                     Sequence seq) {
  auto prep = prepare(h, rows, unknowns, excluded);
  if (!prep.has_value()) return std::nullopt;

  SubPlan plan(h.field(), seq);
  plan.unknowns_.assign(unknowns.begin(), unknowns.end());
  plan.survivors_ = std::move(prep->survivors);
  plan.rows_ = std::move(prep->h_rows);
  if (seq == Sequence::kNormal) {
    plan.cost_ = prep->finv.nonzeros() + prep->s_used.nonzeros();
    plan.finv_ = std::move(prep->finv);
    plan.s_ = std::move(prep->s_used);
  } else {
    plan.finv_ = prep->finv * prep->s_used;  // G
    plan.cost_ = plan.finv_.nonzeros();
  }
  // Distinct survivor blocks actually read: columns of the applied matrix
  // (S for normal, G for matrix-first) with at least one nonzero.
  const Matrix& applied = seq == Sequence::kNormal ? plan.s_ : plan.finv_;
  for (std::size_t c = 0; c < applied.cols(); ++c) {
    plan.source_blocks_ += !applied.column_is_zero(c);
  }
  return plan;
}

std::optional<std::pair<std::size_t, std::size_t>> SubPlan::sequence_costs(
    const Matrix& h, std::span<const std::size_t> rows,
    std::span<const std::size_t> unknowns,
    std::span<const std::size_t> excluded) {
  auto prep = prepare(h, rows, unknowns, excluded);
  if (!prep.has_value()) return std::nullopt;
  const std::size_t normal = prep->finv.nonzeros() + prep->s_used.nonzeros();
  const std::size_t mf = (prep->finv * prep->s_used).nonzeros();
  return std::make_pair(normal, mf);
}

SubPlan SubPlan::from_parts(const gf::Field& f, Sequence seq,
                            std::vector<std::size_t> unknowns,
                            std::vector<std::size_t> survivors,
                            std::vector<std::size_t> check_rows, Matrix finv,
                            Matrix s, std::size_t cost,
                            std::size_t source_blocks) {
  SubPlan plan(f, seq);
  plan.unknowns_ = std::move(unknowns);
  plan.survivors_ = std::move(survivors);
  plan.rows_ = std::move(check_rows);
  plan.finv_ = std::move(finv);
  plan.s_ = std::move(s);
  plan.cost_ = cost;
  plan.source_blocks_ = source_blocks;
  return plan;
}

namespace {

// Region tile for the execution loops. Large blocks are processed in
// tiles so that a survivor tile read for one target row is still cached
// when the next row needs it; without tiling, multi-megabyte blocks evict
// each other between rows and every mult_XOR streams from memory.
constexpr std::size_t kTileBytes = 256 * 1024;

}  // namespace

void SubPlan::execute(std::uint8_t* const* blocks, std::size_t block_bytes,
                      DecodeStats* stats) const {
  const gf::Field& f = finv_.field();
  DecodeStats local;

  // Apply one matrix row to one tile: dst[dst_off..] = Σ_j M(row, j) *
  // src_j[src_off..], using the overwrite kernel for the first term to
  // skip a zeroing pass.
  const auto apply_row = [&](const Matrix& mat, std::size_t row,
                             std::uint8_t* const* srcs, std::size_t src_off,
                             std::uint8_t* dst, std::size_t dst_off,
                             std::size_t len) {
    bool first = true;
    for (std::size_t j = 0; j < mat.cols(); ++j) {
      const gf::Element c = mat(row, j);
      if (c == 0) continue;
      if (first) {
        f.mult_region(dst + dst_off, srcs[j] + src_off, c, len);
        first = false;
      } else {
        f.mult_region_xor(dst + dst_off, srcs[j] + src_off, c, len);
      }
    }
    if (first) std::memset(dst + dst_off, 0, len);  // all-zero matrix row
  };

  // Gather survivor region pointers in column order.
  std::vector<std::uint8_t*> surv(survivors_.size());
  for (std::size_t j = 0; j < survivors_.size(); ++j) {
    surv[j] = blocks[survivors_[j]];
  }

  // Tile size: a multiple of the symbol size (kTileBytes already is, for
  // every supported width).
  static_assert(kTileBytes % 4 == 0);

  if (seq_ == Sequence::kMatrixFirst) {
    // BF = G · BS directly into the unknown blocks.
    for (std::size_t off = 0; off < block_bytes; off += kTileBytes) {
      const std::size_t len = std::min(kTileBytes, block_bytes - off);
      for (std::size_t i = 0; i < unknowns_.size(); ++i) {
        apply_row(finv_, i, surv.data(), off, blocks[unknowns_[i]], off,
                  len);
      }
    }
    local.mult_xors = finv_.nonzeros();
  } else {
    // tmp = S · BS into scratch, then BF = F⁻¹ · tmp, per tile. The
    // scratch covers one tile per unknown (reused across tiles) and needs
    // no zero-fill: apply_row's first term uses the overwrite kernel.
    const std::size_t n = unknowns_.size();
    const std::size_t tile = std::min(kTileBytes, block_bytes);
    AlignedBuffer scratch = AlignedBuffer::uninitialized(n * tile);
    std::vector<std::uint8_t*> tmp(n);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = scratch.data() + i * tile;
    }
    for (std::size_t off = 0; off < block_bytes; off += kTileBytes) {
      const std::size_t len = std::min(kTileBytes, block_bytes - off);
      for (std::size_t i = 0; i < n; ++i) {
        apply_row(s_, i, surv.data(), off, tmp[i], 0, len);
      }
      for (std::size_t i = 0; i < n; ++i) {
        apply_row(finv_, i, tmp.data(), 0, blocks[unknowns_[i]], off, len);
      }
    }
    local.mult_xors = finv_.nonzeros() + s_.nonzeros();
  }
  local.bytes_touched = local.mult_xors * block_bytes;

  if (stats != nullptr) {
    stats->mult_xors += local.mult_xors;
    stats->bytes_touched += local.bytes_touched;
    stats->blocks_read += source_blocks_;
  }
}

}  // namespace ppm
