// XOR scheduling with incremental (difference-based) targets.
//
// For binary decoding matrices — CRS bit matrices, EVENODD/RDP, any
// XOR-only code — the naive schedule issues one XOR per nonzero of G. A
// classic optimization (the bit-matrix scheduling family the paper's
// related work touches via [41]) computes some targets *incrementally*:
// if row j of G differs from an already-computed row i in d positions and
// d + 1 < |row j|, then target j = target i ⊕ (the d differing sources),
// saving |row j| − d − 1 operations. This planner greedily picks, for each
// target, the best previously-computed base row (or none).
//
// The schedule is exact for any matrix over GF(2^w) whose entries are 0/1;
// plan_xor_schedule() rejects non-binary matrices.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "matrix/matrix.h"

namespace ppm {

struct XorOp {
  bool from_output = false;  ///< source is a previously computed register
  std::size_t source = 0;    ///< survivor column index, or register index
  std::size_t target = 0;    ///< output register index
  bool overwrite = false;    ///< first op on the register (copy, not XOR)
};

/// A schedule writes `rows + temps` *registers*: registers [0, rows) are
/// the real target rows of the matrix, registers [rows, rows + temps) are
/// scratch temporaries the optimizer (optimize_xor/) materializes for
/// subexpressions shared across target rows. `from_output` sources index
/// the combined register space. The greedy planner never emits
/// temporaries (temps == 0); every consumer of a schedule with temps must
/// size its register file as rows + temps (the executors below allocate
/// the scratch regions themselves).
struct XorSchedule {
  std::vector<XorOp> ops;
  std::size_t naive_ops = 0;  ///< u(G): nonzero count of the matrix
  std::size_t temps = 0;      ///< scratch registers beyond the target rows

  std::size_t cost() const { return ops.size(); }
  /// Fractional saving against the naive one-XOR-per-nonzero execution of
  /// the ORIGINAL matrix — optimizer rewrites keep naive_ops pinned to
  /// u(G), so savings always compare to the paper's cost-model floor, not
  /// to whatever schedule the rewrite started from.
  double saving() const {
    return naive_ops == 0
               ? 0.0
               : 1.0 - static_cast<double>(cost()) /
                           static_cast<double>(naive_ops);
  }
};

/// Build an incremental XOR schedule for binary matrix `g` (targets =
/// rows, sources = columns). std::nullopt if any entry exceeds 1.
std::optional<XorSchedule> plan_xor_schedule(const Matrix& g);

/// First/last op index touching one target row — the op-stream span of
/// that target's execution unit. `kNoOp` marks a row with no ops. The
/// hazard analyzer (analyze_hazard/) treats each target's span as one
/// schedulable unit: disjoint spans whose from_output edges respect span
/// order can run concurrently.
inline constexpr std::size_t kNoOp = static_cast<std::size_t>(-1);
struct TargetSpan {
  std::size_t first_op = kNoOp;
  std::size_t last_op = kNoOp;
};

/// Per-target op spans of `schedule` over a `rows`-register system (pass
/// rows + schedule.temps to span the full register file). An op with an
/// out-of-range target is a malformed schedule: it cannot belong to any
/// unit, so it is excluded from the spans and its op index is appended to
/// `out_of_range` when given — callers in the verification path
/// (hazard::analyze_schedule) report each one as a
/// `xor_index_out_of_bounds` Violation rather than letting it vanish.
///
/// `fragmented`, when given, collects every register whose span is not
/// contiguous — some op inside [first_op, last_op] writes a *different*
/// register. A fragmented span is not a unit: treating it as one would
/// let the span silently cover foreign ops, so the hazard analyzer
/// reports each entry as a structured `xor_target_span_fragmented`
/// violation instead of certifying a wrong span.
std::vector<TargetSpan> target_spans(
    const XorSchedule& schedule, std::size_t rows,
    std::vector<std::size_t>* out_of_range = nullptr,
    std::vector<std::size_t>* fragmented = nullptr);

/// Execute: `targets[r]` = XOR of sources per schedule; `sources[c]` are
/// the survivor regions. Regions are `bytes` long. Valid only for
/// schedules without temporaries (the planner's output); a schedule with
/// temps needs the register-file-aware overload below.
void execute_xor_schedule(const XorSchedule& schedule,
                          std::uint8_t* const* sources,
                          std::uint8_t* const* targets, std::size_t bytes);

/// Temps-aware serial execution over a `rows`-target system: allocates
/// `schedule.temps` aligned scratch regions for the temporary registers
/// and runs the op stream over the combined register file. Identical to
/// the 4-argument overload when temps == 0.
void execute_xor_schedule(const XorSchedule& schedule, std::size_t rows,
                          std::uint8_t* const* sources,
                          std::uint8_t* const* targets, std::size_t bytes);

/// What execute_xor_schedule_parallel actually did.
struct ParallelXorReport {
  bool parallel = false;  ///< false = serial fallback ran (output identical)
  unsigned workers = 0;   ///< worker threads used on the parallel path
  std::size_t units = 0;      ///< target units dispatched
  std::size_t max_width = 0;  ///< peak concurrently-dispatchable units
};

/// Unit-parallel execution of `schedule` over a `rows`-target system:
/// each register's op subsequence is one unit (temporaries get their own
/// scratch-backed units), dispatched the moment every
/// register it reads via from_output is finalized (completion signaling,
/// not level barriers), on up to `threads` workers. Output is
/// byte-identical to execute_xor_schedule for any schedule this function
/// accepts, because ops within a unit keep their stream order and
/// cross-unit reads only see finalized targets.
///
/// Serial fallback (report.parallel == false, semantics unchanged) when
/// the schedule has no exploitable width or is not provably safe to
/// unit-parallelize: threads < 2, fewer than two units, peak width < 2, a
/// target or from_output source out of range, a from_output
/// self-reference, or a from_output source whose span is not finalized
/// before the consuming unit's first op (the analyzer's
/// `unordered_from_output_use`).
ParallelXorReport execute_xor_schedule_parallel(
    const XorSchedule& schedule, std::size_t rows,
    std::uint8_t* const* sources, std::uint8_t* const* targets,
    std::size_t bytes, unsigned threads);

}  // namespace ppm
