// The traditional parity-check decoder (paper §II-B): the serial,
// whole-matrix baseline that PPM is measured against. It treats all faulty
// blocks as a unit: F ← faulty columns of H, S ← the rest, BF = F⁻¹·S·BS.
#pragma once

#include <cstdint>
#include <optional>

#include "codes/erasure_code.h"
#include "decode/plan.h"
#include "decode/scenario.h"

namespace ppm {

/// How a decoder picks between the two calculation sequences.
enum class SequencePolicy {
  kNormal,       ///< always F⁻¹·(S·BS) — what the open-source SD decoder does
  kMatrixFirst,  ///< always (F⁻¹·S)·BS — the generator-matrix method
  kAuto,         ///< pick the cheaper by exact mult_XOR count
};

struct TraditionalResult {
  DecodeStats stats;
  Sequence sequence_used = Sequence::kNormal;
  double seconds = 0;       ///< full decode wall time (planning + regions)
  double plan_seconds = 0;  ///< matrix work: F/S split, inversion, products
};

class TraditionalDecoder {
 public:
  explicit TraditionalDecoder(const ErasureCode& code) : code_(&code) {}

  /// Recover the scenario's faulty blocks in place. `blocks[id]` addresses
  /// block id's region of `block_bytes` bytes. Returns std::nullopt when
  /// the scenario is undecodable (faulty regions are then untouched).
  std::optional<TraditionalResult> decode(
      const FailureScenario& scenario, std::uint8_t* const* blocks,
      std::size_t block_bytes, SequencePolicy policy = SequencePolicy::kNormal)
      const;

  /// Encoding = decoding with all parity blocks unknown (§II-B).
  std::optional<TraditionalResult> encode(
      std::uint8_t* const* blocks, std::size_t block_bytes,
      SequencePolicy policy = SequencePolicy::kNormal) const;

 private:
  const ErasureCode* code_;
};

}  // namespace ppm
