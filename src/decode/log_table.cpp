#include "decode/log_table.h"

namespace ppm {

LogTable LogTable::build(const Matrix& h,
                         std::span<const std::size_t> faulty) {
  LogTable table;
  table.faulty.assign(faulty.begin(), faulty.end());
  table.rows.reserve(h.rows());
  for (std::size_t i = 0; i < h.rows(); ++i) {
    LogRow row;
    row.row = i;
    for (const std::size_t col : faulty) {
      if (h(i, col) != 0) row.faulty_cols.push_back(col);
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace ppm
