// Independence exploitation and matrix partitioning (paper §III-A).
//
// From the log table, rows with identical faulty-column signatures l_i of
// size t_i = f are grouped; a group of f such rows forms an *independent
// sub-matrix* that recovers exactly its f faulty blocks from surviving
// blocks only. Everything else becomes the remaining sub-matrix H_rest,
// solved after the groups with the recovered blocks acting as survivors.
//
// Deviations from the paper's sketch, made explicit here because they
// matter for correctness:
//  * groups are accepted smallest-t first and must be disjoint from blocks
//    already covered by an accepted group (overlapping candidates would
//    recover a block twice — wasted work at best);
//  * a candidate group whose square F_i is singular is demoted to H_rest
//    (the paper implicitly assumes invertibility);
//  * signature groups with more than f rows contribute f rows to the
//    independent sub-matrix; surplus rows are redundant once the group is
//    recovered and are dropped;
//  * rows of H_rest that touch no *dependent* faulty block carry no
//    information for the remaining solve and are dropped as well.
#pragma once

#include <cstddef>
#include <vector>

#include "decode/log_table.h"
#include "matrix/matrix.h"

namespace ppm {

struct IndependentGroup {
  std::vector<std::size_t> rows;         ///< rows of H (size f)
  std::vector<std::size_t> faulty_cols;  ///< blocks recovered (size f, sorted)
};

struct Partition {
  std::vector<IndependentGroup> groups;  ///< the p independent sub-matrices
  std::vector<std::size_t> rest_rows;    ///< rows of H_rest
  std::vector<std::size_t> rest_faulty;  ///< dependent faulty blocks (sorted)

  std::size_t p() const { return groups.size(); }
  bool rest_empty() const { return rest_faulty.empty(); }
};

/// Partition `h` for the faulty set described by `table` (built from the
/// same `h`). Always succeeds; whether the resulting systems are solvable
/// is decided when planning.
Partition make_partition(const Matrix& h, const LogTable& table);

}  // namespace ppm
