#include "decode/block_parallel_decoder.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "common/cpu.h"
#include "common/timer.h"
#include "decode/plan.h"

namespace ppm {

double BlockParallelResult::modeled_seconds() const {
  double makespan = 0;
  for (const double t : slice_seconds) makespan = std::max(makespan, t);
  return plan_seconds + makespan;
}

std::optional<BlockParallelResult> BlockParallelDecoder::decode(
    const FailureScenario& scenario, std::uint8_t* const* blocks,
    std::size_t block_bytes) const {
  BlockParallelResult result;
  if (scenario.empty()) return result;

  const Timer total;
  const Matrix& h = code_->parity_check();
  std::vector<std::size_t> all_rows(h.rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  Sequence seq = Sequence::kMatrixFirst;
  if (policy_ != SequencePolicy::kMatrixFirst) {
    const auto costs = SubPlan::sequence_costs(h, all_rows, scenario.faulty(),
                                               scenario.faulty());
    if (!costs.has_value()) return std::nullopt;
    if (policy_ == SequencePolicy::kNormal ||
        (policy_ == SequencePolicy::kAuto && costs->first <= costs->second)) {
      seq = Sequence::kNormal;
    }
  }
  const auto plan = SubPlan::make(h, all_rows, scenario.faulty(),
                                  scenario.faulty(), seq);
  if (!plan.has_value()) return std::nullopt;
  result.sequence_used = seq;
  result.plan_seconds = total.seconds();

  // Slice the block range into T symbol-aligned contiguous chunks.
  unsigned t = threads_ != 0 ? threads_ : std::min(4u, hardware_threads());
  const unsigned sym = code_->field().symbol_bytes();
  const std::size_t symbols = block_bytes / sym;
  t = std::max(1u, std::min<unsigned>(t, static_cast<unsigned>(symbols)));
  result.slices = t;

  struct Slice {
    std::size_t offset;
    std::size_t len;
    std::vector<std::uint8_t*> view;
  };
  std::vector<Slice> slices(t);
  const std::size_t per = symbols / t;
  const std::size_t extra = symbols % t;
  std::size_t offset = 0;
  for (unsigned i = 0; i < t; ++i) {
    const std::size_t len = (per + (i < extra ? 1 : 0)) * sym;
    slices[i].offset = offset;
    slices[i].len = len;
    slices[i].view.resize(code_->total_blocks());
    for (std::size_t b = 0; b < code_->total_blocks(); ++b) {
      slices[i].view[b] = blocks[b] + offset;
    }
    offset += len;
  }

  result.slice_seconds.assign(t, 0.0);
  const auto run_slice = [&](unsigned i) {
    if (slices[i].len == 0) return;
    const Timer st;
    plan->execute(slices[i].view.data(), slices[i].len, nullptr);
    result.slice_seconds[i] = st.seconds();
  };
  if (t == 1 || sequential_) {
    for (unsigned i = 0; i < t; ++i) run_slice(i);
  } else {
    std::vector<std::jthread> workers;
    workers.reserve(t);
    for (unsigned i = 0; i < t; ++i) {
      workers.emplace_back([&, i] { run_slice(i); });
    }
    workers.clear();  // join
  }

  // The paper's C counts whole-block region operations; slicing does not
  // change the amount of data touched, so stats reflect one full pass.
  result.stats.mult_xors = plan->cost();
  result.stats.bytes_touched = plan->cost() * block_bytes;
  result.stats.blocks_read = plan->source_blocks();
  result.seconds = total.seconds();
  return result;
}

}  // namespace ppm
