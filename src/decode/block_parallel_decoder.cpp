#include "decode/block_parallel_decoder.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "common/cpu.h"
#include "common/timer.h"
#include "decode/plan.h"

#ifdef PPM_VERIFY_PLANS
#include <stdexcept>

#include "analyze_hazard/hazard.h"
#include "verify_plan/violation.h"
#endif

namespace ppm {

std::vector<SliceRange> plan_slices(std::size_t block_bytes,
                                    unsigned symbol_bytes, unsigned threads) {
  std::vector<SliceRange> slices;
  const std::size_t symbols = block_bytes / symbol_bytes;
  const std::size_t t =
      std::max<std::size_t>(1, std::min<std::size_t>(threads, symbols));
  const std::size_t per = symbols / t;
  const std::size_t extra = symbols % t;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < t; ++i) {
    const std::size_t len = (per + (i < extra ? 1 : 0)) * symbol_bytes;
    if (len == 0) continue;  // fewer symbols than slices: drop empty tails
    slices.push_back(SliceRange{offset, len});
    offset += len;
  }
  return slices;
}

double BlockParallelResult::modeled_seconds() const {
  double makespan = 0;
  for (const double t : slice_seconds) makespan = std::max(makespan, t);
  return plan_seconds + makespan;
}

std::optional<BlockParallelResult> BlockParallelDecoder::decode(
    const FailureScenario& scenario, std::uint8_t* const* blocks,
    std::size_t block_bytes) const {
  BlockParallelResult result;
  if (scenario.empty()) return result;

  const Timer total;
  const Matrix& h = code_->parity_check();
  std::vector<std::size_t> all_rows(h.rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);

  Sequence seq = Sequence::kMatrixFirst;
  if (policy_ != SequencePolicy::kMatrixFirst) {
    const auto costs = SubPlan::sequence_costs(h, all_rows, scenario.faulty(),
                                               scenario.faulty());
    if (!costs.has_value()) return std::nullopt;
    if (policy_ == SequencePolicy::kNormal ||
        (policy_ == SequencePolicy::kAuto && costs->first <= costs->second)) {
      seq = Sequence::kNormal;
    }
  }
  const auto plan = SubPlan::make(h, all_rows, scenario.faulty(),
                                  scenario.faulty(), seq);
  if (!plan.has_value()) return std::nullopt;
  result.sequence_used = seq;
  result.plan_seconds = total.seconds();

  // Slice the block range into T symbol-aligned contiguous chunks.
  const unsigned t =
      threads_ != 0 ? threads_ : std::min(4u, hardware_threads());
  const unsigned sym = code_->field().symbol_bytes();
  const std::vector<SliceRange> ranges = plan_slices(block_bytes, sym, t);
#ifdef PPM_VERIFY_PLANS
  // Statically prove the slice fan-out race-free before spawning it: the
  // ranges must be symbol-aligned, disjoint and tile [0, block_bytes)
  // exactly once for every interleaving to be safe.
  {
    const auto verdict = hazard::analyze_slices(*plan, ranges, block_bytes,
                                                sym);
    if (!verdict.ok()) {
      throw std::logic_error("PPM_VERIFY_PLANS: slice fan-out rejected: " +
                             planverify::to_json(verdict.violations));
    }
  }
#endif
  result.slices = static_cast<unsigned>(std::max<std::size_t>(
      1, ranges.size()));

  std::vector<std::vector<std::uint8_t*>> views(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    views[i].resize(code_->total_blocks());
    for (std::size_t b = 0; b < code_->total_blocks(); ++b) {
      views[i][b] = blocks[b] + ranges[i].offset;
    }
  }

  result.slice_seconds.assign(result.slices, 0.0);
  const auto run_slice = [&](std::size_t i) {
    const Timer st;
    plan->execute(views[i].data(), ranges[i].bytes, nullptr);
    result.slice_seconds[i] = st.seconds();
  };
  if (ranges.size() <= 1 || sequential_) {
    for (std::size_t i = 0; i < ranges.size(); ++i) run_slice(i);
  } else {
    std::vector<std::jthread> workers;
    workers.reserve(ranges.size());
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      workers.emplace_back([&, i] { run_slice(i); });
    }
    workers.clear();  // join
  }

  // The paper's C counts whole-block region operations; slicing does not
  // change the amount of data touched, so stats reflect one full pass.
  result.stats.mult_xors = plan->cost();
  result.stats.bytes_touched = plan->cost() * block_bytes;
  result.stats.blocks_read = plan->source_blocks();
  result.seconds = total.seconds();
  return result;
}

}  // namespace ppm
