// Failure scenarios: which blocks of a stripe are lost.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace ppm {

class ErasureCode;

/// A set of faulty block ids within one stripe, kept sorted and unique.
class FailureScenario {
 public:
  FailureScenario() = default;
  explicit FailureScenario(std::vector<std::size_t> faulty);
  FailureScenario(std::initializer_list<std::size_t> faulty);

  std::span<const std::size_t> faulty() const { return faulty_; }
  std::size_t count() const { return faulty_.size(); }
  bool empty() const { return faulty_.empty(); }
  bool contains(std::size_t block) const;

  /// Index of `block` within the sorted faulty list; precondition:
  /// contains(block).
  std::size_t index_of(std::size_t block) const;

  /// The encoding "scenario": all parity blocks unknown (paper §II-B:
  /// encoding is a special case of decoding).
  static FailureScenario encoding_of(const ErasureCode& code);

  bool operator==(const FailureScenario&) const = default;

 private:
  std::vector<std::size_t> faulty_;
};

}  // namespace ppm
