#include "decode/ppm_decoder.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "analyze_hazard/hazard.h"
#include "common/cpu.h"
#include "common/timer.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "parallel/task_group.h"

#ifdef PPM_VERIFY_PLANS
#include <stdexcept>

#include "verify_plan/violation.h"
#endif

namespace ppm {

double PpmResult::modeled_seconds_lpt(unsigned lanes) const {
  if (lanes == 0) lanes = threads_used;
  if (lanes == 0) lanes = 1;
  std::vector<double> sorted(task_seconds);
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::vector<double> lane(lanes, 0.0);
  for (const double t : sorted) {
    *std::min_element(lane.begin(), lane.end()) += t;
  }
  const double makespan =
      lane.empty() ? 0.0 : *std::max_element(lane.begin(), lane.end());
  return plan_seconds + makespan + rest_seconds;
}

double PpmResult::modeled_seconds_with_overhead(unsigned lanes) const {
  if (lanes == 0) lanes = threads_used;
  double overhead = 0;
  if (task_seconds.size() > 1 && lanes > 1) {
    // Only spawned threads cost a start/join: the executor never spawns
    // more lanes than it has tasks to place on them.
    const auto spawned = std::min<std::size_t>(lanes, task_seconds.size());
    overhead =
        static_cast<double>(spawned) * ThreadPool::thread_spawn_seconds();
  }
  return modeled_seconds(lanes) + overhead;
}

double PpmResult::placed_makespan_seconds() const {
  std::vector<double> lane;
  for (std::size_t i = 0;
       i < task_seconds.size() && i < lane_of.size(); ++i) {
    if (lane_of[i] >= lane.size()) lane.resize(lane_of[i] + 1, 0.0);
    lane[lane_of[i]] += task_seconds[i];
  }
  return lane.empty() ? 0.0 : *std::max_element(lane.begin(), lane.end());
}

double PpmResult::round_robin_makespan_seconds(unsigned lanes) const {
  if (lanes == 0) lanes = threads_used;
  if (lanes == 0) lanes = 1;
  std::vector<double> lane(lanes, 0.0);
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    lane[i % lanes] += task_seconds[i];
  }
  return task_seconds.empty()
             ? 0.0
             : *std::max_element(lane.begin(), lane.end());
}

double PpmResult::critical_path_seconds() const {
  return task_seconds.empty()
             ? 0.0
             : *std::max_element(task_seconds.begin(), task_seconds.end());
}

double PpmResult::modeled_seconds(unsigned lanes) const {
  if (lanes == 0) lanes = threads_used;
  if (lanes == 0) lanes = 1;
  // Round-robin schedule, Algorithm 1's baseline assignment (task i on
  // thread i mod T); the executor itself now places by LPT — see
  // modeled_seconds_lpt. Makespan = the slowest lane.
  std::vector<double> lane(lanes, 0.0);
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    lane[i % lanes] += task_seconds[i];
  }
  const double makespan =
      lane.empty() ? 0.0 : *std::max_element(lane.begin(), lane.end());
  return plan_seconds + makespan + rest_seconds;
}

std::optional<PpmResult> PpmDecoder::decode(const FailureScenario& scenario,
                                            std::uint8_t* const* blocks,
                                            std::size_t block_bytes) const {
  PpmResult result;
  if (scenario.empty()) return result;

  const Timer total;
  const Matrix& h = code_->parity_check();

  // Step 2: log table + partition.
  const LogTable table = LogTable::build(h, scenario.faulty());
  const Partition part = make_partition(h, table);
  result.p = part.p();
  result.dependent_blocks = part.rest_faulty.size();

  // Step 3 planning: one matrix-first plan per independent sub-matrix.
  std::vector<SubPlan> group_plans;
  group_plans.reserve(part.p());
  for (const IndependentGroup& g : part.groups) {
    auto plan = SubPlan::make(h, g.rows, g.faulty_cols, scenario.faulty(),
                              Sequence::kMatrixFirst);
    if (!plan.has_value()) return std::nullopt;  // unreachable: F_i checked
    group_plans.push_back(std::move(*plan));
  }

  // Step 4 planning: the remaining sub-matrix, recovered blocks counted as
  // survivors. Sequence per options (Auto = the C3-vs-C4 comparison).
  std::optional<SubPlan> rest_plan;
  if (!part.rest_empty()) {
    Sequence seq = Sequence::kNormal;
    switch (options_.rest_policy) {
      case SequencePolicy::kNormal:
        break;
      case SequencePolicy::kMatrixFirst:
        seq = Sequence::kMatrixFirst;
        break;
      case SequencePolicy::kAuto: {
        const auto costs = SubPlan::sequence_costs(
            h, part.rest_rows, part.rest_faulty, part.rest_faulty);
        if (!costs.has_value()) return std::nullopt;
        seq = costs->second < costs->first ? Sequence::kMatrixFirst
                                           : Sequence::kNormal;
        break;
      }
    }
    rest_plan = SubPlan::make(h, part.rest_rows, part.rest_faulty,
                              part.rest_faulty, seq);
    if (!rest_plan.has_value()) return std::nullopt;  // undecodable
    result.rest_sequence = seq;
  }
  result.plan_seconds = total.seconds();

#ifdef PPM_VERIFY_PLANS
  // Statically prove the group fan-out race-free before spawning it: the
  // groups run concurrently below, and a write/write or read/write
  // overlap between them would corrupt blocks under *some* interleaving
  // even if this run happens not to hit it.
  {
    const auto analysis = hazard::analyze(hazard::graph_of_subplans(
        group_plans, rest_plan.has_value() ? &*rest_plan : nullptr));
    if (!analysis.ok()) {
      throw std::logic_error("PPM_VERIFY_PLANS: concurrency hazard: " +
                             planverify::to_json(analysis.violations));
    }
  }
#endif

  // Effective thread count: the paper's T <= min(4, cores), further capped
  // at the group count — spawning a lane with nothing placed on it would
  // pay start/join cost for an idle worker.
  unsigned t = options_.threads != 0
                   ? options_.threads
                   : std::min(4u, hardware_threads());
  t = std::min<unsigned>(std::max(1u, t),
                         static_cast<unsigned>(std::max<std::size_t>(
                             1, group_plans.size())));

  // Hazard-DAG-guided placement: the groups are the DAG's root units and
  // mutually unordered, so any lane assignment is sound; LPT over the
  // analyzer's work estimates (SubPlan cost = the unit weight
  // graph_of_subplans carries) puts the heaviest group first on the
  // least-loaded lane, replacing Algorithm 1's static i mod T.
  const bool serial_groups = t <= 1 || group_plans.size() <= 1;
  std::vector<std::size_t> group_work(group_plans.size());
  for (std::size_t i = 0; i < group_plans.size(); ++i) {
    group_work[i] = group_plans[i].cost();
  }
  const hazard::Placement placement =
      hazard::place_lpt(group_work, serial_groups ? 1 : t);
  result.lane_of = placement.lane_of;
  unsigned lanes_used = 0;
  for (const auto& lane : placement.lane_units) {
    if (!lane.empty()) ++lanes_used;
  }
  result.threads_used = std::max(1u, lanes_used);

  // Step 3 execution: decode the independent sub-matrices in parallel,
  // one worker per populated lane.
  const Timer par_phase;
  result.task_seconds.assign(group_plans.size(), 0.0);
  std::vector<DecodeStats> task_stats(group_plans.size());
  const auto run_task = [&](std::size_t i) {
    const Timer tt;
    group_plans[i].execute(blocks, block_bytes, &task_stats[i]);
    result.task_seconds[i] = tt.seconds();
  };
  const auto run_lane = [&](const std::vector<std::size_t>& units) {
    for (const std::size_t i : units) run_task(i);
  };
  if (serial_groups) {
    for (std::size_t i = 0; i < group_plans.size(); ++i) run_task(i);
  } else if (options_.pool != nullptr) {
    TaskGroup group(*options_.pool);
    for (const auto& lane : placement.lane_units) {
      if (lane.empty()) continue;
      group.add([&run_lane, &lane] { run_lane(lane); });
    }
    group.wait();
  } else {
    // Paper-faithful ephemeral threads, one per populated lane.
    std::vector<std::jthread> workers;
    workers.reserve(lanes_used);
    for (const auto& lane : placement.lane_units) {
      if (lane.empty()) continue;
      workers.emplace_back([&run_lane, &lane] { run_lane(lane); });
    }
    workers.clear();  // join
  }
  result.parallel_seconds = par_phase.seconds();
  for (const DecodeStats& st : task_stats) {
    result.stats.mult_xors += st.mult_xors;
    result.stats.bytes_touched += st.bytes_touched;
    result.stats.blocks_read += st.blocks_read;
  }

  // Step 4 execution: the remaining sub-matrix, now that the independent
  // faulty blocks hold recovered data.
  const Timer rest_phase;
  if (rest_plan.has_value()) {
    rest_plan->execute(blocks, block_bytes, &result.stats);
  }
  result.rest_seconds = rest_phase.seconds();
  result.seconds = total.seconds();
  if (options_.metrics != nullptr) {
    options_.metrics->decodes.add();
    options_.metrics->stripes_decoded.add();
    options_.metrics->mult_xors.add(result.stats.mult_xors);
    options_.metrics->bytes_touched.add(result.stats.bytes_touched);
    options_.metrics->decode_seconds.record_seconds(result.seconds);
    options_.metrics->plan_seconds.record_seconds(result.plan_seconds);
  }
  return result;
}

std::optional<PpmResult> PpmDecoder::encode(std::uint8_t* const* blocks,
                                            std::size_t block_bytes) const {
  return decode(FailureScenario::encoding_of(*code_), blocks, block_bytes);
}

}  // namespace ppm
