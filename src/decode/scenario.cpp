#include "decode/scenario.h"

#include <algorithm>

#include "codes/erasure_code.h"

namespace ppm {

namespace {

std::vector<std::size_t> normalized(std::vector<std::size_t> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

}  // namespace

FailureScenario::FailureScenario(std::vector<std::size_t> faulty)
    : faulty_(normalized(std::move(faulty))) {}

FailureScenario::FailureScenario(std::initializer_list<std::size_t> faulty)
    : FailureScenario(std::vector<std::size_t>(faulty)) {}

bool FailureScenario::contains(std::size_t block) const {
  return std::binary_search(faulty_.begin(), faulty_.end(), block);
}

std::size_t FailureScenario::index_of(std::size_t block) const {
  return static_cast<std::size_t>(
      std::lower_bound(faulty_.begin(), faulty_.end(), block) -
      faulty_.begin());
}

FailureScenario FailureScenario::encoding_of(const ErasureCode& code) {
  const auto parity = code.parity_blocks();
  return FailureScenario({parity.begin(), parity.end()});
}

}  // namespace ppm
