#include "decode/xor_schedule.h"

#include <algorithm>
#include <cstring>

#include "gf/galois_field.h"

namespace ppm {

namespace {

// Row of a binary matrix as a bitset over columns.
using BitRow = std::vector<std::uint64_t>;

BitRow row_bits(const Matrix& g, std::size_t row) {
  BitRow bits((g.cols() + 63) / 64, 0);
  for (std::size_t c = 0; c < g.cols(); ++c) {
    if (g(row, c) != 0) bits[c / 64] |= std::uint64_t{1} << (c % 64);
  }
  return bits;
}

std::size_t popcount(const BitRow& bits) {
  std::size_t n = 0;
  for (const std::uint64_t w : bits) n += static_cast<std::size_t>(
      __builtin_popcountll(w));
  return n;
}

std::size_t diff_count(const BitRow& a, const BitRow& b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    n += static_cast<std::size_t>(__builtin_popcountll(a[i] ^ b[i]));
  }
  return n;
}

}  // namespace

std::optional<XorSchedule> plan_xor_schedule(const Matrix& g) {
  for (const gf::Element v : g.data()) {
    if (v > 1) return std::nullopt;  // not a binary system
  }
  const std::size_t rows = g.rows();

  std::vector<BitRow> bits;
  bits.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) bits.push_back(row_bits(g, r));

  XorSchedule schedule;
  for (std::size_t r = 0; r < rows; ++r) schedule.naive_ops += popcount(bits[r]);

  // Greedy target order: lightest rows first, so heavy rows have more
  // potential bases available when their turn comes.
  std::vector<std::size_t> order(rows);
  for (std::size_t r = 0; r < rows; ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return popcount(bits[a]) < popcount(bits[b]);
  });

  std::vector<std::size_t> computed;  // rows already emitted, in order
  for (const std::size_t target : order) {
    const std::size_t direct = popcount(bits[target]);
    // Best base: previously computed row minimizing the difference.
    std::optional<std::size_t> base;
    std::size_t best = direct;  // cost without a base: `direct` ops
    for (const std::size_t prior : computed) {
      const std::size_t d = diff_count(bits[target], bits[prior]);
      if (d + 1 < best) {  // copy base + d fix-ups
        best = d + 1;
        base = prior;
      }
    }
    if (base.has_value()) {
      schedule.ops.push_back({true, *base, target, true});
      for (std::size_t c = 0; c < g.cols(); ++c) {
        const bool in_t = g(target, c) != 0;
        const bool in_b = g(*base, c) != 0;
        if (in_t != in_b) schedule.ops.push_back({false, c, target, false});
      }
    } else {
      bool first = true;
      for (std::size_t c = 0; c < g.cols(); ++c) {
        if (g(target, c) != 0) {
          schedule.ops.push_back({false, c, target, first});
          first = false;
        }
      }
      if (first) {
        // All-zero row: materialize a zero target with a self-overwrite
        // marker handled by the executor.
        schedule.ops.push_back({false, 0, target, true});
        schedule.ops.push_back({false, 0, target, false});
        schedule.naive_ops += 2;
      }
    }
    computed.push_back(target);
  }
  return schedule;
}

std::vector<TargetSpan> target_spans(const XorSchedule& schedule,
                                     std::size_t rows) {
  std::vector<TargetSpan> spans(rows);
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const std::size_t t = schedule.ops[i].target;
    if (t >= rows) continue;
    if (spans[t].first_op == kNoOp) spans[t].first_op = i;
    spans[t].last_op = i;
  }
  return spans;
}

void execute_xor_schedule(const XorSchedule& schedule,
                          std::uint8_t* const* sources,
                          std::uint8_t* const* targets, std::size_t bytes) {
  for (const XorOp& op : schedule.ops) {
    const std::uint8_t* src =
        op.from_output ? targets[op.source] : sources[op.source];
    if (op.overwrite) {
      std::memcpy(targets[op.target], src, bytes);
    } else {
      gf::xor_region(targets[op.target], src, bytes);
    }
  }
}

}  // namespace ppm
