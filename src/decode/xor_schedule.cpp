#include "decode/xor_schedule.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/aligned_buffer.h"
#include "gf/galois_field.h"
#include "parallel/dag_executor.h"

namespace ppm {

namespace {

// Row of a binary matrix as a bitset over columns.
using BitRow = std::vector<std::uint64_t>;

BitRow row_bits(const Matrix& g, std::size_t row) {
  BitRow bits((g.cols() + 63) / 64, 0);
  for (std::size_t c = 0; c < g.cols(); ++c) {
    if (g(row, c) != 0) bits[c / 64] |= std::uint64_t{1} << (c % 64);
  }
  return bits;
}

std::size_t popcount(const BitRow& bits) {
  std::size_t n = 0;
  for (const std::uint64_t w : bits) n += static_cast<std::size_t>(
      __builtin_popcountll(w));
  return n;
}

std::size_t diff_count(const BitRow& a, const BitRow& b) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    n += static_cast<std::size_t>(__builtin_popcountll(a[i] ^ b[i]));
  }
  return n;
}

}  // namespace

std::optional<XorSchedule> plan_xor_schedule(const Matrix& g) {
  for (const gf::Element v : g.data()) {
    if (v > 1) return std::nullopt;  // not a binary system
  }
  const std::size_t rows = g.rows();

  std::vector<BitRow> bits;
  bits.reserve(rows);
  for (std::size_t r = 0; r < rows; ++r) bits.push_back(row_bits(g, r));

  XorSchedule schedule;
  for (std::size_t r = 0; r < rows; ++r) schedule.naive_ops += popcount(bits[r]);

  // Greedy target order: lightest rows first, so heavy rows have more
  // potential bases available when their turn comes.
  std::vector<std::size_t> order(rows);
  for (std::size_t r = 0; r < rows; ++r) order[r] = r;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return popcount(bits[a]) < popcount(bits[b]);
  });

  std::vector<std::size_t> computed;  // rows already emitted, in order
  for (const std::size_t target : order) {
    const std::size_t direct = popcount(bits[target]);
    // Best base: previously computed row minimizing the difference.
    std::optional<std::size_t> base;
    std::size_t best = direct;  // cost without a base: `direct` ops
    for (const std::size_t prior : computed) {
      const std::size_t d = diff_count(bits[target], bits[prior]);
      if (d + 1 < best) {  // copy base + d fix-ups
        best = d + 1;
        base = prior;
      }
    }
    if (base.has_value()) {
      schedule.ops.push_back({true, *base, target, true});
      for (std::size_t c = 0; c < g.cols(); ++c) {
        const bool in_t = g(target, c) != 0;
        const bool in_b = g(*base, c) != 0;
        if (in_t != in_b) schedule.ops.push_back({false, c, target, false});
      }
    } else {
      bool first = true;
      for (std::size_t c = 0; c < g.cols(); ++c) {
        if (g(target, c) != 0) {
          schedule.ops.push_back({false, c, target, first});
          first = false;
        }
      }
      if (first) {
        // All-zero row: materialize a zero target with a self-overwrite
        // marker handled by the executor. The 2-op fix-up counts toward
        // cost() but NOT naive_ops — naive_ops stays the pure nonzero
        // count u(G) so saving() always measures against the cost-model
        // floor of the matrix itself.
        schedule.ops.push_back({false, 0, target, true});
        schedule.ops.push_back({false, 0, target, false});
      }
    }
    computed.push_back(target);
  }
  return schedule;
}

std::vector<TargetSpan> target_spans(const XorSchedule& schedule,
                                     std::size_t rows,
                                     std::vector<std::size_t>* out_of_range,
                                     std::vector<std::size_t>* fragmented) {
  std::vector<TargetSpan> spans(rows);
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const std::size_t t = schedule.ops[i].target;
    if (t >= rows) {
      if (out_of_range != nullptr) out_of_range->push_back(i);
      continue;
    }
    if (spans[t].first_op == kNoOp) spans[t].first_op = i;
    spans[t].last_op = i;
  }
  if (fragmented != nullptr) {
    // A span is a unit only if every op inside it writes that register;
    // a foreign op inside [first, last] means the "span" covers work it
    // does not own. Registers are few and spans short, so the quadratic
    // scan is fine on the verification path.
    for (std::size_t t = 0; t < rows; ++t) {
      if (spans[t].first_op == kNoOp) continue;
      for (std::size_t i = spans[t].first_op; i <= spans[t].last_op; ++i) {
        if (schedule.ops[i].target != t) {
          fragmented->push_back(t);
          break;
        }
      }
    }
  }
  return spans;
}

void execute_xor_schedule(const XorSchedule& schedule,
                          std::uint8_t* const* sources,
                          std::uint8_t* const* targets, std::size_t bytes) {
  for (const XorOp& op : schedule.ops) {
    const std::uint8_t* src =
        op.from_output ? targets[op.source] : sources[op.source];
    if (op.overwrite) {
      std::memcpy(targets[op.target], src, bytes);
    } else {
      gf::xor_region(targets[op.target], src, bytes);
    }
  }
}

void execute_xor_schedule(const XorSchedule& schedule, std::size_t rows,
                          std::uint8_t* const* sources,
                          std::uint8_t* const* targets, std::size_t bytes) {
  if (schedule.temps == 0) {
    execute_xor_schedule(schedule, sources, targets, bytes);
    return;
  }
  // Extend the register file with scratch regions for the temporaries;
  // their first use is an overwrite, so skip the zero-fill.
  std::vector<AlignedBuffer> scratch;
  scratch.reserve(schedule.temps);
  std::vector<std::uint8_t*> regs(rows + schedule.temps);
  for (std::size_t r = 0; r < rows; ++r) regs[r] = targets[r];
  for (std::size_t t = 0; t < schedule.temps; ++t) {
    scratch.push_back(AlignedBuffer::uninitialized(bytes));
    regs[rows + t] = scratch.back().data();
  }
  execute_xor_schedule(schedule, sources, regs.data(), bytes);
}

ParallelXorReport execute_xor_schedule_parallel(
    const XorSchedule& schedule, std::size_t rows,
    std::uint8_t* const* sources, std::uint8_t* const* targets,
    std::size_t bytes, unsigned threads) {
  ParallelXorReport report;
  const auto serial = [&] {
    execute_xor_schedule(schedule, rows, sources, targets, bytes);
    return report;
  };
  // The register file: target rows plus the optimizer's temporaries, each
  // temp its own schedulable unit over a scratch region.
  const std::size_t regs = rows + schedule.temps;
  if (threads < 2 || regs < 2 || schedule.ops.empty()) return serial();

  // One pass: per-unit op lists (span ranges interleave across registers,
  // so the unit is the *subsequence* of ops with that register, not a
  // contiguous range), spans for the finalized-before-start proof, and the
  // bounds/self-reference screen. Any malformation: hand the schedule to
  // the serial executor unchanged, exactly as callers ran it before.
  std::vector<TargetSpan> spans(regs);
  std::vector<std::vector<std::size_t>> unit_ops(regs);
  for (std::size_t i = 0; i < schedule.ops.size(); ++i) {
    const XorOp& op = schedule.ops[i];
    if (op.target >= regs) return serial();
    if (op.from_output && (op.source >= regs || op.source == op.target)) {
      return serial();
    }
    if (spans[op.target].first_op == kNoOp) spans[op.target].first_op = i;
    spans[op.target].last_op = i;
    unit_ops[op.target].push_back(i);
  }

  // Happens-before edges from the from_output reads; safe to act on only
  // when every producer span finalizes before the consumer's first op
  // (the analyzer's unordered_from_output_use condition). Edges then
  // always point from an earlier first_op to a later one, so the unit
  // graph is acyclic by construction.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (const XorOp& op : schedule.ops) {
    if (!op.from_output) continue;
    if (spans[op.source].first_op == kNoOp ||
        spans[op.source].last_op > spans[op.target].first_op) {
      return serial();
    }
    const auto edge = std::make_pair(op.source, op.target);
    if (std::find(edges.begin(), edges.end(), edge) == edges.end()) {
      edges.push_back(edge);
    }
  }

  // Width profile: with every level single-file there is nothing to
  // overlap and the dispatch machinery is pure overhead. Edges were
  // discovered in increasing consumer-first-op order — a topological
  // order, given the span check above — so one in-order relaxation
  // computes exact levels.
  std::size_t units = 0;
  for (std::size_t t = 0; t < regs; ++t) {
    if (!unit_ops[t].empty()) ++units;
  }
  std::vector<std::size_t> level(regs, 0);
  std::vector<std::size_t> level_count;
  for (const auto& [from, to] : edges) {
    level[to] = std::max(level[to], level[from] + 1);
  }
  for (std::size_t t = 0; t < regs; ++t) {
    if (unit_ops[t].empty()) continue;
    if (level[t] >= level_count.size()) level_count.resize(level[t] + 1, 0);
    ++level_count[level[t]];
  }
  report.units = units;
  for (const std::size_t w : level_count) {
    report.max_width = std::max(report.max_width, w);
  }
  if (units < 2 || report.max_width < 2) return serial();

  // Scratch regions for the temporary registers (uninitialized: their
  // first op is an overwrite, enforced by the span proof above having
  // been planned by a proof-gated optimizer; a malformed eager read would
  // have fallen back to serial via the from_output span check).
  std::vector<AlignedBuffer> scratch;
  std::vector<std::uint8_t*> reg_ptrs(regs);
  for (std::size_t r = 0; r < rows; ++r) reg_ptrs[r] = targets[r];
  scratch.reserve(schedule.temps);
  for (std::size_t t = 0; t < schedule.temps; ++t) {
    scratch.push_back(AlignedBuffer::uninitialized(bytes));
    reg_ptrs[rows + t] = scratch.back().data();
  }

  // Dispatch: each unit runs its ops in stream order; heaviest ready unit
  // first (LPT over the DAG). Empty units complete instantly, releasing
  // any (degenerate) dependents.
  std::vector<std::size_t> weight(regs, 0);
  for (std::size_t t = 0; t < regs; ++t) weight[t] = unit_ops[t].size();
  const auto run_unit = [&](std::size_t t) {
    for (const std::size_t i : unit_ops[t]) {
      const XorOp& op = schedule.ops[i];
      const std::uint8_t* src =
          op.from_output ? reg_ptrs[op.source] : sources[op.source];
      if (op.overwrite) {
        std::memcpy(reg_ptrs[op.target], src, bytes);
      } else {
        gf::xor_region(reg_ptrs[op.target], src, bytes);
      }
    }
  };
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(threads, report.max_width));
  const DagRunReport run = run_unit_dag(regs, edges, workers, run_unit, weight);
  if (!run.ran) return serial();  // unreachable: edges are acyclic
  report.parallel = true;
  report.workers = run.workers_used;
  return report;
}

}  // namespace ppm
