// Matrix-decode planning and execution for one (sub-)system.
//
// Planning turns a set of parity-check rows plus a set of unknown blocks
// into the small matrices of §II-B/§III-B; execution then applies those
// matrices to block regions with mult_XOR. The two calculation sequences of
// the paper are supported:
//
//   * Normal      — tmp = S · BS, then BF = F⁻¹ · tmp
//                   (cost C = u(F⁻¹) + u(S));
//   * MatrixFirst — G = F⁻¹ · S once, then BF = G · BS
//                   (cost C = u(F⁻¹ · S)).
//
// Costs are exact mult_XOR counts and are what the cost model and the
// decoders' Auto policies compare.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "matrix/matrix.h"

namespace ppm {

enum class Sequence {
  kNormal,       ///< F⁻¹ · (S · BS)
  kMatrixFirst,  ///< (F⁻¹ · S) · BS
};

/// Cumulative region-operation statistics for a decode.
struct DecodeStats {
  std::size_t mult_xors = 0;      ///< region ops issued (the paper's C)
  std::size_t bytes_touched = 0;  ///< source bytes read by region ops
  std::size_t blocks_read = 0;    ///< distinct survivor blocks read (I/O)
};

/// A planned recovery of `unknowns` from `survivors`.
class SubPlan {
 public:
  Sequence sequence() const { return seq_; }
  std::span<const std::size_t> unknowns() const { return unknowns_; }
  std::span<const std::size_t> survivors() const { return survivors_; }

  /// Rows of the planning-time parity-check matrix H that back this plan
  /// (the square selection whose restriction to `unknowns` is F). Recorded
  /// so verify_plan/ can re-derive F and S independently of the solver.
  std::span<const std::size_t> check_rows() const { return rows_; }

  /// The left matrix applied at execution time: F⁻¹ (f×f) for kNormal,
  /// G = F⁻¹·S (f×|survivors|) for kMatrixFirst.
  const Matrix& finv() const { return finv_; }

  /// The survivor matrix S (f×|survivors|) for kNormal; empty (0×0) for
  /// kMatrixFirst. Exposed for the plan verifier.
  const Matrix& s() const { return s_; }

  /// Exact mult_XOR count of executing this plan.
  std::size_t cost() const { return cost_; }

  /// Distinct survivor blocks the execution reads (the decode's I/O).
  std::size_t source_blocks() const { return source_blocks_; }

  /// Apply the plan: read survivor blocks, write unknown blocks.
  /// `blocks[id]` is the region of block `id`; all regions have
  /// `block_bytes` bytes. Thread-safe w.r.t. other SubPlans touching
  /// disjoint unknown blocks.
  void execute(std::uint8_t* const* blocks, std::size_t block_bytes,
               DecodeStats* stats = nullptr) const;

  /// Plan recovery of `unknowns` using parity-check rows `rows` of `h`.
  /// Survivor columns are the nonzero columns of those rows minus every
  /// member of `excluded` (the full faulty set — unknowns of *other*
  /// sub-systems must not be read). All-zero columns never enter the plan
  /// (paper §III-A). Returns std::nullopt when the system is unsolvable
  /// (rank(F) < |unknowns|).
  static std::optional<SubPlan> make(const Matrix& h,
                                     std::span<const std::size_t> rows,
                                     std::span<const std::size_t> unknowns,
                                     std::span<const std::size_t> excluded,
                                     Sequence seq);

  /// Cost both sequences would have for this system; used by Auto policies
  /// without planning twice. Returns {normal, matrix_first}.
  static std::optional<std::pair<std::size_t, std::size_t>> sequence_costs(
      const Matrix& h, std::span<const std::size_t> rows,
      std::span<const std::size_t> unknowns,
      std::span<const std::size_t> excluded);

  /// Assemble a SubPlan from explicit parts, bypassing the planner. For
  /// verification tooling and tests only (verify_plan/ needs plans with
  /// deliberately corrupted internals); nothing validates the parts here —
  /// that is the verifier's job.
  static SubPlan from_parts(const gf::Field& f, Sequence seq,
                            std::vector<std::size_t> unknowns,
                            std::vector<std::size_t> survivors,
                            std::vector<std::size_t> check_rows, Matrix finv,
                            Matrix s, std::size_t cost,
                            std::size_t source_blocks);

 private:
  SubPlan(const gf::Field& f, Sequence seq)
      : seq_(seq), finv_(f, 0, 0), s_(f, 0, 0) {}

  Sequence seq_;
  std::vector<std::size_t> unknowns_;   // blocks written (f of them)
  std::vector<std::size_t> survivors_;  // blocks read
  std::vector<std::size_t> rows_;       // H rows used (post row-selection)
  // Normal: finv_ (f×f) and s_ (f×|survivors|) both used.
  // MatrixFirst: finv_ holds G = F⁻¹·S (f×|survivors|); s_ is empty.
  Matrix finv_;
  Matrix s_;
  std::size_t cost_ = 0;
  std::size_t source_blocks_ = 0;
};

}  // namespace ppm
