// The paper's Log Table (§III-A): per parity-check row, which faulty
// columns it touches. Row i of the table is (i, t_i, l_i) where t_i is the
// number of nonzero coefficients located in faulty columns and l_i lists
// those columns.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "matrix/matrix.h"

namespace ppm {

struct LogRow {
  std::size_t row = 0;                   ///< row index i in H
  std::vector<std::size_t> faulty_cols;  ///< l_i (sorted); t_i = size()
  std::size_t t() const { return faulty_cols.size(); }
};

struct LogTable {
  std::vector<LogRow> rows;  ///< one entry per row of H, in row order
  std::vector<std::size_t> faulty;  ///< the faulty set the table was built
                                    ///< for (sorted) — kept because a block
                                    ///< whose H column is all zero appears
                                    ///< in no row yet still must be
                                    ///< accounted as unrecoverable

  /// Build the log table of `h` for the given (sorted) faulty columns.
  static LogTable build(const Matrix& h, std::span<const std::size_t> faulty);
};

}  // namespace ppm
