// Ablation — resilience tax: what does the fault-tolerant serving path
// cost when nothing goes wrong? Compares the raw cached-plan decode
// (pointers straight into the stripe) against decode_resilient over a
// healthy in-memory BlockSource (per-read accounting + survivor fetch
// copies) and against the same with per-block CRC32 digests (adds the
// read-time and post-decode integrity passes). The overhead is the price
// of admission for retries/escalation/partial recovery — docs/ROBUSTNESS.md.
#include <cstdio>
#include <cstring>
#include <vector>

#include "codec/codec.h"
#include "common/crc32.h"
#include "io/block_source.h"

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "plain decode vs resilient pipeline (clean source)");
  const std::size_t n = 16;
  const std::size_t r = 16;
  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, 2, 2, w);
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);

  Codec::Options copts;
  copts.threads = 1;
  Codec codec(code, copts);

  std::printf("%10s  %10s %10s %10s  %9s %9s\n", "block", "plain",
              "resilient", "+digests", "tax", "tax+crc");
  for (const std::size_t block : {4u << 10, 16u << 10, 64u << 10,
                                  256u << 10}) {
    Stripe stripe(code, block);
    Rng rng(1);
    stripe.fill_data(rng);
    const TraditionalDecoder trad(code);
    if (!trad.encode(stripe.block_ptrs(), block)) return 1;
    const auto snap = stripe.snapshot();
    const std::size_t total = code.total_blocks();
    std::vector<const std::uint8_t*> backing(total);
    std::vector<std::uint32_t> digests(total);
    for (std::size_t b = 0; b < total; ++b) {
      backing[b] = snap.data() + b * block;
      digests[b] = crc32(backing[b], block);
    }

    // Warm the plan cache so every variant measures execution, not
    // planning.
    stripe.erase(g.scenario);
    if (!codec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;

    std::vector<double> t_plain;
    std::vector<double> t_res;
    std::vector<double> t_crc;
    const std::size_t reps = bench::reps() * 3;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      stripe.erase(g.scenario);
      Timer t1;
      if (!codec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;
      t_plain.push_back(t1.seconds());

      io::MemoryBlockSource source(backing.data(), total, block);
      stripe.erase(g.scenario);
      Timer t2;
      if (!codec.decode_resilient(g.scenario, source, stripe.block_ptrs(),
                                  block).complete) {
        return 1;
      }
      t_res.push_back(t2.seconds());

      stripe.erase(g.scenario);
      Timer t3;
      if (!codec.decode_resilient(g.scenario, source, stripe.block_ptrs(),
                                  block, {}, digests).complete) {
        return 1;
      }
      t_crc.push_back(t3.seconds());
    }
    const double plain = bench::median(std::move(t_plain));
    const double res = bench::median(std::move(t_res));
    const double crc = bench::median(std::move(t_crc));
    std::printf("%8zuKiB  %8.3fms %8.3fms %8.3fms  %8.2f%% %8.2f%%\n",
                block / 1024, plain * 1e3, res * 1e3, crc * 1e3,
                100 * (res / plain - 1), 100 * (crc / plain - 1));
  }
  std::printf("\n(the resilient path re-fetches survivors through the "
              "source into the caller's buffers and, with digests, CRCs "
              "every fetched and recovered block; on a healthy source "
              "that copy+checksum sweep is the whole tax)\n");
  std::printf("\nmetrics: %s\n", codec.metrics_json().c_str());
  return 0;
}
