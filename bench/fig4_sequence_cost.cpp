// Fig. 4 — computational cost of the four calculation sequences, relative
// to C1, for SD codes: C2/C1, C3/C1, C4/C1 as n sweeps 6..24, one panel per
// m in {1,2,3}, curves for s in {1,2,3}. Fixed r = 16, z = 1 (paper
// setting). Costs are exact mult_XOR counts from the empirical cost model.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Fig.4", "C2/C1, C3/C1, C4/C1 vs n (r=16, z=1)");
  const std::size_t r = 16;
  const std::size_t z = 1;

  for (const std::size_t m : {1u, 2u, 3u}) {
    std::printf("--- m = %zu ---\n", m);
    std::printf("%4s", "n");
    for (const std::size_t s : {1u, 2u, 3u}) {
      std::printf("  C2/C1,s=%zu C3/C1,s=%zu C4/C1,s=%zu", s, s, s);
    }
    std::printf("\n");
    for (std::size_t n = 6; n <= 24; ++n) {
      if (n <= m) continue;
      std::printf("%4zu", n);
      for (const std::size_t s : {1u, 2u, 3u}) {
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        ScenarioGenerator gen(0xF160400 + n * 100 + m * 10 + s);
        const auto g = gen.sd_worst_case(code, m, s, z);
        const auto costs = analyze_costs(code, g.scenario);
        if (!costs) {
          std::printf("  %9s %9s %9s", "-", "-", "-");
          continue;
        }
        const double c1 = static_cast<double>(costs->c1);
        std::printf("  %9.4f %9.4f %9.4f", costs->c2 / c1, costs->c3 / c1,
                    costs->c4 / c1);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // Paper's summary statistics for this figure: average C4/C1 = 85.78%,
  // range [47.97%, 98.06%].
  double sum = 0;
  double lo = 1e9;
  double hi = -1e9;
  std::size_t count = 0;
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u, 3u}) {
      for (std::size_t n = 6; n <= 24; ++n) {
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        ScenarioGenerator gen(0xF160401 + n * 100 + m * 10 + s);
        const auto g = gen.sd_worst_case(code, m, s, z);
        const auto costs = analyze_costs(code, g.scenario);
        if (!costs) continue;
        const double ratio =
            static_cast<double>(costs->c4) / static_cast<double>(costs->c1);
        sum += ratio;
        lo = std::min(lo, ratio);
        hi = std::max(hi, ratio);
        ++count;
      }
    }
  }
  std::printf("C4/C1 summary over the sweep: avg=%.2f%% range=[%.2f%%, %.2f%%]\n",
              100 * sum / count, 100 * lo, 100 * hi);
  std::printf("(paper: avg=85.78%%, range=[47.97%%, 98.06%%])\n");
  return 0;
}
