// Ablation — where to spend the threads: the paper's related work contrasts
// block-level (inter-stripe) parallelism [36]-[38] with PPM's matrix-level
// (intra-stripe) parallelism. This bench rebuilds a batch of stripes three
// ways and reports modeled 4-lane times:
//   A. traditional decode per stripe, stripes in parallel (block-level);
//   B. PPM with T=4 intra-stripe threads, stripes serial (matrix-level);
//   C. serial PPM per stripe, stripes in parallel (block-level parallelism
//      + PPM's cost reduction).
// Expected shape: B wins for small batches (only matrix-level parallelism
// can fill the cores), C wins at scale (stripe-level parallelism has no
// serial H_rest tail), and C stays below A everywhere because the C4 < C1
// cost reduction rides along for free.
#include <cstdio>
#include <memory>

#include "codec/codec.h"

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "stripe-level vs matrix-level parallelism");
  const std::size_t n = 16;
  const std::size_t r = 16;
  const unsigned lanes = 4;
  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, 2, 2, w);
  ScenarioGenerator gen(0xAB4A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const std::size_t block = 32 * 1024;

  CodecMetrics metrics;  // shared sink across all PPM decodes below

  std::printf("%8s  %12s %12s %12s  (modeled %u lanes)\n", "stripes",
              "A:trad-par", "B:ppm-intra", "C:ppm-par", lanes);
  for (const std::size_t batch : {1u, 2u, 4u, 8u, 16u}) {
    std::vector<std::unique_ptr<Stripe>> stripes;
    std::vector<std::uint8_t* const*> ptrs;
    const TraditionalDecoder trad(code);
    for (std::size_t i = 0; i < batch; ++i) {
      stripes.push_back(std::make_unique<Stripe>(code, block));
      Rng rng(100 + i);
      stripes.back()->fill_data(rng);
      if (!trad.encode(stripes.back()->block_ptrs(), block)) return 1;
      ptrs.push_back(stripes.back()->block_ptrs());
    }

    // T=1 runs the group tasks inline, so the per-task times feeding the
    // lane model are clean serial measurements (no thread thrash on a
    // single-core host).
    PpmOptions popts;
    popts.threads = 1;
    popts.metrics = &metrics;
    const PpmDecoder ppm_serial(code, popts);

    // Measure per-stripe times once (warm), then model the three layouts.
    std::vector<double> trad_times;
    std::vector<double> ppm_serial_times;
    std::vector<double> ppm_par_model;
    for (std::size_t i = 0; i < batch; ++i) {
      stripes[i]->erase(g.scenario);
      auto tr = trad.decode(g.scenario, ptrs[i], block);
      if (!tr) return 1;
      stripes[i]->erase(g.scenario);
      tr = trad.decode(g.scenario, ptrs[i], block);  // warm rerun
      trad_times.push_back(tr->seconds);

      stripes[i]->erase(g.scenario);
      auto pr = ppm_serial.decode(g.scenario, ptrs[i], block);
      if (!pr) return 1;
      stripes[i]->erase(g.scenario);
      pr = ppm_serial.decode(g.scenario, ptrs[i], block);  // warm rerun
      ppm_serial_times.push_back(pr->seconds);
      ppm_par_model.push_back(pr->modeled_seconds(lanes));
    }

    // A: trad per stripe, stripes over `lanes` workers (LPT ~ equal times).
    const auto stripes_over_lanes = [&](const std::vector<double>& times) {
      std::vector<double> lane(lanes, 0.0);
      for (std::size_t i = 0; i < times.size(); ++i) {
        lane[i % lanes] += times[i];
      }
      double mx = 0;
      for (const double t : lane) mx = std::max(mx, t);
      return mx;
    };
    const double a = stripes_over_lanes(trad_times);
    // B: each stripe internally uses all lanes; stripes run back-to-back.
    double b = 0;
    for (const double t : ppm_par_model) b += t;
    // C: serial PPM per stripe, stripes spread over the lanes.
    const double c = stripes_over_lanes(ppm_serial_times);

    std::printf("%8zu  %10.3fms %10.3fms %10.3fms\n", batch, a * 1e3,
                b * 1e3, c * 1e3);
  }
  std::printf("\n(small batches: B wins — only matrix-level parallelism "
              "fills the cores; large batches: C wins — no serial H_rest "
              "tail — and beats A by the C4 < C1 cost reduction)\n");
  std::printf("\nmetrics: %s\n", metrics.to_json().c_str());
  return 0;
}
