// Fig. 9 — PPM improvement vs stripe size (paper: 2 MB .. 128 MB, n = 16,
// r = 16, T = 4, z = 1). Small stripes expose the fixed planning +
// thread-start overhead; the improvement stabilizes once stripes are large
// (the paper observes steadiness beyond 8 MB).
//
// The sweep here runs 1..32 MiB by default to stay container-friendly; set
// PPM_STRIPE_MAX_MB=128 to replicate the paper's full axis.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Fig.9", "PPM improvement vs stripe size (n=16, r=16, T=4, z=1)");
  const std::size_t n = 16;
  const std::size_t r = 16;
  const std::size_t z = 1;
  const unsigned t = 4;
  const unsigned w = SDCode::recommended_width(n, r);
  const std::size_t max_mb = bench::env_size("PPM_STRIPE_MAX_MB", 32);

  std::printf("%6s", "stripe");
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u, 3u}) {
      std::printf("  m%zus%zu-impr", m, s);
    }
  }
  std::printf("\n");

  for (std::size_t mb = 1; mb <= max_mb; mb *= 2) {
    std::printf("%4zuMB", mb);
    for (const std::size_t m : {1u, 2u, 3u}) {
      for (const std::size_t s : {1u, 2u, 3u}) {
        const SDCode code(n, r, m, s, w);
        std::size_t block =
            mb * 1024 * 1024 / (n * r);
        block -= block % code.field().symbol_bytes();
        const auto pt = bench::compare_sd(
            code, m, s, z, t, 0xF169000 + mb * 100 + m * 10 + s, block);
        std::printf("  %8.2f%%", 100 * pt.modeled_improvement());
      }
    }
    std::printf("\n");
  }
  std::printf("\n(paper trend: multithreading overhead shrinks with stripe "
              "size; improvement steady beyond 8MB)\n");
  return 0;
}
