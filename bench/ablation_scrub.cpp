// Ablation — what does the scrub rate limit cost, and what does it buy?
//
// Two questions, one fleet:
//
//  1. Detection/repair latency vs budget. A fleet of stripes each carries
//     one silent corruption; one full scrub cycle (sweep -> rank ->
//     repair) runs under different token-bucket budgets. The sweep is
//     the time-to-detect, the cycle the time-to-repair; both stretch as
//     the budget shrinks — that stretch is the price of politeness.
//
//  2. Foreground interference. A foreground loop decodes an erased
//     stripe through the resilient ladder while a background thread
//     scrubs the fleet continuously at each budget. The foreground
//     latency distribution (p50/p99) against the no-scrub baseline shows
//     what an unpaced scrub does to serving and how the limiter claws it
//     back — the same coexistence the `ppm_cli serve --scrub-rate-kbps`
//     gate asserts in CI (docs/ROBUSTNESS.md, docs/SERVING.md).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"

using namespace ppm;

namespace {

struct FleetMember {
  std::unique_ptr<Stripe> storage;
  std::unique_ptr<Stripe> scratch;
  std::vector<std::uint32_t> digests;
  std::unique_ptr<io::MemoryBlockStore> store;
  std::unique_ptr<io::FaultInjectingSource> seam;
};

std::vector<FleetMember> build_fleet(const ErasureCode& code,
                                     std::size_t stripes, std::size_t block,
                                     std::uint64_t seed) {
  const TraditionalDecoder trad(code);
  Rng rng(seed);
  std::vector<FleetMember> fleet(stripes);
  const std::size_t total = code.total_blocks();
  for (FleetMember& m : fleet) {
    m.storage = std::make_unique<Stripe>(code, block);
    m.storage->fill_data(rng);
    if (!trad.encode(m.storage->block_ptrs(), block)) std::exit(1);
    m.digests.resize(total);
    for (std::size_t b = 0; b < total; ++b) {
      m.digests[b] = crc32(m.storage->block(b), block);
    }
    m.scratch = std::make_unique<Stripe>(code, block);
    m.store = std::make_unique<io::MemoryBlockStore>(m.storage->block_ptrs(),
                                                     total, block);
    m.seam = std::make_unique<io::FaultInjectingSource>(*m.store, *m.store);
  }
  return fleet;
}

void add_fleet(scrub::Scrubber& scrubber, std::vector<FleetMember>& fleet) {
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    scrub::ScrubTarget target;
    target.source = fleet[i].seam.get();
    target.writer = fleet[i].seam.get();
    target.blocks = fleet[i].scratch->block_ptrs();
    target.expected_crc = fleet[i].digests;
    target.stripe_id = "bench-" + std::to_string(i);
    scrubber.add_target(std::move(target));
  }
}

double percentile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const std::size_t i =
      std::min(v.size() - 1, static_cast<std::size_t>(q * v.size()));
  return v[i];
}

}  // namespace

int main() {
  bench::banner("Ablation", "scrub budget vs detection latency and "
                            "foreground interference");
  const RSCode code(6, 3, 8);
  const std::size_t stripes = 8;
  const std::size_t block = bench::block_bytes_for(64, 8);
  const std::size_t fleet_bytes = stripes * code.total_blocks() * block;

  struct Budget {
    const char* label;
    double bytes_per_sec;
  };
  const Budget budgets[] = {
      {"unpaced", 0.0},
      {"1 GiB/s", 1024.0 * 1024.0 * 1024.0},
      {"256 MiB/s", 256.0 * 1024.0 * 1024.0},
      {"64 MiB/s", 64.0 * 1024.0 * 1024.0},
  };

  // --- 1: one cycle over a fleet with one latent error per stripe -------
  std::printf("%10s  %10s %10s %10s  %8s %8s\n", "budget", "sweep",
              "cycle", "scan MB/s", "latent", "repairs");
  for (const Budget& budget : budgets) {
    auto fleet = build_fleet(code, stripes, block, 0x5C12B);
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      io::FaultSpec rot;
      rot.corrupt = true;
      rot.corrupt_offset = (i * 7) % block;
      rot.corrupt_bytes = 8;
      fleet[i].seam->set_fault(i % code.total_blocks(), rot);
    }
    Codec codec(code);
    scrub::ScrubOptions options;
    options.rate_bytes_per_sec = budget.bytes_per_sec;
    options.burst_bytes = std::size_t{1} << 20;
    scrub::Scrubber scrubber(codec, options);
    add_fleet(scrubber, fleet);

    Timer cycle_timer;
    const scrub::CycleReport cycle = scrubber.run_cycle();
    const double cycle_s = cycle_timer.seconds();
    std::printf("%10s  %8.2fms %8.2fms %10.1f  %8zu %8zu\n", budget.label,
                cycle.sweep.seconds * 1e3, cycle_s * 1e3,
                bench::mb_per_s(fleet_bytes, cycle.sweep.seconds),
                cycle.sweep.latent_total, cycle.repair.completed);
    if (cycle.sweep.latent_total != stripes ||
        cycle.repair.completed != stripes) {
      std::fprintf(stderr, "scrub cycle missed damage\n");
      return 1;
    }
  }

  // --- 2: foreground decode latency while the fleet scrubs -------------
  ScenarioGenerator gen(0xB0B);
  Stripe fg(code, block);
  Rng fill(2);
  fg.fill_data(fill);
  const TraditionalDecoder trad(code);
  if (!trad.encode(fg.block_ptrs(), block)) return 1;
  const auto snap = fg.snapshot();
  const std::size_t total = code.total_blocks();
  std::vector<const std::uint8_t*> backing(total);
  for (std::size_t b = 0; b < total; ++b) {
    backing[b] = snap.data() + b * block;
  }
  const FailureScenario erased({1, 4, 7});
  const std::size_t reps = bench::reps() * 24;

  std::printf("\n%10s  %10s %10s  %s\n", "budget", "fg p50", "fg p99",
              "scrub cycles");
  std::vector<double> baseline;
  for (int with_scrub = 0; with_scrub < 2; ++with_scrub) {
    for (const Budget& budget : budgets) {
      auto fleet = build_fleet(code, stripes, block, 0x5C12B);
      Codec codec(code);
      scrub::ScrubOptions options;
      options.rate_bytes_per_sec = budget.bytes_per_sec;
      scrub::Scrubber scrubber(codec, options);
      add_fleet(scrubber, fleet);

      Codec fg_codec(code);
      io::MemoryBlockSource source(backing.data(), total, block);
      // Warm the plan cache outside the timed region.
      fg.erase(erased);
      if (!fg_codec.decode_resilient(erased, source, fg.block_ptrs(), block)
               .complete) {
        return 1;
      }

      std::atomic<bool> stop{false};
      std::atomic<std::size_t> cycles{0};
      std::thread patrol;
      if (with_scrub != 0) {
        patrol = std::thread([&] {
          while (!stop.load(std::memory_order_relaxed)) {
            scrubber.run_cycle();
            cycles.fetch_add(1, std::memory_order_relaxed);
          }
        });
      }
      std::vector<double> lat;
      lat.reserve(reps);
      for (std::size_t rep = 0; rep < reps; ++rep) {
        fg.erase(erased);
        Timer t;
        if (!fg_codec.decode_resilient(erased, source, fg.block_ptrs(), block)
                 .complete) {
          return 1;
        }
        lat.push_back(t.seconds());
      }
      stop.store(true, std::memory_order_relaxed);
      if (patrol.joinable()) patrol.join();
      if (!fg.equals(snap)) return 1;

      if (with_scrub == 0) {
        // All no-scrub runs are the same experiment; keep one baseline.
        baseline = lat;
        std::printf("%10s  %8.3fms %8.3fms  %s\n", "none",
                    percentile(lat, 0.50) * 1e3, percentile(lat, 0.99) * 1e3,
                    "--");
        break;
      }
      std::printf("%10s  %8.3fms %8.3fms  %zu\n", budget.label,
                  percentile(lat, 0.50) * 1e3, percentile(lat, 0.99) * 1e3,
                  cycles.load());
    }
  }
  std::printf("\n(fleet %zu stripes x %zu blocks x %zu KiB; scrub pays "
              "every sweep/repair read into one token bucket — "
              "docs/ROBUSTNESS.md)\n",
              stripes, total, block >> 10);
  std::printf("\nscrub metrics: %s\n", scrub_metrics().to_json().c_str());
  return 0;
}
