// §III-B numerical analysis — the statements between Figs. 4 and 6:
//   * C1 - C4 = m^2 (z+1)(r-z) > 0 and C3 - C2 = m(r-1)(mz+s) > 0;
//   * P(C4 > C2) ≈ 5% over configurations/failure scenarios, and when it
//     happens n is small (4..5, never above 9);
//   * the worked example's 17.14% reduction.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Analysis(§III-B)", "closed-form identities and the C4>C2 census");

  // Identities over the paper's full parameter box.
  std::size_t checked = 0;
  bool all_hold = true;
  for (std::size_t n = 4; n <= 24; ++n) {
    for (std::size_t r = 4; r <= 24; ++r) {
      for (std::size_t m = 1; m <= 3 && m < n; ++m) {
        for (std::size_t s = 1; s <= 3; ++s) {
          for (std::size_t z = 1; z <= s; ++z) {
            const ClosedFormCosts c = sd_closed_form(n, r, m, s, z);
            const long long mm = static_cast<long long>(m);
            const long long rr = static_cast<long long>(r);
            const long long zz = static_cast<long long>(z);
            const long long ss = static_cast<long long>(s);
            all_hold &= (c.c1 - c.c4 == mm * mm * (zz + 1) * (rr - zz));
            all_hold &= (c.c3 - c.c2 == mm * (rr - 1) * (mm * zz + ss));
            ++checked;
          }
        }
      }
    }
  }
  std::printf("identities C1-C4 = m^2(z+1)(r-z) and C3-C2 = m(r-1)(mz+s): "
              "%s over %zu configurations\n",
              all_hold ? "HOLD" : "VIOLATED", checked);

  // The C4 > C2 census over the same box (closed forms).
  std::size_t total = 0;
  std::size_t c4_gt_c2 = 0;
  std::size_t max_n_when_gt = 0;
  for (std::size_t n = 4; n <= 24; ++n) {
    for (std::size_t r = 4; r <= 24; ++r) {
      for (std::size_t m = 1; m <= 3 && m < n; ++m) {
        for (std::size_t s = 1; s <= 3; ++s) {
          for (std::size_t z = 1; z <= s; ++z) {
            const ClosedFormCosts c = sd_closed_form(n, r, m, s, z);
            ++total;
            if (c.c4 > c.c2) {
              ++c4_gt_c2;
              max_n_when_gt = std::max(max_n_when_gt, n);
            }
          }
        }
      }
    }
  }
  std::printf("P(C4 > C2) = %.2f%% (%zu / %zu); largest n with C4 > C2: %zu\n",
              100.0 * c4_gt_c2 / total, c4_gt_c2, total, max_n_when_gt);
  std::printf("(paper: ~5%%, and n <= 9 whenever C4 > C2)\n");

  // The worked example's reduction.
  const ClosedFormCosts ex = sd_closed_form(4, 4, 1, 1, 1);
  std::printf("Fig.2 example: C1=%lld C2=%lld C3=%lld C4=%lld, reduction "
              "(C1-C4)/C1 = %.2f%% (paper: 17.14%%)\n",
              ex.c1, ex.c2, ex.c3, ex.c4,
              100.0 * (ex.c1 - ex.c4) / ex.c1);

  // Cross-check the closed forms against the empirical model on a sample.
  std::printf("\nempirical vs closed-form on sampled worst cases (z=1):\n");
  std::printf("%4s %2s %2s %2s  %8s %8s  %8s %8s\n", "n", "r", "m", "s",
              "emp C1", "cf C1", "emp C4", "cf C4");
  for (const std::size_t n : {6u, 11u, 16u, 21u}) {
    const std::size_t r = 16;
    for (const std::size_t m : {1u, 2u}) {
      const std::size_t s = 2;
      const unsigned w = SDCode::recommended_width(n, r);
      const SDCode code(n, r, m, s, w);
      ScenarioGenerator gen(0xA11A + n * 10 + m);
      const auto g = gen.sd_worst_case(code, m, s, 1);
      const auto emp = analyze_costs(code, g.scenario);
      const ClosedFormCosts cf = sd_closed_form(n, r, m, s, 1);
      if (!emp) continue;
      std::printf("%4zu %2zu %2zu %2zu  %8zu %8lld  %8zu %8lld\n", n, r, m, s,
                  emp->c1, cf.c1, emp->c4, cf.c4);
    }
  }
  return 0;
}
