// Ablation — why PPM targets *asymmetric* codes: run the identical PPM
// machinery over the symmetric codes the paper contrasts against (EVENODD,
// RDP, RS) and over the asymmetric ones (SD, LRC, Xorbas LRC), under each
// code's design failure. For symmetric codes at full fault tolerance the
// log table finds no repeated signatures, p collapses to 0 and PPM
// degenerates to the traditional decoder — the paper's §I/§II premise,
// executed. (Single-disk rebuilds partition even for symmetric codes; the
// last column shows that contrast.)
#include <cstdio>
#include <memory>

#include "bench_common.h"

using namespace ppm;

namespace {

struct Row {
  const char* label;
  const ErasureCode* code;
  FailureScenario worst;   // the code's design failure
  FailureScenario single;  // a single-disk / single-strip failure
};

void report(const Row& row) {
  const auto costs_worst = analyze_costs(*row.code, row.worst);
  const auto costs_single = analyze_costs(*row.code, row.single);
  if (!costs_worst || !costs_single) {
    std::printf("%-22s  (undecodable scenario?)\n", row.label);
    return;
  }
  const double saving =
      100.0 *
      (static_cast<double>(costs_worst->c1) -
       static_cast<double>(costs_worst->ppm_best())) /
      static_cast<double>(costs_worst->c1);
  std::printf("%-22s %8zu %10zu %10zu %9.2f%% %12zu\n", row.label,
              costs_worst->p, costs_worst->c1, costs_worst->ppm_best(),
              saving, costs_single->p);
}

std::vector<std::size_t> whole_disks(const ErasureCode& code,
                                     std::initializer_list<std::size_t> ds) {
  std::vector<std::size_t> out;
  for (const std::size_t d : ds) {
    for (std::size_t i = 0; i < code.rows(); ++i) {
      out.push_back(code.block_id(i, d));
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::banner("Ablation", "PPM on symmetric vs asymmetric codes");
  std::printf("%-22s %8s %10s %10s %10s %12s\n", "code (design failure)",
              "p", "C1", "PPM-ops", "saving", "p(1 disk)");

  // Symmetric codes, worst case = their full fault tolerance.
  const EvenOddCode evenodd(7);
  report({"EVENODD p=7 (2 disks)", &evenodd,
          FailureScenario(whole_disks(evenodd, {0, 3})),
          FailureScenario(whole_disks(evenodd, {2}))});

  const RDPCode rdp(7);
  report({"RDP p=7 (2 disks)", &rdp,
          FailureScenario(whole_disks(rdp, {0, 3})),
          FailureScenario(whole_disks(rdp, {2}))});

  const RSCode rs(12, 4, 8);
  report({"RS(12,4) (4 strips)", &rs, FailureScenario({0, 3, 7, 13}),
          FailureScenario({5})});

  const StarCode star(7);
  report({"STAR p=7 (3 disks)", &star,
          FailureScenario(whole_disks(star, {0, 2, 5})),
          FailureScenario(whole_disks(star, {4}))});

  // Asymmetric codes, worst case = disks + sectors / groups + extra.
  const SDCode sd(8, 8, 2, 2, 8);
  {
    ScenarioGenerator gen(0xAB5A);
    const auto worst = gen.sd_worst_case(sd, 2, 2, 1).scenario;
    report({"SD 8x8 m=2 s=2", &sd, worst,
            FailureScenario(whole_disks(sd, {1}))});
  }

  const LRCCode lrc(12, 3, 2, 8);
  {
    ScenarioGenerator gen(0xAB5B);
    const auto worst = gen.lrc_failures(lrc, 3, 1).scenario;
    report({"LRC(12,3,2)", &lrc, worst, FailureScenario({4})});
  }

  const XorbasLRCCode xorbas(10, 2, 4, 8);
  report({"XorbasLRC(10,2,4)", &xorbas,
          FailureScenario({0, 6, xorbas.global_parity_block(0)}),
          FailureScenario({3})});

  std::printf("\n(symmetric codes at design failure: p = 0 — nothing to "
              "partition, PPM == traditional;\n asymmetric codes: p > 1 and "
              "a real mult_XOR saving — the paper's premise)\n");
  return 0;
}
