// Fig. 6 — C4/C1 for different stripe depths r (z = 1): the ratio falls as
// r grows because the partition peels off more independent per-row systems.
// Curves for r in {4, 8, 12, 16, 20, 24}, panels per (m, s) corner cases.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Fig.6", "C4/C1 vs n for r in {4..24} (z=1)");
  const std::size_t z = 1;
  const std::size_t rs[] = {4, 8, 12, 16, 20, 24};

  constexpr std::pair<std::size_t, std::size_t> kPanels[] = {
      {1, 1}, {1, 3}, {2, 2}, {3, 1}, {3, 3}};
  for (const auto& [m, s] : kPanels) {
    std::printf("--- m = %zu, s = %zu ---\n", m, s);
    std::printf("%4s", "n");
    for (const std::size_t r : rs) std::printf("  %8s%-2zu", "C4/C1,r=", r);
    std::printf("\n");
    for (std::size_t n = 6; n <= 24; n += 2) {
      std::printf("%4zu", n);
      for (const std::size_t r : rs) {
        if (s > z * (n - m) || s > (n - m) * r - 1) {
          std::printf("  %10s", "-");
          continue;
        }
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        ScenarioGenerator gen(0xF166000 + n * 100 + m * 10 + s + r * 1000);
        const auto g = gen.sd_worst_case(code, m, s, z);
        const auto costs = analyze_costs(code, g.scenario);
        if (!costs) {
          std::printf("  %10s", "-");
          continue;
        }
        std::printf("  %10.4f", static_cast<double>(costs->c4) /
                                    static_cast<double>(costs->c1));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("(paper trend: C4/C1 decreases as r increases)\n");
  return 0;
}
