// Ablation — matrix-level (PPM) vs block-level (region-split) parallelism
// *within one stripe*: the head-to-head the paper's related work sketches
// ([36]-[38] vs PPM). Region splitting parallelizes everything, including
// the serial H_rest tail PPM owns, but executes the full whole-matrix
// operation count; PPM executes min(C3, C4) < C1 but joins before H_rest.
// Modeled times put both on the same T virtual lanes.
#include <cstdio>

#include "decode/block_parallel_decoder.h"

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "PPM (matrix-level) vs region-split (block-level)");
  const std::size_t r = 16;
  const unsigned t = 4;
  std::printf("%4s %2s %2s  %10s %10s %10s %10s  %8s %8s\n", "n", "m", "s",
              "serial", "ppm@4", "split@4", "both*", "ppm-ops", "C-ops");
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u}) {
      for (const std::size_t n : {8u, 16u}) {
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        Stripe stripe(code, block);
        Rng rng(0xAB6A + n);
        stripe.fill_data(rng);
        const TraditionalDecoder trad(code);
        if (!trad.encode(stripe.block_ptrs(), block)) return 1;
        ScenarioGenerator gen(0xAB6B + n * 100 + m * 10 + s);
        const auto g = gen.sd_worst_case(code, m, s, 1);

        PpmOptions popts;
        popts.threads = 1;  // clean serial task times for the lane model
        const PpmDecoder ppm_dec(code, popts);
        const BlockParallelDecoder split_dec(code, t, SequencePolicy::kNormal,
                                             /*sequential=*/true);

        // Warm-up.
        stripe.erase(g.scenario);
        if (!trad.decode(g.scenario, stripe.block_ptrs(), block)) return 1;

        std::vector<double> t_serial;
        std::vector<double> t_ppm;
        std::vector<double> t_split;
        std::vector<double> t_both;
        std::size_t ppm_ops = 0;
        std::size_t c_ops = 0;
        for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
          stripe.erase(g.scenario);
          const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), block);
          if (!tr) return 1;
          t_serial.push_back(tr->seconds);
          c_ops = tr->stats.mult_xors;

          stripe.erase(g.scenario);
          const auto pr =
              ppm_dec.decode(g.scenario, stripe.block_ptrs(), block);
          if (!pr) return 1;
          t_ppm.push_back(pr->modeled_seconds(t));
          ppm_ops = pr->stats.mult_xors;
          // "both": PPM's parallel groups + the H_rest tail divided by the
          // lanes (region-splitting the rest) — the combination a real
          // multi-core implementation would ship.
          t_both.push_back(pr->plan_seconds +
                           (pr->modeled_seconds(t) - pr->plan_seconds -
                            pr->rest_seconds) +
                           pr->rest_seconds / t);

          stripe.erase(g.scenario);
          const auto sr =
              split_dec.decode(g.scenario, stripe.block_ptrs(), block);
          if (!sr) return 1;
          t_split.push_back(sr->modeled_seconds());
        }
        std::printf("%4zu %2zu %2zu  %8.2fms %8.2fms %8.2fms %8.2fms  %8zu "
                    "%8zu\n",
                    n, m, s, bench::median(std::move(t_serial)) * 1e3,
                    bench::median(std::move(t_ppm)) * 1e3,
                    bench::median(std::move(t_split)) * 1e3,
                    bench::median(std::move(t_both)) * 1e3, ppm_ops, c_ops);
      }
    }
  }
  std::printf("\n(*both = PPM partition with region-split H_rest. "
              "Region-split runs C1 ops but has no serial tail; PPM runs "
              "min(C3,C4) < C1 with a serial H_rest; the combination takes "
              "both wins.)\n");
  return 0;
}
