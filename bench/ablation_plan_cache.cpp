// Ablation — plan caching: the same failure pattern hits every stripe of a
// placement group, so the matrix bookkeeping (log table, partition,
// inversions) can be paid once. Compares per-decode planning (PpmDecoder)
// against the Codec's cached plan across a range of block sizes — the
// smaller the blocks, the larger the planning share the cache removes.
#include <cstdio>

#include "codec/codec.h"

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "plan-per-decode vs cached plan (Codec)");
  const std::size_t n = 16;
  const std::size_t r = 16;
  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, 2, 2, w);
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);

  Codec::Options copts;
  copts.threads = 1;
  Codec codec(code, copts);

  std::printf("%10s  %12s %12s %10s\n", "block", "plan/decode", "cached",
              "speedup");
  for (const std::size_t block : {4u << 10, 16u << 10, 64u << 10,
                                  256u << 10}) {
    Stripe stripe(code, block);
    Rng rng(1);
    stripe.fill_data(rng);
    const TraditionalDecoder trad(code);
    if (!trad.encode(stripe.block_ptrs(), block)) return 1;

    PpmOptions popts;
    popts.threads = 1;  // isolate planning cost from thread effects
    const PpmDecoder dec(code, popts);
    // Warm both paths (and populate the cache).
    stripe.erase(g.scenario);
    if (!dec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;
    stripe.erase(g.scenario);
    if (!codec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;

    std::vector<double> t_plan;
    std::vector<double> t_cache;
    const std::size_t reps = bench::reps() * 3;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      stripe.erase(g.scenario);
      Timer t1;
      if (!dec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;
      t_plan.push_back(t1.seconds());

      stripe.erase(g.scenario);
      Timer t2;
      if (!codec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;
      t_cache.push_back(t2.seconds());
    }
    const double plan = bench::median(std::move(t_plan));
    const double cached = bench::median(std::move(t_cache));
    std::printf("%8zuKiB  %10.3fms %10.3fms %9.2f%%\n", block / 1024,
                plan * 1e3, cached * 1e3, 100 * (plan / cached - 1));
  }
  std::printf("\n(planning cost is fixed per scenario; its share — and the "
              "cache's win — shrinks as blocks grow, matching the paper's "
              "§III-C amortization claim)\n");
  std::printf("\nmetrics: %s\n", codec.metrics_json().c_str());
  return 0;
}
