// Fig. 5 — C4/C1 for different sector-row concentrations z (s = 3, r = 16):
// the ratio falls as z grows (more affected rows leave the independent
// per-row systems slightly cheaper). One panel per m, curves z = 1..3.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Fig.5", "C4/C1 vs n for z in {1,2,3} (s=3, r=16)");
  const std::size_t r = 16;
  const std::size_t s = 3;

  for (const std::size_t m : {1u, 2u, 3u}) {
    std::printf("--- m = %zu ---\n", m);
    std::printf("%4s  %10s %10s %10s\n", "n", "C4/C1,z=1", "C4/C1,z=2",
                "C4/C1,z=3");
    for (std::size_t n = 6; n <= 24; ++n) {
      std::printf("%4zu", n);
      for (const std::size_t z : {1u, 2u, 3u}) {
        if (s > z * (n - m)) {
          std::printf("  %10s", "-");
          continue;
        }
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        ScenarioGenerator gen(0xF165000 + n * 100 + m * 10 + z);
        const auto g = gen.sd_worst_case(code, m, s, z);
        const auto costs = analyze_costs(code, g.scenario);
        if (!costs) {
          std::printf("  %10s", "-");
          continue;
        }
        std::printf("  %10.4f", static_cast<double>(costs->c4) /
                                    static_cast<double>(costs->c1));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("(paper trend: C4/C1 decreases as z increases; larger m makes "
              "the ratio smaller)\n");
  return 0;
}
