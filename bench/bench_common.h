// Shared harness for the figure-reproduction benchmarks.
//
// Every fig*_ binary prints the same series the corresponding paper figure
// plots, as aligned text tables (one row per x-axis point). Scale knobs,
// common to all binaries:
//
//   PPM_STRIPE_MB  stripe size in MiB (default 8; the paper used 32)
//   PPM_REPS       timed repetitions per data point (default 7; paper: 10)
//
// Single-core substitution (DESIGN.md §3): "measured" improvement compares
// wall-clock times as-is (on this host the parallel phase serializes, so it
// isolates PPM's cost-reduction benefit); "modeled" improvement uses
// PpmResult::modeled_seconds(T), i.e. the measured per-task times scheduled
// on T concurrent lanes — the paper's multi-core setting.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ppm.h"

namespace ppm::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
}

inline std::size_t stripe_mib() { return env_size("PPM_STRIPE_MB", 8); }
inline std::size_t reps() { return std::max<std::size_t>(env_size("PPM_REPS", 7), 1); }

/// Block size for a stripe of `blocks` blocks totalling ~stripe_mib(),
/// rounded down to a multiple of `symbol_bytes` (at least one symbol).
inline std::size_t block_bytes_for(std::size_t blocks, unsigned symbol_bytes) {
  std::size_t b = stripe_mib() * 1024 * 1024 / blocks;
  b -= b % symbol_bytes;
  return std::max<std::size_t>(b, symbol_bytes);
}

/// Median of a sample vector (destructive).
inline double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Decode throughput in MB/s given stripe bytes processed per decode.
inline double mb_per_s(std::size_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

/// The paper's improvement ratio: (t_base - t_new) / t_new, i.e.
/// speed_new / speed_base - 1. "210.81%" prints as 2.1081.
inline double improvement(double t_base, double t_new) {
  return t_base / t_new - 1.0;
}

/// One timed comparison of traditional (normal sequence, the open-source SD
/// decoder's behaviour) against PPM on the same scenario.
struct ComparisonPoint {
  double trad_seconds = 0;     ///< median traditional decode wall time
  double ppm_wall_seconds = 0; ///< median PPM wall time (serial host)
  double ppm_model_seconds = 0;///< median modeled T-lane PPM time
  double wall_ratio = 1.0;     ///< median per-rep trad/ppm-wall ratio
  double model_ratio = 1.0;    ///< median per-rep trad/ppm-model ratio
  std::size_t p = 0;           ///< independent sub-matrices
  std::size_t c1 = 0;          ///< traditional mult_XORs
  std::size_t ppm_ops = 0;     ///< PPM mult_XORs (min(C3, C4))
  std::size_t redraws = 0;     ///< undecodable scenario redraws

  // Group-phase makespans (median over reps, measured task times): the
  // executed LPT placement, the Algorithm-1 i mod T counterfactual on the
  // same tasks, and the analyzer's critical-path floor (heaviest task).
  double placed_makespan_seconds = 0;
  double roundrobin_makespan_seconds = 0;
  double critical_path_seconds = 0;

  // Improvements from per-repetition ratios: each repetition measures the
  // two decoders back to back, so slow drift of the (virtualized) host
  // cancels instead of landing in the comparison.
  double measured_improvement() const { return wall_ratio - 1.0; }
  double modeled_improvement() const { return model_ratio - 1.0; }
};

/// Run the standard comparison for an SD/PMDS-style code.
inline ComparisonPoint compare_sd(const ErasureCode& code, std::size_t m,
                                  std::size_t s, std::size_t z,
                                  unsigned threads, std::uint64_t seed,
                                  std::size_t block_bytes) {
  ScenarioGenerator gen(seed);
  const auto g = gen.sd_worst_case(code, m, s, z);

  Stripe stripe(code, block_bytes);
  Rng rng(seed ^ 0xABCD);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block_bytes)) {
    std::fprintf(stderr, "encode failed for %s\n", code.name().c_str());
    std::exit(1);
  }
  const auto snap = stripe.snapshot();

  PpmOptions opts;
  opts.threads = threads;
  const PpmDecoder ppm_dec(code, opts);

  // Untimed warm-up: touch every page and ramp the core before measuring.
  stripe.erase(g.scenario);
  if (!trad.decode(g.scenario, stripe.block_ptrs(), block_bytes,
                   SequencePolicy::kNormal)) {
    std::exit(2);
  }
  stripe.erase(g.scenario);
  if (!ppm_dec.decode(g.scenario, stripe.block_ptrs(), block_bytes)) {
    std::exit(3);
  }

  ComparisonPoint point;
  point.redraws = g.redraws;
  std::vector<double> t_trad;
  std::vector<double> t_wall;
  std::vector<double> t_model;
  std::vector<double> r_wall;
  std::vector<double> r_model;
  std::vector<double> t_placed;
  std::vector<double> t_rrobin;
  std::vector<double> t_cpath;
  for (std::size_t rep = 0; rep < reps(); ++rep) {
    stripe.erase(g.scenario);
    const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), block_bytes,
                                SequencePolicy::kNormal);
    if (!tr) std::exit(2);
    t_trad.push_back(tr->seconds);
    point.c1 = tr->stats.mult_xors;

    stripe.erase(g.scenario);
    const auto pr = ppm_dec.decode(g.scenario, stripe.block_ptrs(),
                                   block_bytes);
    if (!pr) std::exit(3);
    t_wall.push_back(pr->seconds);
    // Overhead-aware model: measured task times on T lanes plus the
    // calibrated ephemeral-thread start cost (the overhead the paper's
    // Fig. 7/9 discuss).
    const double model = pr->modeled_seconds_with_overhead(threads);
    t_model.push_back(model);
    r_wall.push_back(tr->seconds / pr->seconds);
    r_model.push_back(tr->seconds / model);
    t_placed.push_back(pr->placed_makespan_seconds());
    t_rrobin.push_back(pr->round_robin_makespan_seconds(threads));
    t_cpath.push_back(pr->critical_path_seconds());
    point.p = pr->p;
    point.ppm_ops = pr->stats.mult_xors;
  }
  // Correctness guard: the final decode restored the stripe.
  if (!stripe.equals(snap)) {
    std::fprintf(stderr, "verification failed for %s\n", code.name().c_str());
    std::exit(4);
  }
  point.trad_seconds = median(std::move(t_trad));
  point.ppm_wall_seconds = median(std::move(t_wall));
  point.ppm_model_seconds = median(std::move(t_model));
  point.wall_ratio = median(std::move(r_wall));
  point.model_ratio = median(std::move(r_model));
  point.placed_makespan_seconds = median(std::move(t_placed));
  point.roundrobin_makespan_seconds = median(std::move(t_rrobin));
  point.critical_path_seconds = median(std::move(t_cpath));
  return point;
}

/// Print the standard bench banner.
inline void banner(const char* fig, const char* what) {
  std::printf("== %s: %s ==\n", fig, what);
  std::printf("stripe=%zuMiB reps=%zu isa=%s cores=%u", stripe_mib(), reps(),
              isa_name(detect_isa()), hardware_threads());
  std::printf("  (modeled = measured task times on T virtual lanes; see "
              "EXPERIMENTS.md)\n\n");
}

}  // namespace ppm::bench
