// Ablation — cold-start SLO with and without the persistent plan store.
//
// A restarted node owns no cached plans: every first decode of a failure
// scenario pays plan construction (log-table, partition, Gauss-Jordan
// inversion, sequence costing, hazard analysis). The plan store amortizes
// that across restarts: plans built once are serialized to disk and a
// fresh process warms its sharded cache from the store, paying only the
// zero-trust re-verification (parse + CRC + planverify + hazard).
//
// Three cold-start strategies over the same scenario sweep (all 1- and
// 2-disk failure combinations):
//   A. rebuild   — no store: first decode builds the plan from scratch;
//   B. load      — store attached, cache cold: first decode pays one
//                  zero-trust load (read-through) instead of the rebuild;
//   C. warm      — Codec::warm() bulk-preloads the cache at startup:
//                  first decode is a pure cache hit.
// The one-time store build (write-through sweep) is reported separately —
// it is paid once per code change, not per restart.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "bench_common.h"

using namespace ppm;

namespace {

// Every combination of 1..max_disks whole-disk failures.
std::vector<FailureScenario> disk_sweep(const ErasureCode& code,
                                        std::size_t max_disks) {
  std::vector<FailureScenario> out;
  std::vector<std::size_t> combo;
  const auto emit = [&] {
    std::vector<std::size_t> faulty;
    for (const std::size_t d : combo) {
      for (std::size_t row = 0; row < code.rows(); ++row) {
        faulty.push_back(code.block_id(row, d));
      }
    }
    out.emplace_back(faulty);
  };
  const auto recurse = [&](auto&& self, std::size_t next,
                           std::size_t remaining) -> void {
    if (remaining == 0) {
      emit();
      return;
    }
    for (std::size_t d = next; d + remaining <= code.disks(); ++d) {
      combo.push_back(d);
      self(self, d + 1, remaining - 1);
      combo.pop_back();
    }
  };
  for (std::size_t k = 1; k <= max_disks; ++k) recurse(recurse, 0, k);
  return out;
}

// Time-to-first-plan for every scenario on a cold codec; returns total
// seconds (the restart's planning bill).
double first_plan_total(Codec& codec,
                        const std::vector<FailureScenario>& sweep) {
  const Timer t;
  for (const FailureScenario& sc : sweep) {
    if (codec.plan_for(sc) == nullptr) std::abort();
  }
  return t.seconds();
}

}  // namespace

int main() {
  bench::banner("Ablation", "persistent plan store vs cold-start rebuild");
  const std::size_t n = 8;
  const std::size_t r = 16;
  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, 2, 2, w);
  const auto sweep = disk_sweep(code, 2);
  const std::size_t reps = bench::reps();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ppm_bench_plan_store";
  std::filesystem::remove_all(dir);

  // One-time store build (write-through sweep).
  double build_seconds = 0;
  {
    Codec::Options opts;
    opts.cache_capacity = 16 * sweep.size();
    Codec builder(code, opts);
    builder.attach_store(dir.string());
    const Timer t;
    for (const FailureScenario& sc : sweep) {
      if (builder.plan_for(sc) == nullptr) return 1;
    }
    build_seconds = t.seconds();
    if (builder.metrics().planstore_stores.value() != sweep.size()) return 1;
  }

  std::vector<double> rebuild;
  std::vector<double> load;
  std::vector<double> warm_total;
  std::vector<double> warm_decode;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    Codec::Options opts;
    opts.cache_capacity = 16 * sweep.size();
    {
      Codec a(code, opts);  // A: no store — rebuild every plan
      rebuild.push_back(first_plan_total(a, sweep));
    }
    {
      Codec b(code, opts);  // B: read-through — zero-trust load per miss
      b.attach_store(dir.string());
      load.push_back(first_plan_total(b, sweep));
    }
    {
      Codec c(code, opts);  // C: warm() at startup, then pure cache hits
      c.attach_store(dir.string());
      const Timer t;
      if (c.warm() != sweep.size()) return 1;
      const double warmed = t.seconds();
      warm_decode.push_back(first_plan_total(c, sweep));
      warm_total.push_back(warmed + warm_decode.back());
    }
  }

  // Correctness: the warmed codec's plan must decode byte-identically.
  {
    Codec c(code);
    c.attach_store(dir.string());
    c.warm();
    const std::size_t block = 4096;
    Stripe stripe(code, block);
    Rng rng(11);
    stripe.fill_data(rng);
    const TraditionalDecoder trad(code);
    if (!trad.encode(stripe.block_ptrs(), block)) return 1;
    const auto snap = stripe.snapshot();
    stripe.erase(sweep.front());
    if (!c.decode(sweep.front(), stripe.block_ptrs(), block)) return 1;
    if (!stripe.equals(snap)) {
      std::fprintf(stderr, "VERIFICATION FAILED\n");
      return 1;
    }
  }

  const double t_a = bench::median(rebuild);
  const double t_b = bench::median(load);
  const double t_c = bench::median(warm_total);
  const double t_hit = bench::median(warm_decode);
  std::printf("%zu scenario(s), %zu rep(s); one-time store build %.2f ms\n\n",
              sweep.size(), reps, build_seconds * 1e3);
  std::printf("%-28s %12s %14s\n", "cold-start strategy", "total ms",
              "vs rebuild");
  std::printf("%-28s %12.3f %14s\n", "A: rebuild (no store)", t_a * 1e3, "-");
  std::printf("%-28s %12.3f %13.2fx\n", "B: zero-trust read-through",
              t_b * 1e3, t_a / t_b);
  std::printf("%-28s %12.3f %13.2fx\n", "C: warm() + cache hits", t_c * 1e3,
              t_a / t_c);
  std::printf("%-28s %12.3f %13.2fx\n", "   (post-warm first decodes)",
              t_hit * 1e3, t_a / t_hit);

  std::filesystem::remove_all(dir);
  return 0;
}
