// Micro-benchmark: decode planning overhead (log table + partition +
// sub-plan construction) against a full decode — quantifying the paper's
// §III-C claim that the partition/matrix bookkeeping is "relatively low
// when the size of the sector is large".
#include <benchmark/benchmark.h>

#include <numeric>

#include "ppm.h"

namespace {

using namespace ppm;

struct Fixture {
  SDCode code{8, 16, 2, 2, 8};
  FailureScenario scenario;
  Fixture() {
    ScenarioGenerator gen(7);
    scenario = gen.sd_worst_case(code, 2, 2, 1).scenario;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void bm_log_table(benchmark::State& state) {
  auto& fx = fixture();
  for (auto _ : state) {
    LogTable t = LogTable::build(fx.code.parity_check(),
                                 fx.scenario.faulty());
    benchmark::DoNotOptimize(t);
  }
}

void bm_partition(benchmark::State& state) {
  auto& fx = fixture();
  const LogTable t =
      LogTable::build(fx.code.parity_check(), fx.scenario.faulty());
  for (auto _ : state) {
    Partition p = make_partition(fx.code.parity_check(), t);
    benchmark::DoNotOptimize(p);
  }
}

void bm_whole_plan(benchmark::State& state) {
  auto& fx = fixture();
  std::vector<std::size_t> rows(fx.code.parity_check().rows());
  std::iota(rows.begin(), rows.end(), 0);
  for (auto _ : state) {
    auto plan = SubPlan::make(fx.code.parity_check(), rows,
                              fx.scenario.faulty(), fx.scenario.faulty(),
                              Sequence::kMatrixFirst);
    benchmark::DoNotOptimize(plan);
  }
}

void bm_full_decode(benchmark::State& state) {
  auto& fx = fixture();
  const std::size_t block = static_cast<std::size_t>(state.range(0));
  Stripe stripe(fx.code, block);
  Rng rng(8);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(fx.code);
  if (!trad.encode(stripe.block_ptrs(), block)) {
    state.SkipWithError("encode failed");
    return;
  }
  const PpmDecoder dec(fx.code);
  for (auto _ : state) {
    stripe.erase(fx.scenario);
    auto res = dec.decode(fx.scenario, stripe.block_ptrs(), block);
    benchmark::DoNotOptimize(res);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(block) *
                          static_cast<std::int64_t>(fx.code.total_blocks()));
}

}  // namespace

BENCHMARK(bm_log_table);
BENCHMARK(bm_partition);
BENCHMARK(bm_whole_plan);
BENCHMARK(bm_full_decode)
    ->Arg(4 << 10)
    ->Arg(64 << 10)
    ->Arg(512 << 10)
    ->ArgName("block");
