// Extension — incremental XOR scheduling on binary decoding matrices
// (CRS / EVENODD / RDP): op-count and wall-time saving of the
// difference-based schedule over the naive one-XOR-per-nonzero execution.
#include <cstdio>
#include <cstring>
#include <numeric>

#include "analyze_hazard/hazard.h"
#include "codes/crs_code.h"
#include "codes/evenodd_code.h"
#include "codes/rdp_code.h"
#include "decode/xor_schedule.h"
#include "matrix/solve.h"
#include "optimize_xor/xoropt.h"
#include "verify_plan/plan_verify.h"

#include "bench_common.h"

using namespace ppm;

namespace {

// Decoding matrix G for a whole-system failure of a binary code.
Matrix decode_matrix(const ErasureCode& code,
                     const std::vector<std::size_t>& faulty) {
  const Matrix& h = code.parity_check();
  const Matrix f = h.select_columns(faulty);
  const auto sel = independent_rows(f);
  if (!sel.has_value()) std::exit(1);
  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < code.total_blocks(); ++c) {
    if (!std::binary_search(faulty.begin(), faulty.end(), c)) {
      survivors.push_back(c);
    }
  }
  return *f.select_rows(*sel).inverse() *
         h.select_columns(survivors).select_rows(*sel);
}

void report(const char* label, const ErasureCode& code,
            std::vector<std::size_t> faulty, std::size_t block) {
  std::sort(faulty.begin(), faulty.end());
  const Matrix g = decode_matrix(code, faulty);
  const auto schedule = plan_xor_schedule(g);
  if (!schedule.has_value()) {
    std::printf("%-22s (decode matrix not binary — skipped)\n", label);
    return;
  }
  // Never time a schedule that is not statically proven sound — serially
  // (symbolic replay) and as a parallel program over target units
  // (hazard DAG); the hazard profile also gives the critical path printed
  // below, the floor no parallel executor of this schedule can beat.
  const auto verdict = planverify::verify_xor_schedule(g, *schedule);
  if (!verdict.ok()) {
    std::fprintf(stderr, "%s: schedule failed verification:\n%s\n", label,
                 planverify::to_json(verdict.violations).c_str());
    std::exit(1);
  }
  const auto analysis = hazard::analyze_schedule(*schedule, g);
  if (!analysis.ok()) {
    std::fprintf(stderr, "%s: schedule has concurrency hazards:\n%s\n", label,
                 planverify::to_json(analysis.violations).c_str());
    std::exit(1);
  }
  // Superoptimized schedule for the greedy-vs-optimized column; it must
  // carry a passing proof before it is timed (the optimizer's own gate,
  // re-checked here from the bench's side).
  const auto optimized = xoropt::optimize(g, *schedule);
  const auto opt_proof = xoropt::prove(g, optimized.schedule);
  if (!opt_proof.empty()) {
    std::fprintf(stderr, "%s: optimized schedule failed its proof:\n%s\n",
                 label, planverify::to_json(opt_proof).c_str());
    std::exit(1);
  }
  // Time naive vs scheduled application over regions.
  std::vector<AlignedBuffer> src_store;
  std::vector<std::uint8_t*> srcs;
  Rng rng(3);
  for (std::size_t c = 0; c < g.cols(); ++c) {
    src_store.emplace_back(block);
    rng.fill(src_store.back().data(), block);
    srcs.push_back(src_store.back().data());
  }
  std::vector<AlignedBuffer> tgt_store;
  std::vector<std::uint8_t*> tgts;
  for (std::size_t r = 0; r < g.rows(); ++r) {
    tgt_store.emplace_back(block);
    tgts.push_back(tgt_store.back().data());
  }
  const gf::Field& f = code.field();
  const auto naive = [&] {
    for (std::size_t r = 0; r < g.rows(); ++r) {
      bool first = true;
      for (std::size_t c = 0; c < g.cols(); ++c) {
        if (g(r, c) == 0) continue;
        if (first) {
          f.mult_region(tgts[r], srcs[c], 1, block);
          first = false;
        } else {
          f.mult_region_xor(tgts[r], srcs[c], 1, block);
        }
      }
    }
  };
  std::vector<double> tn;
  std::vector<double> ts;
  std::vector<double> to;
  std::vector<double> tp;
  naive();  // warm-up
  ParallelXorReport par_report;
  for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
    Timer t1;
    naive();
    tn.push_back(t1.seconds());
    Timer t2;
    execute_xor_schedule(*schedule, srcs.data(), tgts.data(), block);
    ts.push_back(t2.seconds());
    // Snapshot the serial result; the optimized and unit-parallel runs
    // below must both reproduce it byte-identically (every rewrite and
    // the DAG dispatch are execution-order/op-count changes only).
    std::vector<std::vector<std::uint8_t>> serial_out;
    for (std::size_t r = 0; r < g.rows(); ++r) {
      serial_out.emplace_back(tgts[r], tgts[r] + block);
    }
    Timer t4;
    execute_xor_schedule(optimized.schedule, g.rows(), srcs.data(),
                         tgts.data(), block);
    to.push_back(t4.seconds());
    for (std::size_t r = 0; r < g.rows(); ++r) {
      if (std::memcmp(serial_out[r].data(), tgts[r], block) != 0) {
        std::fprintf(stderr, "%s: optimized output differs on target %zu\n",
                     label, r);
        std::exit(1);
      }
    }
    // At least 4 workers so the DAG dispatch engages even on a 1-core
    // host (the W column reports what actually ran).
    Timer t3;
    par_report = execute_xor_schedule_parallel(
        *schedule, g.rows(), srcs.data(), tgts.data(), block,
        std::max(4u, hardware_threads()));
    tp.push_back(t3.seconds());
    for (std::size_t r = 0; r < g.rows(); ++r) {
      if (std::memcmp(serial_out[r].data(), tgts[r], block) != 0) {
        std::fprintf(stderr, "%s: parallel output differs on target %zu\n",
                     label, r);
        std::exit(1);
      }
    }
  }
  std::printf("%-22s %8zu %8zu %8zu %7.1f%% %9.3fms %9.3fms %9.3fms %9.3fms/%u"
              " %7zu %7.2fx\n",
              label, schedule->naive_ops, schedule->cost(),
              optimized.schedule.cost(), 100 * optimized.schedule.saving(),
              bench::median(std::move(tn)) * 1e3,
              bench::median(std::move(ts)) * 1e3,
              bench::median(std::move(to)) * 1e3,
              bench::median(std::move(tp)) * 1e3,
              par_report.parallel ? par_report.workers : 1,
              analysis.critical_path, analysis.speedup_bound());
}

}  // namespace

int main() {
  bench::banner("Extension", "incremental XOR schedule vs naive (binary codes)");
  std::printf("%-22s %8s %8s %8s %8s %10s %10s %10s %12s %7s %8s\n",
              "code/failure", "naive", "sched", "opt", "saving", "t-naive",
              "t-sched", "t-opt", "t-par/W", "cpath", "maxspd");

  {
    const CRSCode code(8, 2, 8);
    report("CRS(8,2) 1 strip", code, code.strip_blocks(3), 64 << 10);
    std::vector<std::size_t> two = code.strip_blocks(1);
    const auto more = code.strip_blocks(6);
    two.insert(two.end(), more.begin(), more.end());
    report("CRS(8,2) 2 strips", code, two, 64 << 10);
  }
  {
    const EvenOddCode code(7);
    std::vector<std::size_t> faulty;
    for (std::size_t i = 0; i < code.rows(); ++i) {
      faulty.push_back(code.block_id(i, 0));
      faulty.push_back(code.block_id(i, 3));
    }
    report("EVENODD p=7 2 disks", code, faulty, 64 << 10);
  }
  {
    const RDPCode code(7);
    std::vector<std::size_t> faulty;
    for (std::size_t i = 0; i < code.rows(); ++i) {
      faulty.push_back(code.block_id(i, 0));
      faulty.push_back(code.block_id(i, 3));
    }
    report("RDP p=7 2 disks", code, faulty, 64 << 10);
  }
  std::printf("\n(difference-based scheduling reuses computed targets; the "
              "saving depends on row overlap in the decode matrix)\n");
  return 0;
}
