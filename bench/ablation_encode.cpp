// Ablation — encoding through PPM. The paper treats encoding as the
// decoding special case where all parity blocks are unknown (§II-B
// footnote); for SD codes the per-row parity groups are independent, so
// encoding partitions into p ≈ r groups and parallelizes the same way
// decoding does. This bench measures traditional vs PPM encode.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "encoding as the all-parity decode (trad vs PPM)");
  const std::size_t r = 16;
  std::printf("%4s %2s %2s  %10s %10s %12s %12s  %6s\n", "n", "m", "s",
              "trad-ops", "ppm-ops", "trad", "ppm-model", "p");
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u}) {
      for (const std::size_t n : {6u, 11u, 16u, 21u}) {
        if (n <= m) continue;
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        Stripe stripe(code, block);
        Rng rng(0xE2C + n);
        stripe.fill_data(rng);
        const TraditionalDecoder trad(code);
        PpmOptions opts;
        opts.threads = 4;
        const PpmDecoder ppm_dec(code, opts);

        // Warm-up.
        if (!trad.encode(stripe.block_ptrs(), block)) return 1;

        std::vector<double> tt;
        std::vector<double> tp;
        std::size_t trad_ops = 0;
        std::size_t ppm_ops = 0;
        std::size_t p = 0;
        for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
          const auto te = trad.encode(stripe.block_ptrs(), block);
          if (!te) return 1;
          tt.push_back(te->seconds);
          trad_ops = te->stats.mult_xors;
          const auto pe = ppm_dec.encode(stripe.block_ptrs(), block);
          if (!pe) return 1;
          tp.push_back(pe->modeled_seconds(4));
          ppm_ops = pe->stats.mult_xors;
          p = pe->p;
        }
        std::printf("%4zu %2zu %2zu  %10zu %10zu %10.2fms %10.2fms  %6zu\n",
                    n, m, s, trad_ops, ppm_ops,
                    bench::median(std::move(tt)) * 1e3,
                    bench::median(std::move(tp)) * 1e3, p);
      }
    }
  }
  std::printf("\n(encoding partitions per stripe row for SD: p tracks r or "
              "r-1 depending on where the coding sectors sit)\n");
  return 0;
}
