// Ablation — calculation sequence alone (no partitioning, no threads):
// measured decode time of the traditional decoder under the normal
// sequence (C1), the matrix-first sequence (C2) and the Auto policy, for
// the paper's SD sweep. Isolates observation O2 (§II-B) from everything
// else PPM does.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "calculation sequence only (traditional decoder)");
  const std::size_t r = 16;
  const std::size_t z = 1;

  std::printf("%4s %2s %2s  %9s %9s %9s  %8s %8s  %s\n", "n", "m", "s",
              "normal", "mfirst", "auto", "C1", "C2", "auto-pick");
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u, 3u}) {
      for (const std::size_t n : {6u, 11u, 16u, 21u}) {
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        Stripe stripe(code, block);
        Rng rng(0xAB1 + n);
        stripe.fill_data(rng);
        const TraditionalDecoder trad(code);
        if (!trad.encode(stripe.block_ptrs(), block)) return 1;
        ScenarioGenerator gen(0xAB1A + n * 100 + m * 10 + s);
        const auto g = gen.sd_worst_case(code, m, s, z);

        const auto timed = [&](SequencePolicy policy) {
          stripe.erase(g.scenario);  // warm-up
          auto res = trad.decode(g.scenario, stripe.block_ptrs(), block,
                                 policy);
          std::vector<double> t;
          for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
            stripe.erase(g.scenario);
            res = trad.decode(g.scenario, stripe.block_ptrs(), block, policy);
            if (!res) std::exit(1);
            t.push_back(res->seconds);
          }
          return std::make_pair(bench::median(t), *res);
        };
        const auto [tn, rn] = timed(SequencePolicy::kNormal);
        const auto [tm, rm] = timed(SequencePolicy::kMatrixFirst);
        const auto [ta, ra] = timed(SequencePolicy::kAuto);
        std::printf("%4zu %2zu %2zu  %7.2fms %7.2fms %7.2fms  %8zu %8zu  %s\n",
                    n, m, s, tn * 1e3, tm * 1e3, ta * 1e3,
                    rn.stats.mult_xors, rm.stats.mult_xors,
                    ra.sequence_used == Sequence::kNormal ? "normal"
                                                          : "mfirst");
      }
    }
  }
  std::printf("\n(auto must track min(C1, C2); the sequence choice alone is "
              "worth a few percent — the partition adds the rest)\n");
  return 0;
}
