// Ablation — serving the decode: what do async survivor fetch, hedged
// reads and readiness-overlapped group solves buy under stragglers?
// Three variants decode the same erased stripe from a fault-injecting
// source rolled with *identical* seeded straggler schedules
// (delay_attempts=1, i.e. transient — a duplicate read is fast):
//
//   serial     decode_resilient: blocking reads, solve after last fetch
//   overlap    decode_overlapped, hedging off: async fetch, each O1 group
//              solves the moment its survivors land
//   hedged     decode_overlapped + hedged reads: stragglers are raced
//              against a duplicate once the latency quantile trips
//
// Under transient stragglers the serial path eats every delay back to
// back, overlap hides those that finish before the slowest read, and
// hedging clips the tail itself — docs/SERVING.md.
#include <cstdio>
#include <cstring>
#include <vector>

#include "codec/codec.h"
#include "io/fault_injection.h"
#include "serve/overlap.h"

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "serial vs overlapped vs hedged decode serving");
  const std::size_t n = 8;
  const std::size_t r = 16;
  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, 2, 2, w);
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const std::size_t block = 64u << 10;
  const double straggle = 0.30;
  const std::chrono::microseconds delay{2000};

  Stripe stripe(code, block);
  Rng fill(1);
  stripe.fill_data(fill);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) return 1;
  const auto snap = stripe.snapshot();
  const std::size_t total = code.total_blocks();
  std::vector<const std::uint8_t*> backing(total);
  for (std::size_t b = 0; b < total; ++b) {
    backing[b] = snap.data() + b * block;
  }
  const std::vector<std::size_t> exempt(g.scenario.faulty().begin(),
                                        g.scenario.faulty().end());

  io::FaultInjectingSource::CampaignOptions campaign;
  campaign.delay = straggle;
  campaign.delay_ns = delay;
  campaign.delay_attempts = 1;

  serve::OverlapOptions overlap;
  overlap.hedge.enabled = false;
  overlap.reactor_threads = 32;
  serve::OverlapOptions hedged = overlap;
  hedged.hedge.enabled = true;

  Codec codec(code);
  // Warm the plan cache so every variant measures serving, not planning.
  stripe.erase(g.scenario);
  if (!codec.decode(g.scenario, stripe.block_ptrs(), block)) return 1;

  const std::size_t reps = bench::reps() * 3;
  std::vector<double> t_serial;
  std::vector<double> t_overlap;
  std::vector<double> t_hedged;
  std::size_t hedges_won = 0;
  // Each variant replays the same straggler schedules: one Rng stream
  // per variant, seeded identically, advanced in lockstep per rep.
  Rng rng_serial(7);
  Rng rng_overlap(7);
  Rng rng_hedged(7);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    io::MemoryBlockSource inner(backing.data(), total, block);
    {
      io::FaultInjectingSource source(inner);
      source.roll_campaign(campaign, rng_serial, exempt);
      stripe.erase(g.scenario);
      Timer t;
      if (!codec.decode_resilient(g.scenario, source, stripe.block_ptrs(),
                                  block).complete) {
        return 1;
      }
      t_serial.push_back(t.seconds());
      if (!stripe.equals(snap)) return 1;
    }
    {
      io::FaultInjectingSource source(inner);
      source.roll_campaign(campaign, rng_overlap, exempt);
      stripe.erase(g.scenario);
      Timer t;
      const auto out = serve::decode_overlapped(
          codec, g.scenario, source, stripe.block_ptrs(), block, overlap);
      if (!out.complete) return 1;
      t_overlap.push_back(t.seconds());
      if (!stripe.equals(snap)) return 1;
    }
    {
      io::FaultInjectingSource source(inner);
      source.roll_campaign(campaign, rng_hedged, exempt);
      stripe.erase(g.scenario);
      Timer t;
      const auto out = serve::decode_overlapped(
          codec, g.scenario, source, stripe.block_ptrs(), block, hedged);
      if (!out.complete) return 1;
      t_hedged.push_back(t.seconds());
      hedges_won += out.hedges_won;
    }
    if (!stripe.equals(snap)) return 1;
  }
  const auto maxv = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end());
  };
  const double serial_max = maxv(t_serial);
  const double overlap_max = maxv(t_overlap);
  const double hedged_max = maxv(t_hedged);
  const double serial = bench::median(std::move(t_serial));
  const double over = bench::median(std::move(t_overlap));
  const double hedge = bench::median(std::move(t_hedged));
  std::printf("%10s  %10s %10s  %9s\n", "variant", "median", "max", "vs serial");
  std::printf("%10s  %8.3fms %8.3fms  %8s\n", "serial", serial * 1e3,
              serial_max * 1e3, "--");
  std::printf("%10s  %8.3fms %8.3fms  %8.2fx\n", "overlap", over * 1e3,
              overlap_max * 1e3, serial / over);
  std::printf("%10s  %8.3fms %8.3fms  %8.2fx\n", "hedged", hedge * 1e3,
              hedged_max * 1e3, serial / hedge);
  std::printf("\n(straggle %.0f%% of reads by %lldus, transient: the "
              "duplicate a hedge issues is fast; %zu hedges won across "
              "%zu hedged reps)\n",
              straggle * 100, static_cast<long long>(delay.count()),
              hedges_won, reps);
  std::printf("\nserve metrics: %s\n", serve_metrics().to_json().c_str());
  return 0;
}
