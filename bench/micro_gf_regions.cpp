// Micro-benchmark: mult_XOR region throughput per field width, ISA family
// and region size — the primitive whose count the whole paper optimizes.
#include <benchmark/benchmark.h>

#include "common/aligned_buffer.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "gf/galois_field.h"

namespace {

using namespace ppm;

void bm_mult_region_xor(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  const auto isa = static_cast<IsaLevel>(state.range(1));
  const std::size_t bytes = static_cast<std::size_t>(state.range(2));
  if (isa > detect_isa()) {
    state.SkipWithError("ISA level not available on this CPU");
    return;
  }
  const gf::Field& f = gf::field(w);
  AlignedBuffer src(bytes);
  AlignedBuffer dst(bytes);
  Rng rng(1);
  rng.fill(src.data(), bytes);
  rng.fill(dst.data(), bytes);
  const gf::Element c = (static_cast<gf::Element>(rng.next()) &
                         f.max_element()) | 2;
  for (auto _ : state) {
    f.mult_region_xor_isa(dst.data(), src.data(), c, bytes, isa);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
  state.SetLabel(std::string(isa_name(isa)) + " w" + std::to_string(w));
}

void bm_xor_region(benchmark::State& state) {
  const std::size_t bytes = static_cast<std::size_t>(state.range(0));
  AlignedBuffer src(bytes);
  AlignedBuffer dst(bytes);
  Rng rng(2);
  rng.fill(src.data(), bytes);
  for (auto _ : state) {
    gf::xor_region(dst.data(), src.data(), bytes);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}

void bm_scalar_mul(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  const gf::Field& f = gf::field(w);
  Rng rng(3);
  gf::Element a = (static_cast<gf::Element>(rng.next()) & f.max_element()) | 1;
  gf::Element b = (static_cast<gf::Element>(rng.next()) & f.max_element()) | 1;
  for (auto _ : state) {
    a = f.mul(a, b) | 1;
    benchmark::DoNotOptimize(a);
  }
}

}  // namespace

BENCHMARK(bm_mult_region_xor)
    ->ArgsProduct({{8, 16, 32},
                   {0, 1, 2, 3},  // scalar, ssse3, avx2, avx512
                   {4 << 10, 128 << 10}})
    ->ArgNames({"w", "isa", "bytes"});

BENCHMARK(bm_xor_region)->Arg(4 << 10)->Arg(128 << 10)->ArgName("bytes");

BENCHMARK(bm_scalar_mul)->Arg(8)->Arg(16)->Arg(32)->ArgName("w");
