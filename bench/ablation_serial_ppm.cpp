// Ablation — PPM without parallelism (T = 1): the paper's §III-B/§IV claim
// that PPM "can achieve performance improvement without triggering
// parallelism" purely from partitioning + sequence optimization (C4 < C1).
// On this single-core host the wall-clock numbers are the real thing, no
// modeling involved.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Ablation", "PPM at T=1 — cost reduction only, no threads");
  const std::size_t r = 16;
  const std::size_t z = 1;

  std::printf("%4s %2s %2s  %10s %10s %10s  %12s\n", "n", "m", "s",
              "trad-ops", "ppm-ops", "op-saving", "wall-impr");
  double sum = 0;
  std::size_t count = 0;
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u, 3u}) {
      for (const std::size_t n : {6u, 11u, 16u, 21u}) {
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        const auto pt = bench::compare_sd(code, m, s, z, /*threads=*/1,
                                          0xAB2A + n * 100 + m * 10 + s,
                                          block);
        const double saving =
            100.0 * (static_cast<double>(pt.c1) - static_cast<double>(pt.ppm_ops)) /
            static_cast<double>(pt.c1);
        std::printf("%4zu %2zu %2zu  %10zu %10zu %9.2f%%  %11.2f%%\n", n, m,
                    s, pt.c1, pt.ppm_ops, saving,
                    100 * pt.measured_improvement());
        sum += pt.measured_improvement();
        ++count;
      }
    }
  }
  std::printf("\naverage single-thread wall improvement: %.2f%%\n",
              100 * sum / count);
  std::printf("(every percent here comes from mult_XOR reduction — "
              "C4 < C1 — not from threads)\n");
  return 0;
}
