// Fig. 10 — PPM improvement on three different CPUs (paper: Xeon E5-2603
// 4-core, i7-3930K 6-core, Xeon E5-2650 8-core; similar improvement on
// all three).
//
// Substitution (DESIGN.md §3): one physical CPU is available here, so the
// "different CPU" axis is replayed along its two constituent dimensions:
//   (a) core count — the modeled lane count set to 4 / 6 / 8;
//   (b) micro-architecture — the GF kernel ISA family pinned to scalar /
//       SSSE3 / AVX2 / AVX-512 via PPM_FORCE_ISA, exercised per-op here.
// The paper's claim is that the *improvement ratio* is insensitive to the
// CPU; that is exactly what both axes test.
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Fig.10", "PPM improvement across CPU proxies (r=16, z=1, T=4)");
  const std::size_t r = 16;
  const std::size_t z = 1;
  const std::size_t ns[] = {6, 11, 16, 21};

  std::printf("--- axis (a): modeled core count (lane count) ---\n");
  std::printf("%4s %2s %2s  %10s %10s %10s\n", "n", "m", "s", "4-core",
              "6-core", "8-core");
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u, 3u}) {
      for (const std::size_t n : ns) {
        if (n <= m || s > z * (n - m)) continue;
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        ScenarioGenerator gen(0xF16A000 + n * 100 + m * 10 + s);
        const auto g = gen.sd_worst_case(code, m, s, z);
        Stripe stripe(code, block);
        Rng rng(1);
        stripe.fill_data(rng);
        const TraditionalDecoder trad(code);
        if (!trad.encode(stripe.block_ptrs(), block)) return 1;
        // Untimed warm-up.
        stripe.erase(g.scenario);
        if (!trad.decode(g.scenario, stripe.block_ptrs(), block)) return 1;
        std::vector<double> t_trad;
        std::vector<double> t4;
        std::vector<double> t6;
        std::vector<double> t8;
        PpmOptions opts;
        opts.threads = 4;
        const PpmDecoder dec(code, opts);
        for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
          stripe.erase(g.scenario);
          const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), block);
          if (!tr) return 1;
          t_trad.push_back(tr->seconds);
          stripe.erase(g.scenario);
          const auto pr = dec.decode(g.scenario, stripe.block_ptrs(), block);
          if (!pr) return 1;
          t4.push_back(pr->modeled_seconds(4));
          t6.push_back(pr->modeled_seconds(6));
          t8.push_back(pr->modeled_seconds(8));
        }
        const double base = bench::median(t_trad);
        std::printf("%4zu %2zu %2zu  %9.2f%% %9.2f%% %9.2f%%\n", n, m, s,
                    100 * bench::improvement(base, bench::median(t4)),
                    100 * bench::improvement(base, bench::median(t6)),
                    100 * bench::improvement(base, bench::median(t8)));
      }
    }
  }

  std::printf("\n--- axis (b): GF kernel ISA family (single-core wall "
              "improvement, T=1) ---\n");
  std::printf("run this binary under PPM_FORCE_ISA=scalar|ssse3|avx2|avx512 to pin "
              "a family; current run uses '%s'.\n", isa_name(detect_isa()));
  std::printf("%4s %2s %2s  %12s %12s %14s\n", "n", "m", "s", "SD MB/s",
              "opt-SD MB/s", "wall-impr");
  for (const std::size_t n : ns) {
    const std::size_t m = 2;
    const std::size_t s = 2;
    const unsigned w = SDCode::recommended_width(n, r);
    const SDCode code(n, r, m, s, w);
    const std::size_t block =
        bench::block_bytes_for(n * r, code.field().symbol_bytes());
    const auto pt = bench::compare_sd(code, m, s, z, 1,
                                      0xF16A100 + n, block);
    const std::size_t bytes = block * n * r;
    std::printf("%4zu %2zu %2zu  %12.0f %12.0f %13.2f%%\n", n, m, s,
                bench::mb_per_s(bytes, pt.trad_seconds),
                bench::mb_per_s(bytes, pt.ppm_wall_seconds),
                100 * pt.measured_improvement());
  }
  std::printf("\n(paper: improvement ratios similar across all three CPUs)\n");
  return 0;
}
