// Micro-benchmark: the matrix algebra of the decode planner (inversion,
// products, rank) — the work the paper argues is negligible against the
// region operations it steers.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "matrix/matrix.h"
#include "matrix/solve.h"

namespace {

using namespace ppm;

Matrix random_invertible(const gf::Field& f, std::size_t n, Rng& rng) {
  for (;;) {
    Matrix m(f, n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        m(r, c) = static_cast<gf::Element>(rng.next()) & f.max_element();
      }
    }
    if (m.rank() == n) return m;
  }
}

void bm_matrix_inverse(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  Rng rng(4);
  const Matrix m = random_invertible(gf::field(w), n, rng);
  for (auto _ : state) {
    auto inv = m.inverse();
    benchmark::DoNotOptimize(inv);
  }
}

void bm_matrix_product(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const gf::Field& f = gf::field(8);
  const Matrix a = random_invertible(f, n, rng);
  const Matrix b = random_invertible(f, n, rng);
  for (auto _ : state) {
    Matrix p = a * b;
    benchmark::DoNotOptimize(p);
  }
}

void bm_independent_rows(benchmark::State& state) {
  const std::size_t cols = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = cols + 8;
  Rng rng(6);
  const gf::Field& f = gf::field(8);
  Matrix m(f, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<gf::Element>(rng.next()) & f.max_element();
    }
  }
  for (auto _ : state) {
    auto sel = independent_rows(m);
    benchmark::DoNotOptimize(sel);
  }
}

}  // namespace

BENCHMARK(bm_matrix_inverse)
    ->ArgsProduct({{8, 16, 32}, {5, 18, 51}})
    ->ArgNames({"w", "n"});
BENCHMARK(bm_matrix_product)->Arg(5)->Arg(18)->Arg(51)->ArgName("n");
BENCHMARK(bm_independent_rows)->Arg(5)->Arg(18)->Arg(51)->ArgName("cols");
