// Fig. 11 — PPM improvement for LRC codes across storage cost 1.1 .. 1.7,
// with (left panel) fixed stripe size and (right panel) fixed strip size.
// Failure pattern: one faulty strip in each local group plus one extra
// failure, so the local repairs are the independent sub-matrices and the
// globals form H_rest (the paper reports 16.28%..36.71% improvement,
// smaller than SD because p is bounded by l, not by r - z).
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

namespace {

struct LrcPoint {
  std::size_t k, l, g;
};

// Configurations chosen so (k+l+g)/k lands on the paper's x-axis.
constexpr LrcPoint kConfigs[] = {
    {40, 2, 2},  // 1.10
    {20, 2, 2},  // 1.20
    {20, 4, 2},  // 1.30
    {10, 2, 2},  // 1.40
    {10, 3, 2},  // 1.50
    {10, 4, 2},  // 1.60
    {10, 4, 3},  // 1.70
};

double run_point(const LRCCode& code, std::size_t block,
                 std::uint64_t seed) {
  ScenarioGenerator gen(seed);
  // Worst useful case: every local group loses one strip, plus one extra
  // failure handled by the global parities.
  const auto g = gen.lrc_failures(code, code.l(), 1);

  Stripe stripe(code, block);
  Rng rng(seed ^ 0x55AA);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) std::exit(1);

  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  // Untimed warm-up.
  stripe.erase(g.scenario);
  if (!trad.decode(g.scenario, stripe.block_ptrs(), block)) std::exit(2);
  std::vector<double> t_trad;
  std::vector<double> t_ppm;
  for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
    stripe.erase(g.scenario);
    const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), block);
    if (!tr) std::exit(2);
    t_trad.push_back(tr->seconds);
    stripe.erase(g.scenario);
    const auto pr = dec.decode(g.scenario, stripe.block_ptrs(), block);
    if (!pr) std::exit(3);
    t_ppm.push_back(pr->modeled_seconds(4));
  }
  return bench::improvement(bench::median(t_trad), bench::median(t_ppm));
}

}  // namespace

int main() {
  bench::banner("Fig.11", "LRC improvement vs storage cost");

  std::printf("--- fixed stripe size (%zu MiB total) ---\n",
              bench::stripe_mib());
  std::printf("%6s %14s %12s\n", "cost", "LRC(k,l,g)", "improvement");
  for (const LrcPoint& cfg : kConfigs) {
    const LRCCode code(cfg.k, cfg.l, cfg.g, 8);
    const std::size_t block = bench::block_bytes_for(code.total_blocks(), 1);
    const double impr =
        run_point(code, block, 0xF16B000 + cfg.k * 100 + cfg.l * 10 + cfg.g);
    std::printf("%6.2f  LRC(%2zu,%zu,%zu)  %10.2f%%\n", code.storage_cost(),
                cfg.k, cfg.l, cfg.g, 100 * impr);
  }

  // Fixed strip size: each strip keeps the same byte count regardless of k,
  // so bigger codes mean bigger stripes (paper: strip = 64 MB; scaled to
  // stripe_mib()/4 per strip here).
  const std::size_t strip_bytes =
      std::max<std::size_t>(bench::stripe_mib() * 1024 * 1024 / 4, 64 * 1024);
  std::printf("\n--- fixed strip size (%zu KiB per strip) ---\n",
              strip_bytes / 1024);
  std::printf("%6s %14s %12s\n", "cost", "LRC(k,l,g)", "improvement");
  for (const LrcPoint& cfg : kConfigs) {
    const LRCCode code(cfg.k, cfg.l, cfg.g, 8);
    const double impr = run_point(code, strip_bytes,
                                  0xF16B100 + cfg.k * 100 + cfg.l * 10 +
                                      cfg.g);
    std::printf("%6.2f  LRC(%2zu,%zu,%zu)  %10.2f%%\n", code.storage_cost(),
                cfg.k, cfg.l, cfg.g, 100 * impr);
  }

  std::printf("\n(paper: improvement 16.28%%..36.71%%, below SD because the "
              "parallelism degree is bounded by l)\n");
  return 0;
}
