// Fig. 8 — decoding speed of SD (traditional, normal sequence) vs opt-SD
// (PPM, T = 4) for n in [6, 24], one panel per m in {1,2,3}, curves per s,
// plus the RS(m+1) reference speeds at w = 8/16/32. Paper setting:
// stripe = 32 MB, r = 16, T = 4, z = 1.
//
// Speeds are decode throughput in MB/s of stripe data; opt-SD uses the
// modeled T-lane time (see bench_common.h). The field-width switch at
// n*r > 255 produces the paper's "jagged lines".
#include <cstdio>

#include "bench_common.h"

using namespace ppm;

int main() {
  bench::banner("Fig.8", "SD vs opt-SD decode speed, RS reference (r=16, T=4, z=1)");
  const std::size_t r = 16;
  const std::size_t z = 1;
  const unsigned t = 4;

  double max_impr = 0;
  double sum_impr = 0;
  double min_impr = 1e9;
  std::size_t count = 0;

  for (const std::size_t m : {1u, 2u, 3u}) {
    std::printf("--- m = %zu (speeds in MB/s) ---\n", m);
    std::printf("%4s %2s", "n", "w");
    for (const std::size_t s : {1u, 2u, 3u}) {
      std::printf("  %8s%zu %8s%zu %7s%zu", "SD,s=", s, "opt,s=", s, "impr,s=",
                  s);
    }
    std::printf("\n");
    for (std::size_t n = 6; n <= 24; n += 2) {
      const unsigned w = SDCode::recommended_width(n, r);
      std::printf("%4zu %2u", n, w);
      for (const std::size_t s : {1u, 2u, 3u}) {
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        const auto pt = bench::compare_sd(
            code, m, s, z, t, 0xF168000 + n * 100 + m * 10 + s, block);
        const std::size_t bytes = block * n * r;
        const double impr = pt.modeled_improvement();
        std::printf("  %9.0f %9.0f %7.0f%%",
                    bench::mb_per_s(bytes, pt.trad_seconds),
                    bench::mb_per_s(bytes, pt.ppm_model_seconds), 100 * impr);
        max_impr = std::max(max_impr, impr);
        min_impr = std::min(min_impr, impr);
        sum_impr += impr;
        ++count;
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  // RS reference: decode speed of RS(k = n - (m+1), m+1) worst-case decode
  // at each field width (the paper plots "RS with m+1" since an SD code
  // with m disks + s sectors is compared against full (m+1)-disk parity).
  std::printf("--- RS(m+1) reference decode speed (MB/s) ---\n");
  std::printf("%4s %3s %10s %10s %10s\n", "n", "m+1", "w=8", "w=16", "w=32");
  for (const std::size_t m : {1u, 2u, 3u}) {
    for (std::size_t n = 6; n <= 24; n += 6) {
      std::printf("%4zu %3zu", n, m + 1);
      for (const unsigned w : {8u, 16u, 32u}) {
        const RSCode code(n - (m + 1), m + 1, w);
        const std::size_t block =
            bench::block_bytes_for(n, code.field().symbol_bytes());
        Stripe stripe(code, block);
        Rng rng(0xF168100 + n + m + w);
        stripe.fill_data(rng);
        const TraditionalDecoder trad(code);
        if (!trad.encode(stripe.block_ptrs(), block)) return 1;
        ScenarioGenerator gen(0xF168200 + n * 10 + m + w);
        const auto g = gen.rs_failures(code, m + 1);
        std::vector<double> times;
        for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
          stripe.erase(g.scenario);
          const auto res = trad.decode(g.scenario, stripe.block_ptrs(), block,
                                       SequencePolicy::kMatrixFirst);
          if (!res) return 1;
          times.push_back(res->seconds);
        }
        std::printf(" %10.0f",
                    bench::mb_per_s(block * n, bench::median(times)));
      }
      std::printf("\n");
    }
  }

  std::printf("\nopt-SD improvement over SD: avg=%.2f%% range=[%.2f%%, %.2f%%]\n",
              100 * sum_impr / count, 100 * min_impr, 100 * max_impr);
  std::printf("(paper: avg=61.09%%, range=[8.22%%, 210.81%%])\n");
  return 0;
}
