// Extension experiment — CRS (bit-matrix, XOR-only) vs RS (GF multiply)
// decoding, and PPM applied to both. The paper's related work contrasts
// equation-oriented parallelism on CRS [41] with PPM; here the identical
// PPM machinery runs on CRS's packet-granular binary H, so the comparison
// is direct:
//   * RS pays per-op GF multiplies but needs ~w× fewer, wider ops;
//   * CRS pays only XORs but issues many narrow ones;
//   * PPM's partition applies to both (single-strip failures partition per
//     parity-row bucket for CRS).
#include <cstdio>

#include "codes/crs_code.h"

#include "bench_common.h"

using namespace ppm;

namespace {

struct Timing {
  double trad = 0;
  double ppm = 0;
  std::size_t ops = 0;
  std::size_t ppm_ops = 0;
};

Timing run(const ErasureCode& code, const FailureScenario& sc,
           std::size_t block) {
  Stripe stripe(code, block);
  Rng rng(99);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) std::exit(1);
  PpmOptions opts;
  opts.threads = 1;  // cost-reduction comparison, no modeling
  const PpmDecoder ppm_dec(code, opts);

  stripe.erase(sc);  // warm-up
  if (!trad.decode(sc, stripe.block_ptrs(), block)) std::exit(1);

  Timing t;
  std::vector<double> tt;
  std::vector<double> tp;
  for (std::size_t rep = 0; rep < bench::reps(); ++rep) {
    stripe.erase(sc);
    const auto tr = trad.decode(sc, stripe.block_ptrs(), block);
    if (!tr) std::exit(1);
    tt.push_back(tr->seconds);
    t.ops = tr->stats.mult_xors;
    stripe.erase(sc);
    const auto pr = ppm_dec.decode(sc, stripe.block_ptrs(), block);
    if (!pr) std::exit(1);
    tp.push_back(pr->seconds);
    t.ppm_ops = pr->stats.mult_xors;
  }
  t.trad = bench::median(std::move(tt));
  t.ppm = bench::median(std::move(tp));
  return t;
}

}  // namespace

int main() {
  bench::banner("Extension", "CRS (XOR bit-matrix) vs RS (GF) decode");
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "code", "ops", "trad",
              "ppm-ops", "ppm", "MB/s trad");
  for (const std::size_t m : {2u, 3u}) {
    for (const std::size_t k : {6u, 10u}) {
      // Equal stripe payloads: RS strips vs CRS packets.
      const std::size_t strip = 256 * 1024;

      const RSCode rs(k, m, 8);
      ScenarioGenerator gen(0xCC5 + k * 10 + m);
      const auto rs_sc = gen.rs_failures(rs, m);
      const Timing rst = run(rs, rs_sc.scenario, strip);
      std::printf("RS(%2zu,%zu)           %10zu %8.2fms %10zu %8.2fms %10.0f\n",
                  k, m, rst.ops, rst.trad * 1e3, rst.ppm_ops, rst.ppm * 1e3,
                  bench::mb_per_s(strip * (k + m), rst.trad));

      const CRSCode crs(k, m, 8);
      // Same failed strip count; packet block = strip/8.
      std::vector<std::size_t> faulty;
      for (std::size_t s = 0; s < m; ++s) {
        const auto blocks = crs.strip_blocks(rs_sc.scenario.faulty()[s] %
                                             crs.disks());
        faulty.insert(faulty.end(), blocks.begin(), blocks.end());
      }
      const FailureScenario crs_sc{faulty};
      const Timing crst = run(crs, crs_sc, strip / 8);
      std::printf("CRS(%2zu,%zu) packets   %10zu %8.2fms %10zu %8.2fms %10.0f\n",
                  k, m, crst.ops, crst.trad * 1e3, crst.ppm_ops,
                  crst.ppm * 1e3,
                  bench::mb_per_s(strip * (k + m), crst.trad));
    }
  }
  std::printf("\n(CRS trades one GF multiply per op for ~w/2 XOR ops; with "
              "SIMD GF kernels the multiply is nearly free, so RS wins on "
              "op count while CRS wins on op simplicity — and PPM's cost "
              "reduction applies to both)\n");
  return 0;
}
