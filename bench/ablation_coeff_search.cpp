// Ablation — verifier-guided coefficient search vs the paper's tuple.
//
// Plank's SD construction fixes a coefficient tuple per geometry (the
// published SD^{2,2}_{6,4} tuple over GF(2^8) is (1, 42, 26, 61)). The
// search_coeff oracle can instead *search* the space: candidates are
// rank-prescreened against sampled worst-case scenarios, survivors are
// exhaustively certified (every canonical scenario class rank-proven,
// a deterministic subset driven through plan_for + planverify + hazard)
// and ranked by their certified worst-case profile.
//
// For each geometry this bench certifies the baseline tuple — the paper
// tuple where one is published, the historical consecutive-powers tuple
// otherwise — and runs the search, then compares the certified
// worst-case critical path and work. The search result must never be
// worse than the baseline on the paper geometry (exit 1 otherwise:
// this doubles as a regression gate for the search pipeline).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

using namespace ppm;
using namespace ppm::coeffsearch;

namespace {

struct Row {
  const char* label;
  Geometry g;
  std::vector<gf::Element> baseline;  // empty = consecutive powers
  bool gate;                          // search must match-or-beat baseline
};

std::vector<gf::Element> consecutive_powers(const Geometry& g) {
  const gf::Field& f = gf::field(g.w);
  std::vector<gf::Element> tuple(g.m + g.s);
  for (std::size_t q = 0; q < tuple.size(); ++q) tuple[q] = f.exp2(q);
  return tuple;
}

}  // namespace

int main() {
  bench::banner("Ablation", "certified coefficient search vs paper tuple");

  // The paper's flagship geometry plus the other n = 6 shapes the Fig. 8
  // family sweeps; larger fig8 geometries (n >= 8 over GF(2^8)) provably
  // admit no perfect tuple, so for them the search result equals the
  // characterized baseline and the comparison is vacuous.
  const std::vector<Row> rows = {
      {"SD(6,4,2,2) paper", {6, 4, 2, 2, 8}, {1, 42, 26, 61}, true},
      {"SD(6,8,2,2)", {6, 8, 2, 2, 8}, {}, false},
      {"SD(6,6,2,2)", {6, 6, 2, 2, 8}, {}, false},
  };

  std::printf("%-20s %10s %10s %10s %10s %9s %9s\n", "geometry",
              "base cpath", "base work", "best cpath", "best work",
              "cert ms", "search ms");

  bool gate_failed = false;
  for (const Row& row : rows) {
    const std::vector<gf::Element> baseline =
        row.baseline.empty() ? consecutive_powers(row.g) : row.baseline;

    CertifyOptions copts;
    copts.allow_deficient = true;  // characterize, never abort
    Timer t_cert;
    const CertifyResult base = certify_tuple(row.g, baseline, copts);
    const double cert_ms = t_cert.seconds() * 1e3;
    if (!base.certified) {
      std::fprintf(stderr, "%s: baseline characterization failed: %s\n",
                   row.label, base.reason.c_str());
      return 1;
    }

    SearchOptions sopts;
    sopts.candidate_budget = 192;
    sopts.certify_budget = 3;
    Timer t_search;
    const SearchResult best = search_best(row.g, sopts);
    const double search_ms = t_search.seconds() * 1e3;
    if (!best.found) {
      std::fprintf(stderr, "%s: search found no certifiable tuple: %s\n",
                   row.label, best.reason.c_str());
      return 1;
    }

    const ClassProfile& b = base.cert.worst_case;
    const ClassProfile& w = best.best.cert.worst_case;
    std::printf("%-20s %10llu %10llu %10llu %10llu %9.1f %9.1f\n",
                row.label,
                static_cast<unsigned long long>(b.critical_path),
                static_cast<unsigned long long>(b.work),
                static_cast<unsigned long long>(w.critical_path),
                static_cast<unsigned long long>(w.work), cert_ms,
                search_ms);

    if (row.gate && w.critical_path > b.critical_path) {
      std::fprintf(stderr,
                   "%s: search result (critical path %llu) is worse than "
                   "the paper tuple (%llu)\n",
                   row.label,
                   static_cast<unsigned long long>(w.critical_path),
                   static_cast<unsigned long long>(b.critical_path));
      gate_failed = true;
    }
    if (base.cert.deficient_classes != 0) {
      std::printf("%-20s   baseline is deficient: %llu/%llu classes "
                  "undecodable (characterized, not hidden)\n",
                  "", static_cast<unsigned long long>(
                          base.cert.deficient_classes),
                  static_cast<unsigned long long>(base.cert.canonical));
    }
  }

  const SearchMetrics& m = search_metrics();
  std::printf("\nprescreen pruned %llu of %llu candidates before any "
              "certification; %llu certified, %llu refuted\n",
              static_cast<unsigned long long>(m.tuples_prescreened.value()),
              static_cast<unsigned long long>(m.tuples_considered.value()),
              static_cast<unsigned long long>(m.tuples_certified.value()),
              static_cast<unsigned long long>(m.tuples_rejected.value()));
  return gate_failed ? 1 : 0;
}
