// Fig. 7 — measured PPM improvement for different thread counts T. Paper
// setting: stripe = 32 MB, r = 16, z = 1, panels over (m, s), n in
// {6, 11, 16, 21}, T = 1..4 on a 4-core CPU.
//
// Single-core substitution: the "modeled" column schedules the measured
// per-task times on T virtual lanes (the multi-core machine the paper ran
// on); the "wall" column is the literal single-core wall-clock improvement,
// which isolates PPM's cost-reduction benefit (its T=1 row is the paper's
// "PPM without parallelism" observation from §III-B).
#include <cstdio>
#include <string>

#include "bench_common.h"

using namespace ppm;
using bench::compare_sd;

int main() {
  bench::banner("Fig.7", "PPM improvement vs thread count T (r=16, z=1)");
  const std::size_t r = 16;
  const std::size_t z = 1;
  const std::size_t ns[] = {6, 11, 16, 21};

  double two_thread_sum = 0;
  double two_thread_lo = 1e9;
  double two_thread_hi = -1e9;
  std::size_t two_thread_count = 0;
  std::string sched_json;  // per-point placed/roundrobin/critical-path

  for (const std::size_t m : {1u, 2u, 3u}) {
    for (const std::size_t s : {1u, 2u, 3u}) {
      std::printf("--- m = %zu, s = %zu ---\n", m, s);
      std::printf("%4s %3s  %12s %12s  %6s\n", "n", "T", "modeled-impr",
                  "wall-impr", "p");
      for (const std::size_t n : ns) {
        if (n <= m || s > z * (n - m)) continue;
        const unsigned w = SDCode::recommended_width(n, r);
        const SDCode code(n, r, m, s, w);
        const std::size_t block =
            bench::block_bytes_for(n * r, code.field().symbol_bytes());
        for (unsigned t = 1; t <= 4; ++t) {
          const auto pt = compare_sd(code, m, s, z, t,
                                     0xF167000 + n * 100 + m * 10 + s, block);
          std::printf("%4zu %3u  %11.2f%% %11.2f%%  %6zu\n", n, t,
                      100 * pt.modeled_improvement(),
                      100 * pt.measured_improvement(), pt.p);
          if (t >= 2) {
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "%s{\"m\":%zu,\"s\":%zu,\"n\":%zu,\"t\":%u,\"p\":%zu,"
                "\"placed_s\":%.6e,\"roundrobin_s\":%.6e,"
                "\"critical_path_s\":%.6e}",
                sched_json.empty() ? "" : ",", m, s, n, t, pt.p,
                pt.placed_makespan_seconds, pt.roundrobin_makespan_seconds,
                pt.critical_path_seconds);
            sched_json += buf;
          }
          if (t == 2) {
            const double impr = pt.modeled_improvement();
            two_thread_sum += impr;
            two_thread_lo = std::min(two_thread_lo, impr);
            two_thread_hi = std::max(two_thread_hi, impr);
            ++two_thread_count;
          }
        }
      }
      std::printf("\n");
    }
  }

  std::printf("T=2 modeled improvement: avg=%.2f%% range=[%.2f%%, %.2f%%]\n",
              100 * two_thread_sum / two_thread_count, 100 * two_thread_lo,
              100 * two_thread_hi);
  std::printf("(paper, two threads: avg=46.29%%, range=[8.45%%, 178.38%%])\n");
  // Machine-readable schedule comparison: the executed LPT makespan vs.
  // the Algorithm-1 round-robin counterfactual vs. the analyzer's
  // critical-path floor, per (m, s, n, T >= 2) point.
  std::printf("{\"bench\":\"fig7_schedule\",\"points\":[%s]}\n",
              sched_json.c_str());
  return 0;
}
