file(REMOVE_RECURSE
  "../bench/fig8_sd_speed"
  "../bench/fig8_sd_speed.pdb"
  "CMakeFiles/fig8_sd_speed.dir/fig8_sd_speed.cpp.o"
  "CMakeFiles/fig8_sd_speed.dir/fig8_sd_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_sd_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
