# Empty dependencies file for fig8_sd_speed.
# This may be replaced when dependencies are built.
