# Empty dependencies file for micro_decode_plan.
# This may be replaced when dependencies are built.
