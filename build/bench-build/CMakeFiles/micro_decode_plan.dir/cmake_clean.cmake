file(REMOVE_RECURSE
  "../bench/micro_decode_plan"
  "../bench/micro_decode_plan.pdb"
  "CMakeFiles/micro_decode_plan.dir/micro_decode_plan.cpp.o"
  "CMakeFiles/micro_decode_plan.dir/micro_decode_plan.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_decode_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
