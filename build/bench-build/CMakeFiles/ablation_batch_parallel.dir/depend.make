# Empty dependencies file for ablation_batch_parallel.
# This may be replaced when dependencies are built.
