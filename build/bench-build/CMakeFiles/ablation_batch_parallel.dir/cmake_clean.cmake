file(REMOVE_RECURSE
  "../bench/ablation_batch_parallel"
  "../bench/ablation_batch_parallel.pdb"
  "CMakeFiles/ablation_batch_parallel.dir/ablation_batch_parallel.cpp.o"
  "CMakeFiles/ablation_batch_parallel.dir/ablation_batch_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
