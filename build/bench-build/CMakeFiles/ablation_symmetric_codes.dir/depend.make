# Empty dependencies file for ablation_symmetric_codes.
# This may be replaced when dependencies are built.
