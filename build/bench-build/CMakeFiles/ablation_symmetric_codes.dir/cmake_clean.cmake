file(REMOVE_RECURSE
  "../bench/ablation_symmetric_codes"
  "../bench/ablation_symmetric_codes.pdb"
  "CMakeFiles/ablation_symmetric_codes.dir/ablation_symmetric_codes.cpp.o"
  "CMakeFiles/ablation_symmetric_codes.dir/ablation_symmetric_codes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_symmetric_codes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
