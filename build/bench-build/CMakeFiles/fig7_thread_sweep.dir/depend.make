# Empty dependencies file for fig7_thread_sweep.
# This may be replaced when dependencies are built.
