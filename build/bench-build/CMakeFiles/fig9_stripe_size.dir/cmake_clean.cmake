file(REMOVE_RECURSE
  "../bench/fig9_stripe_size"
  "../bench/fig9_stripe_size.pdb"
  "CMakeFiles/fig9_stripe_size.dir/fig9_stripe_size.cpp.o"
  "CMakeFiles/fig9_stripe_size.dir/fig9_stripe_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_stripe_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
