# Empty compiler generated dependencies file for fig9_stripe_size.
# This may be replaced when dependencies are built.
