file(REMOVE_RECURSE
  "../bench/micro_gf_regions"
  "../bench/micro_gf_regions.pdb"
  "CMakeFiles/micro_gf_regions.dir/micro_gf_regions.cpp.o"
  "CMakeFiles/micro_gf_regions.dir/micro_gf_regions.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_gf_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
