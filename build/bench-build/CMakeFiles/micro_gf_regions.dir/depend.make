# Empty dependencies file for micro_gf_regions.
# This may be replaced when dependencies are built.
