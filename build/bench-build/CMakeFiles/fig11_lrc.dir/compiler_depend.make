# Empty compiler generated dependencies file for fig11_lrc.
# This may be replaced when dependencies are built.
