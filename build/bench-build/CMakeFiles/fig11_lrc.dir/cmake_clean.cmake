file(REMOVE_RECURSE
  "../bench/fig11_lrc"
  "../bench/fig11_lrc.pdb"
  "CMakeFiles/fig11_lrc.dir/fig11_lrc.cpp.o"
  "CMakeFiles/fig11_lrc.dir/fig11_lrc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
