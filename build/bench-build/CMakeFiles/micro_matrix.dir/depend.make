# Empty dependencies file for micro_matrix.
# This may be replaced when dependencies are built.
