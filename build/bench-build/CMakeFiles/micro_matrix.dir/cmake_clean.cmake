file(REMOVE_RECURSE
  "../bench/micro_matrix"
  "../bench/micro_matrix.pdb"
  "CMakeFiles/micro_matrix.dir/micro_matrix.cpp.o"
  "CMakeFiles/micro_matrix.dir/micro_matrix.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
