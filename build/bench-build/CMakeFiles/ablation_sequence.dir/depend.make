# Empty dependencies file for ablation_sequence.
# This may be replaced when dependencies are built.
