file(REMOVE_RECURSE
  "../bench/ablation_sequence"
  "../bench/ablation_sequence.pdb"
  "CMakeFiles/ablation_sequence.dir/ablation_sequence.cpp.o"
  "CMakeFiles/ablation_sequence.dir/ablation_sequence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sequence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
