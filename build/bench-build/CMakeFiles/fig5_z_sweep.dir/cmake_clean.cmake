file(REMOVE_RECURSE
  "../bench/fig5_z_sweep"
  "../bench/fig5_z_sweep.pdb"
  "CMakeFiles/fig5_z_sweep.dir/fig5_z_sweep.cpp.o"
  "CMakeFiles/fig5_z_sweep.dir/fig5_z_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_z_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
