file(REMOVE_RECURSE
  "../bench/fig4_sequence_cost"
  "../bench/fig4_sequence_cost.pdb"
  "CMakeFiles/fig4_sequence_cost.dir/fig4_sequence_cost.cpp.o"
  "CMakeFiles/fig4_sequence_cost.dir/fig4_sequence_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sequence_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
