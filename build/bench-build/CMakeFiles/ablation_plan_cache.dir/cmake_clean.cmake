file(REMOVE_RECURSE
  "../bench/ablation_plan_cache"
  "../bench/ablation_plan_cache.pdb"
  "CMakeFiles/ablation_plan_cache.dir/ablation_plan_cache.cpp.o"
  "CMakeFiles/ablation_plan_cache.dir/ablation_plan_cache.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plan_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
