file(REMOVE_RECURSE
  "../bench/ablation_serial_ppm"
  "../bench/ablation_serial_ppm.pdb"
  "CMakeFiles/ablation_serial_ppm.dir/ablation_serial_ppm.cpp.o"
  "CMakeFiles/ablation_serial_ppm.dir/ablation_serial_ppm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_serial_ppm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
