# Empty dependencies file for ablation_serial_ppm.
# This may be replaced when dependencies are built.
