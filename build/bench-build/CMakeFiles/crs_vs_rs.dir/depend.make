# Empty dependencies file for crs_vs_rs.
# This may be replaced when dependencies are built.
