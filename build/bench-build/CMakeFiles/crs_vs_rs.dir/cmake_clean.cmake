file(REMOVE_RECURSE
  "../bench/crs_vs_rs"
  "../bench/crs_vs_rs.pdb"
  "CMakeFiles/crs_vs_rs.dir/crs_vs_rs.cpp.o"
  "CMakeFiles/crs_vs_rs.dir/crs_vs_rs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crs_vs_rs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
