file(REMOVE_RECURSE
  "../bench/fig6_r_sweep"
  "../bench/fig6_r_sweep.pdb"
  "CMakeFiles/fig6_r_sweep.dir/fig6_r_sweep.cpp.o"
  "CMakeFiles/fig6_r_sweep.dir/fig6_r_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_r_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
