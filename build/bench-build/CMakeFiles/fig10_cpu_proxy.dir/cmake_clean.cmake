file(REMOVE_RECURSE
  "../bench/fig10_cpu_proxy"
  "../bench/fig10_cpu_proxy.pdb"
  "CMakeFiles/fig10_cpu_proxy.dir/fig10_cpu_proxy.cpp.o"
  "CMakeFiles/fig10_cpu_proxy.dir/fig10_cpu_proxy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_cpu_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
