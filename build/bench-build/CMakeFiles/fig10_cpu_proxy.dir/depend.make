# Empty dependencies file for fig10_cpu_proxy.
# This may be replaced when dependencies are built.
