file(REMOVE_RECURSE
  "../bench/xor_schedule_bench"
  "../bench/xor_schedule_bench.pdb"
  "CMakeFiles/xor_schedule_bench.dir/xor_schedule_bench.cpp.o"
  "CMakeFiles/xor_schedule_bench.dir/xor_schedule_bench.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xor_schedule_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
