# Empty compiler generated dependencies file for xor_schedule_bench.
# This may be replaced when dependencies are built.
