# Empty dependencies file for ablation_encode.
# This may be replaced when dependencies are built.
