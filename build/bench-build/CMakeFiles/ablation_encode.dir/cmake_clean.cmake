file(REMOVE_RECURSE
  "../bench/ablation_encode"
  "../bench/ablation_encode.pdb"
  "CMakeFiles/ablation_encode.dir/ablation_encode.cpp.o"
  "CMakeFiles/ablation_encode.dir/ablation_encode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
