file(REMOVE_RECURSE
  "../bench/analysis_closed_form"
  "../bench/analysis_closed_form.pdb"
  "CMakeFiles/analysis_closed_form.dir/analysis_closed_form.cpp.o"
  "CMakeFiles/analysis_closed_form.dir/analysis_closed_form.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_closed_form.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
