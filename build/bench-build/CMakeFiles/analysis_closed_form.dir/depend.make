# Empty dependencies file for analysis_closed_form.
# This may be replaced when dependencies are built.
