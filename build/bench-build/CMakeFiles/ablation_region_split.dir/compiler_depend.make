# Empty compiler generated dependencies file for ablation_region_split.
# This may be replaced when dependencies are built.
