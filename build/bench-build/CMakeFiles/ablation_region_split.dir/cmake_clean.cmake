file(REMOVE_RECURSE
  "../bench/ablation_region_split"
  "../bench/ablation_region_split.pdb"
  "CMakeFiles/ablation_region_split.dir/ablation_region_split.cpp.o"
  "CMakeFiles/ablation_region_split.dir/ablation_region_split.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_region_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
