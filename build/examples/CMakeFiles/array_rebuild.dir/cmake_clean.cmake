file(REMOVE_RECURSE
  "CMakeFiles/array_rebuild.dir/array_rebuild.cpp.o"
  "CMakeFiles/array_rebuild.dir/array_rebuild.cpp.o.d"
  "array_rebuild"
  "array_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/array_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
