# Empty dependencies file for array_rebuild.
# This may be replaced when dependencies are built.
