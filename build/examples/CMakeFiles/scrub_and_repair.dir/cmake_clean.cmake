file(REMOVE_RECURSE
  "CMakeFiles/scrub_and_repair.dir/scrub_and_repair.cpp.o"
  "CMakeFiles/scrub_and_repair.dir/scrub_and_repair.cpp.o.d"
  "scrub_and_repair"
  "scrub_and_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrub_and_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
