# Empty compiler generated dependencies file for disk_sector_recovery.
# This may be replaced when dependencies are built.
