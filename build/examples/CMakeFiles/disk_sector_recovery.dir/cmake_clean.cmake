file(REMOVE_RECURSE
  "CMakeFiles/disk_sector_recovery.dir/disk_sector_recovery.cpp.o"
  "CMakeFiles/disk_sector_recovery.dir/disk_sector_recovery.cpp.o.d"
  "disk_sector_recovery"
  "disk_sector_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_sector_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
