# Empty dependencies file for degraded_read_lrc.
# This may be replaced when dependencies are built.
