file(REMOVE_RECURSE
  "CMakeFiles/degraded_read_lrc.dir/degraded_read_lrc.cpp.o"
  "CMakeFiles/degraded_read_lrc.dir/degraded_read_lrc.cpp.o.d"
  "degraded_read_lrc"
  "degraded_read_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degraded_read_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
