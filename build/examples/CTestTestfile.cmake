# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scrub_and_repair "/root/repo/build/examples/scrub_and_repair" "6" "8" "2" "1" "16")
set_tests_properties(example_scrub_and_repair PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_degraded_read "/root/repo/build/examples/degraded_read_lrc" "12" "3" "2" "64")
set_tests_properties(example_degraded_read PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_disk_sector "/root/repo/build/examples/disk_sector_recovery" "6" "8" "2" "2" "2")
set_tests_properties(example_disk_sector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_array_rebuild "/root/repo/build/examples/array_rebuild" "8" "6" "8" "2" "1" "16")
set_tests_properties(example_array_rebuild PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cost_explorer "/root/repo/build/examples/cost_explorer" "8" "8" "2" "2" "1")
set_tests_properties(example_cost_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_datacenter_sim "/root/repo/build/examples/datacenter_sim" "0.5" "8" "8" "2" "1")
set_tests_properties(example_datacenter_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
