// RS baseline: Cauchy parity structure and the MDS property.
#include <gtest/gtest.h>

#include "codes/rs_code.h"
#include "common/rng.h"

namespace ppm {
namespace {

TEST(RSCode, Geometry) {
  const RSCode code(6, 2, 8);
  EXPECT_EQ(code.k(), 6u);
  EXPECT_EQ(code.m(), 2u);
  EXPECT_EQ(code.total_blocks(), 8u);
  EXPECT_EQ(code.check_rows(), 2u);
  EXPECT_EQ(code.rows(), 1u);
  EXPECT_EQ(code.parity_blocks().size(), 2u);
  EXPECT_TRUE(code.is_parity(6));
  EXPECT_TRUE(code.is_parity(7));
  EXPECT_FALSE(code.is_parity(0));
}

TEST(RSCode, SymmetricParity) {
  // Every parity row draws on all k data blocks with nonzero coefficients —
  // the paper's definition of symmetric parity.
  const RSCode code(10, 3, 8);
  const Matrix& h = code.parity_check();
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t d = 0; d < 10; ++d) {
      EXPECT_NE(h(j, d), 0u) << "parity " << j << " data " << d;
    }
    EXPECT_EQ(h(j, 10 + j), 1u);
  }
}

TEST(RSCode, MdsEveryFailurePatternDecodable) {
  // Cauchy construction: exhaustively verify that every m-subset of blocks
  // yields an invertible F for a small code.
  const RSCode code(5, 3, 8);
  const Matrix& h = code.parity_check();
  const std::size_t n = code.total_blocks();
  std::size_t patterns = 0;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        const std::vector<std::size_t> faulty{a, b, c};
        const Matrix f = h.select_columns(faulty);
        EXPECT_EQ(f.rank(), 3u) << a << "," << b << "," << c;
        ++patterns;
      }
    }
  }
  EXPECT_EQ(patterns, 56u);  // C(8,3)
}

TEST(RSCode, WiderFieldsSupported) {
  for (unsigned w : {8u, 16u, 32u}) {
    const RSCode code(12, 4, w);
    EXPECT_EQ(code.field().w(), w);
    const Matrix f = code.parity_check().select_columns(code.parity_blocks());
    EXPECT_EQ(f.rank(), 4u);
  }
}

TEST(RSCode, ParameterValidation) {
  EXPECT_THROW(RSCode(0, 2, 8), std::invalid_argument);
  EXPECT_THROW(RSCode(2, 0, 8), std::invalid_argument);
  EXPECT_THROW(RSCode(250, 10, 8), std::invalid_argument);  // k+m > 2^8
}

}  // namespace
}  // namespace ppm
