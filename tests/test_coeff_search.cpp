// Coefficient search and validation at the construction-path surface
// (codes/coeff_search.h). validate_sd_coefficients is now an exhaustive
// rank certification — the sampled acceptance it replaced shipped
// provably-invalid tuples for most geometries — and sd_coefficients
// serves only tuples carrying a full certificate: a perfect one when
// the geometry admits it, the historical consecutive-powers tuple with
// its deficiencies characterized on the record otherwise.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "codes/coeff_search.h"
#include "codes/sd_code.h"
#include "search_coeff/certify.h"

namespace ppm {
namespace {

TEST(CoeffSearch, PaperFig2CoefficientsValidate) {
  // (1, 2) is the published SD^{1,1}_{4,4}(8|1,2) tuple.
  const std::vector<gf::Element> coeffs{1, 2};
  EXPECT_TRUE(validate_sd_coefficients(4, 4, 1, 1, 8, coeffs));
}

TEST(CoeffSearch, RejectsDegenerateTuple) {
  // Duplicated coefficients collapse check rows; the exhaustive oracle
  // refutes the tuple with a concrete rank-deficient scenario.
  const std::vector<gf::Element> coeffs{1, 1};
  EXPECT_FALSE(validate_sd_coefficients(4, 4, 1, 1, 8, coeffs));
}

TEST(CoeffSearch, ValidateThrowsOnDegenerateGeometry) {
  const std::vector<gf::Element> coeffs{1, 2};
  EXPECT_THROW(validate_sd_coefficients(4, 4, 0, 1, 8, coeffs),
               std::invalid_argument);
  EXPECT_THROW(sd_coefficients(4, 4, 4, 1, 8), std::invalid_argument);
}

TEST(CoeffSearch, GoldenPinPaperTupleGeometry) {
  // SD^{2,2}_{6,4}(8|1,42,26,61) is the paper's published tuple. The
  // search must return a tuple that certifies *perfect* for this
  // geometry, with a certified worst-case critical path no worse than
  // the paper tuple's.
  const coeffsearch::Geometry g{6, 4, 2, 2, 8};
  const std::vector<gf::Element> paper{1, 42, 26, 61};
  const auto paper_cert = coeffsearch::certify_tuple(g, paper);
  ASSERT_TRUE(paper_cert.certified) << paper_cert.reason;
  ASSERT_EQ(paper_cert.cert.deficient_classes, 0u);

  const auto chosen = sd_coefficients(6, 4, 2, 2, 8);
  ASSERT_EQ(chosen.size(), 4u);
  EXPECT_EQ(chosen[0], 1u);
  EXPECT_TRUE(validate_sd_coefficients(6, 4, 2, 2, 8, chosen));
  const auto chosen_cert = coeffsearch::certify_tuple(g, chosen);
  ASSERT_TRUE(chosen_cert.certified) << chosen_cert.reason;
  EXPECT_EQ(chosen_cert.cert.deficient_classes, 0u);
  EXPECT_LE(chosen_cert.cert.worst_case.critical_path,
            paper_cert.cert.worst_case.critical_path);
}

TEST(CoeffSearch, SearchedTupleAlwaysValidates) {
  for (std::size_t m = 1; m <= 2; ++m) {
    for (std::size_t s = 1; s <= 2; ++s) {
      const auto coeffs = sd_coefficients(6, 4, m, s, 8);
      ASSERT_EQ(coeffs.size(), m + s);
      EXPECT_EQ(coeffs[0], 1u);
      EXPECT_TRUE(validate_sd_coefficients(6, 4, m, s, 8, coeffs));
    }
  }
}

TEST(CoeffSearch, DeficientGeometryServesCharacterizedLegacyTuple) {
  // SD^{2,2}_{8,8} over GF(2^8) admits no perfect tuple (the published
  // SD tables have matching gaps). The construction path serves the
  // historical consecutive-powers tuple — and the exhaustive validator
  // honestly refuses to call it valid.
  const auto coeffs = sd_coefficients(8, 8, 2, 2, 8);
  EXPECT_EQ(coeffs, (std::vector<gf::Element>{1, 2, 4, 8}));
  EXPECT_FALSE(validate_sd_coefficients(8, 8, 2, 2, 8, coeffs));
  // Its full characterization pins a nonzero deficiency count.
  coeffsearch::CertifyOptions allow;
  allow.allow_deficient = true;
  const auto res =
      coeffsearch::certify_tuple({8, 8, 2, 2, 8}, coeffs, allow);
  ASSERT_TRUE(res.certified) << res.reason;
  EXPECT_GT(res.cert.deficient_classes, 0u);
}

TEST(CoeffSearch, DefaultCodeConstructionCarriesCertificate) {
  // Constructing a code for a deficient geometry still succeeds — the
  // characterized fallback keeps decode within actual tolerance working
  // — and uses exactly the recorded legacy tuple.
  const SDCode code(9, 8, 3, 3, 8);
  const gf::Field& f = gf::field(8);
  std::vector<gf::Element> legacy(6);
  for (std::size_t q = 0; q < legacy.size(); ++q) legacy[q] = f.exp2(q);
  EXPECT_EQ(code.coefficients(), legacy);
}

TEST(CoeffSearch, CacheReturnsSameTuple) {
  const auto a = sd_coefficients(8, 8, 2, 2, 8);
  const auto b = sd_coefficients(8, 8, 2, 2, 8);
  EXPECT_EQ(a, b);
}

TEST(CoeffSearch, ConcurrentConstructionSearchesOnce) {
  // Eight threads race the same geometry: the search mutex must
  // collapse them onto one certification, and every thread must see
  // the identical tuple.
  clear_sd_coefficient_cache();
  constexpr std::size_t kThreads = 8;
  std::vector<std::vector<gf::Element>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&results, t] {
        results[t] = sd_coefficients(6, 4, 2, 2, 8);
      });
    }
    for (auto& th : threads) th.join();
  }
  EXPECT_EQ(sd_coefficient_cache_entries(), 1u);
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
}

TEST(CoeffSearch, WorksAtWiderWidths) {
  const auto coeffs = sd_coefficients(24, 16, 2, 2, 16);
  EXPECT_TRUE(validate_sd_coefficients(24, 16, 2, 2, 16, coeffs));
}

}  // namespace
}  // namespace ppm
