// Coefficient search and validation.
#include <gtest/gtest.h>

#include "codes/coeff_search.h"
#include "codes/sd_code.h"

namespace ppm {
namespace {

TEST(CoeffSearch, PaperFig2CoefficientsValidate) {
  // (1, 2) is the published SD^{1,1}_{4,4}(8|1,2) tuple.
  const std::vector<gf::Element> coeffs{1, 2};
  EXPECT_TRUE(validate_sd_coefficients(4, 4, 1, 1, 8, coeffs));
}

TEST(CoeffSearch, RejectsDegenerateTuple) {
  // Duplicated coefficients collapse check rows: a_1 == a_0 makes the
  // global equation a copy of a (scaled) sum of the row equations only in
  // degenerate cases, but always fails for the encoding system when two
  // sector-parity coefficients coincide.
  const std::vector<gf::Element> coeffs{1, 1};
  EXPECT_FALSE(validate_sd_coefficients(4, 4, 1, 1, 8, coeffs));
}

TEST(CoeffSearch, SearchedTupleAlwaysValidates) {
  for (std::size_t m = 1; m <= 2; ++m) {
    for (std::size_t s = 1; s <= 2; ++s) {
      const auto coeffs = sd_coefficients(6, 4, m, s, 8);
      ASSERT_EQ(coeffs.size(), m + s);
      EXPECT_EQ(coeffs[0], 1u);
      EXPECT_TRUE(validate_sd_coefficients(6, 4, m, s, 8, coeffs));
    }
  }
}

TEST(CoeffSearch, CacheReturnsSameTuple) {
  const auto a = sd_coefficients(8, 8, 2, 2, 8);
  const auto b = sd_coefficients(8, 8, 2, 2, 8);
  EXPECT_EQ(a, b);
}

TEST(CoeffSearch, WorksAtWiderWidths) {
  const auto coeffs = sd_coefficients(24, 16, 2, 2, 16);
  EXPECT_TRUE(validate_sd_coefficients(24, 16, 2, 2, 16, coeffs));
}

TEST(CoeffSearch, DefaultCodeConstructionUsesValidatedCoefficients) {
  const SDCode code(9, 8, 3, 3, 8);
  EXPECT_TRUE(validate_sd_coefficients(9, 8, 3, 3, 8, code.coefficients()));
}

}  // namespace
}  // namespace ppm
