// Proof-carrying XOR-schedule superoptimizer (optimize_xor/): the pass
// pipeline must only ever accept rewrites that re-prove — symbolic GF(2)
// replay against the original matrix plus hazard re-analysis — and every
// accepted schedule must decode byte-identically to the serial greedy
// one. The oracle gate itself is exercised with hand-built wrong rewrites
// (dropped source, stale temporary, dependency-violating reorder,
// fragmented span), each of which must be rejected with the matching
// structured violation kind.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <vector>

#include "analyze_hazard/hazard.h"
#include "codec/codec.h"
#include "codes/crs_code.h"
#include "codes/evenodd_code.h"
#include "codes/lrc_code.h"
#include "codes/pmds_code.h"
#include "codes/rdp_code.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "codes/star_code.h"
#include "codes/xorbas_lrc_code.h"
#include "common/crc32.h"
#include "decode/xor_schedule.h"
#include "matrix/solve.h"
#include "optimize_xor/xoropt.h"
#include "plan_store/plan_store.h"
#include "test_util.h"
#include "verify_plan/plan_verify.h"

namespace ppm {
namespace {

namespace fs = std::filesystem;

bool has_kind(const std::vector<planverify::Violation>& violations,
              planverify::ViolationKind kind) {
  return std::any_of(violations.begin(), violations.end(),
                     [kind](const planverify::Violation& v) {
                       return v.kind == kind;
                     });
}

// targets = G * sources over GF(2) regions, the obviously-correct way.
std::vector<std::vector<std::uint8_t>> naive_apply(
    const Matrix& g, const std::vector<std::vector<std::uint8_t>>& sources,
    std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> out(g.rows(),
                                             std::vector<std::uint8_t>(bytes));
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t c = 0; c < g.cols(); ++c) {
      if (g(r, c) == 0) continue;
      for (std::size_t i = 0; i < bytes; ++i) out[r][i] ^= sources[c][i];
    }
  }
  return out;
}

// Run `schedule` (temps-aware) and expect the exact G * sources bytes.
void expect_bytes_exact(const Matrix& g, const XorSchedule& schedule,
                        std::uint64_t seed) {
  const std::size_t bytes = 96;
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> sources(g.cols());
  std::vector<std::uint8_t*> src_ptrs(g.cols());
  for (std::size_t c = 0; c < g.cols(); ++c) {
    sources[c] = test::random_bytes(rng, bytes);
    src_ptrs[c] = sources[c].data();
  }
  std::vector<std::vector<std::uint8_t>> targets(
      g.rows(), std::vector<std::uint8_t>(bytes, 0xEE));
  std::vector<std::uint8_t*> tgt_ptrs(g.rows());
  for (std::size_t r = 0; r < g.rows(); ++r) tgt_ptrs[r] = targets[r].data();
  execute_xor_schedule(schedule, g.rows(), src_ptrs.data(), tgt_ptrs.data(),
                       bytes);
  EXPECT_EQ(targets, naive_apply(g, sources, bytes));
}

// Optimize the greedy schedule of `g` and require: passing proof, cost no
// worse than greedy, honest stats, byte-exact execution.
xoropt::Result optimize_and_check(const Matrix& g, std::uint64_t seed) {
  const auto base = plan_xor_schedule(g);
  EXPECT_TRUE(base.has_value());
  const auto result = xoropt::optimize(g, *base);
  EXPECT_TRUE(xoropt::prove(g, result.schedule).empty());
  EXPECT_LE(result.schedule.cost(), base->cost());
  EXPECT_EQ(result.schedule.naive_ops, base->naive_ops);
  EXPECT_EQ(result.stats.rewrites_accepted + result.stats.rewrites_rejected,
            result.stats.passes);
  EXPECT_EQ(result.stats.ops_saved, base->cost() - result.schedule.cost());
  expect_bytes_exact(g, result.schedule, seed);
  return result;
}

TEST(XorOpt, CseExtractsPairSharedByThreeRows) {
  // Rows 0..2 share columns {0,1}; the greedy planner cannot exploit it
  // (pairwise row differences are as wide as the rows), but one temporary
  // t = c0 ^ c1 turns 9 greedy ops into 2 (def) + 3×2 (reads) = 8.
  const Matrix g(gf::field(8), 3, 5,
                 {1, 1, 1, 0, 0,
                  1, 1, 0, 1, 0,
                  1, 1, 0, 0, 1});
  const auto base = plan_xor_schedule(g);
  ASSERT_TRUE(base.has_value());
  EXPECT_EQ(base->cost(), 9u);
  const auto result = optimize_and_check(g, 41);
  EXPECT_LT(result.schedule.cost(), base->cost());
  EXPECT_GE(result.schedule.temps, 1u);
  EXPECT_GT(result.stats.rewrites_accepted, 0u);
}

TEST(XorOpt, RandomBinaryMatricesStayByteIdentical) {
  Rng rng(4242);
  for (int trial = 0; trial < 48; ++trial) {
    const std::size_t rows = 1 + rng.bounded(10);
    const std::size_t cols = 1 + rng.bounded(18);
    Matrix g(gf::field(8), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        g(r, c) = rng.bounded(100) < 45 ? 1 : 0;
      }
    }
    optimize_and_check(g, 5000 + static_cast<std::uint64_t>(trial));
  }
}

TEST(XorOpt, CrsDecodeMatrixGoesStrictlyBelowNaive) {
  // The headline case from the paper's cost model: a CRS whole-strip
  // failure's bit-matrix decode. The optimizer must land strictly below
  // u(M) — the floor the naive one-XOR-per-nonzero execution pays.
  const CRSCode code(8, 2, 8);
  std::vector<std::size_t> faulty = code.strip_blocks(3);
  std::sort(faulty.begin(), faulty.end());
  const Matrix& h = code.parity_check();
  const Matrix f_cols = h.select_columns(faulty);
  const auto sel = independent_rows(f_cols);
  ASSERT_TRUE(sel.has_value());
  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < code.total_blocks(); ++c) {
    if (!std::binary_search(faulty.begin(), faulty.end(), c)) {
      survivors.push_back(c);
    }
  }
  const Matrix g = *f_cols.select_rows(*sel).inverse() *
                   h.select_columns(survivors).select_rows(*sel);
  const auto result = optimize_and_check(g, 77);
  EXPECT_LT(result.schedule.cost(), result.schedule.naive_ops);
  EXPECT_GT(result.schedule.saving(), 0.0);
}

// ---------------------------------------------------------------------------
// The oracle gate: hand-built wrong rewrites must be rejected with the
// matching structured violation kind — prove() is what stands between a
// plausible-looking rewrite and a corrupted decode.

TEST(XorOpt, ProveCatchesDroppedSource) {
  const Matrix g(gf::field(8), 1, 3, {1, 1, 1});
  XorSchedule s;
  s.naive_ops = 3;
  // "CSE" that lost a term: target 0 = c0 ^ c1, missing c2.
  s.ops = {{false, 0, 0, true}, {false, 1, 0, false}};
  const auto violations = xoropt::prove(g, s);
  EXPECT_TRUE(has_kind(violations, planverify::ViolationKind::kXorWrongResult));
}

TEST(XorOpt, ProveCatchesStaleTemporaryRead) {
  const Matrix g(gf::field(8), 1, 2, {1, 1});
  XorSchedule s;
  s.naive_ops = 2;
  s.temps = 1;
  // Target 0 reads temporary register 1 BEFORE the temp's definition runs
  // — a rewrite that consumed a value from a stale op ordering.
  s.ops = {{true, 1, 0, true},
           {false, 0, 1, true},
           {false, 1, 1, false}};
  const auto violations = xoropt::prove(g, s);
  EXPECT_TRUE(
      has_kind(violations, planverify::ViolationKind::kXorReadBeforeFinal));
}

TEST(XorOpt, ProveCatchesReorderAcrossDependency) {
  // Serially fine — target 1's from_output read of target 0 happens after
  // target 0's last write — but the UNITS overlap: target 1 starts before
  // target 0 finalizes, so a unit-concurrent executor could observe a
  // partial value. The hazard half of the proof must refuse it.
  const Matrix g(gf::field(8), 2, 2,
                 {1, 1,
                  0, 1});
  XorSchedule s;
  s.naive_ops = 3;
  s.ops = {{false, 0, 0, true},
           {false, 0, 1, true},
           {false, 1, 0, false},
           {true, 0, 1, false}};
  const auto violations = xoropt::prove(g, s);
  EXPECT_TRUE(has_kind(violations,
                       planverify::ViolationKind::kUnorderedFromOutputUse));
}

TEST(XorOpt, ProveCatchesFragmentedTargetSpan) {
  // Two independent targets with interleaved op spans: serially correct,
  // but neither span is a schedulable unit any more. The analyzer must
  // report the structured fragmentation kind, not certify a wrong span.
  const Matrix g(gf::field(8), 2, 3,
                 {1, 1, 0,
                  0, 0, 1});
  XorSchedule s;
  s.naive_ops = 3;
  s.ops = {{false, 0, 0, true},
           {false, 2, 1, true},
           {false, 1, 0, false}};
  const auto violations = xoropt::prove(g, s);
  EXPECT_TRUE(has_kind(violations,
                       planverify::ViolationKind::kXorTargetSpanFragmented));
}

TEST(XorOpt, OptimizedScheduleRunsUnitParallelByteIdentically) {
  // Temp-bearing schedules must also execute correctly through the
  // unit-parallel DAG executor: each temporary is its own unit over a
  // scratch region, and consumers wait on its completion signal.
  const CRSCode code(8, 2, 8);
  std::vector<std::size_t> faulty = code.strip_blocks(2);
  std::sort(faulty.begin(), faulty.end());
  const Matrix& h = code.parity_check();
  const Matrix f_cols = h.select_columns(faulty);
  const auto sel = independent_rows(f_cols);
  ASSERT_TRUE(sel.has_value());
  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < code.total_blocks(); ++c) {
    if (!std::binary_search(faulty.begin(), faulty.end(), c)) {
      survivors.push_back(c);
    }
  }
  const Matrix g = *f_cols.select_rows(*sel).inverse() *
                   h.select_columns(survivors).select_rows(*sel);
  const auto base = plan_xor_schedule(g);
  ASSERT_TRUE(base.has_value());
  const auto result = xoropt::optimize(g, *base);
  ASSERT_GT(result.schedule.temps, 0u);  // the CSE win is the point here
  ASSERT_TRUE(xoropt::prove(g, result.schedule).empty());

  const std::size_t bytes = 256;
  Rng rng(67);
  std::vector<std::vector<std::uint8_t>> sources(g.cols());
  std::vector<std::uint8_t*> src_ptrs(g.cols());
  for (std::size_t c = 0; c < g.cols(); ++c) {
    sources[c] = test::random_bytes(rng, bytes);
    src_ptrs[c] = sources[c].data();
  }
  std::vector<std::vector<std::uint8_t>> targets(
      g.rows(), std::vector<std::uint8_t>(bytes, 0xEE));
  std::vector<std::uint8_t*> tgt_ptrs(g.rows());
  for (std::size_t r = 0; r < g.rows(); ++r) tgt_ptrs[r] = targets[r].data();
  const ParallelXorReport report = execute_xor_schedule_parallel(
      result.schedule, g.rows(), src_ptrs.data(), tgt_ptrs.data(), bytes, 4);
  EXPECT_EQ(targets, naive_apply(g, sources, bytes));
  // Whether the DAG engaged or the provable-safety screen fell back to
  // serial, the bytes above already had to be exact; just pin that the
  // report is coherent.
  if (report.parallel) {
    EXPECT_GE(report.workers, 2u);
  }
}

TEST(XorOpt, TamperedRewritesAreRejectedAndBaseSurvives) {
  const Matrix g(gf::field(8), 3, 5,
                 {1, 1, 1, 0, 0,
                  1, 1, 0, 1, 0,
                  1, 1, 0, 0, 1});
  const auto base = plan_xor_schedule(g);
  ASSERT_TRUE(base.has_value());
  xoropt::Options options;
  // Corrupt every candidate the passes produce: drop the final op. The
  // gate must reject each one and hand back the untouched base schedule.
  options.tamper_for_test = [](XorSchedule& s) {
    if (!s.ops.empty()) s.ops.pop_back();
  };
  const auto result = xoropt::optimize(g, *base, options);
  EXPECT_GT(result.stats.passes, 0u);
  EXPECT_EQ(result.stats.rewrites_accepted, 0u);
  EXPECT_EQ(result.stats.rewrites_rejected, result.stats.passes);
  EXPECT_EQ(result.stats.ops_saved, 0u);
  EXPECT_EQ(result.schedule.cost(), base->cost());
  EXPECT_EQ(result.schedule.temps, base->temps);
  EXPECT_TRUE(xoropt::prove(g, result.schedule).empty());
  expect_bytes_exact(g, result.schedule, 91);
}

// ---------------------------------------------------------------------------
// Nine-family sweep: the optimizer over every binary sub-system the codec
// plans, proof-clean and byte-identical everywhere.

void expect_optimized_subplans_clean(const ErasureCode& code,
                                     bool expect_binary_systems = true) {
  Codec codec(code);
  std::size_t optimized = 0;
  const auto check = [&](const FailureScenario& sc) {
    const auto plan = codec.plan_for(sc);
    if (plan == nullptr) return;  // beyond tolerance
    const auto check_sub = [&](const SubPlan& sub) {
      const Matrix& applied =
          sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
      const auto base = plan_xor_schedule(applied);
      if (!base.has_value()) return;  // non-binary system
      const auto result = xoropt::optimize(applied, *base);
      EXPECT_TRUE(xoropt::prove(applied, result.schedule).empty())
          << code.name();
      EXPECT_LE(result.schedule.cost(), base->cost()) << code.name();
      expect_bytes_exact(applied, result.schedule, 1300 + optimized);
      ++optimized;
    };
    for (const SubPlan& sub : plan->groups()) check_sub(sub);
    if (plan->rest().has_value()) check_sub(*plan->rest());
  };
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    check(FailureScenario({b}));
  }
  // One whole-disk pair, the family's canonical repair case.
  std::vector<std::size_t> faulty;
  for (std::size_t row = 0; row < code.rows(); ++row) {
    faulty.push_back(code.block_id(row, 0));
    faulty.push_back(code.block_id(row, code.disks() / 2));
  }
  check(FailureScenario(faulty));
  // RS over GF(2^8) plans no binary sub-system at all — the sweep is
  // then vacuous (and must stay crash-free); every other family has at
  // least one.
  if (expect_binary_systems) {
    EXPECT_GT(optimized, 0u) << code.name();
  } else {
    EXPECT_EQ(optimized, 0u) << code.name();
  }
}

TEST(XorOptSweep, SD) {
  expect_optimized_subplans_clean(SDCode(6, 8, 2, 2, 8));
}
TEST(XorOptSweep, PMDS) {
  expect_optimized_subplans_clean(PMDSCode(6, 6, 2, 2, 8));
}
TEST(XorOptSweep, LRC) {
  expect_optimized_subplans_clean(LRCCode(12, 3, 2, 8));
}
TEST(XorOptSweep, XorbasLRC) {
  expect_optimized_subplans_clean(XorbasLRCCode(10, 2, 4, 8));
}
TEST(XorOptSweep, RS) {
  expect_optimized_subplans_clean(RSCode(10, 4, 8), false);
}
TEST(XorOptSweep, CRS) { expect_optimized_subplans_clean(CRSCode(6, 3, 8)); }
TEST(XorOptSweep, EvenOdd) {
  expect_optimized_subplans_clean(EvenOddCode(7));
}
TEST(XorOptSweep, RDP) { expect_optimized_subplans_clean(RDPCode(7)); }
TEST(XorOptSweep, Star) { expect_optimized_subplans_clean(StarCode(7)); }

// ---------------------------------------------------------------------------
// Codec integration: the optimize_xor knob attaches proven schedules to
// the plan and surfaces the xoropt metric group.

FailureScenario disk_failure(const ErasureCode& code, std::size_t disk) {
  std::vector<std::size_t> faulty;
  for (std::size_t row = 0; row < code.rows(); ++row) {
    faulty.push_back(code.block_id(row, disk));
  }
  return FailureScenario(faulty);
}

TEST(XorOptCodec, KnobAttachesProvenSchedulesAndCountsMetrics) {
  const CRSCode code(6, 3, 8);
  Codec::Options options;
  options.optimize_xor = true;
  Codec codec(code, options);
  const FailureScenario sc = disk_failure(code, 1);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  ASSERT_FALSE(plan->schedules().empty());
  for (const PlanSchedule& ps : plan->schedules()) {
    ASSERT_LE(ps.sub, plan->groups().size());
    const SubPlan& sub = ps.sub < plan->groups().size()
                             ? plan->groups()[ps.sub]
                             : *plan->rest();
    const Matrix& applied =
        sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
    EXPECT_TRUE(xoropt::prove(applied, ps.schedule).empty());
    expect_bytes_exact(applied, ps.schedule, 1700 + ps.sub);
  }
  const xoropt::Stats& stats = plan->xoropt_stats();
  EXPECT_GT(stats.passes, 0u);
  EXPECT_EQ(stats.rewrites_accepted + stats.rewrites_rejected, stats.passes);
  EXPECT_EQ(codec.metrics().xoropt_passes.value(), stats.passes);
  EXPECT_EQ(codec.metrics().xoropt_rewrites_accepted.value(),
            stats.rewrites_accepted);
  EXPECT_EQ(codec.metrics().xoropt_rewrites_rejected.value(),
            stats.rewrites_rejected);
  EXPECT_EQ(codec.metrics().xoropt_ops_saved.value(), stats.ops_saved);
  EXPECT_NE(codec.metrics_json().find("\"xoropt\":{"), std::string::npos);
}

TEST(XorOptCodec, KnobOffLeavesPlansScheduleFree) {
  const CRSCode code(6, 3, 8);
  Codec codec(code);
  const auto plan = codec.plan_for(disk_failure(code, 1));
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->schedules().empty());
  EXPECT_EQ(codec.metrics().xoropt_passes.value(), 0u);
}

// ---------------------------------------------------------------------------
// Plan store: optimized schedules persist through the v2 record format,
// reload only after re-proving, and a record whose schedule no longer
// proves is quarantined — zero trust extends to the optimizer's output.

class StoreDir {
 public:
  explicit StoreDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("ppm_xoropt_" + tag + "_" +
               std::to_string(static_cast<unsigned long long>(
                   reinterpret_cast<std::uintptr_t>(this))))) {
    fs::remove_all(path_);
  }
  ~StoreDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TEST(XorOptPlanStore, SchedulesRoundTripThroughDisk) {
  const CRSCode code(6, 3, 8);
  const FailureScenario sc = disk_failure(code, 0);
  StoreDir dir("roundtrip");

  Codec::Options options;
  options.optimize_xor = true;
  std::size_t want_schedules = 0;
  {
    Codec writer(code, options);
    writer.attach_store(dir.path().string());
    const auto plan = writer.plan_for(sc);
    ASSERT_NE(plan, nullptr);
    ASSERT_FALSE(plan->schedules().empty());
    want_schedules = plan->schedules().size();
    ASSERT_EQ(writer.metrics().planstore_stores.value(), 1u);
  }

  // A fresh codec — optimizer knob OFF — warms the optimized schedules
  // straight from disk: the store's re-proof, not the optimizer, is what
  // readmits them.
  Codec reader(code);
  reader.attach_store(dir.path().string());
  const auto loaded = reader.plan_for(sc);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(reader.metrics().planstore_loads.value(), 1u);
  ASSERT_EQ(loaded->schedules().size(), want_schedules);
  for (const PlanSchedule& ps : loaded->schedules()) {
    const SubPlan& sub = ps.sub < loaded->groups().size()
                             ? loaded->groups()[ps.sub]
                             : *loaded->rest();
    const Matrix& applied =
        sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
    EXPECT_TRUE(xoropt::prove(applied, ps.schedule).empty());
  }
}

TEST(XorOptPlanStore, TamperedScheduleIsQuarantinedOnLoad) {
  const CRSCode code(6, 3, 8);
  const FailureScenario sc = disk_failure(code, 0);
  StoreDir dir("tamper");

  Codec::Options options;
  options.optimize_xor = true;
  Codec writer(code, options);
  writer.attach_store(dir.path().string());
  ASSERT_NE(writer.plan_for(sc), nullptr);

  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  std::vector<std::uint8_t> bytes;
  {
    std::ifstream in(record, std::ios::binary);
    ASSERT_TRUE(in.is_open());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // The schedules section closes the payload; the final op's source field
  // sits 16 bytes from the end. Flip its low byte and re-seal the CRC so
  // the record still PARSES — only the schedule re-proof can catch it.
  ASSERT_GT(bytes.size(), 24u + 17u);
  bytes[bytes.size() - 16] ^= 1;
  const std::uint32_t fresh_crc = crc32(bytes.data() + 24, bytes.size() - 24);
  for (int i = 0; i < 4; ++i) {
    bytes[12 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((fresh_crc >> (8 * i)) & 0xFFu);
  }
  {
    std::ofstream out(record, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }

  planstore::PlanStore store(dir.path());
  std::shared_ptr<const CachedPlan> out;
  std::string why;
  EXPECT_EQ(store.load(code, sc, &out, &why),
            planstore::PlanStore::LoadResult::kRejected);
  EXPECT_NE(why.find("schedule re-proof"), std::string::npos) << why;
  EXPECT_TRUE(fs::exists(record.string() + ".quarantined"));
}

}  // namespace
}  // namespace ppm
