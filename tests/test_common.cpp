// Common substrate: aligned buffers, PRNG, CPU detection, timers.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <thread>

#include "common/aligned_buffer.h"
#include "common/cpu.h"
#include "common/rng.h"
#include "common/timer.h"

namespace ppm {
namespace {

TEST(AlignedBuffer, AlignmentAndZeroInit) {
  for (const std::size_t size : {1u, 63u, 64u, 65u, 4096u, 100000u}) {
    AlignedBuffer buf(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                  AlignedBuffer::kAlignment,
              0u);
    EXPECT_EQ(buf.size(), size);
    for (std::size_t i = 0; i < size; ++i) EXPECT_EQ(buf.data()[i], 0u);
  }
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer a(128);
  a.data()[0] = 42;
  const std::uint8_t* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b.data()[0], 42u);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  AlignedBuffer c(64);
  c = std::move(b);
  EXPECT_EQ(c.data(), p);
}


TEST(AlignedBuffer, UninitializedAllocatesAligned) {
  AlignedBuffer buf = AlignedBuffer::uninitialized(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) %
                AlignedBuffer::kAlignment,
            0u);
  // Contents are unspecified but must be writable end to end.
  std::memset(buf.data(), 0xAB, buf.size());
  EXPECT_EQ(buf.data()[999], 0xABu);
  EXPECT_TRUE(AlignedBuffer::uninitialized(0).empty());
}

TEST(AlignedBuffer, ClearZeroes) {
  AlignedBuffer buf(256);
  buf.data()[7] = 9;
  buf.clear();
  EXPECT_EQ(buf.data()[7], 0u);
}

TEST(AlignedBuffer, SpanCoversBuffer) {
  AlignedBuffer buf(100);
  EXPECT_EQ(buf.span().size(), 100u);
  EXPECT_EQ(buf.span().data(), buf.data());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(7), 7u);
  }
  // Every residue shows up over a reasonable sample.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, FillCoversWholeRegionIncludingTail) {
  Rng rng(7);
  std::vector<std::uint8_t> buf(37, 0);  // odd size: exercises the tail
  rng.fill(buf.data(), buf.size());
  int nonzero = 0;
  for (const std::uint8_t b : buf) nonzero += (b != 0);
  EXPECT_GT(nonzero, 20);  // all-zero tail would show here
}

TEST(Cpu, DetectIsStableAndNamed) {
  const IsaLevel a = detect_isa();
  EXPECT_EQ(a, detect_isa());
  EXPECT_NE(isa_name(a), nullptr);
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(Cpu, IsaNamesDistinct) {
  std::set<std::string> names;
  for (const IsaLevel l : {IsaLevel::kScalar, IsaLevel::kSsse3,
                           IsaLevel::kAvx2, IsaLevel::kAvx512}) {
    names.insert(isa_name(l));
  }
  EXPECT_EQ(names.size(), 4u);
}

TEST(Timer, MonotoneAndResettable) {
  Timer t;
  const double a = t.seconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const double b = t.seconds();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0.0);
  EXPECT_GE(t.nanos(), 1000000);
  t.reset();
  EXPECT_LT(t.seconds(), b);
}

}  // namespace
}  // namespace ppm
