// Block-level (region-split) parallel decoder.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "decode/block_parallel_decoder.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(BlockParallel, RecoversExactBytes) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 4096);
  const auto snap = test::fill_and_encode(code, stripe, 800);
  ScenarioGenerator gen(801);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const BlockParallelDecoder dec(code, 4);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 4096);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(res->slices, 4u);
  EXPECT_EQ(res->slice_seconds.size(), 4u);
}

TEST(BlockParallel, SliceCountIndependentOfResult) {
  const SDCode code(6, 4, 2, 1, 8);
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, 802);
  ScenarioGenerator gen(803);
  const auto g = gen.sd_worst_case(code, 2, 1, 1);
  for (const unsigned t : {1u, 2u, 3u, 5u, 8u}) {
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    const BlockParallelDecoder dec(code, t);
    const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 1024);
    ASSERT_TRUE(res.has_value()) << "t=" << t;
    EXPECT_TRUE(stripe.equals(snap)) << "t=" << t;
  }
}

TEST(BlockParallel, OpCountMatchesWholeMatrixPlan) {
  // Slicing must not change the paper's C accounting: ops equal the
  // traditional decoder's count under the same sequence policy.
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 804);
  ScenarioGenerator gen(805);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const TraditionalDecoder trad(code);
  const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), 512,
                              SequencePolicy::kAuto);
  ASSERT_TRUE(tr.has_value());
  stripe.erase(g.scenario);
  const BlockParallelDecoder dec(code, 4, SequencePolicy::kAuto);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 512);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stats.mult_xors, tr->stats.mult_xors);
  EXPECT_EQ(res->sequence_used, tr->sequence_used);
}

TEST(BlockParallel, UndecodableReturnsNullopt) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 806);
  const BlockParallelDecoder dec(code, 2);
  EXPECT_FALSE(dec.decode(FailureScenario({0, 1, 2}), stripe.block_ptrs(),
                          512)
                   .has_value());
}

TEST(BlockParallel, TinyBlocksCapSliceCount) {
  // 4 symbols cannot be split into 8 slices; the decoder must cap.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 4);
  const auto snap = test::fill_and_encode(code, stripe, 807);
  const FailureScenario sc({5});
  stripe.erase(sc);
  const BlockParallelDecoder dec(code, 8);
  const auto res = dec.decode(sc, stripe.block_ptrs(), 4);
  ASSERT_TRUE(res.has_value());
  EXPECT_LE(res->slices, 4u);
  EXPECT_TRUE(stripe.equals(snap));
}

// plan_slices is the decoder's only slicing authority, so its geometric
// contract — symbol-aligned slices covering [0, block_bytes) exactly once,
// in order — must hold even for degenerate regions.
void expect_exact_tiling(const std::vector<SliceRange>& slices,
                         std::size_t block_bytes, unsigned sym) {
  std::size_t expected = 0;
  for (const SliceRange& s : slices) {
    EXPECT_EQ(s.offset, expected);
    EXPECT_GT(s.bytes, 0u);
    EXPECT_EQ(s.offset % sym, 0u);
    EXPECT_EQ(s.bytes % sym, 0u);
    expected = s.offset + s.bytes;
  }
  // Coverage is exact up to the symbol floor; a non-multiple tail cannot
  // be decoded by any slice and is excluded by contract.
  EXPECT_EQ(expected, block_bytes / sym * sym);
}

TEST(PlanSlices, RegionSmallerThanThreadsTimesSymbol) {
  // 3 two-byte symbols across 8 requested threads: capped at 3 slices.
  const auto slices = plan_slices(6, 2, 8);
  EXPECT_EQ(slices.size(), 3u);
  expect_exact_tiling(slices, 6, 2);
}

TEST(PlanSlices, SingleThreadIsOneFullSlice) {
  const auto slices = plan_slices(4096, 4, 1);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].offset, 0u);
  EXPECT_EQ(slices[0].bytes, 4096u);
  expect_exact_tiling(slices, 4096, 4);
}

TEST(PlanSlices, NonMultipleOfSymbolRegionStaysAligned) {
  // 4099 bytes of 4-byte symbols: only the 4096-byte symbol floor is
  // sliceable, and every boundary stays aligned.
  const auto slices = plan_slices(4099, 4, 4);
  EXPECT_EQ(slices.size(), 4u);
  expect_exact_tiling(slices, 4099, 4);
}

TEST(PlanSlices, UnevenSymbolCountsSpreadTheRemainder) {
  // 10 symbols over 4 threads: 3+3+2+2, never 0-length, exact cover.
  const auto slices = plan_slices(10, 1, 4);
  ASSERT_EQ(slices.size(), 4u);
  EXPECT_EQ(slices[0].bytes, 3u);
  EXPECT_EQ(slices[1].bytes, 3u);
  EXPECT_EQ(slices[2].bytes, 2u);
  EXPECT_EQ(slices[3].bytes, 2u);
  expect_exact_tiling(slices, 10, 1);
}

TEST(PlanSlices, RegionSmallerThanOneSymbolYieldsNoSlices) {
  EXPECT_TRUE(plan_slices(3, 4, 2).empty());
}

TEST(PlanSlices, SweepAlwaysTilesExactly) {
  for (const unsigned sym : {1u, 2u, 4u}) {
    for (std::size_t block = 0; block <= 64; ++block) {
      for (const unsigned threads : {1u, 2u, 3u, 7u, 64u}) {
        expect_exact_tiling(plan_slices(block, sym, threads), block, sym);
      }
    }
  }
}

TEST(BlockParallel, ModeledSecondsIsPlanPlusSlowestSlice) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 8192);
  test::fill_and_encode(code, stripe, 808);
  ScenarioGenerator gen(809);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const BlockParallelDecoder dec(code, 4);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 8192);
  ASSERT_TRUE(res.has_value());
  double slowest = 0;
  for (const double t : res->slice_seconds) slowest = std::max(slowest, t);
  EXPECT_NEAR(res->modeled_seconds(), res->plan_seconds + slowest, 1e-12);
}

TEST(PpmResultLpt, LptNeverAboveSerialAndTracksLanes) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 2048);
  test::fill_and_encode(code, stripe, 810);
  ScenarioGenerator gen(811);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 2048);
  ASSERT_TRUE(res.has_value());
  // LPT makespan is bounded by the serial sum and by lanes * optimal.
  EXPECT_LE(res->modeled_seconds_lpt(4), res->modeled_seconds(1) + 1e-12);
  EXPECT_GE(res->modeled_seconds_lpt(2) + 1e-12,
            res->modeled_seconds_lpt(4));
}

}  // namespace
}  // namespace ppm
