// Block-level (region-split) parallel decoder.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "decode/block_parallel_decoder.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(BlockParallel, RecoversExactBytes) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 4096);
  const auto snap = test::fill_and_encode(code, stripe, 800);
  ScenarioGenerator gen(801);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const BlockParallelDecoder dec(code, 4);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 4096);
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(res->slices, 4u);
  EXPECT_EQ(res->slice_seconds.size(), 4u);
}

TEST(BlockParallel, SliceCountIndependentOfResult) {
  const SDCode code(6, 4, 2, 1, 8);
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, 802);
  ScenarioGenerator gen(803);
  const auto g = gen.sd_worst_case(code, 2, 1, 1);
  for (const unsigned t : {1u, 2u, 3u, 5u, 8u}) {
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    const BlockParallelDecoder dec(code, t);
    const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 1024);
    ASSERT_TRUE(res.has_value()) << "t=" << t;
    EXPECT_TRUE(stripe.equals(snap)) << "t=" << t;
  }
}

TEST(BlockParallel, OpCountMatchesWholeMatrixPlan) {
  // Slicing must not change the paper's C accounting: ops equal the
  // traditional decoder's count under the same sequence policy.
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 804);
  ScenarioGenerator gen(805);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const TraditionalDecoder trad(code);
  const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), 512,
                              SequencePolicy::kAuto);
  ASSERT_TRUE(tr.has_value());
  stripe.erase(g.scenario);
  const BlockParallelDecoder dec(code, 4, SequencePolicy::kAuto);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 512);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stats.mult_xors, tr->stats.mult_xors);
  EXPECT_EQ(res->sequence_used, tr->sequence_used);
}

TEST(BlockParallel, UndecodableReturnsNullopt) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 806);
  const BlockParallelDecoder dec(code, 2);
  EXPECT_FALSE(dec.decode(FailureScenario({0, 1, 2}), stripe.block_ptrs(),
                          512)
                   .has_value());
}

TEST(BlockParallel, TinyBlocksCapSliceCount) {
  // 4 symbols cannot be split into 8 slices; the decoder must cap.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 4);
  const auto snap = test::fill_and_encode(code, stripe, 807);
  const FailureScenario sc({5});
  stripe.erase(sc);
  const BlockParallelDecoder dec(code, 8);
  const auto res = dec.decode(sc, stripe.block_ptrs(), 4);
  ASSERT_TRUE(res.has_value());
  EXPECT_LE(res->slices, 4u);
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(BlockParallel, ModeledSecondsIsPlanPlusSlowestSlice) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 8192);
  test::fill_and_encode(code, stripe, 808);
  ScenarioGenerator gen(809);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const BlockParallelDecoder dec(code, 4);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 8192);
  ASSERT_TRUE(res.has_value());
  double slowest = 0;
  for (const double t : res->slice_seconds) slowest = std::max(slowest, t);
  EXPECT_NEAR(res->modeled_seconds(), res->plan_seconds + slowest, 1e-12);
}

TEST(PpmResultLpt, LptNeverAboveSerialAndTracksLanes) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 2048);
  test::fill_and_encode(code, stripe, 810);
  ScenarioGenerator gen(811);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(), 2048);
  ASSERT_TRUE(res.has_value());
  // LPT makespan is bounded by the serial sum and by lanes * optimal.
  EXPECT_LE(res->modeled_seconds_lpt(4), res->modeled_seconds(1) + 1e-12);
  EXPECT_GE(res->modeled_seconds_lpt(2) + 1e-12,
            res->modeled_seconds_lpt(4));
}

}  // namespace
}  // namespace ppm
