// Decode-serving front end: async source, readiness sets, overlapped
// solves with hedged reads, the DecodeServer queue, and the fallback
// ladder — docs/SERVING.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "analyze_hazard/hazard.h"
#include "codec/codec.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "common/crc32.h"
#include "io/block_source.h"
#include "io/fault_injection.h"
#include "serve/overlap.h"
#include "serve/server.h"
#include "serve/uring_source.h"
#include "test_util.h"
#include "workload/scenario_gen.h"

namespace ppm {
namespace {

using io::FaultInjectingSource;
using io::FaultSpec;
using io::MemoryBlockSource;

std::vector<const std::uint8_t*> snapshot_ptrs(
    const std::vector<std::uint8_t>& snap, std::size_t blocks,
    std::size_t bytes) {
  std::vector<const std::uint8_t*> ptrs(blocks);
  for (std::size_t i = 0; i < blocks; ++i) ptrs[i] = snap.data() + i * bytes;
  return ptrs;
}

std::vector<std::uint32_t> digests_of(const std::vector<std::uint8_t>& snap,
                                      std::size_t blocks, std::size_t bytes) {
  std::vector<std::uint32_t> crc(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    crc[i] = crc32(snap.data() + i * bytes, bytes);
  }
  return crc;
}

// ---- AsyncBlockSource: the thread-backed reactor ------------------------

TEST(AsyncSource, CompletionsCarryTheRightBytes) {
  const std::size_t kBlocks = 6;
  const std::size_t kBytes = 128;
  std::vector<std::uint8_t> data(kBlocks * kBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7 + 3);
  }
  const auto ptrs = snapshot_ptrs(data, kBlocks, kBytes);
  MemoryBlockSource inner(ptrs.data(), kBlocks, kBytes);
  serve::ThreadedAsyncSource async(inner, 3);
  EXPECT_EQ(async.block_count(), kBlocks);
  EXPECT_EQ(async.block_bytes(), kBytes);

  std::vector<std::vector<std::uint8_t>> dst(kBlocks);
  std::vector<std::uint64_t> tokens(kBlocks);
  for (std::size_t b = 0; b < kBlocks; ++b) {
    dst[b].resize(kBytes);
    tokens[b] = async.submit(b, dst[b].data(), kBytes);
  }
  std::vector<serve::ReadCompletion> done;
  while (done.size() < kBlocks) {
    async.poll(done, std::chrono::milliseconds{50});
  }
  EXPECT_EQ(async.in_flight(), 0u);
  std::vector<bool> seen(kBlocks, false);
  for (const serve::ReadCompletion& c : done) {
    ASSERT_LT(c.block, kBlocks);
    EXPECT_FALSE(seen[c.block]) << "duplicate completion";
    seen[c.block] = true;
    EXPECT_EQ(c.token, tokens[c.block]);
    EXPECT_EQ(c.status, io::ReadStatus::kOk);
    EXPECT_EQ(std::memcmp(dst[c.block].data(), ptrs[c.block], kBytes), 0);
  }
}

TEST(AsyncSource, FailedReadsCompleteWithFailedStatus) {
  std::vector<std::uint8_t> data(64);
  const std::uint8_t* ptr = data.data();
  MemoryBlockSource inner(&ptr, 1, 64);
  serve::ThreadedAsyncSource async(inner, 1);
  std::vector<std::uint8_t> dst(64);
  const std::uint64_t token = async.submit(7, dst.data(), 64);  // no block 7
  std::vector<serve::ReadCompletion> done;
  while (done.empty()) async.poll(done, std::chrono::milliseconds{50});
  EXPECT_EQ(done[0].token, token);
  EXPECT_EQ(done[0].block, 7u);
  EXPECT_EQ(done[0].status, io::ReadStatus::kFailed);
}

TEST(AsyncSource, PollWithNothingInFlightReturnsImmediately) {
  std::vector<std::uint8_t> data(64);
  const std::uint8_t* ptr = data.data();
  MemoryBlockSource inner(&ptr, 1, 64);
  serve::ThreadedAsyncSource async(inner, 2);
  std::vector<serve::ReadCompletion> done;
  EXPECT_EQ(async.poll(done, std::chrono::seconds{10}), 0u);
  EXPECT_TRUE(done.empty());
}

TEST(AsyncSource, UringBackendDegradesGracefully) {
  // Without liburing the factory reports unavailable and returns null —
  // callers need no #ifdef. With it, a bogus path still fails cleanly.
  if (!serve::uring_available()) {
    EXPECT_EQ(serve::make_uring_source("/nonexistent", 4, 512), nullptr);
  } else {
    EXPECT_EQ(serve::make_uring_source("/nonexistent/path/x", 4, 512),
              nullptr);
  }
}

// ---- readiness sets from the hazard DAG ---------------------------------

TEST(PlanReadiness, GroupInputsPartitionTheSurvivorReads) {
  const SDCode code(6, 8, 2, 2, SDCode::recommended_width(6, 8));
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  Codec codec(code);
  const auto plan = codec.plan_for(g.scenario);
  ASSERT_NE(plan, nullptr);
  const hazard::PlanReadiness ready = hazard::plan_readiness(*plan);

  EXPECT_EQ(ready.group_inputs.size(), plan->groups().size());
  EXPECT_EQ(ready.has_rest, plan->rest().has_value());

  // Inputs are survivor reads: no faulty (recovered-by-compute) block may
  // appear, and every group/rest input is in the union.
  std::vector<bool> faulty(code.total_blocks(), false);
  for (const std::size_t b : g.scenario.faulty()) faulty[b] = true;
  std::vector<bool> in_all(code.total_blocks(), false);
  for (const std::size_t b : ready.all_inputs) {
    ASSERT_LT(b, code.total_blocks());
    EXPECT_FALSE(faulty[b]) << "block " << b;
    in_all[b] = true;
  }
  std::size_t group_input_total = 0;
  for (const auto& inputs : ready.group_inputs) {
    group_input_total += inputs.size();
    for (const std::size_t b : inputs) EXPECT_TRUE(in_all[b]);
  }
  EXPECT_GT(group_input_total, 0u);
  for (const std::size_t b : ready.rest_inputs) EXPECT_TRUE(in_all[b]);
}

// ---- decode_overlapped --------------------------------------------------

TEST(Overlap, CleanSourceDecodesAndOverlaps) {
  const SDCode code(6, 8, 2, 2, SDCode::recommended_width(6, 8));
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 1);
  stripe.erase(g.scenario);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource source(ptrs.data(), code.total_blocks(), 512);
  const auto digests = digests_of(snap, code.total_blocks(), 512);
  const auto out = serve::decode_overlapped(
      codec, g.scenario, source, stripe.block_ptrs(), 512, {}, digests);
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.fallback);
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_GT(out.reads_issued, 0u);
  EXPECT_GE(out.first_solve_start_ns, 0);
  EXPECT_GE(out.last_read_complete_ns, 0);
}

TEST(Overlap, GroupSolvesStartBeforeLastSurvivorRead) {
  // The acceptance gate's stage-timestamp assertion: delay one block that
  // some group does NOT need; that group's solve must start while the
  // straggler is still in flight.
  const SDCode code(6, 8, 2, 2, SDCode::recommended_width(6, 8));
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  Codec codec(code);
  const auto plan = codec.plan_for(g.scenario);
  ASSERT_NE(plan, nullptr);
  const hazard::PlanReadiness ready = hazard::plan_readiness(*plan);

  // Find a group g0 and an input block `slow` that g0 does not read.
  std::size_t g0 = ready.group_inputs.size();
  std::size_t slow = code.total_blocks();
  for (std::size_t gi = 0; gi < ready.group_inputs.size() && slow >= code.total_blocks(); ++gi) {
    if (ready.group_inputs[gi].empty()) continue;
    for (const std::size_t b : ready.all_inputs) {
      const auto& inputs = ready.group_inputs[gi];
      if (std::find(inputs.begin(), inputs.end(), b) == inputs.end()) {
        g0 = gi;
        slow = b;
        break;
      }
    }
  }
  ASSERT_LT(g0, ready.group_inputs.size())
      << "fixture must have a group that skips some survivor";

  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 2);
  stripe.erase(g.scenario);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec straggler;
  straggler.delay = std::chrono::milliseconds{80};
  source.set_fault(slow, straggler);

  serve::OverlapOptions options;
  options.hedge.enabled = false;  // nothing may rescue the straggler
  const auto out = serve::decode_overlapped(
      codec, g.scenario, source, stripe.block_ptrs(), 512, options);
  ASSERT_TRUE(out.complete);
  EXPECT_FALSE(out.fallback);
  EXPECT_TRUE(stripe.equals(snap));
  // The stage timestamps prove the overlap: g0 solved while `slow` was
  // still outstanding.
  ASSERT_LT(g0, out.groups.size());
  ASSERT_GE(out.groups[g0].solve_start_ns, 0);
  EXPECT_LT(out.groups[g0].solve_start_ns, out.last_read_complete_ns);
  EXPECT_LT(out.first_solve_start_ns, out.last_read_complete_ns);
  EXPECT_TRUE(out.overlapped);
  // The straggler dominated the fetch span.
  EXPECT_GE(out.last_read_complete_ns, 80'000'000);
}

TEST(Overlap, HedgeClipsTransientStraggler) {
  // A transient straggler (first attempt stuck, duplicates fast) must be
  // beaten by a hedged read: every needed input lands — and the solves
  // run — far below the straggler's delay. (total_ns still includes the
  // final reactor drain: the abandoned primary writes into frame-owned
  // scratch, so the thread-backed backend must let it finish.)
  const SDCode code(6, 8, 2, 2, SDCode::recommended_width(6, 8));
  ScenarioGenerator gen(0xAB3A);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 3);
  stripe.erase(g.scenario);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  const auto plan = codec.plan_for(g.scenario);
  ASSERT_NE(plan, nullptr);
  const hazard::PlanReadiness ready = hazard::plan_readiness(*plan);
  ASSERT_FALSE(ready.all_inputs.empty());
  FaultSpec straggler;
  straggler.delay = std::chrono::milliseconds{400};
  straggler.delay_reads = 1;  // only the first attempt is stuck
  source.set_fault(ready.all_inputs.front(), straggler);

  const auto out = serve::decode_overlapped(codec, g.scenario, source,
                                            stripe.block_ptrs(), 512);
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.fallback);
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_GE(out.hedges_launched, 1u);
  EXPECT_GE(out.hedges_won, 1u);
  // Without the hedge the last needed input would land at >= 400ms; the
  // winning duplicate delivered it (and unblocked every solve) early.
  ASSERT_GE(out.last_read_complete_ns, 0);
  EXPECT_LT(out.last_read_complete_ns, 200'000'000);
  EXPECT_GE(out.rest_solve_start_ns, 0);
  EXPECT_LT(out.rest_solve_start_ns, 200'000'000);
}

TEST(Overlap, TransientFailuresRetryWithoutFallback) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 4);
  const FailureScenario sc({1});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec transient;
  transient.fail_reads = 2;
  source.set_fault(4, transient);
  serve::OverlapOptions options;
  options.resilience.max_read_retries = 3;
  const auto out = serve::decode_overlapped(codec, sc, source,
                                            stripe.block_ptrs(), 512, options);
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.fallback);
  EXPECT_GE(out.read_failures, 2u);
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(Overlap, ExhaustedRetriesFallBackToResilientLadder) {
  // A permanently dead survivor defeats the fast path; the fallback
  // ladder escalates to other survivors and still completes.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 5);
  const FailureScenario sc({0});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec dead;
  dead.fail_always = true;
  source.set_fault(2, dead);
  serve::OverlapOptions options;
  options.resilience.max_read_retries = 1;
  options.resilience.initial_backoff = std::chrono::microseconds{1};
  const auto out = serve::decode_overlapped(codec, sc, source,
                                            stripe.block_ptrs(), 512, options);
  EXPECT_TRUE(out.fallback);
  EXPECT_TRUE(out.complete);
  EXPECT_GE(out.resilient.escalations, 1u);
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(Overlap, CorruptSurvivorDetectedByDigestsFallsBack) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 6);
  const FailureScenario sc({0});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  const auto digests = digests_of(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec torn;
  torn.corrupt = true;
  torn.corrupt_offset = 32;
  torn.corrupt_bytes = 8;
  source.set_fault(3, torn);
  serve::OverlapOptions options;
  options.resilience.max_read_retries = 1;
  options.resilience.initial_backoff = std::chrono::microseconds{1};
  const auto out = serve::decode_overlapped(
      codec, sc, source, stripe.block_ptrs(), 512, options, digests);
  // Every attempt at block 3 CRC-mismatches; the ladder escalates around
  // it and the recovery still verifies.
  EXPECT_GE(out.read_failures, 1u);
  EXPECT_TRUE(out.fallback);
  EXPECT_TRUE(out.complete);
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(Overlap, UndecodableScenarioFallsBackIncomplete) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 7);
  const FailureScenario sc({0, 1, 2, 3});  // beyond m=3
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource source(ptrs.data(), code.total_blocks(), 512);
  const auto out = serve::decode_overlapped(codec, sc, source,
                                            stripe.block_ptrs(), 512);
  EXPECT_TRUE(out.fallback);
  EXPECT_FALSE(out.complete);
}

// ---- DecodeServer: queue, admission, batching ---------------------------

struct ServedStripe {
  explicit ServedStripe(const ErasureCode& code, std::size_t bytes,
                        const std::vector<const std::uint8_t*>& ptrs,
                        const FailureScenario& sc)
      : stripe(code, bytes), inner(ptrs.data(), code.total_blocks(), bytes),
        source(inner) {
    for (std::size_t b = 0; b < code.total_blocks(); ++b) {
      std::memcpy(stripe.block(b), ptrs[b], bytes);
    }
    stripe.erase(sc);
  }
  Stripe stripe;
  MemoryBlockSource inner;
  FaultInjectingSource source;
};

TEST(DecodeServer, ServesConcurrentRequestsByteIdentically) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe reference(code, 512);
  const auto snap = test::fill_and_encode(code, reference, 8);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  const std::vector<FailureScenario> scenarios{
      FailureScenario({0}), FailureScenario({1, 7}), FailureScenario({3})};

  serve::DecodeServer server(codec, {});
  std::vector<std::unique_ptr<ServedStripe>> served;
  std::vector<std::optional<std::future<serve::OverlapResult>>> futures;
  for (int rep = 0; rep < 3; ++rep) {
    for (const FailureScenario& sc : scenarios) {
      auto s = std::make_unique<ServedStripe>(code, 512, ptrs, sc);
      serve::ServeRequest req;
      req.scenario = sc;
      req.source = &s->source;
      req.blocks = s->stripe.block_ptrs();
      req.block_bytes = 512;
      futures.push_back(server.submit(std::move(req)));
      served.push_back(std::move(s));
    }
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].has_value()) << i;
    const auto out = futures[i]->get();
    EXPECT_TRUE(out.complete) << i;
    EXPECT_TRUE(served[i]->stripe.equals(snap)) << i;
  }
}

TEST(DecodeServer, BackpressureRejectsWhenQueueIsFull) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe reference(code, 512);
  const auto snap = test::fill_and_encode(code, reference, 9);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  const FailureScenario sc({0});

  serve::ServerOptions options;
  options.queue_depth = 1;
  options.dispatchers = 1;
  options.overlap.hedge.enabled = false;  // hedges would defeat the stall
  options.overlap.reactor_threads = 32;   // stragglers sleep concurrently
  serve::DecodeServer server(codec, options);

  // Request 0 stalls the lone dispatcher: every survivor read sleeps.
  auto slow = std::make_unique<ServedStripe>(code, 512, ptrs, sc);
  FaultSpec straggler;
  straggler.delay = std::chrono::milliseconds{150};
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    slow->source.set_fault(b, straggler);
  }
  serve::ServeRequest req0;
  req0.scenario = sc;
  req0.source = &slow->source;
  req0.blocks = slow->stripe.block_ptrs();
  req0.block_bytes = 512;
  auto f0 = server.submit(std::move(req0));
  ASSERT_TRUE(f0.has_value());
  // Let the dispatcher pop request 0 so the queue is empty again.
  std::this_thread::sleep_for(std::chrono::milliseconds{30});

  std::vector<std::unique_ptr<ServedStripe>> served;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  std::vector<std::optional<std::future<serve::OverlapResult>>> futures;
  for (int i = 0; i < 4; ++i) {
    auto s = std::make_unique<ServedStripe>(code, 512, ptrs, sc);
    serve::ServeRequest req;
    req.scenario = sc;
    req.source = &s->source;
    req.blocks = s->stripe.block_ptrs();
    req.block_bytes = 512;
    auto f = server.submit(std::move(req));
    if (f.has_value()) {
      ++accepted;
      futures.push_back(std::move(f));
      served.push_back(std::move(s));
    } else {
      ++rejected;
    }
  }
  // depth 1 + a busy dispatcher: exactly one fits, the rest bounce.
  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(rejected, 3u);
  EXPECT_TRUE(f0->get().complete);
  for (auto& f : futures) EXPECT_TRUE(f->get().complete);
  for (const auto& s : served) EXPECT_TRUE(s->stripe.equals(snap));
}

TEST(DecodeServer, BatchesQueuedRequestsSharingAPlan) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe reference(code, 512);
  const auto snap = test::fill_and_encode(code, reference, 10);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);

  serve::ServerOptions options;
  options.dispatchers = 1;
  options.overlap.hedge.enabled = false;
  options.overlap.reactor_threads = 32;
  serve::DecodeServer server(codec, options);
  ServeMetrics& metrics = serve_metrics();
  const std::size_t batches_before = metrics.batches.value();
  const std::size_t batched_before = metrics.batched_requests.value();

  // A slow leader occupies the dispatcher while three same-plan requests
  // pile up behind it; they must be claimed as one batch.
  const FailureScenario slow_sc({5});
  auto slow = std::make_unique<ServedStripe>(code, 512, ptrs, slow_sc);
  FaultSpec straggler;
  straggler.delay = std::chrono::milliseconds{120};
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    slow->source.set_fault(b, straggler);
  }
  serve::ServeRequest req0;
  req0.scenario = slow_sc;
  req0.source = &slow->source;
  req0.blocks = slow->stripe.block_ptrs();
  req0.block_bytes = 512;
  auto f0 = server.submit(std::move(req0));
  ASSERT_TRUE(f0.has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds{20});

  const FailureScenario sc({0});
  std::vector<std::unique_ptr<ServedStripe>> served;
  std::vector<std::future<serve::OverlapResult>> futures;
  for (int i = 0; i < 3; ++i) {
    auto s = std::make_unique<ServedStripe>(code, 512, ptrs, sc);
    serve::ServeRequest req;
    req.scenario = sc;
    req.source = &s->source;
    req.blocks = s->stripe.block_ptrs();
    req.block_bytes = 512;
    auto f = server.submit(std::move(req));
    ASSERT_TRUE(f.has_value()) << i;
    futures.push_back(std::move(*f));
    served.push_back(std::move(s));
  }
  EXPECT_TRUE(f0->get().complete);
  for (auto& f : futures) EXPECT_TRUE(f.get().complete);
  for (const auto& s : served) EXPECT_TRUE(s->stripe.equals(snap));
  // Leader = one batch of 1; the three followers = one batch of 3.
  EXPECT_EQ(metrics.batches.value() - batches_before, 2u);
  EXPECT_EQ(metrics.batched_requests.value() - batched_before, 4u);
}

TEST(DecodeServer, ShutdownDrainsAdmittedRequests) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe reference(code, 512);
  const auto snap = test::fill_and_encode(code, reference, 11);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  const FailureScenario sc({2});

  std::vector<std::unique_ptr<ServedStripe>> served;
  std::vector<std::future<serve::OverlapResult>> futures;
  {
    serve::DecodeServer server(codec, {});
    for (int i = 0; i < 4; ++i) {
      auto s = std::make_unique<ServedStripe>(code, 512, ptrs, sc);
      serve::ServeRequest req;
      req.scenario = sc;
      req.source = &s->source;
      req.blocks = s->stripe.block_ptrs();
      req.block_bytes = 512;
      auto f = server.submit(std::move(req));
      ASSERT_TRUE(f.has_value()) << i;
      futures.push_back(std::move(*f));
      served.push_back(std::move(s));
    }
    server.shutdown();  // must resolve every admitted future first
    EXPECT_FALSE(server.submit(serve::ServeRequest{}).has_value());
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().complete);
  for (const auto& s : served) EXPECT_TRUE(s->stripe.equals(snap));
}

// ---- concurrent multi-reader soak (satellite: thread-safe injector) -----

TEST(FaultSoak, ConcurrentReadersSeeAtMostOnceAttemptAccounting) {
  // 8 threads share one FaultInjectingSource. Fault budgets are claimed
  // atomically per attempt, so exactly fail_reads reads fail and exactly
  // delay_reads are delayed — no double-spend, no lost claim — and every
  // successful read returns intact bytes. Run under TSan in CI.
  const std::size_t kBlocks = 4;
  const std::size_t kBytes = 256;
  const std::size_t kThreads = 8;
  std::vector<std::uint8_t> data(kBlocks * kBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  const auto ptrs = snapshot_ptrs(data, kBlocks, kBytes);
  MemoryBlockSource inner(ptrs.data(), kBlocks, kBytes);
  FaultInjectingSource source(inner);
  FaultSpec flaky;
  flaky.fail_reads = 3;
  source.set_fault(0, flaky);
  FaultSpec straggler;
  straggler.delay = std::chrono::milliseconds{2};
  straggler.delay_reads = 2;
  source.set_fault(1, straggler);

  std::vector<std::size_t> failures(kThreads, 0);
  std::vector<std::size_t> bad_bytes(kThreads, 0);
  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<std::uint8_t> dst(kBytes);
      for (std::size_t b = 0; b < kBlocks; ++b) {
        const io::ReadStatus status = source.read(b, dst.data(), kBytes);
        if (status != io::ReadStatus::kOk) {
          ++failures[t];
        } else if (std::memcmp(dst.data(), ptrs[b], kBytes) != 0) {
          ++bad_bytes[t];
        }
      }
    });
  }
  for (auto& r : readers) r.join();

  std::size_t total_failures = 0;
  std::size_t total_bad = 0;
  for (std::size_t t = 0; t < kThreads; ++t) {
    total_failures += failures[t];
    total_bad += bad_bytes[t];
  }
  EXPECT_EQ(total_failures, 3u);  // fail_reads claimed exactly once each
  EXPECT_EQ(total_bad, 0u);
  EXPECT_EQ(source.reads_attempted(), kThreads * kBlocks);
  EXPECT_EQ(source.failures_injected(), 3u);
  EXPECT_EQ(source.delays_injected(), 2u);
}

// ---- serve metrics ------------------------------------------------------

TEST(ServeMetricsJson, HasStableKeysAndResets) {
  ServeMetrics m;
  m.requests.add(5);
  m.hedges_won.add(2);
  m.queue_seconds.record_nanos(1000);
  const std::string json = m.to_json();
  for (const char* key :
       {"\"serve\"", "\"requests\":5", "\"hedges_won\":2", "\"latency\"",
        "\"queue\"", "\"fetch\"", "\"solve\"", "\"request\"", "\"read\"",
        "\"p999_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  m.reset();
  EXPECT_EQ(m.requests.value(), 0u);
  EXPECT_EQ(m.queue_seconds.count(), 0u);
}

}  // namespace
}  // namespace ppm
