// End-to-end property sweeps: fill -> encode -> erase -> decode -> verify,
// across codes, widths, decoders, thread counts and failure shapes. These
// are the tests that pin PPM's headline correctness claim: it recovers
// exactly what the traditional method recovers, in every configuration.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "test_util.h"

namespace ppm {
namespace {

struct SdConfig {
  std::size_t n, r, m, s, z;
};

class SdRoundTrip : public ::testing::TestWithParam<SdConfig> {};

TEST_P(SdRoundTrip, PpmAndTraditionalAgree) {
  const auto [n, r, m, s, z] = GetParam();
  const unsigned w = SDCode::recommended_width(n, r);
  const SDCode code(n, r, m, s, w);
  const std::size_t block = 128 * code.field().symbol_bytes();
  Stripe stripe(code, block);
  const auto snap = test::fill_and_encode(code, stripe, n * 1000 + r);
  ScenarioGenerator gen(n * 97 + r * 31 + m * 7 + s * 3 + z);

  const TraditionalDecoder trad(code);
  PpmOptions opts;
  opts.threads = 2;
  const PpmDecoder ppm_dec(code, opts);

  for (int trial = 0; trial < 3; ++trial) {
    const auto g = gen.sd_worst_case(code, m, s, z);

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    const auto tr = trad.decode(g.scenario, stripe.block_ptrs(), block);
    ASSERT_TRUE(tr.has_value());
    ASSERT_TRUE(stripe.equals(snap));

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    const auto pr = ppm_dec.decode(g.scenario, stripe.block_ptrs(), block);
    ASSERT_TRUE(pr.has_value());
    EXPECT_TRUE(stripe.equals(snap));
    // PPM's cost never exceeds the baseline's (it chooses min(C3, C4) and
    // the paper proves C4 < C1).
    EXPECT_LE(pr->stats.mult_xors, tr->stats.mult_xors);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SdRoundTrip,
    ::testing::Values(SdConfig{4, 4, 1, 1, 1}, SdConfig{6, 4, 2, 2, 1},
                      SdConfig{6, 4, 2, 2, 2}, SdConfig{8, 8, 1, 3, 2},
                      SdConfig{8, 8, 3, 3, 1}, SdConfig{11, 16, 2, 1, 1},
                      SdConfig{16, 8, 2, 2, 1}, SdConfig{16, 16, 2, 2, 1},
                      SdConfig{21, 8, 3, 2, 2}, SdConfig{24, 16, 1, 2, 1}),
    [](const auto& info) {
      const SdConfig& c = info.param;
      return "n" + std::to_string(c.n) + "r" + std::to_string(c.r) + "m" +
             std::to_string(c.m) + "s" + std::to_string(c.s) + "z" +
             std::to_string(c.z);
    });

struct LrcConfig {
  std::size_t k, l, g, locals, extra;
};

class LrcRoundTrip : public ::testing::TestWithParam<LrcConfig> {};

TEST_P(LrcRoundTrip, PpmAndTraditionalAgree) {
  const auto [k, l, g, locals, extra] = GetParam();
  const LRCCode code(k, l, g, 8);
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, k * 100 + l);
  ScenarioGenerator gen(k * 13 + l * 5 + g * 3 + locals + extra);
  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);

  for (int trial = 0; trial < 3; ++trial) {
    const auto gs = gen.lrc_failures(code, locals, extra);

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(gs.scenario);
    ASSERT_TRUE(trad.decode(gs.scenario, stripe.block_ptrs(), 1024));
    ASSERT_TRUE(stripe.equals(snap));

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(gs.scenario);
    const auto pr = ppm_dec.decode(gs.scenario, stripe.block_ptrs(), 1024);
    ASSERT_TRUE(pr.has_value());
    EXPECT_TRUE(stripe.equals(snap));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, LrcRoundTrip,
    ::testing::Values(LrcConfig{4, 2, 2, 2, 0}, LrcConfig{12, 3, 2, 3, 0},
                      LrcConfig{12, 3, 2, 2, 1}, LrcConfig{20, 4, 3, 4, 2},
                      LrcConfig{10, 5, 2, 5, 1}),
    [](const auto& info) {
      const LrcConfig& c = info.param;
      return "k" + std::to_string(c.k) + "l" + std::to_string(c.l) + "g" +
             std::to_string(c.g) + "f" + std::to_string(c.locals) + "x" +
             std::to_string(c.extra);
    });

TEST(RsRoundTrip, AllWidths) {
  for (const unsigned w : {8u, 16u, 32u}) {
    const RSCode code(10, 4, w);
    const std::size_t block = 64 * code.field().symbol_bytes();
    Stripe stripe(code, block);
    const auto snap = test::fill_and_encode(code, stripe, 300 + w);
    ScenarioGenerator gen(301 + w);
    for (const std::size_t f : {1u, 2u, 4u}) {
      const auto g = gen.rs_failures(code, f);
      std::memcpy(stripe.block(0), snap.data(), snap.size());
      stripe.erase(g.scenario);
      const TraditionalDecoder trad(code);
      ASSERT_TRUE(trad.decode(g.scenario, stripe.block_ptrs(), block));
      EXPECT_TRUE(stripe.equals(snap)) << "w=" << w << " f=" << f;
    }
  }
}

TEST(EncodeDecodeCycle, RepeatedFailureWavesConverge) {
  // Lose different blocks wave after wave; every decode must restore the
  // original stripe exactly.
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 400);
  ScenarioGenerator gen(401);
  const PpmDecoder dec(code);
  for (int wave = 0; wave < 10; ++wave) {
    const auto g = gen.sd_worst_case(code, 2, 2, 1);
    stripe.erase(g.scenario);
    ASSERT_TRUE(dec.decode(g.scenario, stripe.block_ptrs(), 512));
    ASSERT_TRUE(stripe.equals(snap)) << "wave " << wave;
  }
}

TEST(EncodeDecodeCycle, PartialFailuresBelowWorstCase) {
  // Fewer faults than the tolerance: F is tall, the row-subset path runs.
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 402);
  const PpmDecoder dec(code);
  const TraditionalDecoder trad(code);
  for (const auto& faults :
       {FailureScenario({5}), FailureScenario({5, 14}),
        FailureScenario({5, 14, 23}), FailureScenario({0, 9, 18, 27})}) {
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(faults);
    ASSERT_TRUE(trad.decode(faults, stripe.block_ptrs(), 512));
    ASSERT_TRUE(stripe.equals(snap));
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(faults);
    ASSERT_TRUE(dec.decode(faults, stripe.block_ptrs(), 512));
    EXPECT_TRUE(stripe.equals(snap));
  }
}

TEST(EncodeDecodeCycle, DataUpdateReencode) {
  // Mutate one data block, re-encode, and verify a subsequent failure of
  // that very block recovers the *new* contents.
  const SDCode code(6, 4, 2, 1, 8);
  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 403);
  Rng rng(404);
  rng.fill(stripe.block(0), 256);
  const TraditionalDecoder trad(code);
  ASSERT_TRUE(trad.encode(stripe.block_ptrs(), 256));
  const auto snap = stripe.snapshot();
  const FailureScenario sc({0});
  stripe.erase(sc);
  const PpmDecoder dec(code);
  ASSERT_TRUE(dec.decode(sc, stripe.block_ptrs(), 256));
  EXPECT_TRUE(stripe.equals(snap));
}

}  // namespace
}  // namespace ppm
