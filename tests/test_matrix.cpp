// Dense GF matrix algebra: construction, products, inverses, rank, census.
#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"
#include "matrix/matrix.h"

namespace ppm {
namespace {

Matrix random_matrix(const gf::Field& f, std::size_t rows, std::size_t cols,
                     Rng& rng) {
  Matrix m(f, rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = static_cast<gf::Element>(rng.next()) & f.max_element();
    }
  }
  return m;
}

TEST(MatrixBasics, ZeroInitialized) {
  const Matrix m(gf::field(8), 3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.nonzeros(), 0u);
}

TEST(MatrixBasics, InitializerListRowMajor) {
  const Matrix m(gf::field(8), 2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m(0, 0), 1u);
  EXPECT_EQ(m(0, 2), 3u);
  EXPECT_EQ(m(1, 0), 4u);
  EXPECT_EQ(m(1, 2), 6u);
}

TEST(MatrixBasics, InitializerListSizeMismatchThrows) {
  EXPECT_THROW(Matrix(gf::field(8), 2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(MatrixBasics, IdentityProperties) {
  const auto id = Matrix::identity(gf::field(8), 5);
  EXPECT_EQ(id.nonzeros(), 5u);
  EXPECT_EQ(id.rank(), 5u);
  EXPECT_EQ(*id.inverse(), id);
}

TEST(MatrixProduct, IdentityIsNeutral) {
  Rng rng(21);
  const auto m = random_matrix(gf::field(8), 4, 6, rng);
  EXPECT_EQ(Matrix::identity(gf::field(8), 4) * m, m);
  EXPECT_EQ(m * Matrix::identity(gf::field(8), 6), m);
}

TEST(MatrixProduct, DimensionMismatchThrows) {
  const Matrix a(gf::field(8), 2, 3);
  const Matrix b(gf::field(8), 2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(MatrixProduct, KnownSmallProduct) {
  const gf::Field& f = gf::field(8);
  const Matrix a(f, 2, 2, {1, 2, 3, 4});
  const Matrix b(f, 2, 2, {5, 6, 7, 8});
  Matrix expect(f, 2, 2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      expect(i, j) = f.mul(a(i, 0), b(0, j)) ^ f.mul(a(i, 1), b(1, j));
    }
  }
  EXPECT_EQ(a * b, expect);
}

class MatrixInverseTest
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(MatrixInverseTest, RandomInvertibleRoundTrip) {
  const auto [w, n] = GetParam();
  const gf::Field& f = gf::field(w);
  Rng rng(22 + w + n);
  for (int trial = 0; trial < 10; ++trial) {
    Matrix m = random_matrix(f, n, n, rng);
    const auto inv = m.inverse();
    if (!inv.has_value()) continue;  // rare singular draw: skip
    EXPECT_EQ(m * *inv, Matrix::identity(f, n));
    EXPECT_EQ(*inv * m, Matrix::identity(f, n));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatrixInverseTest,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{5}, std::size_t{16},
                                         std::size_t{40})),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

TEST(MatrixInverse, SingularReturnsNullopt) {
  const gf::Field& f = gf::field(8);
  Matrix m(f, 3, 3, {1, 2, 3, 2, 4, 6, 7, 8, 9});  // row1 = 2 * row0
  EXPECT_FALSE(m.inverse().has_value());
  EXPECT_LT(m.rank(), 3u);
}

TEST(MatrixInverse, ZeroMatrixIsSingular) {
  EXPECT_FALSE(Matrix(gf::field(8), 4, 4).inverse().has_value());
}

TEST(MatrixInverse, NonSquareThrows) {
  EXPECT_THROW(Matrix(gf::field(8), 2, 3).inverse(), std::invalid_argument);
}

TEST(MatrixInverse, RequiresRowSwaps) {
  // Zero on the diagonal forces pivoting.
  const gf::Field& f = gf::field(8);
  const Matrix m(f, 2, 2, {0, 1, 1, 0});
  const auto inv = m.inverse();
  ASSERT_TRUE(inv.has_value());
  EXPECT_EQ(m * *inv, Matrix::identity(f, 2));
}

TEST(MatrixRank, RectangularRanks) {
  const gf::Field& f = gf::field(8);
  Matrix m(f, 2, 4, {1, 0, 2, 0, 0, 1, 0, 3});
  EXPECT_EQ(m.rank(), 2u);
  Matrix tall(f, 4, 2, {1, 2, 2, 4, 3, 6, 0, 0});  // all rows multiples
  EXPECT_EQ(tall.rank(), 1u);
}

TEST(MatrixCensus, NonzerosCountsExactly) {
  Matrix m(gf::field(8), 2, 3, {0, 1, 0, 2, 0, 3});
  EXPECT_EQ(m.nonzeros(), 3u);
}

TEST(MatrixCensus, ColumnIsZero) {
  Matrix m(gf::field(8), 2, 3, {0, 1, 0, 0, 0, 3});
  EXPECT_TRUE(m.column_is_zero(0));
  EXPECT_FALSE(m.column_is_zero(1));
  EXPECT_FALSE(m.column_is_zero(2));
}

TEST(MatrixSelect, ColumnsPreserveOrder) {
  Matrix m(gf::field(8), 2, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<std::size_t> cols{3, 0};
  const Matrix sel = m.select_columns(cols);
  EXPECT_EQ(sel(0, 0), 4u);
  EXPECT_EQ(sel(0, 1), 1u);
  EXPECT_EQ(sel(1, 0), 8u);
  EXPECT_EQ(sel(1, 1), 5u);
}

TEST(MatrixSelect, RowsPreserveOrder) {
  Matrix m(gf::field(8), 3, 2, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> rows{2, 0};
  const Matrix sel = m.select_rows(rows);
  EXPECT_EQ(sel(0, 0), 5u);
  EXPECT_EQ(sel(1, 1), 2u);
}

TEST(MatrixSelect, SelectionComposesWithProduct) {
  // (A * B) restricted to columns == A * (B restricted to columns).
  Rng rng(23);
  const gf::Field& f = gf::field(16);
  const auto a = random_matrix(f, 4, 5, rng);
  const auto b = random_matrix(f, 5, 6, rng);
  const std::vector<std::size_t> cols{0, 2, 5};
  EXPECT_EQ((a * b).select_columns(cols), a * b.select_columns(cols));
}

}  // namespace
}  // namespace ppm
