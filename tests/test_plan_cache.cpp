// The sharded LRU cache backing the codec's plan cache.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/sharded_lru.h"

namespace ppm {
namespace {

using Cache = ShardedLruCache<int>;
using Key = Cache::Key;

TEST(ShardedLruCache, CapacityAndShardClamping) {
  EXPECT_EQ(Cache(0).capacity(), 1u);      // zero capacity -> 1
  EXPECT_EQ(Cache(0).shard_count(), 1u);   // shards clamp to capacity
  EXPECT_EQ(Cache(3).shard_count(), 3u);   // auto shards = min(8, capacity)
  EXPECT_EQ(Cache(64).shard_count(), 8u);
  EXPECT_EQ(Cache(8, 16).shard_count(), 8u);
  EXPECT_EQ(Cache(10, 4).capacity(), 10u);  // capacity preserved exactly
}

TEST(ShardedLruCache, SingleShardEvictsLeastRecentlyUsed) {
  Cache cache(2, 1);
  cache.insert({1}, 10);
  cache.insert({2}, 20);
  // Touch {1}: now {2} is the LRU victim.
  EXPECT_EQ(cache.get({1}).value(), 10);
  cache.insert({3}, 30);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.get({1}).has_value());
  EXPECT_FALSE(cache.get({2}).has_value());
  EXPECT_TRUE(cache.get({3}).has_value());
}

TEST(ShardedLruCache, InsertOfExistingKeyKeepsFirstValue) {
  Cache cache(4, 1);
  EXPECT_EQ(cache.insert({7}, 1), 1);
  // Benign double-build race: the second insert loses.
  EXPECT_EQ(cache.insert({7}, 2), 1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get({7}).value(), 1);
}

TEST(ShardedLruCache, ChurnNeverExceedsCapacityAndCountsEvictions) {
  Counter hits;
  Counter misses;
  Counter evictions;
  Cache cache(4, 2, &hits, &misses, &evictions);
  // Evict-then-reinsert churn over a working set larger than capacity:
  // with the old FIFO-vector bookkeeping this accumulated duplicate keys
  // and broke eviction; the LRU index holds one entry per key.
  for (int round = 0; round < 10; ++round) {
    for (std::size_t k = 0; k < 8; ++k) {
      if (!cache.get({k}).has_value()) {
        cache.insert({k}, static_cast<int>(k));
      }
      ASSERT_LE(cache.size(), 4u);
    }
  }
  EXPECT_EQ(hits.value() + misses.value(), 80u);
  // Every miss inserted; inserts beyond capacity evicted.
  EXPECT_EQ(evictions.value(), misses.value() - cache.size());
}

TEST(ShardedLruCache, TotalResidencyIsBoundedAcrossShards) {
  // However keys hash, the per-shard capacities sum to the total.
  Cache cache(8, 4);
  for (std::size_t k = 0; k < 100; ++k) cache.insert({k, k + 1}, 1);
  EXPECT_LE(cache.size(), 8u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ShardedLruCache, ConcurrentMixedTraffic) {
  Counter hits;
  Counter misses;
  Counter evictions;
  Cache cache(8, 0, &hits, &misses, &evictions);
  std::vector<std::jthread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 2000; ++i) {
        const Key key{static_cast<std::size_t>((i * 7 + t) % 32)};
        if (auto v = cache.get(key)) {
          ASSERT_EQ(*v, static_cast<int>(key[0]));
        } else {
          cache.insert(key, static_cast<int>(key[0]));
        }
        if (i % 64 == 0) {
          ASSERT_LE(cache.size(), 8u);
        }
      }
    });
  }
  threads.clear();  // join
  EXPECT_EQ(hits.value() + misses.value(), 8u * 2000u);
  EXPECT_LE(cache.size(), 8u);
}

}  // namespace
}  // namespace ppm
