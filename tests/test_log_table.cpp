// The log table of §III-A, checked against the paper's Fig. 3 worked
// example.
#include <gtest/gtest.h>

#include "codes/sd_code.h"
#include "decode/log_table.h"

namespace ppm {
namespace {

TEST(LogTable, Fig3Example) {
  // SD^{1,1}_{4,4}(8|1,2), faults {2, 6, 10, 13, 14}: the paper's table is
  //   (0, 1, (2)), (1, 1, (6)), (2, 1, (10)), (3, 2, (13,14)),
  //   (4, 5, (2,6,10,13,14)).
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const std::vector<std::size_t> faulty{2, 6, 10, 13, 14};
  const LogTable table = LogTable::build(code.parity_check(), faulty);

  ASSERT_EQ(table.rows.size(), 5u);
  EXPECT_EQ(table.rows[0].row, 0u);
  EXPECT_EQ(table.rows[0].t(), 1u);
  EXPECT_EQ(table.rows[0].faulty_cols, (std::vector<std::size_t>{2}));
  EXPECT_EQ(table.rows[1].faulty_cols, (std::vector<std::size_t>{6}));
  EXPECT_EQ(table.rows[2].faulty_cols, (std::vector<std::size_t>{10}));
  EXPECT_EQ(table.rows[3].t(), 2u);
  EXPECT_EQ(table.rows[3].faulty_cols, (std::vector<std::size_t>{13, 14}));
  EXPECT_EQ(table.rows[4].t(), 5u);
  EXPECT_EQ(table.rows[4].faulty_cols,
            (std::vector<std::size_t>{2, 6, 10, 13, 14}));
}

TEST(LogTable, RowsWithoutFaultsHaveZeroT) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  // Only block 0 fails: rows 1..3 (other stripe rows) have t = 0.
  const std::vector<std::size_t> faulty{0};
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  EXPECT_EQ(table.rows[0].t(), 1u);
  EXPECT_EQ(table.rows[1].t(), 0u);
  EXPECT_EQ(table.rows[2].t(), 0u);
  EXPECT_EQ(table.rows[3].t(), 0u);
  EXPECT_EQ(table.rows[4].t(), 1u);  // the global row always sees the fault
}

TEST(LogTable, EmptyFaultSet) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const LogTable table = LogTable::build(code.parity_check(), {});
  for (const LogRow& row : table.rows) EXPECT_EQ(row.t(), 0u);
}

TEST(LogTable, ColumnsAreSortedPerRow) {
  const SDCode code(6, 4, 2, 2, 8);
  const std::vector<std::size_t> faulty{1, 5, 9, 13, 17, 21};
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  for (const LogRow& row : table.rows) {
    EXPECT_TRUE(
        std::is_sorted(row.faulty_cols.begin(), row.faulty_cols.end()));
  }
}

}  // namespace
}  // namespace ppm
