// Incremental parity updates (the small-write path).
#include <gtest/gtest.h>

#include "codec/update.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/crs_code.h"
#include "codes/sd_code.h"
#include "codes/xorbas_lrc_code.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(UpdatePlanner, LrcWriteTouchesLocalPlusGlobals) {
  const LRCCode code(12, 3, 2, 8);
  const UpdatePlanner planner(code);
  const auto affected = planner.affected_parities(5);  // group 1
  // Exactly: local parity of group 1 + both globals.
  EXPECT_EQ(affected, (std::vector<std::size_t>{code.local_parity_block(1),
                                                code.global_parity_block(0),
                                                code.global_parity_block(1)}));
}

TEST(UpdatePlanner, RsWriteTouchesAllParities) {
  const RSCode code(10, 4, 8);
  const UpdatePlanner planner(code);
  EXPECT_EQ(planner.affected_parities(0).size(), 4u);
}

TEST(UpdatePlanner, SdWriteTouchesRowAndSectorParities) {
  const SDCode code(6, 4, 2, 1, 8);
  const UpdatePlanner planner(code);
  // Data block 0 (row 0) affects the row's m=2 disk parities + the
  // stripe's s=1 coding sector — and, because that coding sector lives in
  // the last stripe row, that row's m=2 disk parities cascade as well
  // (SD codes' small-write amplification).
  const auto affected = planner.affected_parities(0);
  EXPECT_EQ(affected.size(), 5u);
  // The two parities of the written block's own row are always included.
  EXPECT_NE(planner.coefficient(4, 0), 0u);
  EXPECT_NE(planner.coefficient(5, 0), 0u);
}

TEST(UpdatePlanner, RejectsParityBlocks) {
  const LRCCode code(8, 2, 2, 8);
  const UpdatePlanner planner(code);
  EXPECT_THROW(planner.affected_parities(code.local_parity_block(0)),
               std::invalid_argument);
  EXPECT_THROW(planner.coefficient(0, 1), std::invalid_argument);
}

class UpdateRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(UpdateRoundTrip, MatchesFullReencode) {
  // Property: apply_write must leave the stripe exactly as a full
  // re-encode of the mutated data would.
  const SDCode sd(6, 4, 2, 2, 8);
  const LRCCode lrc(12, 3, 2, 8);
  const RSCode rs(8, 3, 8);
  const ErasureCode* codes[] = {&sd, &lrc, &rs};
  const ErasureCode& code = *codes[GetParam() % 3];

  const std::size_t block = 512;
  Stripe incremental(code, block);
  test::fill_and_encode(code, incremental, 520 + GetParam());

  Rng rng(521 + GetParam());
  const auto data = code.data_blocks();
  const std::size_t victim = data[rng.bounded(data.size())];
  auto new_contents = test::random_bytes(rng, block);

  const UpdatePlanner planner(code);
  planner.apply_write(victim, new_contents.data(),
                      incremental.block_ptrs(), block);

  // Reference: overwrite + full re-encode on a second stripe.
  Stripe reference(code, block);
  Rng rng2(520 + GetParam());
  reference.fill_data(rng2);
  std::memcpy(reference.block(victim), new_contents.data(), block);
  const TraditionalDecoder trad(code);
  ASSERT_TRUE(trad.encode(reference.block_ptrs(), block));

  EXPECT_TRUE(incremental.equals(reference.snapshot())) << code.name();
}

INSTANTIATE_TEST_SUITE_P(Codes, UpdateRoundTrip, ::testing::Range(0, 9));

TEST(UpdatePlanner, SequentialWritesStayConsistent) {
  const LRCCode code(8, 2, 2, 8);
  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 530);
  const UpdatePlanner planner(code);
  Rng rng(531);
  for (int i = 0; i < 20; ++i) {
    const std::size_t victim = rng.bounded(code.k());
    const auto data = test::random_bytes(rng, 256);
    planner.apply_write(victim, data.data(), stripe.block_ptrs(), 256);
    ASSERT_TRUE(stripe_consistent(code, stripe.block_ptrs(), 256))
        << "after write " << i;
  }
}

TEST(UpdatePlanner, CoefficientMatchesGeneratorIdentity) {
  // For XOR-local LRC rows the generator coefficient of a data block for
  // its own local parity is 1.
  const LRCCode code(12, 3, 2, 8);
  const UpdatePlanner planner(code);
  for (std::size_t d = 0; d < code.k(); ++d) {
    EXPECT_EQ(planner.coefficient(
                  code.local_parity_block(code.group_of(d)), d),
              1u);
  }
}

TEST(UpdatePlanner, OpsCountEqualsAffectedParities) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 532);
  const UpdatePlanner planner(code);
  Rng rng(533);
  const auto data = test::random_bytes(rng, 256);
  const std::size_t victim = 1;
  const std::size_t ops =
      planner.apply_write(victim, data.data(), stripe.block_ptrs(), 256);
  EXPECT_EQ(ops, planner.affected_parities(victim).size());
}


TEST(UpdatePlanner, WorksOnCrsAndXorbas) {
  // CRS: packet-granular generator; Xorbas: the global-local parity makes
  // a data write cascade into it through the globals.
  const CRSCode crs(6, 2, 8);
  Stripe cs(crs, 256);
  test::fill_and_encode(crs, cs, 534);
  const UpdatePlanner cp(crs);
  Rng rng(535);
  const auto bytes = test::random_bytes(rng, 256);
  cp.apply_write(crs.packet_block(2, 1), bytes.data(), cs.block_ptrs(), 256);
  EXPECT_TRUE(stripe_consistent(crs, cs.block_ptrs(), 256));

  const XorbasLRCCode xb(10, 2, 4, 8);
  Stripe xs(xb, 256);
  test::fill_and_encode(xb, xs, 536);
  const UpdatePlanner xp(xb);
  // Data block 0's coefficients toward the four globals are all alpha^0=1,
  // which cancel in the global-local parity (GF(2) sum of four ones), so
  // it touches 5 parities; block 1's powers alpha^1..alpha^4 do not
  // cancel, so it cascades into the global-local parity too: 6.
  EXPECT_EQ(xp.affected_parities(0).size(), 5u);
  EXPECT_EQ(xp.affected_parities(1).size(), 6u);
  xp.apply_write(1, bytes.data(), xs.block_ptrs(), 256);
  EXPECT_TRUE(stripe_consistent(xb, xs.block_ptrs(), 256));
}

}  // namespace
}  // namespace ppm
