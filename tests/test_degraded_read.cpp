// Degraded reads: minimal-cost single-block recovery.
#include <gtest/gtest.h>

#include "codes/crs_code.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "codes/xorbas_lrc_code.h"
#include "decode/degraded_read.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(DegradedRead, LrcDataStripUsesLocalGroup) {
  const LRCCode code(12, 3, 2, 8);  // groups of 4
  const DegradedReader reader(code);
  const FailureScenario sc({5});
  const auto plan = reader.plan(5, sc);
  ASSERT_TRUE(plan.has_value());
  // Local repair: 3 group peers + the local parity.
  EXPECT_EQ(plan->cost, 4u);
  EXPECT_EQ(plan->survivors, 4u);
}

TEST(DegradedRead, LrcRecoversCorrectBytes) {
  const LRCCode code(12, 3, 2, 8);
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, 510);
  const FailureScenario sc({5});
  stripe.erase(sc);
  const DegradedReader reader(code);
  DecodeStats stats;
  ASSERT_TRUE(reader.read(5, sc, stripe.block_ptrs(), 1024, &stats));
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(stats.mult_xors, 4u);
}

TEST(DegradedRead, SdSectorUsesRowParity) {
  const SDCode code(8, 8, 2, 2, 8);
  const DegradedReader reader(code);
  const FailureScenario sc({9});  // row 1, disk 1
  const auto plan = reader.plan(9, sc);
  ASSERT_TRUE(plan.has_value());
  // One row equation reads the other n-1 = 7 blocks of the row.
  EXPECT_EQ(plan->cost, 7u);
}

TEST(DegradedRead, FallsBackToRowCombination) {
  // Both blocks of a 2-block local group are unavailable: no single clean
  // row exists for a data strip, but a combination of its local row and a
  // global row still recovers it.
  const LRCCode code(8, 4, 2, 8);  // groups of 2
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 511);
  const FailureScenario sc({0, 1});  // all of group 0
  stripe.erase(sc);
  const DegradedReader reader(code);
  const auto plan = reader.plan(0, sc);
  ASSERT_TRUE(plan.has_value());
  EXPECT_GT(plan->cost, 2u);  // costlier than a clean local repair
  ASSERT_TRUE(reader.read(0, sc, stripe.block_ptrs(), 512));
  EXPECT_TRUE(stripe.blocks_equal(snap, std::vector<std::size_t>{0}));
}

TEST(DegradedRead, PrefersCheapestEquation) {
  // For an RS strip every parity row is equally wide; cost must equal k
  // (read all data peers or equivalent).
  const RSCode code(10, 4, 8);
  const DegradedReader reader(code);
  const FailureScenario sc({3});
  const auto plan = reader.plan(3, sc);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cost, 10u);  // 9 data peers + 1 parity
}

TEST(DegradedRead, TargetMustBeUnavailable) {
  const LRCCode code(8, 2, 2, 8);
  const DegradedReader reader(code);
  EXPECT_FALSE(reader.plan(0, FailureScenario({1})).has_value());
}

TEST(DegradedRead, UnrecoverableTargetReturnsNullopt) {
  // Wipe out an entire local group plus every global helper: more
  // unknowns than equations.
  const LRCCode code(4, 2, 1, 8);  // groups of 2, 1 global
  const DegradedReader reader(code);
  // Group 0 = {0,1}; also lose the local parity 4 and the global 6.
  const FailureScenario sc({0, 1, 4, 6});
  EXPECT_FALSE(reader.plan(0, sc).has_value());
}

TEST(DegradedRead, ParityBlockIsReadable) {
  // Degraded read of a lost parity strip (rebuild-in-place path).
  const LRCCode code(12, 3, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 512);
  const std::size_t local_parity = code.local_parity_block(1);
  const FailureScenario sc({local_parity});
  stripe.erase(sc);
  const DegradedReader reader(code);
  ASSERT_TRUE(reader.read(local_parity, sc, stripe.block_ptrs(), 512));
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(DegradedRead, EveryBlockOfEveryCodeReadable) {
  // Property: with only the target unavailable, every block of every code
  // is degraded-readable and restores exact bytes.
  const SDCode sd(6, 4, 2, 1, 8);
  const LRCCode lrc(8, 2, 2, 8);
  const RSCode rs(6, 3, 8);
  const ErasureCode* codes[] = {&sd, &lrc, &rs};
  for (const ErasureCode* code : codes) {
    Stripe stripe(*code, 256);
    const auto snap = test::fill_and_encode(*code, stripe, 513);
    const DegradedReader reader(*code);
    for (std::size_t b = 0; b < code->total_blocks(); ++b) {
      const FailureScenario sc({b});
      stripe.erase(sc);
      ASSERT_TRUE(reader.read(b, sc, stripe.block_ptrs(), 256))
          << code->name() << " block " << b;
      ASSERT_TRUE(stripe.equals(snap)) << code->name() << " block " << b;
    }
  }
}


TEST(DegradedRead, XorbasGlobalParityLocalRepair) {
  // A lost global parity repairs from the global-local group: 4 reads
  // (3 global peers + the global-local parity), never the 10 data strips.
  const XorbasLRCCode code(10, 2, 4, 8);
  const std::size_t victim = code.global_parity_block(2);
  const DegradedReader reader(code);
  const auto plan = reader.plan(victim, FailureScenario({victim}));
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cost, 4u);
}

TEST(DegradedRead, CrsPacketRecovery) {
  // One lost packet of a CRS strip recovers from one parity packet row.
  const CRSCode code(6, 2, 8);
  Stripe stripe(code, 128);
  const auto snap = test::fill_and_encode(code, stripe, 514);
  const std::size_t victim = code.packet_block(3, 2);
  const FailureScenario sc({victim});
  stripe.erase(sc);
  const DegradedReader reader(code);
  DecodeStats stats;
  ASSERT_TRUE(reader.read(victim, sc, stripe.block_ptrs(), 128, &stats));
  EXPECT_TRUE(stripe.equals(snap));
}


TEST(DegradedRead, TargetNotUnavailableIsDistinguished) {
  // Asking for a block that is readable is a caller error, not a data-loss
  // condition; the taxonomy must say so.
  const LRCCode code(12, 3, 2, 8);
  const DegradedReader reader(code);
  DegradedReadError error = DegradedReadError::kInsufficientSurvivors;
  const auto plan = reader.plan(5, FailureScenario({3}), &error);
  EXPECT_FALSE(plan.has_value());
  EXPECT_EQ(error, DegradedReadError::kTargetNotUnavailable);

  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 516);
  error = DegradedReadError::kNone;
  EXPECT_FALSE(reader.read(5, FailureScenario({3}), stripe.block_ptrs(), 256,
                           nullptr, &error));
  EXPECT_EQ(error, DegradedReadError::kTargetNotUnavailable);
}

TEST(DegradedRead, InsufficientSurvivorsIsDistinguished) {
  // RS(4,2) cannot express block 0 when three blocks are unavailable:
  // genuinely insufficient survivors, the fall-back-to-full-decode (or
  // data-loss) class.
  const RSCode code(4, 2, 8);
  const DegradedReader reader(code);
  DegradedReadError error = DegradedReadError::kNone;
  const auto plan = reader.plan(0, FailureScenario({0, 1, 2}), &error);
  EXPECT_FALSE(plan.has_value());
  EXPECT_EQ(error, DegradedReadError::kInsufficientSurvivors);

  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 517);
  error = DegradedReadError::kNone;
  EXPECT_FALSE(reader.read(0, FailureScenario({0, 1, 2}),
                           stripe.block_ptrs(), 256, nullptr, &error));
  EXPECT_EQ(error, DegradedReadError::kInsufficientSurvivors);
}

TEST(DegradedRead, SuccessReportsNoError) {
  const LRCCode code(12, 3, 2, 8);
  const DegradedReader reader(code);
  DegradedReadError error = DegradedReadError::kInsufficientSurvivors;
  const auto plan = reader.plan(5, FailureScenario({5}), &error);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(error, DegradedReadError::kNone);
}

TEST(DegradedRead, BlocksReadStatTracksSurvivors) {
  const LRCCode code(12, 3, 2, 8);
  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 515);
  const FailureScenario sc({5});
  stripe.erase(sc);
  const DegradedReader reader(code);
  DecodeStats stats;
  ASSERT_TRUE(reader.read(5, sc, stripe.block_ptrs(), 256, &stats));
  EXPECT_EQ(stats.blocks_read, 4u);  // local group repair I/O
}

}  // namespace
}  // namespace ppm
