// Scalar Galois-field arithmetic: axioms, known values, inverses, powers.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "gf/galois_field.h"

namespace ppm::gf {
namespace {

class FieldAxioms : public ::testing::TestWithParam<unsigned> {
 protected:
  const Field& f() const { return field(GetParam()); }
  Element random_element(Rng& rng) const {
    return static_cast<Element>(rng.next()) & f().max_element();
  }
};

TEST_P(FieldAxioms, WidthAndSymbolBytes) {
  EXPECT_EQ(f().w(), GetParam());
  EXPECT_EQ(f().symbol_bytes(), GetParam() / 8);
}

TEST_P(FieldAxioms, MaxElementIsAllOnes) {
  if (GetParam() == 32) {
    EXPECT_EQ(f().max_element(), 0xFFFFFFFFu);
  } else {
    EXPECT_EQ(f().max_element(), (Element{1} << GetParam()) - 1);
  }
}

TEST_P(FieldAxioms, MultiplicationByZeroAndOne) {
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const Element a = random_element(rng);
    EXPECT_EQ(f().mul(a, 0), 0u);
    EXPECT_EQ(f().mul(0, a), 0u);
    EXPECT_EQ(f().mul(a, 1), a);
    EXPECT_EQ(f().mul(1, a), a);
  }
}

TEST_P(FieldAxioms, Commutativity) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const Element a = random_element(rng);
    const Element b = random_element(rng);
    EXPECT_EQ(f().mul(a, b), f().mul(b, a));
  }
}

TEST_P(FieldAxioms, Associativity) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const Element a = random_element(rng);
    const Element b = random_element(rng);
    const Element c = random_element(rng);
    EXPECT_EQ(f().mul(f().mul(a, b), c), f().mul(a, f().mul(b, c)));
  }
}

TEST_P(FieldAxioms, DistributivityOverXor) {
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const Element a = random_element(rng);
    const Element b = random_element(rng);
    const Element c = random_element(rng);
    EXPECT_EQ(f().mul(a, b ^ c), f().mul(a, b) ^ f().mul(a, c));
  }
}

TEST_P(FieldAxioms, InverseRoundTrip) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Element a = random_element(rng);
    if (a == 0) a = 1;
    EXPECT_EQ(f().mul(a, f().inv(a)), 1u) << "a=" << a;
  }
}

TEST_P(FieldAxioms, DivisionInvertsMultiplication) {
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    const Element a = random_element(rng);
    Element b = random_element(rng);
    if (b == 0) b = 1;
    EXPECT_EQ(f().div(f().mul(a, b), b), a);
  }
}

TEST_P(FieldAxioms, PowMatchesRepeatedMultiplication) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Element a = random_element(rng);
    Element prod = 1;
    for (unsigned e = 0; e < 16; ++e) {
      EXPECT_EQ(f().pow(a, e), prod) << "a=" << a << " e=" << e;
      prod = f().mul(prod, a);
    }
  }
}

TEST_P(FieldAxioms, Exp2MatchesPowOfTwo) {
  for (unsigned e = 0; e < 64; ++e) {
    EXPECT_EQ(f().exp2(e), f().pow(2, e)) << "e=" << e;
  }
}

TEST_P(FieldAxioms, Exp2PeriodIsGroupOrder) {
  const std::uint64_t order = f().max_element();  // 2^w - 1
  EXPECT_EQ(f().exp2(order), 1u);
  EXPECT_EQ(f().exp2(order + 5), f().exp2(5));
}

TEST_P(FieldAxioms, TwoIsPrimitiveSpotCheck) {
  // alpha = 2 generates the group: powers over a window are distinct and
  // never zero. (Full distinctness is the period test; this guards against
  // degenerate table construction.)
  const unsigned window = GetParam() == 8 ? 255 : 4096;
  std::vector<Element> seen;
  Element x = 1;
  for (unsigned i = 0; i < window; ++i) {
    ASSERT_NE(x, 0u);
    seen.push_back(x);
    x = f().mul(x, 2);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, FieldAxioms,
                         ::testing::Values(8u, 16u, 32u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(FieldRegistry, RejectsUnsupportedWidths) {
  EXPECT_THROW(field(4), std::invalid_argument);
  EXPECT_THROW(field(12), std::invalid_argument);
  EXPECT_THROW(field(64), std::invalid_argument);
}

TEST(FieldRegistry, SingletonsAreStable) {
  EXPECT_EQ(&field(8), &field(8));
  EXPECT_EQ(&field(16), &field(16));
  EXPECT_EQ(&field(32), &field(32));
}

// Known values against the standard polynomials.
TEST(Gf8KnownValues, PolynomialReduction) {
  const Field& f = field(8);
  // x^7 * x = x^8 = x^4 + x^3 + x^2 + 1 (poly 0x11D)
  EXPECT_EQ(f.mul(0x80, 2), 0x1Du);
  EXPECT_EQ(f.mul(2, 2), 4u);
  // The paper's Fig. 2 coefficients rely on powers of 2 below n*r = 16
  // being distinct (none may wrap to 1 early).
  for (unsigned i = 1; i < 16; ++i) EXPECT_NE(f.exp2(i), 1u);
}

TEST(Gf16KnownValues, PolynomialReduction) {
  const Field& f = field(16);
  // x^15 * x = x^16 = x^12 + x^3 + x + 1 (poly 0x1100B)
  EXPECT_EQ(f.mul(0x8000, 2), 0x100Bu);
}

TEST(Gf32KnownValues, PolynomialReduction) {
  const Field& f = field(32);
  // x^31 * x = x^32 = x^22 + x^2 + x + 1 (poly 0x100400007)
  EXPECT_EQ(f.mul(0x80000000u, 2), 0x400007u);
}

}  // namespace
}  // namespace ppm::gf
