// Event-driven array failure simulator.
#include <gtest/gtest.h>

#include "codes/sd_code.h"
#include "sim/array_sim.h"

namespace ppm {
namespace {

SimParams small_params() {
  SimParams p;
  p.hours = 24 * 90;           // a quarter
  p.disk_mtbf_hours = 3000;    // aggressive failures for test coverage
  p.sector_errors_per_disk_hour = 1e-3;
  p.scrub_interval_hours = 72;
  p.repair_hours = 12;
  p.stripes = 16;
  p.block_bytes = 1024;
  p.seed = 77;
  return p;
}

TEST(ArraySim, DeterministicForSameSeed) {
  const SDCode code(8, 8, 2, 2, 8);
  const ArraySimulator sim(code, small_params());
  const SimResult a = sim.run(RepairPolicy::kPpm);
  const SimResult b = sim.run(RepairPolicy::kPpm);
  EXPECT_EQ(a.disk_failures, b.disk_failures);
  EXPECT_EQ(a.sector_errors, b.sector_errors);
  EXPECT_EQ(a.repair_events, b.repair_events);
  EXPECT_EQ(a.compute.mult_xors, b.compute.mult_xors);
}

TEST(ArraySim, PoliciesSeeIdenticalFailureStream) {
  const SDCode code(8, 8, 2, 2, 8);
  const ArraySimulator sim(code, small_params());
  const SimResult trad = sim.run(RepairPolicy::kTraditional);
  const SimResult ppm = sim.run(RepairPolicy::kPpm);
  EXPECT_EQ(trad.disk_failures, ppm.disk_failures);
  EXPECT_EQ(trad.sector_errors, ppm.sector_errors);
  EXPECT_EQ(trad.repair_events, ppm.repair_events);
  EXPECT_EQ(trad.data_loss_events, ppm.data_loss_events);
}

TEST(ArraySim, PpmNeverComputesMoreThanTraditional) {
  const SDCode code(8, 8, 2, 2, 8);
  const ArraySimulator sim(code, small_params());
  const SimResult trad = sim.run(RepairPolicy::kTraditional);
  const SimResult ppm = sim.run(RepairPolicy::kPpm);
  ASSERT_GT(trad.repair_events, 0u);
  EXPECT_LE(ppm.compute.mult_xors, trad.compute.mult_xors);
  EXPECT_GT(ppm.compute.mult_xors, 0u);
}

TEST(ArraySim, QuietArrayHasNoEvents) {
  const SDCode code(6, 4, 2, 1, 8);
  SimParams p = small_params();
  p.disk_mtbf_hours = 1e12;  // disks never fail
  p.sector_errors_per_disk_hour = 0;
  const ArraySimulator sim(code, p);
  const SimResult r = sim.run(RepairPolicy::kPpm);
  EXPECT_EQ(r.disk_failures, 0u);
  EXPECT_EQ(r.sector_errors, 0u);
  EXPECT_EQ(r.repair_events, 0u);
  EXPECT_EQ(r.data_loss_events, 0u);
}

TEST(ArraySim, OverwhelmingFailuresCauseDataLoss) {
  // m=1 tolerance, brutal failure rate and slow repair: concurrent double
  // failures are certain over the horizon.
  const SDCode code(6, 4, 1, 1, 8);
  SimParams p = small_params();
  p.disk_mtbf_hours = 100;
  p.repair_hours = 72;
  p.sector_errors_per_disk_hour = 0;
  p.seed = 5;
  const ArraySimulator sim(code, p);
  const SimResult r = sim.run(RepairPolicy::kPpm);
  EXPECT_GT(r.disk_failures, 10u);
  EXPECT_GT(r.max_concurrent_disks, 1u);
  EXPECT_GT(r.data_loss_events, 0u);
}

TEST(ArraySim, ComputeScalesWithStripes) {
  const SDCode code(8, 8, 2, 2, 8);
  SimParams p = small_params();
  const ArraySimulator sim1(code, p);
  const SimResult one = sim1.run(RepairPolicy::kPpm);
  p.stripes *= 2;
  const ArraySimulator sim2(code, p);
  const SimResult two = sim2.run(RepairPolicy::kPpm);
  EXPECT_EQ(two.compute.mult_xors, 2 * one.compute.mult_xors);
}

TEST(ArraySim, ParameterValidation) {
  const SDCode code(6, 4, 2, 1, 8);
  SimParams p = small_params();
  p.hours = 0;
  EXPECT_THROW(ArraySimulator(code, p), std::invalid_argument);
  p = small_params();
  p.stripes = 0;
  EXPECT_THROW(ArraySimulator(code, p), std::invalid_argument);
}

}  // namespace
}  // namespace ppm
