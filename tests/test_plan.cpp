// SubPlan: planning costs and region execution for both calculation
// sequences.
#include <gtest/gtest.h>

#include <numeric>

#include "codes/sd_code.h"
#include "common/rng.h"
#include "decode/plan.h"
#include "test_util.h"
#include "workload/stripe.h"

namespace ppm {
namespace {

std::vector<std::size_t> all_rows(const Matrix& h) {
  std::vector<std::size_t> rows(h.rows());
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(SubPlan, Fig2WholeSystemCosts) {
  // C1 = u(F^-1) + u(S) = 35, C2 = u(F^-1 * S) = 31 (paper §II-B).
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const std::vector<std::size_t> faulty{2, 6, 10, 13, 14};
  const auto costs = SubPlan::sequence_costs(code.parity_check(),
                                             all_rows(code.parity_check()),
                                             faulty, faulty);
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(costs->first, 35u);
  EXPECT_EQ(costs->second, 31u);
}

TEST(SubPlan, CostMatchesExecutedMultXors) {
  const SDCode code(6, 4, 2, 2, 8);
  const std::vector<std::size_t> faulty{0, 6, 12, 18, 1, 7, 13, 19, 2, 8};
  std::vector<std::size_t> sorted(faulty);
  std::sort(sorted.begin(), sorted.end());
  for (const Sequence seq : {Sequence::kNormal, Sequence::kMatrixFirst}) {
    const auto plan = SubPlan::make(code.parity_check(),
                                    all_rows(code.parity_check()), sorted,
                                    sorted, seq);
    ASSERT_TRUE(plan.has_value());
    Stripe stripe(code, 512);
    DecodeStats stats;
    plan->execute(stripe.block_ptrs(), stripe.block_bytes(), &stats);
    EXPECT_EQ(stats.mult_xors, plan->cost());
    EXPECT_EQ(stats.bytes_touched, plan->cost() * 512);
  }
}

TEST(SubPlan, BothSequencesProduceIdenticalBlocks) {
  const SDCode code(6, 4, 2, 1, 8);
  Stripe a(code, 2048);
  const auto snap = test::fill_and_encode(code, a, 99);
  const FailureScenario sc({0, 6, 13, 19, 2});

  for (const Sequence seq : {Sequence::kNormal, Sequence::kMatrixFirst}) {
    Stripe s(code, 2048);
    std::memcpy(s.block(0), snap.data(), snap.size());
    s.erase(sc);
    const auto plan = SubPlan::make(
        code.parity_check(), all_rows(code.parity_check()),
        sc.faulty(), sc.faulty(), seq);
    ASSERT_TRUE(plan.has_value());
    plan->execute(s.block_ptrs(), s.block_bytes());
    EXPECT_TRUE(s.equals(snap)) << "sequence " << static_cast<int>(seq);
  }
}

TEST(SubPlan, SurvivorsExcludeFaultyAndZeroColumns) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  // Recover block 2 from row 0 only: survivors must be exactly the other
  // nonzero columns of row 0, i.e. {0, 1, 3}.
  const std::vector<std::size_t> rows{0};
  const std::vector<std::size_t> unknowns{2};
  const std::vector<std::size_t> excluded{2, 6, 10, 13, 14};
  const auto plan = SubPlan::make(code.parity_check(), rows, unknowns,
                                  excluded, Sequence::kMatrixFirst);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(std::vector<std::size_t>(plan->survivors().begin(),
                                     plan->survivors().end()),
            (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(plan->cost(), 3u);
}

TEST(SubPlan, OverdeterminedSystemUsesRowSubset) {
  // One faulty block, every check row available: the plan must still work
  // (F is 5x1) and cost only what one equation costs.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, 7);
  const FailureScenario sc({5});
  stripe.erase(sc);
  const auto plan = SubPlan::make(code.parity_check(),
                                  all_rows(code.parity_check()), sc.faulty(),
                                  sc.faulty(), Sequence::kMatrixFirst);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->cost(), 3u);  // row 1 of H: b4 ^ b6 ^ b7
  plan->execute(stripe.block_ptrs(), stripe.block_bytes());
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(SubPlan, UnsolvableReturnsNullopt) {
  // More unknowns than independent equations.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const std::vector<std::size_t> unknowns{0, 1, 2};
  EXPECT_FALSE(SubPlan::make(code.parity_check(),
                             all_rows(code.parity_check()), unknowns,
                             unknowns, Sequence::kNormal)
                   .has_value());
  EXPECT_FALSE(SubPlan::sequence_costs(code.parity_check(),
                                       all_rows(code.parity_check()),
                                       unknowns, unknowns)
                   .has_value());
}

TEST(SubPlan, NormalSequenceCostSplitsIntoFinvAndS) {
  // For a square dense-ish system, normal cost >= matrix-first can differ;
  // check the decomposition against manual matrix algebra.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const std::vector<std::size_t> faulty{2, 6, 10, 13, 14};
  const Matrix& h = code.parity_check();
  const Matrix f_mat = h.select_columns(faulty);
  const auto finv = f_mat.inverse();
  ASSERT_TRUE(finv.has_value());
  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < h.cols(); ++c) {
    if (!std::binary_search(faulty.begin(), faulty.end(), c)) {
      survivors.push_back(c);
    }
  }
  const Matrix s_mat = h.select_columns(survivors);
  EXPECT_EQ(finv->nonzeros() + s_mat.nonzeros(), 35u);
  EXPECT_EQ((*finv * s_mat).nonzeros(), 31u);
}

}  // namespace
}  // namespace ppm
