// Continuous scrub & proactive repair (src/scrub/): token-bucket pacing,
// the latent-error arrival process, write-side fault injection, the
// sweep/rank/repair cycle, the crash-consistent repair journal, and the
// zero-trust replay contract — docs/ROBUSTNESS.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "codec/codec.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "common/crc32.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "decode/scenario.h"
#include "decode/traditional_decoder.h"
#include "io/block_source.h"
#include "io/fault_injection.h"
#include "scrub/journal.h"
#include "scrub/rate_limiter.h"
#include "scrub/scrub.h"
#include "serve/server.h"
#include "workload/stripe.h"

namespace ppm {
namespace {

namespace fs = std::filesystem;

using io::FaultInjectingSource;
using io::FaultSpec;
using io::MemoryBlockStore;
using io::ReadStatus;
using io::WriteStatus;

// Unique scratch directory per test, removed on scope exit.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("ppm_scrub_" + tag + "_" +
               std::to_string(static_cast<unsigned long long>(
                   reinterpret_cast<std::uintptr_t>(this))))) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

// One stripe of "storage" behind the read/write fault seam the scrubber
// patrols through, plus the decode scratch and reference digests a
// ScrubTarget needs.
struct TestStripe {
  TestStripe(const ErasureCode& code, std::size_t bytes, std::uint64_t seed)
      : storage(code, bytes), scratch(code, bytes) {
    Rng rng(seed);
    storage.fill_data(rng);
    const TraditionalDecoder trad(code);
    if (!trad.encode(storage.block_ptrs(), bytes)) {
      throw std::runtime_error("reference encode failed");
    }
    snap = storage.snapshot();
    digests.resize(code.total_blocks());
    for (std::size_t b = 0; b < code.total_blocks(); ++b) {
      digests[b] = crc32(storage.block(b), bytes);
    }
    store = std::make_unique<MemoryBlockStore>(storage.block_ptrs(),
                                               code.total_blocks(), bytes);
    seam = std::make_unique<FaultInjectingSource>(*store, *store);
  }

  scrub::ScrubTarget target(const std::string& id) {
    scrub::ScrubTarget t;
    t.source = seam.get();
    t.writer = seam.get();
    t.blocks = scratch.block_ptrs();
    t.expected_crc = digests;
    t.stripe_id = id;
    return t;
  }

  Stripe storage;
  Stripe scratch;
  std::vector<std::uint8_t> snap;
  std::vector<std::uint32_t> digests;
  std::unique_ptr<MemoryBlockStore> store;
  std::unique_ptr<FaultInjectingSource> seam;
};

FaultSpec corrupt_spec(std::size_t offset = 0, std::size_t bytes = 8) {
  FaultSpec spec;
  spec.corrupt = true;
  spec.corrupt_offset = offset;
  spec.corrupt_bytes = bytes;
  return spec;
}

FaultSpec dead_spec() {
  FaultSpec spec;
  spec.fail_always = true;
  return spec;
}

// ---- TokenBucket: pure debt-model math -----------------------------------

TEST(TokenBucket, BurstGrantsWithoutWaiting) {
  scrub::TokenBucket bucket(1000.0, 4000);  // 1 KB/s, 4 KB banked
  EXPECT_EQ(bucket.acquire_at(4000, 0).count(), 0);
}

TEST(TokenBucket, DebtWaitIsProportionalToOverdraft) {
  scrub::TokenBucket bucket(1000.0, 1000);
  // Drain the burst, then overdraw by 500 bytes: at 1000 B/s the debt
  // refills in exactly half a second.
  EXPECT_EQ(bucket.acquire_at(1000, 0).count(), 0);
  const auto wait = bucket.acquire_at(500, 0);
  EXPECT_EQ(wait.count(), 500000000);
}

TEST(TokenBucket, RefillsAtTheConfiguredRate) {
  scrub::TokenBucket bucket(1000.0, 1000);
  EXPECT_EQ(bucket.acquire_at(1000, 0).count(), 0);
  // After one second the bucket banked another 1000 bytes.
  EXPECT_EQ(bucket.acquire_at(1000, 1000000000).count(), 0);
  // Only 100 ms later just 100 bytes accrued: 400 bytes of debt.
  EXPECT_EQ(bucket.acquire_at(500, 1100000000).count(), 400000000);
}

TEST(TokenBucket, RefillNeverBanksBeyondTheBurst) {
  scrub::TokenBucket bucket(1000000.0, 2000);
  // An hour of idle refill still caps at 2000 banked bytes.
  EXPECT_EQ(bucket.acquire_at(2000, 3600000000000).count(), 0);
  EXPECT_GT(bucket.acquire_at(1, 3600000000000).count(), 0);
}

TEST(TokenBucket, ZeroRateIsUnlimited) {
  scrub::TokenBucket bucket(0.0, 1);
  EXPECT_TRUE(bucket.unlimited());
  EXPECT_EQ(bucket.acquire_at(1 << 30, 0).count(), 0);
  EXPECT_EQ(bucket.waits(), 0u);
}

TEST(TokenBucket, RateLimitedSourcePaysPerRead) {
  const std::size_t kBytes = 64;
  std::vector<std::uint8_t> block(kBytes, 0xAB);
  const std::uint8_t* ptr = block.data();
  io::MemoryBlockSource inner(&ptr, 1, kBytes);
  // Slow enough that the bucket cannot refill a full burst between
  // back-to-back reads even under sanitizer slowdown (64 B refill in
  // 1ms), fast enough that the debt sleeps total ~3ms.
  scrub::TokenBucket bucket(64.0 * 1000, kBytes);
  scrub::RateLimitedSource paced(inner, bucket);
  std::vector<std::uint8_t> dst(kBytes);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(paced.read(0, dst.data(), kBytes), ReadStatus::kOk);
  }
  EXPECT_EQ(std::memcmp(dst.data(), block.data(), kBytes), 0);
  EXPECT_GE(bucket.waits(), 1u);  // burst == one read; later reads waited
}

// ---- Latent-error arrival process ----------------------------------------

TEST(Arrivals, ScheduleIsDeterministicFromTheSeed) {
  const std::size_t kBlocks = 64;
  std::vector<std::uint8_t> data(kBlocks * 16);
  std::vector<const std::uint8_t*> ptrs(kBlocks);
  for (std::size_t b = 0; b < kBlocks; ++b) ptrs[b] = data.data() + b * 16;
  io::MemoryBlockSource inner(ptrs.data(), kBlocks, 16);

  FaultInjectingSource::ArrivalOptions options;
  options.fail_permanent = 0.2;
  options.corrupt = 0.3;
  options.epochs = 5;

  FaultInjectingSource a(inner);
  FaultInjectingSource b(inner);
  Rng rng_a(99);
  Rng rng_b(99);
  a.roll_arrivals(options, rng_a);
  b.roll_arrivals(options, rng_b);
  ASSERT_FALSE(a.arrivals().empty());
  ASSERT_EQ(a.arrivals().size(), b.arrivals().size());
  for (std::size_t i = 0; i < a.arrivals().size(); ++i) {
    EXPECT_EQ(a.arrivals()[i].block, b.arrivals()[i].block);
    EXPECT_EQ(a.arrivals()[i].epoch, b.arrivals()[i].epoch);
    EXPECT_EQ(a.arrivals()[i].spec.fail_always,
              b.arrivals()[i].spec.fail_always);
    EXPECT_EQ(a.arrivals()[i].spec.corrupt, b.arrivals()[i].spec.corrupt);
  }
  // Sorted by (epoch, block): the oracle order campaign drivers rely on.
  for (std::size_t i = 1; i < a.arrivals().size(); ++i) {
    const auto& prev = a.arrivals()[i - 1];
    const auto& cur = a.arrivals()[i];
    EXPECT_TRUE(prev.epoch < cur.epoch ||
                (prev.epoch == cur.epoch && prev.block < cur.block));
  }
}

TEST(Arrivals, ErrorsLandOnlyWhenTheirEpochIsReached) {
  const std::size_t kBytes = 32;
  std::vector<std::uint8_t> data(4 * kBytes, 0x5C);
  std::vector<const std::uint8_t*> ptrs(4);
  for (std::size_t b = 0; b < 4; ++b) ptrs[b] = data.data() + b * kBytes;
  io::MemoryBlockSource inner(ptrs.data(), 4, kBytes);
  FaultInjectingSource source(inner);

  // Dense probabilities so the 4-block roll almost surely schedules
  // something; then judge strictly against the rolled schedule.
  FaultInjectingSource::ArrivalOptions options;
  options.fail_permanent = 0.5;
  options.corrupt = 0.5;
  options.epochs = 3;
  Rng rng(7);
  source.roll_arrivals(options, rng);
  ASSERT_FALSE(source.arrivals().empty());

  std::vector<std::uint8_t> dst(kBytes);
  std::size_t landed = 0;
  for (std::size_t epoch = 1; epoch <= options.epochs; ++epoch) {
    landed += source.advance_epoch();
    EXPECT_EQ(source.epoch(), epoch);
    for (const auto& arrival : source.arrivals()) {
      const ReadStatus status = source.read(arrival.block, dst.data(), kBytes);
      const bool clean = status == ReadStatus::kOk &&
                         std::memcmp(dst.data(), ptrs[arrival.block],
                                     kBytes) == 0;
      if (arrival.epoch <= epoch) {
        EXPECT_FALSE(clean) << "arrival should have landed by epoch "
                            << epoch;
      } else {
        EXPECT_TRUE(clean) << "arrival landed early at epoch " << epoch;
      }
    }
  }
  EXPECT_EQ(landed, source.arrivals().size());
}

// ---- Write-side faults ----------------------------------------------------

TEST(WriteFaults, DiskFullFailsEveryAttempt) {
  std::vector<std::uint8_t> data(64, 0);
  std::uint8_t* ptr = data.data();
  MemoryBlockStore store(&ptr, 1, 64);
  FaultInjectingSource seam(store, store);
  FaultSpec spec;
  spec.fail_write_always = true;
  seam.set_fault(0, spec);

  const std::vector<std::uint8_t> payload(64, 0xEE);
  EXPECT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kFailed);
  EXPECT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kFailed);
  EXPECT_EQ(seam.write_failures_injected(), 2u);
  EXPECT_NE(data[0], 0xEE);  // nothing landed
}

TEST(WriteFaults, TransientWriteFailureRecovers) {
  std::vector<std::uint8_t> data(64, 0);
  std::uint8_t* ptr = data.data();
  MemoryBlockStore store(&ptr, 1, 64);
  FaultInjectingSource seam(store, store);
  FaultSpec spec;
  spec.fail_writes = 2;
  seam.set_fault(0, spec);

  const std::vector<std::uint8_t> payload(64, 0xEE);
  EXPECT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kFailed);
  EXPECT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kFailed);
  EXPECT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kOk);
  EXPECT_EQ(data[0], 0xEE);
}

TEST(WriteFaults, ShortWriteTearsThePrefixThenFails) {
  std::vector<std::uint8_t> data(64, 0);
  std::uint8_t* ptr = data.data();
  MemoryBlockStore store(&ptr, 1, 64);
  FaultInjectingSource seam(store, store);
  FaultSpec spec;
  spec.short_write_bytes = 16;
  seam.set_fault(0, spec);

  const std::vector<std::uint8_t> payload(64, 0xEE);
  EXPECT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kFailed);
  // Exactly the torn prefix landed — the crash window the journal's
  // write-ahead contract exists for.
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(data[i], 0xEE);
  for (std::size_t i = 16; i < 64; ++i) EXPECT_EQ(data[i], 0x00);
}

TEST(WriteFaults, SuccessfulWriteHealsReadFaults) {
  std::vector<std::uint8_t> data(64, 0x11);
  std::uint8_t* ptr = data.data();
  MemoryBlockStore store(&ptr, 1, 64);
  FaultInjectingSource seam(store, store);
  seam.set_fault(0, corrupt_spec());

  std::vector<std::uint8_t> dst(64);
  ASSERT_EQ(seam.read(0, dst.data(), 64), ReadStatus::kOk);
  EXPECT_NE(std::memcmp(dst.data(), data.data(), 64), 0);  // corrupted

  const std::vector<std::uint8_t> payload(64, 0xEE);
  ASSERT_EQ(seam.write(0, payload.data(), 64), WriteStatus::kOk);
  ASSERT_EQ(seam.read(0, dst.data(), 64), ReadStatus::kOk);
  EXPECT_EQ(std::memcmp(dst.data(), payload.data(), 64), 0);  // healed
}

TEST(WriteFaults, WriteWithoutAWriterFails) {
  std::vector<std::uint8_t> data(64, 0);
  const std::uint8_t* ptr = data.data();
  io::MemoryBlockSource inner(&ptr, 1, 64);
  FaultInjectingSource seam(inner);  // read-only wrap
  EXPECT_EQ(seam.write(0, data.data(), 64), WriteStatus::kFailed);
}

// ---- Repair journal -------------------------------------------------------

TEST(RepairJournal, IntentThenCommitRoundTrips) {
  TempDir dir("journal_roundtrip");
  scrub::RepairJournal journal(dir.path());
  const auto seq = journal.begin("stripe-0", {2, 5}, {0xAAu, 0xBBu});
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(journal.commit(*seq, {2, 5}, {0xAAu, 0xBBu}));

  const auto records = journal.load_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, *seq);
  EXPECT_EQ(records[0].stripe_id, "stripe-0");
  EXPECT_TRUE(records[0].committed);
  EXPECT_EQ(records[0].blocks, (std::vector<std::size_t>{2, 5}));
  EXPECT_EQ(records[0].crc, (std::vector<std::uint32_t>{0xAAu, 0xBBu}));
}

TEST(RepairJournal, CommitMayClaimASubsetOfTheIntent) {
  TempDir dir("journal_subset");
  scrub::RepairJournal journal(dir.path());
  const auto seq = journal.begin("s", {1, 2, 3}, {1u, 2u, 3u});
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(journal.commit(*seq, {2}, {2u}));
  const auto records = journal.load_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].committed);
  EXPECT_EQ(records[0].blocks, (std::vector<std::size_t>{2}));
}

TEST(RepairJournal, SequenceResumesPastExistingRecords) {
  TempDir dir("journal_resume");
  std::uint64_t first = 0;
  {
    scrub::RepairJournal journal(dir.path());
    first = journal.begin("s", {0}, {0u}).value();
  }
  scrub::RepairJournal journal(dir.path());
  const auto next = journal.begin("s", {1}, {0u});
  ASSERT_TRUE(next.has_value());
  EXPECT_GT(*next, first);
}

TEST(RepairJournal, OnlyTheBeginningInstanceCanCommit) {
  TempDir dir("journal_instance");
  std::uint64_t seq = 0;
  {
    scrub::RepairJournal journal(dir.path());
    seq = journal.begin("s", {0}, {0u}).value();
  }
  // A restarted process must never seal a dead repairer's intent: it has
  // no idea whether the repair happened.
  scrub::RepairJournal journal(dir.path());
  EXPECT_FALSE(journal.commit(seq, {0}, {0u}));
  const auto records = journal.load_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_FALSE(records[0].committed);
}

TEST(RepairJournal, TamperedRecordsAreQuarantinedOnLoad) {
  TempDir dir("journal_tamper");
  scrub::RepairJournal journal(dir.path());
  const auto seq = journal.begin("s", {0}, {0x1234u});
  ASSERT_TRUE(seq.has_value());
  const fs::path record =
      dir.path() / scrub::RepairJournal::record_filename(*seq);
  ASSERT_TRUE(fs::exists(record));
  {
    std::fstream f(record, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(-2, std::ios::end);
    f.put('!');  // flip payload bytes under the seal
  }
  EXPECT_TRUE(journal.load_all().empty());
  EXPECT_FALSE(fs::exists(record));
  bool quarantined_on_disk = false;
  for (const auto& entry : journal.list()) {
    quarantined_on_disk |= entry.quarantined;
  }
  EXPECT_TRUE(quarantined_on_disk);
}

TEST(RepairJournal, GcKeepsIntentsAndANewestQuarantineWindow) {
  TempDir dir("journal_gc");
  scrub::RepairJournal journal(dir.path());
  // One committed, one intent, three quarantined, one stale tmp.
  const auto committed = journal.begin("a", {0}, {0u});
  ASSERT_TRUE(journal.commit(*committed, {0}, {0u}));
  const auto intent = journal.begin("b", {1}, {0u});
  ASSERT_TRUE(intent.has_value());
  for (int i = 0; i < 3; ++i) {
    std::ofstream(dir.path() /
                  ("rot" + std::to_string(i) + ".scrubj.quarantined"))
        << "junk";
  }
  std::ofstream(dir.path() / "stale.scrubj.tmp") << "torn";

  const auto report = journal.gc(/*keep_quarantined=*/1);
  EXPECT_EQ(report.removed_committed, 1u);
  EXPECT_EQ(report.removed_quarantined, 2u);
  EXPECT_EQ(report.removed_tmp, 1u);
  // The intent survives: it is actionable until a commit supersedes it.
  const auto records = journal.load_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].seq, *intent);
  EXPECT_FALSE(records[0].committed);
}

TEST(RepairJournal, StoreFailuresAreCountedNotThrown) {
  TempDir dir("journal_badpath");
  // A *file* where the journal directory should be: every record write
  // fails, none throws, and the failure is visible in the metrics.
  std::ofstream(dir.path()) << "not a directory";
  scrub_metrics().reset();
  scrub::RepairJournal journal(dir.path());
  EXPECT_FALSE(journal.begin("s", {0}, {0u}).has_value());
  EXPECT_GE(scrub_metrics().journal_store_failures.value(), 1u);
}

// ---- Sweep: detection -----------------------------------------------------

TEST(Scrub, SweepDetectsCorruptionAndDeadBlocks) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe clean(code, 512, 1);
  TestStripe sick(code, 512, 2);
  sick.seam->set_fault(1, corrupt_spec());
  sick.seam->set_fault(4, dead_spec());

  scrub_metrics().reset();
  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{});
  scrubber.add_target(clean.target("clean"));
  scrubber.add_target(sick.target("sick"));

  const scrub::SweepReport report = scrubber.sweep();
  ASSERT_EQ(report.stripes.size(), 2u);
  EXPECT_TRUE(report.stripes[0].latent.empty());
  EXPECT_EQ(report.stripes[1].latent, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(report.stripes[1].crc_mismatches, 1u);
  EXPECT_EQ(report.stripes[1].read_failures, 1u);
  EXPECT_EQ(report.latent_total, 2u);
  EXPECT_EQ(report.damaged(), 1u);
  EXPECT_EQ(report.blocks_scanned, 2 * code.total_blocks());
  EXPECT_EQ(scrub_metrics().latent_detected.value(), 2u);
}

TEST(Scrub, SweepSkipsKnownFaultyBlocks) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 3);
  stripe.seam->set_fault(2, dead_spec());

  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{});
  scrub::ScrubTarget target = stripe.target("s");
  target.known_faulty = FailureScenario({2});
  scrubber.add_target(std::move(target));

  const scrub::SweepReport report = scrubber.sweep();
  // Already-known damage is not re-detected as latent…
  EXPECT_TRUE(report.stripes[0].latent.empty());
  EXPECT_EQ(report.blocks_scanned, code.total_blocks() - 1);
  // …but the stripe still counts as damaged.
  EXPECT_EQ(report.damaged(), 1u);
}

TEST(Scrub, SpotCheckRunsOnHealthyStripes) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 4);
  scrub::ScrubOptions options;
  options.spot_check_every = 1;  // every sweep
  scrub::Scrubber scrubber(codec, options);
  scrubber.add_target(stripe.target("s"));

  const scrub::SweepReport report = scrubber.sweep();
  EXPECT_EQ(report.spot_checks, 1u);
  EXPECT_EQ(report.spot_check_failures, 0u);
  EXPECT_TRUE(report.stripes[0].spot_checked);
  EXPECT_TRUE(report.stripes[0].spot_check_ok);
}

// ---- Risk ranking ---------------------------------------------------------

TEST(Scrub, RankingOrdersByDistanceToUnrecoverability) {
  const RSCode code(6, 3, 8);  // capability: any 3 erasures
  Codec codec(code);
  TestStripe light(code, 512, 5);   // 1 erasure: 2 more to failure
  TestStripe heavy(code, 512, 6);   // 3 erasures: the next one kills it
  TestStripe dead(code, 512, 7);    // 4 erasures: already undecodable
  light.seam->set_fault(0, dead_spec());
  for (std::size_t b : {0, 1, 2}) heavy.seam->set_fault(b, dead_spec());
  for (std::size_t b : {0, 1, 2, 3}) dead.seam->set_fault(b, dead_spec());

  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{});
  scrubber.add_target(light.target("light"));
  scrubber.add_target(heavy.target("heavy"));
  scrubber.add_target(dead.target("dead"));

  const scrub::SweepReport sweep = scrubber.sweep();
  const auto ranking = scrubber.rank(sweep);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].stripe_id, "dead");
  EXPECT_FALSE(ranking[0].decodable);
  EXPECT_EQ(ranking[0].erasures_to_failure, 0u);
  EXPECT_EQ(ranking[1].stripe_id, "heavy");
  EXPECT_TRUE(ranking[1].decodable);
  EXPECT_EQ(ranking[1].erasures_to_failure, 1u);
  EXPECT_EQ(ranking[2].stripe_id, "light");
  EXPECT_EQ(ranking[2].erasures_to_failure, 2u);
  EXPECT_GT(ranking[0].risk, ranking[1].risk);
  EXPECT_GT(ranking[1].risk, ranking[2].risk);
}

TEST(Scrub, CoupledDamageRanksAboveIsolatedDamage) {
  // SD code: one faulty block inside a group is isolated (group solve);
  // damage the partition cannot isolate needs the global H_rest solve
  // and sits closer to the cliff.
  const SDCode code(6, 8, 2, 2, SDCode::recommended_width(6, 8));
  Codec codec(code);
  TestStripe isolated(code, 256, 8);
  TestStripe coupled(code, 256, 9);
  isolated.seam->set_fault(0, corrupt_spec());  // single block, one group
  // Two blocks in the same row-set: the s global checks must engage.
  coupled.seam->set_fault(0, corrupt_spec());
  coupled.seam->set_fault(1, corrupt_spec());

  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{});
  scrubber.add_target(isolated.target("isolated"));
  scrubber.add_target(coupled.target("coupled"));
  const auto ranking = scrubber.rank(scrubber.sweep());
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].stripe_id, "coupled");
  EXPECT_GE(ranking[0].coupled_faulty, ranking[1].coupled_faulty);
}

// ---- Repair ---------------------------------------------------------------

TEST(Scrub, CycleRepairsDamageByteIdentically) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 10);
  stripe.seam->set_fault(2, corrupt_spec(7, 16));
  stripe.seam->set_fault(5, dead_spec());

  scrub_metrics().reset();
  TempDir dir("cycle_repair");
  scrub::RepairJournal journal(dir.path());
  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{}, &journal);
  scrubber.add_target(stripe.target("s"));

  const scrub::CycleReport cycle = scrubber.run_cycle();
  EXPECT_EQ(cycle.sweep.latent_total, 2u);
  ASSERT_EQ(cycle.repair.outcomes.size(), 1u);
  const scrub::RepairOutcome& outcome = cycle.repair.outcomes[0];
  EXPECT_TRUE(outcome.complete);
  EXPECT_TRUE(outcome.committed);
  EXPECT_EQ(outcome.repaired, (std::vector<std::size_t>{2, 5}));
  EXPECT_EQ(outcome.written_back, (std::vector<std::size_t>{2, 5}));

  // The storage itself is healed — not just the scratch buffers.
  EXPECT_TRUE(stripe.storage.equals(stripe.snap));
  EXPECT_TRUE(scrubber.sweep().stripes[0].latent.empty());
  EXPECT_EQ(scrub_metrics().blocks_repaired.value(), 2u);
  EXPECT_EQ(scrub_metrics().writeback_failures.value(), 0u);

  // The journal holds one committed record claiming exactly the repair.
  const auto records = journal.load_all();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].committed);
  EXPECT_EQ(records[0].blocks, (std::vector<std::size_t>{2, 5}));
}

TEST(Scrub, RepairIsAtMostOncePerStripe) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 11);
  stripe.seam->set_fault(3, corrupt_spec());

  scrub_metrics().reset();
  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{});
  scrubber.add_target(stripe.target("s"));
  const scrub::SweepReport sweep = scrubber.sweep();
  const auto ranking = scrubber.rank(sweep);

  // Two repairers race over the same ranking: exactly one repairs, the
  // other skips (claimed concurrently, or healed by the first).
  auto a = std::async(std::launch::async,
                      [&] { return scrubber.repair(ranking); });
  auto b = std::async(std::launch::async,
                      [&] { return scrubber.repair(ranking); });
  const scrub::RepairReport ra = a.get();
  const scrub::RepairReport rb = b.get();
  EXPECT_EQ(ra.attempted + rb.attempted, 1u);
  EXPECT_EQ(ra.skipped + rb.skipped, 1u);
  EXPECT_EQ(scrub_metrics().writebacks.value(), 1u);
  EXPECT_TRUE(stripe.storage.equals(stripe.snap));
}

TEST(Scrub, WritebackFailureIsCountedAndNotCommittedAsRepaired) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 12);
  FaultSpec spec = corrupt_spec();
  spec.fail_write_always = true;  // detected, decodable, not writable
  stripe.seam->set_fault(2, spec);

  scrub_metrics().reset();
  TempDir dir("writeback_fail");
  scrub::RepairJournal journal(dir.path());
  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{}, &journal);
  scrubber.add_target(stripe.target("s"));

  const scrub::CycleReport cycle = scrubber.run_cycle();
  ASSERT_EQ(cycle.repair.outcomes.size(), 1u);
  EXPECT_FALSE(cycle.repair.outcomes[0].complete);
  EXPECT_TRUE(cycle.repair.outcomes[0].written_back.empty());
  EXPECT_GE(scrub_metrics().writeback_failures.value(), 1u);
  // The committed record claims nothing: a failed writeback must never
  // read back as "repaired".
  for (const auto& record : journal.load_all()) {
    if (record.committed) {
      EXPECT_TRUE(record.blocks.empty());
    }
  }
}

// ---- Crash consistency & zero-trust replay --------------------------------

TEST(Scrub, CrashBetweenIntentAndCommitLeavesActionableEvidence) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 13);
  stripe.seam->set_fault(1, corrupt_spec());

  TempDir dir("crash_drill");
  {
    scrub::ScrubOptions options;
    options.crash_after_intents = 1;
    scrub::RepairJournal journal(dir.path());
    scrub::Scrubber crasher(codec, options, &journal);
    crasher.add_target(stripe.target("s"));
    const scrub::CycleReport cycle = crasher.run_cycle();
    EXPECT_TRUE(cycle.repair.crashed_for_test);
    EXPECT_EQ(cycle.repair.completed, 0u);
    // The seam still corrupts reads of block 1: the crash left the damage
    // unhealed (the fault lives in the read path, not the storage bytes).
    std::vector<std::uint8_t> buf(512);
    ASSERT_EQ(stripe.seam->read(1, buf.data(), buf.size()), ReadStatus::kOk);
    EXPECT_NE(crc32(buf.data(), buf.size()), stripe.digests[1]);
  }

  // Restart: fresh journal + scrubber over the same fleet.
  scrub::RepairJournal journal(dir.path());
  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{}, &journal);
  scrubber.add_target(stripe.target("s"));

  const scrub::ReplayReport replay = scrubber.replay();
  EXPECT_EQ(replay.pending_intents, 1u);
  EXPECT_EQ(replay.false_claims, 0u);
  ASSERT_EQ(replay.outstanding.size(), 1u);
  EXPECT_EQ(replay.outstanding[0],
            (std::pair<std::size_t, std::size_t>{0, 1}));

  // The next cycle heals the crash's leftover damage.
  const scrub::CycleReport cycle = scrubber.run_cycle();
  EXPECT_EQ(cycle.repair.completed, 1u);
  EXPECT_TRUE(stripe.storage.equals(stripe.snap));
  const scrub::ReplayReport after = scrubber.replay();
  EXPECT_GE(after.verified_commits, 1u);
  EXPECT_EQ(after.false_claims, 0u);
  EXPECT_TRUE(after.outstanding.empty());
}

TEST(Scrub, ReplayQuarantinesFalseRepairedClaims) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 14);

  TempDir dir("false_claim");
  scrub::RepairJournal journal(dir.path());
  // A committed record claiming block 3 was repaired — while the storage
  // actually holds garbage there. Zero trust: the claim must die.
  const auto seq = journal.begin("s", {3}, {stripe.digests[3]});
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(journal.commit(*seq, {3}, {stripe.digests[3]}));
  std::memset(stripe.storage.block(3), 0x5A, 512);

  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{}, &journal);
  scrubber.add_target(stripe.target("s"));
  const scrub::ReplayReport replay = scrubber.replay();
  EXPECT_EQ(replay.false_claims, 1u);
  EXPECT_EQ(replay.verified_commits, 0u);
  EXPECT_EQ(replay.quarantined, 1u);
  // The lying record is gone from the journal proper.
  EXPECT_TRUE(journal.load_all().empty());
}

TEST(Scrub, ReplayQuarantinesRecordsNamingNoKnownStripe) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  TestStripe stripe(code, 512, 15);

  TempDir dir("unmatched");
  scrub::RepairJournal journal(dir.path());
  const auto seq = journal.begin("ghost-stripe", {0}, {0u});
  ASSERT_TRUE(seq.has_value());
  ASSERT_TRUE(journal.commit(*seq, {0}, {0u}));

  scrub::Scrubber scrubber(codec, scrub::ScrubOptions{}, &journal);
  scrubber.add_target(stripe.target("s"));
  const scrub::ReplayReport replay = scrubber.replay();
  EXPECT_EQ(replay.unmatched, 1u);
  EXPECT_GE(replay.quarantined, 1u);
  EXPECT_EQ(replay.false_claims, 0u);
}

// ---- Scrub while serving (TSan soak) --------------------------------------

// A Scrubber patrols (and repairs) the very seam a DecodeServer is
// decoding from, concurrently, with repairs writing back through the
// same MemoryBlockStore the server's reads go through. Run under TSan
// this is the data-race soak for the whole scrub path; under any
// sanitizer it still asserts at-most-once repair and clean metrics.
TEST(Scrub, ScrubWhileServingSoak) {
  const RSCode code(6, 3, 8);
  const std::size_t kBytes = 512;
  const std::size_t total = code.total_blocks();
  Codec codec(code);
  TestStripe stripe(code, kBytes, 16);
  stripe.seam->set_fault(1, corrupt_spec());

  scrub_metrics().reset();
  scrub::ScrubOptions options;
  options.rate_bytes_per_sec = 64.0 * 1024 * 1024;  // paced but fast
  options.burst_bytes = 4 * kBytes;
  scrub::Scrubber scrubber(codec, options);
  scrubber.add_target(stripe.target("shared"));

  const FailureScenario sc({4});
  serve::ServerOptions sopts;
  sopts.dispatchers = 2;
  serve::DecodeServer server(codec, sopts);

  // Server side: decode the shared seam while the scrub runs. Block 4 is
  // erased per request; block 1's corruption is escalated by the digest
  // check until the scrubber heals it (1 erasure + 1 escalation < m=3).
  std::vector<std::unique_ptr<Stripe>> request_stripes;
  std::vector<std::optional<std::future<serve::OverlapResult>>> futures;
  const std::size_t kRequests = 24;
  for (std::size_t i = 0; i < kRequests; ++i) {
    auto rs = std::make_unique<Stripe>(code, kBytes);
    for (std::size_t b = 0; b < total; ++b) {
      std::memcpy(rs->block(b), stripe.snap.data() + b * kBytes, kBytes);
    }
    rs->erase(sc);
    serve::ServeRequest req;
    req.scenario = sc;
    req.source = stripe.seam.get();
    req.blocks = rs->block_ptrs();
    req.block_bytes = kBytes;
    req.expected_crc = stripe.digests;
    futures.push_back(server.submit(std::move(req)));
    request_stripes.push_back(std::move(rs));
  }

  // Scrub side: two concurrent patrol threads over the same fleet.
  std::thread patrol_a([&] {
    for (int i = 0; i < 3; ++i) scrubber.run_cycle();
  });
  std::thread patrol_b([&] {
    for (int i = 0; i < 3; ++i) scrubber.run_cycle();
  });

  std::size_t served = 0;
  for (std::size_t i = 0; i < kRequests; ++i) {
    if (!futures[i].has_value()) continue;
    const serve::OverlapResult out = futures[i]->get();
    EXPECT_TRUE(out.complete);
    EXPECT_TRUE(request_stripes[i]->equals(stripe.snap));
    ++served;
  }
  patrol_a.join();
  patrol_b.join();
  server.shutdown();

  EXPECT_GT(served, 0u);
  // The corruption was repaired exactly once, storage is healed, and
  // nothing on the scrub side failed.
  EXPECT_EQ(scrub_metrics().writebacks.value(), 1u);
  EXPECT_EQ(scrub_metrics().writeback_failures.value(), 0u);
  EXPECT_EQ(scrub_metrics().spot_check_failures.value(), 0u);
  EXPECT_TRUE(stripe.storage.equals(stripe.snap));
  EXPECT_TRUE(scrubber.sweep().stripes[0].latent.empty());
}

}  // namespace
}  // namespace ppm
