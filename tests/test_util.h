// Shared helpers for the PPM test suite.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "ppm.h"

namespace ppm::test {

/// Slow, obviously-correct reference for one region mult_XOR: per-symbol
/// field multiply + XOR. Kernels of every ISA level are checked against it.
inline void reference_mult_xor(const gf::Field& f, std::uint8_t* dst,
                               const std::uint8_t* src, gf::Element c,
                               std::size_t bytes) {
  const unsigned sym = f.symbol_bytes();
  for (std::size_t i = 0; i < bytes; i += sym) {
    gf::Element s = 0;
    gf::Element d = 0;
    std::memcpy(&s, src + i, sym);
    std::memcpy(&d, dst + i, sym);
    d ^= f.mul(c, s);
    std::memcpy(dst + i, &d, sym);
  }
}

/// Random bytes helper.
inline std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> v(n);
  rng.fill(v.data(), n);
  return v;
}

/// Encode a freshly filled stripe with the traditional decoder and return
/// the reference snapshot.
inline std::vector<std::uint8_t> fill_and_encode(const ErasureCode& code,
                                                 Stripe& stripe,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  stripe.fill_data(rng);
  TraditionalDecoder trad(code);
  const auto enc = trad.encode(stripe.block_ptrs(), stripe.block_bytes());
  if (!enc.has_value()) throw std::runtime_error("reference encode failed");
  return stripe.snapshot();
}

}  // namespace ppm::test
