// Persistent plan store: serialization round trips, write-through /
// read-through / warm wiring in the Codec, and — the load-bearing part —
// the zero-trust gate: corrupted, truncated, or version-bumped records
// must be quarantined and rebuilt, never served and never fatal.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "codec/codec.h"
#include "codes/lrc_code.h"
#include "codes/sd_code.h"
#include "common/rng.h"
#include "decode/scenario.h"
#include "decode/traditional_decoder.h"
#include "plan_store/plan_store.h"
#include "workload/stripe.h"

namespace ppm {
namespace {

namespace fs = std::filesystem;

// Unique store directory per test, removed on scope exit.
class StoreDir {
 public:
  explicit StoreDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("ppm_store_" + tag + "_" +
               std::to_string(static_cast<unsigned long long>(
                   reinterpret_cast<std::uintptr_t>(this))))) {
    fs::remove_all(path_);
  }
  ~StoreDir() { fs::remove_all(path_); }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

SDCode test_code() {
  return SDCode(6, 8, 2, 2, SDCode::recommended_width(6, 8));
}

// Whole-disk failure scenario: every block of `disk`.
FailureScenario disk_failure(const ErasureCode& code, std::size_t disk) {
  std::vector<std::size_t> faulty;
  for (std::size_t row = 0; row < code.rows(); ++row) {
    faulty.push_back(code.block_id(row, disk));
  }
  return FailureScenario(faulty);
}

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Encode a stripe, erase `sc`, decode with `plan`, and require the
// original bytes back.
void expect_plan_decodes(const ErasureCode& code, const FailureScenario& sc,
                         const CachedPlan& plan) {
  constexpr std::size_t kBlock = 512;
  Stripe stripe(code, kBlock);
  Rng rng(7);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  ASSERT_TRUE(trad.encode(stripe.block_ptrs(), kBlock));
  const auto snap = stripe.snapshot();
  stripe.erase(sc);
  plan.execute(stripe.block_ptrs(), kBlock);
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(CodeSignature, StableForSameParameters) {
  const SDCode a = test_code();
  const SDCode b = test_code();
  EXPECT_EQ(a.code_signature().text, b.code_signature().text);
  EXPECT_EQ(a.code_signature().digest, b.code_signature().digest);
  EXPECT_EQ(a.code_signature(), b.code_signature());
}

TEST(CodeSignature, DistinctAcrossParametersAndFamilies) {
  const SDCode base = test_code();
  const SDCode other_geom(6, 8, 2, 1, SDCode::recommended_width(6, 8));
  const LRCCode lrc(12, 3, 2, 8);
  EXPECT_NE(base.code_signature().digest, other_geom.code_signature().digest);
  EXPECT_NE(base.code_signature().digest, lrc.code_signature().digest);
  EXPECT_NE(base.code_signature().text, other_geom.code_signature().text);
}

TEST(PlanProfile, PopulatedAtBuildTime) {
  const SDCode code = test_code();
  Codec codec(code);
  const auto plan = codec.plan_for(disk_failure(code, 0));
  ASSERT_NE(plan, nullptr);
  const PlanProfile& prof = plan->profile();
  EXPECT_EQ(prof.cost, plan->cost());
  EXPECT_TRUE(prof.hazard_free);
  EXPECT_GT(prof.work, 0u);
  EXPECT_LE(prof.critical_path, prof.work);
  EXPECT_GE(prof.speedup_bound(), 1.0);
  EXPECT_GE(prof.max_width, 1u);
}

TEST(PlanStoreFormat, SerializeDeserializeRoundTrip) {
  const SDCode code = test_code();
  Codec codec(code);
  const FailureScenario sc = disk_failure(code, 1);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);

  const auto bytes = planstore::serialize_plan(code, sc, *plan);
  std::string err;
  const auto stored = planstore::deserialize_plan(bytes, code, &err);
  ASSERT_TRUE(stored.has_value()) << err;
  EXPECT_EQ(stored->stored_profile, plan->profile());
  EXPECT_EQ(std::vector<std::size_t>(stored->scenario.faulty().begin(),
                                     stored->scenario.faulty().end()),
            std::vector<std::size_t>(sc.faulty().begin(), sc.faulty().end()));
  expect_plan_decodes(code, sc, stored->plan);
}

TEST(PlanStoreFormat, RejectsRecordOfForeignCode) {
  const SDCode code = test_code();
  Codec codec(code);
  const FailureScenario sc = disk_failure(code, 0);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  const auto bytes = planstore::serialize_plan(code, sc, *plan);

  const SDCode foreign(6, 8, 2, 1, SDCode::recommended_width(6, 8));
  std::string err;
  EXPECT_FALSE(planstore::deserialize_plan(bytes, foreign, &err).has_value());
  EXPECT_FALSE(err.empty());
}

TEST(PlanStore, PutThenLoadReVerifies) {
  const SDCode code = test_code();
  const StoreDir dir("put_load");
  planstore::PlanStore store(dir.path());
  Codec codec(code);
  const FailureScenario sc = disk_failure(code, 2);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  ASSERT_TRUE(store.put(code, sc, *plan));

  std::shared_ptr<const CachedPlan> loaded;
  EXPECT_EQ(store.load(code, sc, &loaded),
            planstore::PlanStore::LoadResult::kLoaded);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->profile(), plan->profile());
  expect_plan_decodes(code, sc, *loaded);

  // A key with no record is kMissing, not an error.
  std::shared_ptr<const CachedPlan> missing;
  EXPECT_EQ(store.load(code, disk_failure(code, 3), &missing),
            planstore::PlanStore::LoadResult::kMissing);
  EXPECT_EQ(missing, nullptr);
}

TEST(PlanStore, CodecWriteThroughAndReadThrough) {
  const SDCode code = test_code();
  const StoreDir dir("write_read");
  const FailureScenario sc = disk_failure(code, 0);

  Codec writer(code);
  writer.attach_store(dir.path().string());
  ASSERT_NE(writer.plan_for(sc), nullptr);
  EXPECT_EQ(writer.metrics().planstore_stores.value(), 1u);
  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  EXPECT_TRUE(fs::exists(record));

  // A fresh process (new Codec) read-throughs the record instead of
  // rebuilding — and the loaded plan decodes correctly.
  Codec reader(code);
  reader.attach_store(dir.path().string());
  const auto plan = reader.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(reader.metrics().planstore_loads.value(), 1u);
  EXPECT_EQ(reader.metrics().planstore_stores.value(), 0u);
  expect_plan_decodes(code, sc, *plan);
}

TEST(PlanStore, WarmPopulatesShardedCache) {
  const SDCode code = test_code();
  const StoreDir dir("warm");
  Codec writer(code);
  writer.attach_store(dir.path().string());
  for (std::size_t d = 0; d < 3; ++d) {
    ASSERT_NE(writer.plan_for(disk_failure(code, d)), nullptr);
  }

  Codec cold(code);
  cold.attach_store(dir.path().string());
  EXPECT_EQ(cold.warm(), 3u);
  EXPECT_EQ(cold.metrics().planstore_warm_hits.value(), 3u);
  EXPECT_EQ(cold.cache_size(), 3u);
  // First decode after warm() is a pure cache hit: no load, no rebuild.
  const auto before_hits = cold.cache_hits();
  ASSERT_NE(cold.plan_for(disk_failure(code, 1)), nullptr);
  EXPECT_EQ(cold.cache_hits(), before_hits + 1);
  EXPECT_EQ(cold.metrics().planstore_loads.value(), 3u);
}

TEST(PlanStore, ScenarioListWarmLoadsSelectedKeys) {
  const SDCode code = test_code();
  const StoreDir dir("warm_list");
  Codec writer(code);
  writer.attach_store(dir.path().string());
  const std::vector<FailureScenario> scenarios = {disk_failure(code, 0),
                                                  disk_failure(code, 1)};
  for (const auto& sc : scenarios) {
    ASSERT_NE(writer.plan_for(sc), nullptr);
  }
  Codec cold(code);
  cold.attach_store(dir.path().string());
  EXPECT_EQ(cold.warm(scenarios), 2u);
  EXPECT_EQ(cold.cache_size(), 2u);
}

TEST(PlanStore, CorruptPayloadIsQuarantinedAndRebuilt) {
  const SDCode code = test_code();
  const StoreDir dir("corrupt");
  const FailureScenario sc = disk_failure(code, 1);
  Codec writer(code);
  writer.attach_store(dir.path().string());
  ASSERT_NE(writer.plan_for(sc), nullptr);

  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  auto bytes = read_file(record);
  ASSERT_GT(bytes.size(), 32u);
  bytes[30] ^= 0xFF;  // inside the CRC-protected payload
  write_file(record, bytes);

  planstore::PlanStore store(dir.path());
  std::shared_ptr<const CachedPlan> out;
  std::string why;
  EXPECT_EQ(store.load(code, sc, &out, &why),
            planstore::PlanStore::LoadResult::kRejected);
  EXPECT_EQ(out, nullptr);
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(fs::exists(record));
  EXPECT_TRUE(fs::exists(record.string() + ".quarantined"));

  // A codec facing the corrupt record rebuilds from the code, decodes
  // correctly, and re-persists a healthy record.
  write_file(record, bytes);  // fresh corrupt copy
  Codec reader(code);
  reader.attach_store(dir.path().string());
  const auto plan = reader.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(reader.metrics().planstore_load_failures.value(), 1u);
  EXPECT_EQ(reader.metrics().planstore_quarantined.value(), 1u);
  EXPECT_EQ(reader.metrics().planstore_stores.value(), 1u);
  EXPECT_TRUE(fs::exists(record));
  expect_plan_decodes(code, sc, *plan);
}

TEST(PlanStore, TruncatedRecordIsQuarantined) {
  const SDCode code = test_code();
  const StoreDir dir("truncate");
  const FailureScenario sc = disk_failure(code, 0);
  Codec writer(code);
  writer.attach_store(dir.path().string());
  ASSERT_NE(writer.plan_for(sc), nullptr);

  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  auto bytes = read_file(record);
  bytes.resize(bytes.size() / 2);
  write_file(record, bytes);

  planstore::PlanStore store(dir.path());
  std::shared_ptr<const CachedPlan> out;
  EXPECT_EQ(store.load(code, sc, &out),
            planstore::PlanStore::LoadResult::kRejected);
  EXPECT_TRUE(fs::exists(record.string() + ".quarantined"));
}

TEST(PlanStore, FutureFormatVersionIsQuarantined) {
  const SDCode code = test_code();
  const StoreDir dir("version");
  const FailureScenario sc = disk_failure(code, 0);
  Codec writer(code);
  writer.attach_store(dir.path().string());
  ASSERT_NE(writer.plan_for(sc), nullptr);

  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  auto bytes = read_file(record);
  bytes[8] += 1;  // format-version u32 sits after the 8-byte magic
  write_file(record, bytes);

  planstore::PlanStore store(dir.path());
  std::shared_ptr<const CachedPlan> out;
  std::string why;
  EXPECT_EQ(store.load(code, sc, &out, &why),
            planstore::PlanStore::LoadResult::kRejected);
  EXPECT_NE(why.find("version"), std::string::npos);
  EXPECT_TRUE(fs::exists(record.string() + ".quarantined"));
}

TEST(PlanStore, PutReportsFailureWhenTmpPathUnwritable) {
  // Plant a directory at the .tmp staging path: the serialized write cannot
  // even open. put() must report false and leave no record behind. (A
  // directory blocks root too, unlike permission bits.)
  const SDCode code = test_code();
  const StoreDir dir("put_tmp_blocked");
  planstore::PlanStore store(dir.path());
  Codec codec(code);
  const FailureScenario sc = disk_failure(code, 0);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);

  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  fs::create_directories(record.string() + ".tmp");

  EXPECT_FALSE(store.put(code, sc, *plan));
  EXPECT_FALSE(fs::exists(record));
}

TEST(PlanStore, PutReportsFailureWhenPublishBlockedAndRemovesTmp) {
  // Plant a directory at the target .plan path: the write succeeds but the
  // atomic rename cannot publish. put() must report false and must not
  // leak the staged .tmp file.
  const SDCode code = test_code();
  const StoreDir dir("put_publish_blocked");
  planstore::PlanStore store(dir.path());
  Codec codec(code);
  const FailureScenario sc = disk_failure(code, 1);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);

  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  fs::create_directories(record);

  EXPECT_FALSE(store.put(code, sc, *plan));
  EXPECT_TRUE(fs::is_directory(record));  // untouched
  EXPECT_FALSE(fs::exists(record.string() + ".tmp"));
}

TEST(PlanStore, CodecCountsStoreFailureAndStillDecodes) {
  // Write-through durability is best-effort: when put() fails the decode
  // path must proceed untroubled, and the failure must surface as the
  // planstore.store_failures counter rather than an exception.
  const SDCode code = test_code();
  const StoreDir dir("put_counter");
  const FailureScenario sc = disk_failure(code, 2);

  Codec codec(code);
  codec.attach_store(dir.path().string());
  const fs::path record =
      dir.path() / planstore::PlanStore::record_filename(code, sc);
  fs::create_directories(record.string() + ".tmp");

  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(codec.metrics().planstore_stores.value(), 0u);
  EXPECT_EQ(codec.metrics().planstore_store_failures.value(), 1u);
  expect_plan_decodes(code, sc, *plan);

  const std::string json = codec.metrics().to_json();
  EXPECT_NE(json.find("\"store_failures\":1"), std::string::npos);
}

TEST(PlanStore, CheckReportsAndGcRemovesQuarantined) {
  const SDCode code = test_code();
  const StoreDir dir("check_gc");
  Codec writer(code);
  writer.attach_store(dir.path().string());
  for (std::size_t d = 0; d < 3; ++d) {
    ASSERT_NE(writer.plan_for(disk_failure(code, d)), nullptr);
  }

  planstore::PlanStore store(dir.path());
  auto report = store.check(code);
  EXPECT_EQ(report.checked, 3u);
  EXPECT_EQ(report.verified, 3u);
  EXPECT_EQ(report.quarantined, 0u);

  // Corrupt one record and drop an orphan temporary; check() must
  // quarantine exactly the bad record, and gc() must sweep both.
  const fs::path victim =
      dir.path() /
      planstore::PlanStore::record_filename(code, disk_failure(code, 1));
  auto bytes = read_file(victim);
  bytes.back() ^= 0x01;
  write_file(victim, bytes);
  write_file(dir.path() / "orphan.plan.tmp", {0x00});

  report = store.check(code);
  EXPECT_EQ(report.checked, 3u);
  EXPECT_EQ(report.verified, 2u);
  EXPECT_EQ(report.quarantined, 1u);

  std::size_t quarantined_listed = 0;
  for (const auto& entry : store.list()) {
    quarantined_listed += entry.quarantined ? 1 : 0;
  }
  EXPECT_EQ(quarantined_listed, 1u);

  const auto gc = store.gc();
  EXPECT_EQ(gc.removed_quarantined, 1u);
  EXPECT_EQ(gc.removed_tmp, 1u);
  for (const auto& entry : store.list()) {
    EXPECT_FALSE(entry.quarantined);
  }
}

TEST(PlanStore, GcRetainsTheNewestQuarantinedFiles) {
  // Quarantined records are forensic evidence: gc(keep) must age out the
  // oldest ones and keep exactly the `keep` newest, never all of them
  // forever and never the ones an operator still wants to inspect.
  const StoreDir dir("gc_retention");
  planstore::PlanStore store(dir.path());
  const auto now = fs::file_time_type::clock::now();
  for (int i = 0; i < 4; ++i) {
    const fs::path p =
        dir.path() / ("rot" + std::to_string(i) + ".plan.quarantined");
    write_file(p, {static_cast<std::uint8_t>(i)});
    // Distinct mtimes, oldest first, so the retention order is pinned.
    fs::last_write_time(p, now - std::chrono::hours(10 - i));
  }

  const auto gc = store.gc(/*keep_quarantined=*/2);
  EXPECT_EQ(gc.removed_quarantined, 2u);
  EXPECT_FALSE(fs::exists(dir.path() / "rot0.plan.quarantined"));
  EXPECT_FALSE(fs::exists(dir.path() / "rot1.plan.quarantined"));
  EXPECT_TRUE(fs::exists(dir.path() / "rot2.plan.quarantined"));
  EXPECT_TRUE(fs::exists(dir.path() / "rot3.plan.quarantined"));

  // keep >= count removes nothing.
  EXPECT_EQ(store.gc(10).removed_quarantined, 0u);
  // Default retention stays zero: everything quarantined goes.
  EXPECT_EQ(store.gc().removed_quarantined, 2u);
}

}  // namespace
}  // namespace ppm
