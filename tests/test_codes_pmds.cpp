// PMDS construction: the SD-family subset relationship the paper relies on.
#include <gtest/gtest.h>

#include "codes/pmds_code.h"
#include "codes/sd_code.h"

namespace ppm {
namespace {

TEST(PMDSCode, Geometry) {
  const PMDSCode code(8, 8, 2, 2, 8);
  EXPECT_EQ(code.disks(), 8u);
  EXPECT_EQ(code.rows(), 8u);
  EXPECT_EQ(code.m(), 2u);
  EXPECT_EQ(code.s(), 2u);
  EXPECT_EQ(code.check_rows(), 2u * 8u + 2u);
  EXPECT_EQ(code.parity_blocks().size(), 2u * 8u + 2u);
}

TEST(PMDSCode, SharesSDStructure) {
  // PMDS is the same parity-check family as SD (paper §IV): identical
  // sparsity pattern, identical parity placement.
  const PMDSCode pmds(6, 4, 2, 1, 8);
  const SDCode sd(6, 4, 2, 1, 8);
  const Matrix& hp = pmds.parity_check();
  const Matrix& hs = sd.parity_check();
  ASSERT_EQ(hp.rows(), hs.rows());
  ASSERT_EQ(hp.cols(), hs.cols());
  for (std::size_t i = 0; i < hp.rows(); ++i) {
    for (std::size_t j = 0; j < hp.cols(); ++j) {
      EXPECT_EQ(hp(i, j) != 0, hs(i, j) != 0) << i << "," << j;
    }
  }
  EXPECT_TRUE(std::equal(pmds.parity_blocks().begin(),
                         pmds.parity_blocks().end(),
                         sd.parity_blocks().begin(),
                         sd.parity_blocks().end()));
}

TEST(PMDSCode, EncodingSystemSolvable) {
  const PMDSCode code(8, 8, 2, 2, 8);
  const Matrix f = code.parity_check().select_columns(code.parity_blocks());
  EXPECT_EQ(f.rank(), f.cols());
}

TEST(PMDSCode, ExplicitCoefficientsHonoured) {
  const PMDSCode code(4, 4, 1, 1, 8, {1, 2});
  EXPECT_EQ(code.coefficients(), (std::vector<gf::Element>{1, 2}));
}

TEST(PMDSCode, ParameterValidation) {
  EXPECT_THROW(PMDSCode(4, 4, 0, 1, 8), std::invalid_argument);
  EXPECT_THROW(PMDSCode(4, 4, 4, 1, 8), std::invalid_argument);
  EXPECT_THROW(PMDSCode(4, 4, 1, 12, 8), std::invalid_argument);
  EXPECT_THROW(PMDSCode(4, 4, 1, 1, 8, {1}), std::invalid_argument);
}

}  // namespace
}  // namespace ppm
